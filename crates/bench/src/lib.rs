//! # snp-bench — benchmark harness
//!
//! One binary per paper table/figure (see DESIGN.md §4 for the index):
//!
//! | target | regenerates |
//! |---|---|
//! | `table1_devices` | Table I (hardware parameters) |
//! | `table2_configs` | Table II (software configuration + model bounds) |
//! | `fig5_ld_kernel` | Fig. 5 (LD kernel throughput vs SNP strings) |
//! | `fig6_ld_end2end` | Fig. 6 (end-to-end LD vs CPU) |
//! | `fig7_scalability` | Fig. 7 (per-core scalability) |
//! | `fig8_fastid` | Fig. 8 (FastID 32 queries vs >20M profiles) |
//! | `fig9_andnot` | Fig. 9 (AND vs AND-NOT on one core) |
//! | `microbench_table` | §V-C/V-D instrument readings (footnote 1) |
//!
//! plus Criterion benches over the *real* host engines (`cpu_engine`,
//! `bitmat_ops`, `sim_engines`, `framework_end2end`, `ablations`).

use std::fmt::Display;

/// Renders an aligned text table with a header row.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "ragged table row");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: Vec<String>, widths: &[usize]| -> String {
        let mut line = String::from("|");
        for (cell, w) in cells.iter().zip(widths) {
            line.push_str(&format!(" {cell:>w$} |", w = w));
        }
        line.push('\n');
        line
    };
    out.push_str(&fmt_row(
        headers.iter().map(|s| s.to_string()).collect(),
        &widths,
    ));
    let mut sep = String::from("|");
    for w in &widths {
        sep.push_str(&format!("{}|", "-".repeat(w + 2)));
    }
    sep.push('\n');
    out.push_str(&sep);
    for row in rows {
        out.push_str(&fmt_row(row.clone(), &widths));
    }
    out
}

/// Formats a float with engineering-style precision.
pub fn eng(v: f64) -> String {
    if v == 0.0 {
        return "0".to_string();
    }
    let a = v.abs();
    if a >= 100.0 {
        format!("{v:.0}")
    } else if a >= 10.0 {
        format!("{v:.1}")
    } else if a >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.3}")
    }
}

/// Nanoseconds → human-readable duration.
pub fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2} us", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Prints a section banner.
pub fn banner(title: impl Display) {
    println!("\n=== {title} ===\n");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let t = render_table(
            &["name", "v"],
            &[
                vec!["a".into(), "1".into()],
                vec!["long".into(), "22".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines.iter().all(|l| l.len() == lines[0].len()), "aligned");
        assert!(lines[0].contains("name"));
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_rejected() {
        let _ = render_table(&["a", "b"], &[vec!["1".into()]]);
    }

    #[test]
    fn eng_formatting() {
        assert_eq!(eng(0.0), "0");
        assert_eq!(eng(1234.6), "1235");
        assert_eq!(eng(12.34), "12.3");
        assert_eq!(eng(1.234), "1.23");
        assert_eq!(eng(0.1234), "0.123");
    }

    #[test]
    fn ns_formatting() {
        assert_eq!(fmt_ns(500.0), "500 ns");
        assert_eq!(fmt_ns(1.5e3), "1.50 us");
        assert_eq!(fmt_ns(2.5e6), "2.50 ms");
        assert_eq!(fmt_ns(3.0e9), "3.00 s");
    }
}
