//! Modeled ablations over the simulated devices (virtual time — the
//! quantities Criterion cannot measure). One section per design choice
//! DESIGN.md §5 lists.

use snp_bench::{banner, eng, fmt_ns, render_table};
use snp_bitmat::{BitMatrix, CompareOp};
use snp_core::{
    config_for, Algorithm, EngineOptions, ExecMode, GpuEngine, KernelPlan, MixtureStrategy,
};
use snp_gpu_model::config::ProblemShape;
use snp_gpu_model::devices;

fn one_core_throughput(
    dev: &snp_gpu_model::DeviceSpec,
    cfg: &snp_gpu_model::KernelConfig,
    op: CompareOp,
    k_words: usize,
) -> f64 {
    let plan = KernelPlan::new(dev, cfg, op, cfg.m_c, 16 * cfg.n_r, k_words);
    plan.achieved_word_ops_per_sec(plan.time(dev).total_ns)
}

fn main() {
    ablation_prenegate();
    ablation_double_buffer();
    ablation_occupancy();
    ablation_nr();
}

/// §II-C / §VI-E-1: direct AND-NOT vs pre-negated database, per device.
fn ablation_prenegate() {
    banner("Ablation: mixture analysis — direct AND-NOT vs pre-negated database (1 core)");
    let mut rows = Vec::new();
    for dev in devices::all_gpus() {
        let k = 512;
        let mut cfg = config_for(
            &dev,
            Algorithm::MixtureAnalysis,
            ProblemShape {
                m: 32,
                n: 16_384,
                k_words: k,
            },
        );
        cfg.grid_m = 1;
        cfg.grid_n = 1;
        let direct = one_core_throughput(&dev, &cfg, CompareOp::AndNot, k);
        let pre = one_core_throughput(&dev, &cfg, CompareOp::And, k);
        rows.push(vec![
            dev.name.clone(),
            eng(direct / 1e9),
            eng(pre / 1e9),
            format!("{:+.1}%", 100.0 * (pre / direct - 1.0)),
        ]);
    }
    print!(
        "{}",
        render_table(
            &[
                "device",
                "direct G w-ops/s",
                "pre-negated G w-ops/s",
                "gain"
            ],
            &rows
        )
    );
    println!("  Expected: ~0% on NVIDIA (fused LOP3), ~+50% on Vega (drops the VALU NOT).\n");
}

/// §VI-A-1 / §VI-E-2: double buffering on vs off, end to end.
fn ablation_double_buffer() {
    banner(
        "Ablation: double buffering — end-to-end FastID, 32 queries x 20.97M profiles x 1024 SNPs",
    );
    let queries = BitMatrix::<u64>::zeros(32, 1024);
    let database = BitMatrix::<u64>::zeros(20_971_520, 1024);
    let mut rows = Vec::new();
    for dev in devices::all_gpus() {
        let run = |double_buffer: bool| {
            GpuEngine::new(dev.clone())
                .with_options(EngineOptions {
                    mode: ExecMode::TimingOnly,
                    double_buffer,
                    mixture: MixtureStrategy::Direct,
                    ..Default::default()
                })
                .compare(&queries, &database, Algorithm::IdentitySearch)
                .unwrap()
        };
        let on = run(true);
        let off = run(false);
        rows.push(vec![
            dev.name.clone(),
            fmt_ns(on.timing.end_to_end_ns as f64),
            fmt_ns(off.timing.end_to_end_ns as f64),
            format!(
                "{:.2}x",
                off.timing.end_to_end_ns as f64 / on.timing.end_to_end_ns as f64
            ),
            format!("{} / {}", on.passes, off.passes),
        ]);
    }
    print!(
        "{}",
        render_table(
            &[
                "device",
                "double-buffered",
                "single-buffered",
                "speedup",
                "passes on/off"
            ],
            &rows
        )
    );
    println!("  Expected: >=1x everywhere; largest where transfers rival compute.\n");
}

/// §V-E after Volkov: thread groups per cluster = L_fn vs maximum occupancy.
fn ablation_occupancy() {
    banner("Ablation: occupancy — groups per cluster = L_fn (paper) vs device maximum");
    let mut rows = Vec::new();
    for dev in devices::all_gpus() {
        let k = 512;
        let cfg = config_for(
            &dev,
            Algorithm::LinkageDisequilibrium,
            ProblemShape {
                m: 4096,
                n: 46_080,
                k_words: k,
            },
        );
        let tput = |groups: u32| {
            let mut c = cfg;
            c.groups_per_cluster = groups;
            // n_r must distribute evenly over the groups and their threads.
            let unit = groups as usize * dev.n_t as usize;
            c.n_r = (c.n_r / unit).max(1) * unit;
            // 46 080 = lcm of the candidate n_r values x grid width: no tile-
            // quantization noise contaminates the occupancy comparison.
            let plan = KernelPlan::new(&dev, &c, CompareOp::And, 4096, 46_080, k);
            plan.achieved_word_ops_per_sec(plan.time(&dev).total_ns)
        };
        let paper = tput(dev.l_fn);
        let max_g = dev.max_thread_groups / dev.n_clusters.max(1);
        let max_occ = tput(max_g.max(dev.l_fn));
        rows.push(vec![
            dev.name.clone(),
            format!("{} grp/cluster: {} G/s", dev.l_fn, eng(paper / 1e9)),
            format!(
                "{} grp/cluster: {} G/s",
                max_g.max(dev.l_fn),
                eng(max_occ / 1e9)
            ),
            format!("{:+.1}%", 100.0 * (max_occ / paper - 1.0)),
        ]);
    }
    print!(
        "{}",
        render_table(
            &["device", "paper occupancy", "max occupancy", "delta"],
            &rows
        )
    );
    println!("  Expected: near-zero gain from extra occupancy (Volkov: lower occupancy with");
    println!("  more registers per thread is enough once pipelines are covered).\n");
}

/// Eq. 7: sweep n_r around the configured value.
fn ablation_nr() {
    banner("Ablation: register blocking n_r sweep (Titan V, 1 core)");
    let dev = devices::titan_v();
    let k = 383;
    let base = config_for(
        &dev,
        Algorithm::LinkageDisequilibrium,
        ProblemShape {
            m: 32,
            n: 65_536,
            k_words: k,
        },
    );
    let lo = snp_gpu_model::config::n_r_lower_bound(&dev, base.m_r, base.m_c);
    let mut rows = Vec::new();
    let mut n_r = lo;
    while n_r <= 4096 {
        let mut cfg = base;
        cfg.n_r = n_r;
        cfg.grid_m = 1;
        cfg.grid_n = 1;
        if cfg.violations(&dev).is_empty() {
            let plan = KernelPlan::new(&dev, &cfg, CompareOp::And, cfg.m_c, 16 * cfg.n_r, k);
            let t = plan.achieved_word_ops_per_sec(plan.time(&dev).total_ns);
            rows.push(vec![
                n_r.to_string(),
                eng(t / 1e9),
                if n_r == base.n_r {
                    "<- Table II".to_string()
                } else {
                    String::new()
                },
            ]);
        }
        n_r *= 2;
    }
    print!(
        "{}",
        render_table(&["n_r", "G word-ops/s (1 core)", ""], &rows)
    );
    println!("  Expected: throughput rises toward the Eq. 7 bound then flattens — larger");
    println!("  register tiles amortize A/B loads until the popcount pipe saturates.");
}
