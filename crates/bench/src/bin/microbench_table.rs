//! Regenerates the §V-B–§V-D instrument readings (paper footnote 1): the
//! measured instruction latencies and throughputs, and the pipeline-sharing
//! map, for every evaluated device — the procedure a user runs to fill in
//! Table I for new hardware ("we determined the theoretical peak solely
//! through microbenchmarking" for the Vega 64).

use snp_bench::{banner, eng, render_table};
use snp_gpu_model::{devices, InstrClass};
use snp_microbench::{
    classify_sharing, measure_latency_cycles, measure_throughput, recover_parameters,
    sweep_thread_groups,
};

fn main() {
    banner("§V-C — instruction latency (single work-item dependent chains)");
    let classes = [
        InstrClass::IntAdd,
        InstrClass::Logic,
        InstrClass::Not,
        InstrClass::Popc,
    ];
    let devs = devices::all_gpus();
    {
        let mut headers = vec!["instruction".to_string()];
        headers.extend(devs.iter().map(|d| format!("{} (cycles)", d.name)));
        let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
        let rows: Vec<Vec<String>> = classes
            .iter()
            .map(|&c| {
                let mut row = vec![c.to_string()];
                row.extend(
                    devs.iter()
                        .map(|d| format!("{:.2}", measure_latency_cycles(d, c).cycles_per_instr)),
                );
                row
            })
            .collect();
        print!("{}", render_table(&header_refs, &rows));
        println!("  (Table I L_fn row: GTX 980 = 6, Titan V = 4, Vega 64 = 4)\n");
    }

    banner("§V-D — saturated throughput at N_grp = N_cl x L_fn (thread-instr/cycle/core)");
    {
        let mut headers = vec!["instruction".to_string()];
        headers.extend(devs.iter().map(|d| d.name.clone()));
        let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
        let rows: Vec<Vec<String>> = classes
            .iter()
            .map(|&c| {
                let mut row = vec![c.to_string()];
                row.extend(devs.iter().map(|d| {
                    let m = measure_throughput(d, c, d.chosen_occupancy_groups());
                    format!(
                        "{} (= {} units/cluster)",
                        eng(m.instrs_per_cycle),
                        eng(m.instrs_per_cycle / d.n_clusters as f64)
                    )
                }));
                row
            })
            .collect();
        print!("{}", render_table(&header_refs, &rows));
        println!("  (recovered units/cluster must equal the Table I N_fn rows)\n");
    }

    banner("§V-D — thread-group sweep (GTX 980, popcount)");
    {
        let dev = devices::gtx_980();
        let sweep = sweep_thread_groups(&dev, InstrClass::Popc, dev.chosen_occupancy_groups());
        let rows: Vec<Vec<String>> = sweep
            .iter()
            .filter(|m| m.n_grp % dev.n_clusters == 0 || m.n_grp == 1)
            .map(|m| {
                vec![
                    m.n_grp.to_string(),
                    m.cycles.to_string(),
                    eng(m.instrs_per_cycle),
                    eng(m.instrs_per_sec / 1e9),
                ]
            })
            .collect();
        print!(
            "{}",
            render_table(
                &["N_grp", "cycles", "instr/cycle/core", "G instr/s/core"],
                &rows
            )
        );
        println!("  (time flat for N_grp <= N_cl; peak by N_grp = N_cl x L_fn = 24)\n");
    }

    banner("§V-D — pipeline sharing probes (mixed instruction streams)");
    {
        let pairs = [
            (InstrClass::Popc, InstrClass::IntAdd),
            (InstrClass::IntAdd, InstrClass::Logic),
            (InstrClass::IntAdd, InstrClass::Not),
        ];
        let mut headers = vec!["pair".to_string()];
        headers.extend(devs.iter().map(|d| d.name.clone()));
        let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
        let rows: Vec<Vec<String>> = pairs
            .iter()
            .map(|&(a, b)| {
                let mut row = vec![format!("{a} + {b}")];
                row.extend(devs.iter().map(|d| {
                    let s = classify_sharing(d, a, b);
                    format!(
                        "{} (x{:.2})",
                        if s.shared { "SHARED" } else { "separate" },
                        s.slowdown
                    )
                }));
                row
            })
            .collect();
        print!("{}", render_table(&header_refs, &rows));
        println!("  (paper: popc is its own pipe everywhere; Vega's ADD/AND/NOT share one VALU)\n");
    }

    banner("Recovered parameter summary (recover_parameters)");
    for dev in &devs {
        let r = recover_parameters(dev);
        let n_fn: Vec<String> = r.n_fn.iter().map(|(c, u)| format!("{c}={u}")).collect();
        println!(
            "{:<10} L_fn(popc) = {:.1}; N_fn: {}; shared pairs: {:?}",
            dev.name,
            r.latency_for(InstrClass::Popc).unwrap(),
            n_fn.join(", "),
            r.shared_pairs
                .iter()
                .map(|(a, b)| format!("{a}+{b}"))
                .collect::<Vec<_>>()
        );
    }
}
