//! Regenerates **Fig. 9**: kernel throughput on ONE compute core when the
//! comparison is AND vs AND-NOT (mixture analysis without pre-negation).
//!
//! Expected shape (paper §VI-E-1): "including the NOT in the computation has
//! no noticeable effect on the NVIDIA cards" (their LOP3 fuses the
//! negation), "but throughput drops for the Vega 64" (its NOT issues on the
//! same VALU pipeline as ADD and AND). The paper runs this on one core "to
//! lessen the impact of scalability".

use snp_bench::{banner, eng, render_table};
use snp_bitmat::CompareOp;
use snp_core::{config_for, Algorithm, KernelPlan};
use snp_gpu_model::config::ProblemShape;
use snp_gpu_model::devices;

fn main() {
    banner("Fig. 9 — AND vs AND-NOT comparison throughput on 1 core");
    let mut rows = Vec::new();
    for dev in devices::all_gpus() {
        let k_words = 512usize;
        let mut cfg = config_for(
            &dev,
            Algorithm::MixtureAnalysis,
            ProblemShape {
                m: 32,
                n: 16 * 1024,
                k_words,
            },
        );
        cfg.grid_m = 1;
        cfg.grid_n = 1;
        let n_total = 16 * cfg.n_r;
        let tput = |op: CompareOp| {
            let plan = KernelPlan::new(&dev, &cfg, op, cfg.m_c, n_total, k_words);
            assert_eq!(plan.active_cores, 1);
            let kt = plan.time(&dev);
            plan.achieved_word_ops_per_sec(kt.total_ns)
        };
        let and = tput(CompareOp::And);
        let andnot = tput(CompareOp::AndNot);
        rows.push(vec![
            dev.name.clone(),
            if dev.fused_andnot {
                "fused (LOP3)"
            } else {
                "separate NOT"
            }
            .to_string(),
            eng(and / 1e9),
            eng(andnot / 1e9),
            format!("{:.1}%", 100.0 * andnot / and),
        ]);
    }
    print!(
        "{}",
        render_table(
            &[
                "device",
                "AND-NOT support",
                "AND G word-ops/s",
                "AND-NOT G word-ops/s",
                "ratio"
            ],
            &rows
        )
    );
    println!("\nShape check: NVIDIA ratios = 100% (identical bars in Fig. 9); Vega drops");
    println!("toward 2/3 because the explicit NOT adds a third issue slot on the shared");
    println!("ADD/AND pipeline. Pre-negating the database (§II-C) restores the AND rate —");
    println!("see the `ablation_prenegate` group in `cargo bench -p snp-bench`.");
}
