//! Regenerates **Table II**: the software configuration parameters for each
//! device × algorithm, alongside the analytical model's derivation (Eqs.
//! 4–7) so the "systematic approach identifying how software parameters can
//! be specialized" is visible.

use snp_bench::{banner, render_table};
use snp_gpu_model::config::{
    derive_config, derive_k_c, derive_m_c, derive_m_r, n_r_lower_bound, n_r_upper_bound, McRule,
    ProblemShape,
};
use snp_gpu_model::devices;
use snp_gpu_model::presets::{table2, PresetAlgorithm};

fn main() {
    banner("Table II — software configuration parameters for SNP comparison");
    let headers = ["Algorithm", "Parameter", "GTX 980", "Titan V", "Vega 64"].to_vec();
    let mut rows: Vec<Vec<String>> = Vec::new();
    for alg in [PresetAlgorithm::Ld, PresetAlgorithm::FastId] {
        let name = match alg {
            PresetAlgorithm::Ld => "Linkage disequilibrium",
            PresetAlgorithm::FastId => "FastID",
        };
        let presets: Vec<_> = table2()
            .into_iter()
            .filter(|p| p.algorithm == alg)
            .collect();
        let get = |device: &str| presets.iter().find(|p| p.device == device).unwrap().config;
        let cfgs = [get("GTX 980"), get("Titan V"), get("Vega 64")];
        let mut push = |param: &str, f: &dyn Fn(&snp_gpu_model::KernelConfig) -> String| {
            let mut r = vec![name.to_string(), param.to_string()];
            r.extend(cfgs.iter().map(f));
            rows.push(r);
        };
        push("Core configuration", &|c| {
            format!("{}x{}", c.grid_m, c.grid_n)
        });
        push("m_r", &|c| c.m_r.to_string());
        push("n_r", &|c| c.n_r.to_string());
        push("k_c", &|c| c.k_c.to_string());
        push("m_c", &|c| c.m_c.to_string());
    }
    print!("{}", render_table(&headers, &rows));

    banner("Analytical model (Eqs. 4-7): derived values and bounds per device");
    let headers2 = vec![
        "Device",
        "m_r = N_vec (Eq.4)",
        "m_c = N_b (Tab.II)",
        "m_c = N_b/N_cl (Eq.5)",
        "k_c (Eq.6)",
        "n_r lower (Eq.7)",
        "n_r upper (regs)",
        "n_r chosen (model)",
    ];
    let shape = ProblemShape {
        m: 12_256,
        n: 12_256,
        k_words: 383,
    };
    let mut rows2 = Vec::new();
    for dev in devices::all_gpus() {
        let m_r = derive_m_r(&dev);
        let m_c = derive_m_c(&dev, McRule::Banks);
        let cfg = derive_config(&dev, shape, McRule::Banks);
        rows2.push(vec![
            dev.name.clone(),
            m_r.to_string(),
            m_c.to_string(),
            derive_m_c(&dev, McRule::BanksPerCluster).to_string(),
            derive_k_c(&dev).to_string(),
            n_r_lower_bound(&dev, m_r, m_c).to_string(),
            n_r_upper_bound(&dev, m_r).to_string(),
            cfg.n_r.to_string(),
        ]);
    }
    print!("{}", render_table(&headers2, &rows2));
    println!("\nEvery Table II n_r lies within [Eq.7 lower bound, register upper bound]");
    println!("(asserted by the snp-gpu-model test suite). The Eq. 5 column shows the");
    println!("formula as printed; Table II itself uses m_c = N_b — see DESIGN.md §6.");
}
