//! Beyond-the-paper extensions, quantified: streaming top-k readback,
//! multi-GPU sharding (§VII), and the hierarchical-memory analysis that
//! quantifies the paper's open Vega question.

use snp_bench::{banner, fmt_ns, render_table};
use snp_bitmat::BitMatrix;
use snp_core::{
    dgx2_like, Algorithm, EngineOptions, ExecMode, GpuEngine, MixtureStrategy, MultiGpuEngine,
};
use snp_gpu_model::devices;
use snp_gpu_model::presets::preset_for;
use snp_gpu_sim::cache::{analyze, l2_bytes_for};

fn timing_only() -> EngineOptions {
    EngineOptions {
        mode: ExecMode::TimingOnly,
        double_buffer: true,
        mixture: MixtureStrategy::Direct,
        ..Default::default()
    }
}

fn main() {
    topk_section();
    multi_gpu_section();
    memory_analysis_section();
}

/// Streaming top-k: replaces the 2.7 GB γ readback of Fig. 8 with a
/// device-side reduction.
fn topk_section() {
    banner("Extension: streaming top-k readback (Fig. 8 workload, k = 10)");
    let queries = BitMatrix::<u64>::zeros(32, 1024);
    let database = BitMatrix::<u64>::zeros(20_971_520, 1024);
    let mut rows = Vec::new();
    for dev in devices::all_gpus() {
        let engine = GpuEngine::new(dev.clone()).with_options(timing_only());
        let full = engine.identity_search(&queries, &database).unwrap();
        let topk = engine
            .identity_search_topk(&queries, &database, 10)
            .unwrap();
        rows.push(vec![
            dev.name.clone(),
            fmt_ns(full.timing.end_to_end_ns as f64),
            fmt_ns(topk.timing.end_to_end_ns as f64),
            format!(
                "{:.2}x",
                full.timing.end_to_end_ns as f64 / topk.timing.end_to_end_ns as f64
            ),
            format!(
                "{:.1} MB -> {:.2} MB",
                topk.full_readback_bytes as f64 / 1e6,
                topk.topk_readback_bytes as f64 / 1e6
            ),
        ]);
    }
    print!(
        "{}",
        render_table(
            &[
                "device",
                "full-γ end-to-end",
                "top-k end-to-end",
                "speedup",
                "readback"
            ],
            &rows
        )
    );
    println!("  The candidate sets are bit-identical to full search + host selection (tested).\n");
}

/// Multi-GPU database sharding on a DGX-2-like group.
fn multi_gpu_section() {
    banner("Extension: multi-GPU database sharding (paper §VII, DGX-2-like)");
    let queries = BitMatrix::<u64>::zeros(32, 1024);
    let database = BitMatrix::<u64>::zeros(20_971_520, 1024);
    let mut rows = Vec::new();
    for n_dev in [1usize, 2, 4, 8, 16] {
        let devs = dgx2_like().into_iter().take(n_dev).collect::<Vec<_>>();
        let multi = MultiGpuEngine::new(devs).with_options(timing_only());
        let run = multi.identity_search(&queries, &database).unwrap();
        let busy: u64 = run
            .per_device
            .iter()
            .map(|r| r.timing.kernel_ns + r.timing.transfer_in_ns)
            .max()
            .unwrap_or(0);
        rows.push(vec![
            n_dev.to_string(),
            fmt_ns(run.end_to_end_ns as f64),
            fmt_ns(busy as f64),
            run.shard_rows
                .iter()
                .map(|r| (r / 1000).to_string())
                .collect::<Vec<_>>()
                .join("k/")
                + "k",
        ]);
    }
    print!(
        "{}",
        render_table(
            &["devices", "end-to-end", "max device busy", "shard sizes"],
            &rows
        )
    );
    println!("  Device-side work scales ~linearly; end-to-end floors at the unsharded");
    println!("  per-device runtime-initialization cost.\n");

    // Heterogeneous sharding.
    let hetero = MultiGpuEngine::new(devices::all_gpus()).with_options(timing_only());
    let shards = hetero.shard_rows(20_971_520, Algorithm::IdentitySearch);
    println!(
        "heterogeneous group (GTX 980 + Titan V + Vega 64) shards 20.97M rows as {:?}\n  (proportional to each device's sustained rate)\n",
        shards
    );
}

/// The §VII hierarchical-memory question, quantified.
fn memory_analysis_section() {
    banner("Analysis: how much of Fig. 7 does a bandwidth-only memory model explain?");
    let mut rows = Vec::new();
    for dev in devices::all_gpus() {
        let cfg = preset_for(&dev, Algorithm::LinkageDisequilibrium).unwrap();
        let a = analyze(&dev, &cfg, cfg.k_c);
        rows.push(vec![
            dev.name.clone(),
            format!("{:.3}", a.bytes_per_word_op),
            format!("{:.1}", a.demand_per_core / 1e9),
            format!("{:.0}", a.supply / 1e9),
            format!("{:.0}", a.bandwidth_knee_cores),
            dev.memory.scaling_knee.to_string(),
            format!(
                "{:.1} MB / {}",
                l2_bytes_for(&dev) as f64 / 1e6,
                a.cores_fitting_l2
            ),
        ]);
    }
    print!(
        "{}",
        render_table(
            &[
                "device",
                "B/word-op",
                "demand GB/s/core",
                "supply GB/s",
                "bandwidth knee (cores)",
                "observed knee",
                "L2 / cores fitting",
            ],
            &rows
        )
    );
    println!("  Pure DRAM bandwidth predicts Vega saturating only near ~47 cores — far past");
    println!("  the observed 8-core knee — while the concurrent B panels of just ~2 cores");
    println!("  already overflow its 4 MB L2. The collapse is therefore a cache/contention");
    println!("  phenomenon outside the paper's model (its own §VII conclusion), which this");
    println!("  reproduction encodes as the calibrated scaling knob (DESIGN.md §6).");
}
