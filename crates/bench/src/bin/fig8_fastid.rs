//! Regenerates **Fig. 8**: end-to-end FastID identity search — 32 queries
//! (the smallest query size that uses every shared-memory bank, §VI-D)
//! against a database of more than 20 million profiles (sized after the FBI
//! NDIS database), for SNP counts from 128 to 1024.
//!
//! The run exercises the full framework machinery: the GTX 980 cannot hold
//! the database or the output in one allocation, so the pass planner chunks
//! it (§VI-E-2), and double buffering overlaps the database upload with
//! computation. Timing-only mode keeps host memory use flat.

use snp_bench::{banner, fmt_ns, render_table};
use snp_bitmat::BitMatrix;
use snp_core::{Algorithm, EngineOptions, ExecMode, GpuEngine, MixtureStrategy};
use snp_gpu_model::devices;

const QUERIES: usize = 32;
const PROFILES: usize = 20_971_520; // > 20 M, ≈ NDIS scale (§VI-D footnote)

fn main() {
    banner("Fig. 8 — FastID: 32 queries against a >20M-profile database");
    let opts = EngineOptions {
        mode: ExecMode::TimingOnly,
        double_buffer: true,
        mixture: MixtureStrategy::Direct,
        ..Default::default()
    };
    let gpus = devices::all_gpus();
    let mut headers = vec!["SNPs".to_string()];
    for d in &gpus {
        headers.push(d.name.clone());
        headers.push(format!("{} passes", d.name));
    }
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut rows = Vec::new();
    for snps in [128usize, 256, 512, 1024] {
        let queries = BitMatrix::<u64>::zeros(QUERIES, snps);
        let database = BitMatrix::<u64>::zeros(PROFILES, snps);
        let mut row = vec![snps.to_string()];
        for dev in &gpus {
            let engine = GpuEngine::new(dev.clone()).with_options(opts);
            let run = engine
                .compare(&queries, &database, Algorithm::IdentitySearch)
                .expect("FastID run");
            row.push(fmt_ns(run.timing.end_to_end_ns as f64));
            row.push(run.passes.to_string());
        }
        rows.push(row);
    }
    print!("{}", render_table(&header_refs, &rows));
    println!("\nShape check: time grows roughly linearly with SNP count (the database");
    println!("transfer dominates at this extreme aspect ratio); the GTX 980 needs many");
    println!("passes (max allocation 0.983 GiB), the Titan V and Vega 64 far fewer; all");
    println!("devices complete a >20M-profile search in seconds — the paper's argument");
    println!("that forensic-scale identity search is practical on one GPU.");
}
