//! Regenerates **Fig. 6**: end-to-end LD performance (data transfer +
//! computation, inclusive of runtime initialization) on simulated datasets
//! of 10 000 SNPs, as the number of sequences (samples) grows. The CPU line
//! is the modeled Xeon E5-2620 v2 workstation of \[11\] (its data is host-
//! resident, so it pays no initialization or transfer).
//!
//! Expected shape: for small problems the GPU's runtime-initialization cost
//! (hundreds of ms) dominates and the CPU wins; large enough problems
//! amortize it and the GPUs finish 47 %–677 % faster than the CPU.

use snp_bench::{banner, fmt_ns, render_table};
use snp_bitmat::BitMatrix;
use snp_core::{Algorithm, CpuModel, EngineOptions, ExecMode, GpuEngine, MixtureStrategy};
use snp_gpu_model::{devices, WordOpKind};

const SNPS: usize = 10_000;

fn main() {
    banner("Fig. 6 — end-to-end LD on 10,000-SNP datasets vs number of sequences");
    let cpu = CpuModel::ivy_bridge_workstation();
    let gpus = devices::all_gpus();
    let opts = EngineOptions {
        mode: ExecMode::TimingOnly,
        double_buffer: true,
        mixture: MixtureStrategy::Direct,
        ..Default::default()
    };

    let mut headers = vec!["sequences".to_string(), "CPU (model)".to_string()];
    for d in &gpus {
        headers.push(d.name.clone());
        headers.push(format!("{} speedup", d.name));
    }
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();

    let mut rows = Vec::new();
    let mut best_speedup: (f64, String) = (0.0, String::new());
    let mut worst_positive: (f64, String) = (f64::INFINITY, String::new());
    for sequences in [1_000usize, 2_000, 5_000, 10_000, 15_000, 20_000, 25_000] {
        let cpu_ns = cpu.time_ns_for_bits(WordOpKind::And, SNPS, SNPS, sequences);
        let mut row = vec![sequences.to_string(), fmt_ns(cpu_ns)];
        // The panel content is irrelevant to timing; build an empty matrix of
        // the right shape (timing-only mode never reads it).
        let panel = BitMatrix::<u64>::zeros(SNPS, sequences);
        for dev in &gpus {
            let engine = GpuEngine::new(dev.clone()).with_options(opts);
            let run = engine
                .compare(&panel, &panel, Algorithm::LinkageDisequilibrium)
                .expect("LD run");
            let gpu_ns = run.timing.end_to_end_ns as f64;
            let speedup = cpu_ns / gpu_ns;
            row.push(fmt_ns(gpu_ns));
            row.push(format!("{speedup:.2}x"));
            if speedup > best_speedup.0 {
                best_speedup = (speedup, format!("{} @ {sequences} sequences", dev.name));
            }
            if speedup > 1.0 && speedup < worst_positive.0 {
                worst_positive = (speedup, format!("{} @ {sequences} sequences", dev.name));
            }
        }
        rows.push(row);
    }
    print!("{}", render_table(&header_refs, &rows));
    println!();
    println!(
        "smallest winning GPU speedup: {:.2}x ({}) — paper's lower bound: 1.47x (\"47% faster\")",
        worst_positive.0, worst_positive.1
    );
    println!(
        "largest GPU speedup:          {:.2}x ({}) — paper's upper bound: 7.77x (\"677% faster\")",
        best_speedup.0, best_speedup.1
    );
    println!("\nShape check: GPUs lose below the initialization-amortization crossover and");
    println!("win increasingly above it; Titan V > Vega 64 > GTX 980 at large sizes.");
}
