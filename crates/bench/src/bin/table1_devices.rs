//! Regenerates **Table I**: the hardware parameters of the evaluated
//! devices, as recorded in the model database.

use snp_bench::{banner, render_table};
use snp_gpu_model::{devices, InstrClass};

fn main() {
    banner("Table I — mapping of GPU features to the corresponding CPU architecture");
    let devs = devices::all_devices();
    let headers: Vec<&str> = {
        let mut h = vec!["Parameter"];
        h.extend(devs.iter().map(|d| d.name.as_str()));
        h
    };
    let mut rows: Vec<Vec<String>> = Vec::new();
    let row = |name: &str, f: &dyn Fn(&snp_gpu_model::DeviceSpec) -> String| -> Vec<String> {
        let mut r = vec![name.to_string()];
        r.extend(devs.iter().map(f));
        r
    };
    rows.push(row("Microarchitecture", &|d| d.microarchitecture.clone()));
    rows.push(row("Frequency (GHz)", &|d| {
        format!("{:.3}", d.frequency_ghz)
    }));
    rows.push(row("Thread Group Size N_T", &|d| d.n_t.to_string()));
    rows.push(row("Max Thread Groups N_grp", &|d| {
        d.max_thread_groups.to_string()
    }));
    rows.push(row("Compute Cores N_c", &|d| d.n_cores.to_string()));
    rows.push(row("Compute Clusters N_cl", &|d| d.n_clusters.to_string()));
    rows.push(row("N_fn^+ (32-bit add)", &|d| {
        d.n_fn(InstrClass::IntAdd).unwrap().to_string()
    }));
    rows.push(row("N_fn^& (32-bit logical)", &|d| {
        d.n_fn(InstrClass::Logic).unwrap().to_string()
    }));
    rows.push(row("N_fn^popc (population count)", &|d| {
        d.n_fn(InstrClass::Popc).unwrap().to_string()
    }));
    rows.push(row("L_fn (latency, cycles)", &|d| d.l_fn.to_string()));
    rows.push(row("Global Memory (GiB)", &|d| {
        format!("{:.3}", d.global_mem_bytes as f64 / (1u64 << 30) as f64)
    }));
    rows.push(row("Max Allocation (GiB)", &|d| {
        format!("{:.3}", d.max_alloc_bytes as f64 / (1u64 << 30) as f64)
    }));
    rows.push(row("Shared Memory (KiB)", &|d| {
        (d.shared_mem_bytes / 1024).to_string()
    }));
    rows.push(row("Shared Memory Banks N_b", &|d| {
        d.shared_banks.to_string()
    }));
    rows.push(row("Registers per Core", &|d| {
        if d.registers_per_core >= 1024 {
            format!("{}K", d.registers_per_core / 1024)
        } else {
            format!("{} logical", d.registers_per_core)
        }
    }));
    rows.push(row("Max Registers per Thread", &|d| {
        d.max_regs_per_thread.to_string()
    }));
    rows.push(row("Thread-group term", &|d| {
        d.thread_group_term().to_string()
    }));
    rows.push(row("Fused AND-NOT", &|d| {
        if d.fused_andnot { "yes" } else { "no" }.to_string()
    }));
    rows.push(row("Word width (bits)", &|d| d.word_bits.to_string()));
    print!("{}", render_table(&headers, &rows));
    println!("\nPaper reference: Table I (values reproduced verbatim; the last three rows are");
    println!("model-level annotations: vendor thread-group terminology, the fused-negation");
    println!("capability of §II-C, and the native packed word width).");
}
