//! Regenerates **Fig. 7**: per-core performance relative to one core, using
//! the largest supported LD tile size, as the number of compute cores in
//! use grows (the problem size scales with the core count, so each core's
//! work is constant).
//!
//! Expected shape: Titan V stays near 100 % ("scales almost perfectly"),
//! GTX 980 reaches about 90 % at 16 cores, and Vega 64's per-core
//! performance "drops drastically when using more than 8 compute cores".

use snp_bench::{banner, render_table};
use snp_bitmat::CompareOp;
use snp_core::{config_for, Algorithm, KernelPlan};
use snp_gpu_model::config::ProblemShape;
use snp_gpu_model::devices;

/// Tile jobs per core — enough work that launch overhead is negligible.
const JOBS_PER_CORE: usize = 16;

fn main() {
    banner("Fig. 7 — per-core LD performance relative to 1 core");
    for dev in devices::all_gpus() {
        // Largest supported LD tile: full shared-memory depth.
        let k_words = config_for(
            &dev,
            Algorithm::LinkageDisequilibrium,
            ProblemShape {
                m: 4096,
                n: 4096,
                k_words: 512,
            },
        )
        .k_c;
        println!("{} (shared-dimension words per tile: {k_words})", dev.name);
        let mut rows = Vec::new();
        let mut per_core_1 = 0.0;
        let mut cores = 1u32;
        loop {
            let cores_now = cores.min(dev.n_cores);
            // Scale the problem with the core count: each core gets
            // JOBS_PER_CORE tiles along the n dimension.
            let mut cfg = config_for(
                &dev,
                Algorithm::LinkageDisequilibrium,
                ProblemShape {
                    m: 32,
                    n: cores_now as usize * JOBS_PER_CORE * 1024,
                    k_words,
                },
            );
            cfg.grid_m = 1;
            cfg.grid_n = cores_now;
            let n_total = cores_now as usize * JOBS_PER_CORE * cfg.n_r;
            let plan = KernelPlan::new(&dev, &cfg, CompareOp::And, cfg.m_c, n_total, k_words);
            assert_eq!(plan.active_cores, cores_now);
            assert_eq!(plan.jobs_per_core, JOBS_PER_CORE as u64);
            let kt = plan.time(&dev);
            let per_core = plan.achieved_word_ops_per_sec(kt.total_ns) / cores_now as f64;
            if cores_now == 1 {
                per_core_1 = per_core;
            }
            let rel = 100.0 * per_core / per_core_1;
            rows.push(vec![
                cores_now.to_string(),
                format!("{:.1}", per_core / 1e9),
                format!("{rel:.1}%"),
            ]);
            if cores_now == dev.n_cores {
                break;
            }
            cores *= 2;
        }
        print!(
            "{}",
            render_table(
                &["cores", "G word-ops/s per core", "relative to 1 core"],
                &rows
            )
        );
        println!();
    }
    println!("Shape check: Titan V ≈ flat; GTX 980 ≈ 90% at 16 cores; Vega 64 flat to 8");
    println!("cores then collapsing — the memory-system behaviour the paper observes but");
    println!("leaves unmodeled (§VI-C), reproduced here by the calibrated scaling knob.");
}
