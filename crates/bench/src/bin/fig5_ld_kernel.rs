//! Regenerates **Fig. 5**: LD kernel throughput as the number of SNP
//! strings (samples, the shared dimension) grows to the device maximum of
//! one shared-memory tile, with the SNP count (m = n) near each device's
//! maximum:
//!
//! * SNPs per device — Maxwell 15 360, Volta 25 600, Vega 40 960 (the
//!   largest square output fitting the max allocation);
//! * SNP strings to the device maximum — Maxwell/Volta 12 256 (= k_c × 32
//!   = 383 × 32), Vega 16 384 (= 512 × 32).
//!
//! Expected shape: throughput rises with string count (greater reuse per
//! accumulated comparison amortizes prologue/epilogue and the C-write
//! traffic) and approaches the theoretical-peak dotted line; achieved
//! fractions at the maximum were 90.7 % (GTX 980), 97.1 % (Titan V) and
//! 54.9 % (Vega 64).

use snp_bench::{banner, eng, fmt_ns, render_table};
use snp_bitmat::CompareOp;
use snp_core::{config_for, Algorithm, KernelPlan};
use snp_gpu_model::config::ProblemShape;
use snp_gpu_model::peak::peak;
use snp_gpu_model::{devices, WordOpKind};

fn main() {
    banner("Fig. 5 — LD kernel throughput vs number of SNP strings");
    let cases = [
        (devices::gtx_980(), 15_360usize, 12_256usize, 90.7),
        (devices::titan_v(), 25_600, 12_256, 97.1),
        (devices::vega_64(), 40_960, 16_384, 54.9),
    ];
    for (dev, snps, max_strings, paper_pct) in cases {
        let pk = peak(&dev, WordOpKind::And);
        println!(
            "{} — {} SNPs (m = n), theoretical peak {} G word-ops/s",
            dev.name,
            snps,
            eng(pk.word_ops_per_sec / 1e9)
        );
        let mut rows = Vec::new();
        let mut strings = 256usize;
        #[allow(unused_assignments)]
        let mut final_pct = f64::NAN;
        loop {
            let strings_now = strings.min(max_strings);
            let k_words = strings_now.div_ceil(32);
            let shape = ProblemShape {
                m: snps,
                n: snps,
                k_words,
            };
            let cfg = config_for(&dev, Algorithm::LinkageDisequilibrium, shape);
            let plan = KernelPlan::new(&dev, &cfg, CompareOp::And, snps, snps, k_words);
            let kt = plan.time(&dev);
            let tput = plan.achieved_word_ops_per_sec(kt.total_ns);
            let pct = 100.0 * tput / pk.word_ops_per_sec;
            final_pct = pct;
            rows.push(vec![
                strings_now.to_string(),
                fmt_ns(kt.total_ns),
                eng(tput / 1e9),
                format!("{pct:.1}%"),
                if kt.memory_ns > kt.compute_ns {
                    "memory"
                } else {
                    "compute"
                }
                .to_string(),
            ]);
            if strings_now == max_strings {
                break;
            }
            strings *= 2;
        }
        print!(
            "{}",
            render_table(
                &[
                    "SNP strings",
                    "kernel time",
                    "G word-ops/s",
                    "% of peak",
                    "bound"
                ],
                &rows
            )
        );
        println!("  at maximum strings: {final_pct:.1}% of peak (paper: {paper_pct}%)\n");
    }
    println!("Shape check: throughput must rise monotonically with string count and the");
    println!("final percentages must rank Titan V > GTX 980 >> Vega 64, as in the paper.");
}
