//! Criterion benches of the end-to-end framework: full functional runs on
//! the simulated devices (host wall time — dominated by the functional
//! `execute_gamma`), and the pure planning/timing path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use snp_bitmat::CompareOp;
use snp_core::{execute_gamma, Algorithm, EngineOptions, ExecMode, GpuEngine, MixtureStrategy};
use snp_gpu_model::devices;
use snp_popgen::random_dense;
use std::hint::black_box;

fn bench_full_runs(c: &mut Criterion) {
    let mut g = c.benchmark_group("framework/full");
    g.sample_size(10);
    let panel = random_dense(512, 4096, 1);
    g.throughput(Throughput::Elements((512 * 512 * (4096 / 32)) as u64));
    for dev in devices::all_gpus() {
        g.bench_with_input(
            BenchmarkId::from_parameter(&dev.name),
            &dev,
            |bench, dev| {
                let engine = GpuEngine::new(dev.clone());
                bench.iter(|| black_box(engine.ld_self(black_box(&panel)).unwrap()))
            },
        );
    }
    g.finish();
}

fn bench_timing_only(c: &mut Criterion) {
    let mut g = c.benchmark_group("framework/timing_only");
    // NDIS-scale planning should stay in microseconds: the entire Fig. 8
    // sweep costs no real compute.
    let queries = random_dense(32, 1024, 2);
    let database_shape = snp_bitmat::BitMatrix::<u64>::zeros(2_000_000, 1024);
    for dev in devices::all_gpus() {
        g.bench_with_input(
            BenchmarkId::from_parameter(&dev.name),
            &dev,
            |bench, dev| {
                let engine = GpuEngine::new(dev.clone()).with_options(EngineOptions {
                    mode: ExecMode::TimingOnly,
                    double_buffer: true,
                    mixture: MixtureStrategy::Direct,
                    ..Default::default()
                });
                bench.iter(|| {
                    black_box(
                        engine
                            .compare(
                                black_box(&queries),
                                black_box(&database_shape),
                                Algorithm::IdentitySearch,
                            )
                            .unwrap(),
                    )
                })
            },
        );
    }
    g.finish();
}

fn bench_execute_gamma(c: &mut Criterion) {
    let mut g = c.benchmark_group("framework/execute_gamma");
    g.sample_size(10);
    let m = 256usize;
    let n = 1024usize;
    let k = 128usize; // u32 words
    let a: Vec<u32> = (0..m * k).map(|i| i as u32).collect();
    let b: Vec<u32> = (0..n * k).map(|i| (i * 7) as u32).collect();
    g.throughput(Throughput::Elements((m * n * k) as u64));
    for op in CompareOp::ALL {
        g.bench_function(BenchmarkId::from_parameter(op), |bench| {
            let mut out = vec![0u32; m * n];
            bench.iter(|| {
                execute_gamma(op, black_box(&a), black_box(&b), &mut out, m, n, k);
                black_box(out[0])
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_full_runs,
    bench_timing_only,
    bench_execute_gamma
);
criterion_main!(benches);
