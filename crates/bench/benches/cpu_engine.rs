//! Criterion benches of the *real* BLIS-style CPU engine (`snp-cpu`) on the
//! host machine: the runnable counterpart of the paper's \[11\] baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use snp_bitmat::{CompareOp, CountMatrix, PackedPanels};
use snp_cpu::blocking::{MR, NR};
use snp_cpu::microkernel::{microkernel, microkernel_csa, microkernel_scalar, zero_tile};
use snp_cpu::parallel::gamma_parallel_into_scheduled;
use snp_cpu::{CpuBlocking, CpuEngine, ParallelSchedule};
use snp_popgen::random_dense;
use std::hint::black_box;

fn word_ops(m: usize, n: usize, bits: usize) -> u64 {
    (m * n * bits.div_ceil(64)) as u64
}

fn bench_microkernel(c: &mut Criterion) {
    let mut g = c.benchmark_group("cpu/microkernel");
    let k_bits = 64 * 512;
    let a = random_dense(MR, k_bits, 1);
    let b = random_dense(NR, k_bits, 2);
    let pa = PackedPanels::pack_all(&a, MR);
    let pb = PackedPanels::pack_all(&b, NR);
    g.throughput(Throughput::Elements((MR * NR * pa.k()) as u64));
    // The three-way popcount ablation on identical panels: one popcount per
    // word ("scalar"), the scalar Harley–Seal tree ("csa"), and the 4-lane
    // wide tree ("simd" — the production `microkernel` dispatch, which is
    // the wide path under the default `simd` feature).
    for op in CompareOp::ALL {
        g.bench_function(BenchmarkId::new("simd", op), |bench| {
            bench.iter(|| {
                let mut acc = zero_tile();
                microkernel(
                    op,
                    pa.k(),
                    black_box(pa.panel(0)),
                    black_box(pb.panel(0)),
                    &mut acc,
                );
                black_box(acc)
            })
        });
        g.bench_function(BenchmarkId::new("csa", op), |bench| {
            bench.iter(|| {
                let mut acc = zero_tile();
                microkernel_csa(
                    op,
                    pa.k(),
                    black_box(pa.panel(0)),
                    black_box(pb.panel(0)),
                    &mut acc,
                );
                black_box(acc)
            })
        });
        g.bench_function(BenchmarkId::new("scalar", op), |bench| {
            bench.iter(|| {
                let mut acc = zero_tile();
                microkernel_scalar(
                    op,
                    pa.k(),
                    black_box(pa.panel(0)),
                    black_box(pb.panel(0)),
                    &mut acc,
                );
                black_box(acc)
            })
        });
    }
    g.finish();
}

fn bench_schedules(c: &mut Criterion) {
    // Row-block vs column-strip scheduling on the shape each was built for.
    let mut g = c.benchmark_group("cpu/schedule");
    g.sample_size(10);
    let blocking = CpuBlocking::default_params();
    let cases = [
        (
            "fastid_32xwide",
            random_dense(32, 1024, 6),
            random_dense(8192, 1024, 7),
        ),
        (
            "ld_square",
            random_dense(512, 1024, 8),
            random_dense(512, 1024, 9),
        ),
    ];
    for (name, a, b) in &cases {
        g.throughput(Throughput::Elements(word_ops(a.rows(), b.rows(), 1024)));
        for schedule in [ParallelSchedule::RowBlocks, ParallelSchedule::ColumnStrips] {
            g.bench_function(BenchmarkId::new(*name, format!("{schedule:?}")), |bench| {
                bench.iter(|| {
                    let mut cmat = CountMatrix::zeros(a.rows(), b.rows());
                    gamma_parallel_into_scheduled(
                        black_box(a),
                        black_box(b),
                        CompareOp::Xor,
                        &blocking,
                        &mut cmat,
                        schedule,
                    );
                    black_box(cmat)
                })
            });
        }
    }
    g.finish();
    // Scheduling behavior is aggregated process-wide in the metrics registry
    // (cpu.parallel.*) instead of hand-plumbing `ParallelStats` out of every
    // call site.
    for (name, value) in snp_trace::registry().snapshot() {
        if name.starts_with("cpu.parallel.") {
            eprintln!("{name} = {value:?}");
        }
    }
}

fn bench_engine_square(c: &mut Criterion) {
    let mut g = c.benchmark_group("cpu/ld_square");
    g.sample_size(10);
    for snps in [256usize, 512, 1024] {
        let samples = 4096;
        let panel = random_dense(snps, samples, 3);
        g.throughput(Throughput::Elements(word_ops(snps, snps, samples)));
        g.bench_with_input(BenchmarkId::new("parallel", snps), &panel, |bench, p| {
            let e = CpuEngine::new();
            bench.iter(|| black_box(e.ld_self(black_box(p))))
        });
        g.bench_with_input(BenchmarkId::new("sequential", snps), &panel, |bench, p| {
            let e = CpuEngine::sequential();
            bench.iter(|| black_box(e.ld_self(black_box(p))))
        });
    }
    g.finish();
}

fn bench_engine_fastid_shape(c: &mut Criterion) {
    let mut g = c.benchmark_group("cpu/fastid_shape");
    g.sample_size(10);
    let queries = random_dense(32, 1024, 4);
    for profiles in [10_000usize, 40_000] {
        let db = random_dense(profiles, 1024, 5);
        g.throughput(Throughput::Elements(word_ops(32, profiles, 1024)));
        g.bench_with_input(BenchmarkId::from_parameter(profiles), &db, |bench, db| {
            let e = CpuEngine::new();
            bench.iter(|| black_box(e.identity_search(black_box(&queries), black_box(db))))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_microkernel,
    bench_schedules,
    bench_engine_square,
    bench_engine_fastid_shape
);
criterion_main!(benches);
