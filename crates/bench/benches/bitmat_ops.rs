//! Criterion benches of the bit-matrix substrate: packing, word-level dot
//! products, negation, and word-type conversion.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use snp_bitmat::{dot, BitMatrix, CompareOp, PackedPanels};
use snp_popgen::random_dense;
use std::hint::black_box;

fn bench_dot(c: &mut Criterion) {
    let mut g = c.benchmark_group("bitmat/dot");
    let bits = 64 * 4096;
    let a = random_dense(1, bits, 1);
    let b = random_dense(1, bits, 2);
    g.throughput(Throughput::Elements(a.words_per_row() as u64));
    for op in CompareOp::ALL {
        g.bench_function(BenchmarkId::from_parameter(op), |bench| {
            bench.iter(|| black_box(dot(op, black_box(a.row(0)), black_box(b.row(0)))))
        });
    }
    g.finish();
}

fn bench_pack(c: &mut Criterion) {
    let mut g = c.benchmark_group("bitmat/pack");
    let m = random_dense(512, 64 * 512, 3);
    g.throughput(Throughput::Bytes(m.payload_bytes() as u64));
    for panel_rows in [4usize, 8] {
        g.bench_with_input(
            BenchmarkId::from_parameter(panel_rows),
            &panel_rows,
            |bench, &pr| bench.iter(|| black_box(PackedPanels::pack_all(black_box(&m), pr))),
        );
    }
    g.finish();
}

fn bench_negate_and_convert(c: &mut Criterion) {
    let mut g = c.benchmark_group("bitmat/transform");
    let m = random_dense(1024, 8192, 4);
    g.throughput(Throughput::Bytes(m.payload_bytes() as u64));
    g.bench_function("negated", |bench| {
        bench.iter(|| black_box(black_box(&m).negated()))
    });
    g.bench_function("convert_u32", |bench| {
        bench.iter(|| black_box(black_box(&m).convert::<u32>()))
    });
    g.finish();
}

fn bench_construction(c: &mut Criterion) {
    let mut g = c.benchmark_group("bitmat/construct");
    g.bench_function("from_fn_256x4096", |bench| {
        bench.iter(|| {
            black_box(BitMatrix::<u64>::from_fn(256, 4096, |r, c| {
                (r + c) % 3 == 0
            }))
        })
    });
    g.bench_function("random_dense_256x4096", |bench| {
        bench.iter(|| black_box(random_dense(256, 4096, 5)))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_dot,
    bench_pack,
    bench_negate_and_convert,
    bench_construction
);
criterion_main!(benches);
