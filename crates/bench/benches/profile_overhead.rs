//! Ablation for the per-kernel profiler: collecting hardware-counter
//! profiles must cost nothing when off and only a per-launch clone when on.
//!
//! * `profile/off` — a timing-only engine run with `profile: false` (the
//!   default; launches still compute their counters internally, nothing is
//!   retained).
//! * `profile/on` — the identical run with `profile: true`: the host keeps
//!   a `KernelProfile` per launch and the report clones them out.
//! * `profile/cell_derivation` — the full `profile_cell` analysis of one
//!   algorithm × device cell: engine run + static counters + detailed-sim
//!   drift leg + roofline, i.e. the unit of work behind one `snpgpu
//!   profile` cell.

use criterion::{criterion_group, criterion_main, Criterion};
use snp_core::{profile_cell, Algorithm, EngineOptions, ExecMode, GpuEngine};
use snp_gpu_model::config::ProblemShape;
use snp_gpu_model::devices;
use std::hint::black_box;

fn engine(profile: bool) -> GpuEngine {
    GpuEngine::new(devices::titan_v()).with_options(EngineOptions {
        mode: ExecMode::TimingOnly,
        profile,
        ..Default::default()
    })
}

fn bench_profile(c: &mut Criterion) {
    let mut g = c.benchmark_group("profile");
    let shape = ProblemShape {
        m: 2048,
        n: 2048,
        k_words: 256,
    };
    g.bench_function("off", |bench| {
        let e = engine(false);
        bench.iter(|| {
            black_box(
                e.run_shape(black_box(shape), Algorithm::IdentitySearch)
                    .unwrap(),
            )
        })
    });
    g.bench_function("on", |bench| {
        let e = engine(true);
        bench.iter(|| {
            black_box(
                e.run_shape(black_box(shape), Algorithm::IdentitySearch)
                    .unwrap(),
            )
        })
    });
    g.bench_function("cell_derivation", |bench| {
        let dev = devices::titan_v();
        bench.iter(|| {
            black_box(profile_cell(&dev, Algorithm::IdentitySearch, black_box(shape)).unwrap())
        })
    });
    g.finish();
}

criterion_group!(benches, bench_profile);
criterion_main!(benches);
