//! Ablation for the fault-injection/recovery layer: an engine with no fault
//! plan armed must pay nothing for the machinery.
//!
//! Three measurements:
//! * `recovery/fault_free_baseline` — a timing-only engine run with no
//!   `FaultPlan` (the pre-PR fast path; the recovery code is never entered).
//! * `recovery/plan_armed_no_faults` — the identical run with a `FaultPlan`
//!   armed but carrying the `none` profile: the recovering path executes,
//!   draws per-command fault decisions, and checkpoints per chunk, yet no
//!   fault ever fires.
//! * `recovery/plan_armed_transient` — same run under the `transient`
//!   profile, i.e. what a chaos run actually pays for retries + backoff.

use criterion::{criterion_group, criterion_main, Criterion};
use snp_bitmat::BitMatrix;
use snp_core::{EngineOptions, ExecMode, FaultPlan, FaultProfile, GpuEngine};
use snp_gpu_model::devices;
use std::hint::black_box;

fn workload() -> (BitMatrix<u64>, BitMatrix<u64>) {
    let mk = |rows: usize, salt: usize| {
        BitMatrix::<u64>::from_fn(rows, 2048, |r, c| (r * 31 + c * 7 + salt).is_multiple_of(3))
    };
    (mk(64, 1), mk(2048, 2))
}

fn engine(plan: Option<FaultPlan>) -> GpuEngine {
    let e = GpuEngine::new(devices::titan_v()).with_options(EngineOptions {
        mode: ExecMode::TimingOnly,
        double_buffer: true,
        ..Default::default()
    });
    match plan {
        Some(p) => e.with_fault_plan(p),
        None => e,
    }
}

fn bench_recovery(c: &mut Criterion) {
    let mut g = c.benchmark_group("recovery");
    let (a, b) = workload();
    g.bench_function("fault_free_baseline", |bench| {
        let e = engine(None);
        bench.iter(|| black_box(e.identity_search(black_box(&a), black_box(&b)).unwrap()))
    });
    g.bench_function("plan_armed_no_faults", |bench| {
        let e = engine(Some(FaultPlan::new(42, FaultProfile::none())));
        bench.iter(|| black_box(e.identity_search(black_box(&a), black_box(&b)).unwrap()))
    });
    g.bench_function("plan_armed_transient", |bench| {
        let e = engine(Some(FaultPlan::new(
            42,
            FaultProfile::by_name("transient").unwrap(),
        )));
        bench.iter(|| black_box(e.identity_search(black_box(&a), black_box(&b)).unwrap()))
    });
    g.finish();
}

criterion_group!(benches, bench_recovery);
criterion_main!(benches);
