//! Criterion benches of the simulator itself: how fast the detailed engine
//! retires simulated instructions, how cheap macro-engine estimation and
//! host-API command processing are. These bound the cost of running the
//! paper's experiments at scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use snp_bitmat::CompareOp;
use snp_core::{config_for, tile_program, Algorithm, KernelPlan};
use snp_gpu_model::config::ProblemShape;
use snp_gpu_model::{devices, InstrClass};
use snp_gpu_sim::host::{Gpu, KernelCost};
use snp_gpu_sim::macro_engine::{estimate_core_cycles, estimate_core_cycles_memo, Traffic};
use snp_gpu_sim::{simulate_core, Program};
use std::hint::black_box;

fn bench_detailed_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim/detailed");
    let dev = devices::gtx_980();
    for groups in [1u32, 24] {
        let prog = Program::dependent_chain(InstrClass::Popc, 32, 256);
        let total = prog.dynamic_instrs() * groups as u64;
        g.throughput(Throughput::Elements(total));
        g.bench_with_input(BenchmarkId::new("chain", groups), &prog, |bench, p| {
            bench.iter(|| black_box(simulate_core(&dev, black_box(p), groups, u64::MAX).unwrap()))
        });
    }
    g.finish();
}

fn bench_macro_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim/macro");
    let dev = devices::titan_v();
    let cfg = config_for(
        &dev,
        Algorithm::LinkageDisequilibrium,
        ProblemShape {
            m: 10_000,
            n: 10_000,
            k_words: 400,
        },
    );
    let prog = tile_program(&dev, &cfg, CompareOp::And, 400);
    g.bench_function("estimate_core_cycles", |bench| {
        bench.iter(|| black_box(estimate_core_cycles(&dev, black_box(&prog), 16)))
    });
    // Warm-cache memoized estimate (every iteration after the first hits);
    // compare against the unmemoized line above.
    g.bench_function("estimate_core_cycles_memo", |bench| {
        bench.iter(|| black_box(estimate_core_cycles_memo(&dev, black_box(&prog), 16)))
    });
    // KernelPlan::new is memoized internally: after the first plan for a
    // (device, config, op, k) tuple, tile-program construction and the
    // analytic estimate are both skipped.
    g.bench_function("kernel_plan", |bench| {
        bench.iter(|| {
            black_box(KernelPlan::new(
                &dev,
                &cfg,
                CompareOp::And,
                10_000,
                10_000,
                400,
            ))
        })
    });
    g.finish();
}

fn bench_host_api(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim/host");
    g.bench_function("queue_kernel_roundtrip", |bench| {
        let gpu = Gpu::new(devices::gtx_980());
        let q = gpu.create_queue();
        let buf = gpu.create_buffer(1024).unwrap();
        let cost = KernelCost::Analytic {
            core_cycles: 1000.0,
            active_cores: 16,
            traffic: Traffic::default(),
        };
        bench.iter(|| {
            let ev = gpu
                .enqueue_kernel(q, &cost, &[], buf, &[], |_, out| {
                    out[0] = out[0].wrapping_add(1)
                })
                .unwrap();
            black_box(gpu.event_profile(ev).unwrap())
        })
    });
    g.bench_function("virtual_transfer", |bench| {
        let gpu = Gpu::new(devices::titan_v());
        let q = gpu.create_queue();
        bench.iter(|| black_box(gpu.enqueue_virtual_transfer(q, 1 << 20, &[]).unwrap()))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_detailed_engine,
    bench_macro_engine,
    bench_host_api
);
criterion_main!(benches);
