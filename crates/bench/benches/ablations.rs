//! Criterion ablations over *real host compute* for the design choices
//! DESIGN.md §5 calls out: pre-negation vs direct AND-NOT on the CPU
//! engine, and sparse vs dense comparison across densities (the paper's
//! §VII future work). Modeled (simulator-time) ablations live in the
//! `ablation_report` binary, since Criterion measures wall time, not
//! virtual time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use snp_bitmat::{reference_gamma, CompareOp};
use snp_cpu::CpuEngine;
use snp_popgen::generate_independent;
use snp_sparse::{sparse_gamma, SparseBitMatrix};
use std::hint::black_box;

fn bench_prenegate(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/prenegate_cpu");
    g.sample_size(10);
    let refs = generate_independent(128, 8192, 0.3, 1);
    let mixes = generate_independent(128, 8192, 0.4, 2);
    let e = CpuEngine::new();
    g.bench_function("direct_andnot", |bench| {
        bench.iter(|| black_box(e.mixture_analysis(black_box(&refs), black_box(&mixes), false)))
    });
    g.bench_function("pre_negated", |bench| {
        bench.iter(|| black_box(e.mixture_analysis(black_box(&refs), black_box(&mixes), true)))
    });
    g.finish();
}

fn bench_sparse_crossover(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/sparse_vs_dense");
    g.sample_size(10);
    let (rows, cols) = (96usize, 16_384usize);
    for density_pct in [1u32, 5, 20] {
        let maf = density_pct as f64 / 100.0;
        let a = generate_independent(rows, cols, maf, 3);
        let b = generate_independent(rows, cols, maf, 4);
        let sa = SparseBitMatrix::from_dense(&a);
        let sb = SparseBitMatrix::from_dense(&b);
        g.throughput(Throughput::Elements((rows * rows) as u64));
        g.bench_with_input(BenchmarkId::new("dense", density_pct), &(), |bench, _| {
            bench.iter(|| {
                black_box(reference_gamma(
                    black_box(&a),
                    black_box(&b),
                    CompareOp::And,
                ))
            })
        });
        g.bench_with_input(BenchmarkId::new("sparse", density_pct), &(), |bench, _| {
            bench.iter(|| black_box(sparse_gamma(CompareOp::And, black_box(&sa), black_box(&sb))))
        });
    }
    g.finish();
}

fn bench_blocking_ablation(c: &mut Criterion) {
    // How much the blocked loop nest buys over the naive reference on the
    // real host: the entire point of carrying the BLIS structure over.
    let mut g = c.benchmark_group("ablation/blocked_vs_naive_cpu");
    g.sample_size(10);
    let a = generate_independent(384, 8192, 0.3, 5);
    g.bench_function("naive_reference", |bench| {
        bench.iter(|| {
            black_box(reference_gamma(
                black_box(&a),
                black_box(&a),
                CompareOp::And,
            ))
        })
    });
    g.bench_function("blis_sequential", |bench| {
        let e = CpuEngine::sequential();
        bench.iter(|| black_box(e.ld_self(black_box(&a))))
    });
    g.bench_function("blis_parallel", |bench| {
        let e = CpuEngine::new();
        bench.iter(|| black_box(e.ld_self(black_box(&a))))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_prenegate,
    bench_sparse_crossover,
    bench_blocking_ablation
);
criterion_main!(benches);
