//! Ablation for the tracing layer: the disabled collector must be free.
//!
//! Three measurements:
//! * `trace/engine_off` — a full timing-only engine run with the default
//!   disabled tracer (the PR-1 configuration; every recording call is a
//!   branch-and-return no-op).
//! * `trace/engine_on` — the identical run with an enabled collector, i.e.
//!   what `snpgpu trace` pays for a timeline.
//! * `trace/disabled_span_call` — the raw cost of one disabled span
//!   recording call, the per-command overhead added to the simulator.

use criterion::{criterion_group, criterion_main, Criterion};
use snp_bitmat::BitMatrix;
use snp_core::{EngineOptions, ExecMode, GpuEngine};
use snp_gpu_model::devices;
use snp_trace::{TimeDomain, Tracer};
use std::hint::black_box;

fn workload() -> (BitMatrix<u64>, BitMatrix<u64>) {
    let mk = |rows: usize, salt: usize| {
        BitMatrix::<u64>::from_fn(rows, 2048, |r, c| (r * 31 + c * 7 + salt).is_multiple_of(3))
    };
    (mk(64, 1), mk(2048, 2))
}

fn engine(tracer: Option<Tracer>) -> GpuEngine {
    let e = GpuEngine::new(devices::titan_v()).with_options(EngineOptions {
        mode: ExecMode::TimingOnly,
        double_buffer: true,
        ..Default::default()
    });
    match tracer {
        Some(t) => e.with_tracer(t),
        None => e,
    }
}

fn bench_tracing(c: &mut Criterion) {
    let mut g = c.benchmark_group("trace");
    let (a, b) = workload();
    g.bench_function("engine_off", |bench| {
        let e = engine(None);
        bench.iter(|| black_box(e.identity_search(black_box(&a), black_box(&b)).unwrap()))
    });
    g.bench_function("engine_on", |bench| {
        // A fresh collector per engine keeps the event buffer from growing
        // across iterations; snapshotting is part of what tracing costs.
        bench.iter(|| {
            let t = Tracer::enabled();
            let e = engine(Some(t.clone()));
            black_box(e.identity_search(black_box(&a), black_box(&b)).unwrap());
            black_box(t.snapshot())
        })
    });
    g.bench_function("disabled_span_call", |bench| {
        let t = Tracer::disabled();
        let track = t.track("x", TimeDomain::Virtual);
        bench.iter(|| t.span(black_box(track), "kernel", "k", black_box(1), black_box(2)))
    });
    g.finish();
}

criterion_group!(benches, bench_tracing);
criterion_main!(benches);
