//! Dense-vs-sparse cost model and density crossover.
//!
//! Per output element, the dense kernel spends one word-op per packed word
//! (`k_bits / w` word-ops regardless of content), while the sparse merge
//! visits every stored index of both rows (`≈ 2·d·k_bits` comparisons at
//! density `d`). Equating the two predicts a crossover density of roughly
//! `w⁻¹ · (cost ratio)` — below it, sparse wins; above it, dense does. The
//! `ablation_sparse` bench measures the empirical crossover on the host.

/// Cost-model constants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Bits per dense word (64 on the CPU engine).
    pub word_bits: u32,
    /// Relative cost of one sparse merge step vs one dense word-op
    /// (branchy merges are several times slower than AND+POPCNT).
    pub merge_step_cost: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            word_bits: 64,
            merge_step_cost: 4.0,
        }
    }
}

/// Dense cost of one output element, in word-op units, for `k_bits` sites.
pub fn dense_cost_words(k_bits: usize, word_bits: u32) -> f64 {
    k_bits.div_ceil(word_bits as usize) as f64
}

/// Sparse cost of one output element at density `d`, in word-op units.
pub fn sparse_cost_entries(k_bits: usize, density: f64, model: &CostModel) -> f64 {
    2.0 * density * k_bits as f64 * model.merge_step_cost
}

/// The density below which the sparse representation is predicted cheaper.
pub fn crossover_density(model: &CostModel) -> f64 {
    // dense = k/w; sparse = 2·d·k·c  =>  d* = 1 / (2·c·w)
    1.0 / (2.0 * model.merge_step_cost * model.word_bits as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_cost_rounds_words_up() {
        assert_eq!(dense_cost_words(64, 64), 1.0);
        assert_eq!(dense_cost_words(65, 64), 2.0);
        assert_eq!(dense_cost_words(1024, 32), 32.0);
    }

    #[test]
    fn crossover_is_consistent() {
        let m = CostModel::default();
        let d = crossover_density(&m);
        let k = 64 * 100;
        let dense = dense_cost_words(k, m.word_bits);
        let sparse_at = sparse_cost_entries(k, d, &m);
        assert!(
            (dense - sparse_at).abs() / dense < 1e-9,
            "costs equal at the crossover"
        );
        assert!(sparse_cost_entries(k, d / 2.0, &m) < dense);
        assert!(sparse_cost_entries(k, d * 2.0, &m) > dense);
    }

    #[test]
    fn default_crossover_is_rare_allele_regime() {
        // 1/(2·4·64) ≈ 0.002: sparse pays off only for very rare minor
        // alleles — consistent with the paper listing it as future work
        // rather than the default representation.
        let d = crossover_density(&CostModel::default());
        assert!(d > 0.0005 && d < 0.01, "got {d}");
    }
}
