//! Coordinate-format sparse SNP matrices.

use snp_bitmat::{BitMatrix, Word};

/// A sparse binary matrix: per row, the sorted positions of set bits
/// (minor-allele sites).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SparseBitMatrix {
    rows: Vec<Vec<u32>>,
    cols: usize,
}

impl SparseBitMatrix {
    /// Builds from explicit index lists; each list is sorted and deduplicated.
    pub fn from_indices(mut rows: Vec<Vec<u32>>, cols: usize) -> Self {
        for (i, r) in rows.iter_mut().enumerate() {
            r.sort_unstable();
            r.dedup();
            if let Some(&last) = r.last() {
                assert!(
                    (last as usize) < cols,
                    "row {i}: index {last} out of {cols} columns"
                );
            }
        }
        SparseBitMatrix { rows, cols }
    }

    /// Converts a packed dense matrix to sparse form.
    pub fn from_dense<W: Word>(m: &BitMatrix<W>) -> Self {
        let mut rows = Vec::with_capacity(m.rows());
        for r in 0..m.rows() {
            let mut idx = Vec::new();
            for (w, &word) in m.row(r).iter().enumerate() {
                let mut bits = word.to_u64();
                // u64 conversion holds all bits for W in {u8,...,u64}.
                while bits != 0 {
                    let b = bits.trailing_zeros();
                    idx.push((w * W::BITS as usize) as u32 + b);
                    bits &= bits - 1;
                }
            }
            rows.push(idx);
        }
        SparseBitMatrix {
            rows,
            cols: m.cols(),
        }
    }

    /// Converts back to a packed dense matrix.
    pub fn to_dense(&self) -> BitMatrix<u64> {
        let mut m = BitMatrix::zeros(self.rows.len(), self.cols);
        for (r, idx) in self.rows.iter().enumerate() {
            for &c in idx {
                m.set(r, c as usize, true);
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows.len()
    }

    /// Number of logical bit columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The sorted set-bit positions of row `r`.
    pub fn row(&self, r: usize) -> &[u32] {
        &self.rows[r]
    }

    /// Total stored entries (set bits).
    pub fn nnz(&self) -> usize {
        self.rows.iter().map(Vec::len).sum()
    }

    /// Fraction of bits set.
    pub fn density(&self) -> f64 {
        let total = self.rows.len() * self.cols;
        if total == 0 {
            0.0
        } else {
            self.nnz() as f64 / total as f64
        }
    }

    /// Bytes of index storage (4 bytes per entry) — the transfer payload a
    /// sparse device pipeline would move.
    pub fn payload_bytes(&self) -> usize {
        self.nnz() * 4 + self.rows.len() * 8 // entries + per-row offsets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense_sample() -> BitMatrix<u64> {
        BitMatrix::from_fn(6, 200, |r, c| (r * 17 + c * 5) % 13 == 0)
    }

    #[test]
    fn dense_roundtrip() {
        let d = dense_sample();
        let s = SparseBitMatrix::from_dense(&d);
        assert_eq!(s.rows(), 6);
        assert_eq!(s.cols(), 200);
        assert_eq!(s.to_dense(), d);
        assert_eq!(s.nnz() as u64, d.count_ones());
        assert!((s.density() - d.density()).abs() < 1e-12);
    }

    #[test]
    fn rows_are_sorted_and_unique() {
        let s = SparseBitMatrix::from_indices(vec![vec![5, 1, 5, 3]], 10);
        assert_eq!(s.row(0), &[1, 3, 5]);
        assert_eq!(s.nnz(), 3);
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn out_of_range_index_rejected() {
        let _ = SparseBitMatrix::from_indices(vec![vec![10]], 10);
    }

    #[test]
    fn empty_matrix() {
        let s = SparseBitMatrix::from_indices(vec![], 0);
        assert_eq!(s.rows(), 0);
        assert_eq!(s.density(), 0.0);
        assert_eq!(s.payload_bytes(), 0);
    }

    #[test]
    fn payload_counts_entries_and_offsets() {
        let s = SparseBitMatrix::from_indices(vec![vec![1, 2], vec![3]], 10);
        assert_eq!(s.payload_bytes(), 3 * 4 + 2 * 8);
    }
}
