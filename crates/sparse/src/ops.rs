//! Sparse comparison kernels.
//!
//! Each pairwise count reduces to a sorted-list intersection size plus the
//! row cardinalities (the inclusion–exclusion identities tested in
//! `snp-bitmat`):
//!
//! * AND: `|a ∩ b|`
//! * XOR: `|a| + |b| − 2|a ∩ b|`
//! * AND-NOT: `|a| − |a ∩ b|`

use snp_bitmat::{CompareOp, CountMatrix};

use crate::matrix::SparseBitMatrix;

/// Size of the intersection of two sorted index lists (two-pointer merge).
#[inline]
pub fn intersection_size(a: &[u32], b: &[u32]) -> usize {
    let (mut i, mut j, mut n) = (0usize, 0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

/// The comparison count for one sparse row pair under `op`.
#[inline]
pub fn sparse_row_count(op: CompareOp, a: &[u32], b: &[u32]) -> u32 {
    let inter = intersection_size(a, b) as u32;
    match op {
        CompareOp::And => inter,
        CompareOp::Xor => a.len() as u32 + b.len() as u32 - 2 * inter,
        CompareOp::AndNot => a.len() as u32 - inter,
    }
}

/// Full sparse `γ` computation: `γ[i][j] = count(op, a.row(i), b.row(j))`.
/// Operands must share the column count (the comparison is over the same
/// SNP panel).
pub fn sparse_gamma(op: CompareOp, a: &SparseBitMatrix, b: &SparseBitMatrix) -> CountMatrix {
    assert_eq!(
        a.cols(),
        b.cols(),
        "operands must cover the same sites: {} vs {}",
        a.cols(),
        b.cols()
    );
    let mut c = CountMatrix::zeros(a.rows(), b.rows());
    for i in 0..a.rows() {
        let ra = a.row(i);
        let row = c.row_mut(i);
        for (j, out) in row.iter_mut().enumerate() {
            *out = sparse_row_count(op, ra, b.row(j));
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use snp_bitmat::{reference_gamma, BitMatrix};

    fn pair(density_mod: usize) -> (BitMatrix<u64>, BitMatrix<u64>) {
        let a = BitMatrix::from_fn(9, 300, move |r, c| (r * 7 + c * 3) % density_mod == 0);
        let b = BitMatrix::from_fn(7, 300, move |r, c| (r * 11 + c) % density_mod == 1);
        (a, b)
    }

    #[test]
    fn intersection_basics() {
        assert_eq!(intersection_size(&[1, 3, 5], &[3, 5, 7]), 2);
        assert_eq!(intersection_size(&[], &[1]), 0);
        assert_eq!(intersection_size(&[2, 4], &[1, 3]), 0);
        assert_eq!(intersection_size(&[1, 2, 3], &[1, 2, 3]), 3);
    }

    #[test]
    fn sparse_gamma_matches_dense_reference() {
        for density_mod in [3, 10, 50] {
            let (a, b) = pair(density_mod);
            let sa = SparseBitMatrix::from_dense(&a);
            let sb = SparseBitMatrix::from_dense(&b);
            for op in CompareOp::ALL {
                let sparse = sparse_gamma(op, &sa, &sb);
                let dense = reference_gamma(&a, &b, op);
                assert_eq!(
                    sparse.first_mismatch(&dense),
                    None,
                    "op {op} mod {density_mod}"
                );
            }
        }
    }

    #[test]
    fn empty_rows_behave() {
        let sa = SparseBitMatrix::from_indices(vec![vec![], vec![1, 2]], 8);
        let sb = SparseBitMatrix::from_indices(vec![vec![2, 3]], 8);
        let and = sparse_gamma(CompareOp::And, &sa, &sb);
        assert_eq!(and.get(0, 0), 0);
        assert_eq!(and.get(1, 0), 1);
        let xor = sparse_gamma(CompareOp::Xor, &sa, &sb);
        assert_eq!(xor.get(0, 0), 2);
        assert_eq!(xor.get(1, 0), 2);
    }

    #[test]
    #[should_panic(expected = "same sites")]
    fn column_mismatch_panics() {
        let sa = SparseBitMatrix::from_indices(vec![vec![]], 8);
        let sb = SparseBitMatrix::from_indices(vec![vec![]], 9);
        let _ = sparse_gamma(CompareOp::And, &sa, &sb);
    }
}
