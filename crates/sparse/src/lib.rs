//! # snp-sparse — sparse SNP representations (the paper's future work)
//!
//! "This approach represents SNP strings as dense bitvectors, but a typical
//! DNA sample is expected to contain mostly major alleles. This suggests
//! that sparse representations of the SNP strings may be beneficial."
//! (paper §VII.)
//!
//! This crate implements that extension: a coordinate (index-list) matrix,
//! exact sparse comparison kernels for all three operators, and a cost model
//! locating the density crossover against the dense popcount-GEMM. The
//! `ablation_sparse` bench regenerates the crossover empirically.

#![warn(missing_docs)]

pub mod cost;
pub mod matrix;
pub mod ops;

pub use cost::{crossover_density, dense_cost_words, sparse_cost_entries, CostModel};
pub use matrix::SparseBitMatrix;
pub use ops::{sparse_gamma, sparse_row_count};
