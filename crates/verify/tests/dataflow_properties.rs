//! Property tests for the dataflow/abstract-interpretation layer: on random
//! programs the static analyses must agree with a brute-force fully-unrolled
//! interpreter oracle, and the V113 critical path must never exceed what the
//! detailed engine actually measures for a single-group launch.

use std::collections::BTreeSet;

use proptest::prelude::*;
use snp_gpu_model::{devices, InstrClass};
use snp_gpu_sim::isa::{Block, Instr, Program, Reg};
use snp_gpu_sim::simulate_core;
use snp_verify::critpath::{critical_path, supports_program};
use snp_verify::dataflow::{reach, Dataflow, ReachingDef};

const N_REGS: u64 = 10;

/// Deterministic split-free LCG so a single proptest-drawn seed yields a
/// whole random program.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }

    fn reg(&mut self) -> Reg {
        self.below(N_REGS) as Reg
    }

    fn regs(&mut self, max: u64) -> Vec<Reg> {
        (0..self.below(max + 1)).map(|_| self.reg()).collect()
    }
}

/// A random program: 1–4 blocks (zero-trip and empty ones included), each a
/// looped straight-line body over a 10-register file.
fn random_program(seed: u64, allow_mma: bool) -> Program {
    let mut rng = Lcg(seed);
    let n_blocks = 1 + rng.below(4) as usize;
    let mut blocks = Vec::new();
    for _ in 0..n_blocks {
        let trips = rng.below(8) as u32;
        let n_instrs = rng.below(7) as usize;
        let mut instrs = Vec::new();
        for _ in 0..n_instrs {
            let palette = if allow_mma { 10 } else { 9 };
            let instr = match rng.below(palette) {
                0 => Instr::arith(InstrClass::IntAdd, rng.reg(), &{
                    let mut s = rng.regs(1);
                    s.push(rng.reg());
                    s
                }),
                1 => Instr::arith(InstrClass::Logic, rng.reg(), &[rng.reg(), rng.reg()]),
                2 => Instr::arith(InstrClass::Not, rng.reg(), &[rng.reg()]),
                3 => Instr::arith(InstrClass::Popc, rng.reg(), &[rng.reg()]),
                4 => Instr::arith(InstrClass::Scalar, rng.reg(), &[rng.reg()]),
                5 => Instr::load_global(rng.reg(), &rng.regs(1)),
                6 => Instr::load_shared(rng.reg(), &rng.regs(1), 1 + rng.below(4) as u32),
                7 => Instr::store_global(&{
                    let mut s = rng.regs(1);
                    s.push(rng.reg());
                    s
                }),
                8 => Instr::store_shared(&[rng.reg()], 1 + rng.below(4) as u32),
                _ => Instr::arith(
                    InstrClass::Mma,
                    rng.reg(),
                    &[rng.reg(), rng.reg(), rng.reg()],
                ),
            };
            instrs.push(instr);
        }
        blocks.push(Block::looped(trips, instrs));
    }
    Program::new(blocks)
}

/// Oracle: static sites whose *first* dynamic execution reads a register no
/// instruction has written yet (the implicit zero), from a full unrolled
/// walk.
fn oracle_implicit_reads(prog: &Program) -> BTreeSet<(usize, usize, Reg)> {
    let mut written = vec![false; prog.reg_count()];
    let mut out = BTreeSet::new();
    for (bi, block) in prog.blocks.iter().enumerate() {
        if !block.executes() {
            continue;
        }
        for trip in 0..block.trips {
            for (ii, instr) in block.instrs.iter().enumerate() {
                for &s in &instr.srcs {
                    if trip == 0 && !written[s as usize] {
                        out.insert((bi, ii, s));
                    }
                }
                if let Some(d) = instr.dst {
                    written[d as usize] = true;
                }
            }
        }
    }
    out
}

/// Oracle: registers live on entry to `start_block` — those whose first
/// dynamic access at or after that point is a read.
fn oracle_live_in(prog: &Program, start_block: usize) -> Vec<Reg> {
    let mut first: Vec<Option<bool>> = vec![None; prog.reg_count()];
    for bi in start_block..prog.blocks.len() {
        let block = &prog.blocks[bi];
        if !block.executes() {
            continue;
        }
        for _ in 0..block.trips {
            for instr in &block.instrs {
                for &s in &instr.srcs {
                    first[s as usize].get_or_insert(true);
                }
                if let Some(d) = instr.dst {
                    first[d as usize].get_or_insert(false);
                }
            }
        }
    }
    first
        .iter()
        .enumerate()
        .filter(|&(_, f)| *f == Some(true))
        .map(|(r, _)| r as Reg)
        .collect()
}

/// A read site: `(block, instr, src position, register)`.
type ReadSite = (usize, usize, usize, Reg);

/// Oracle: the reaching definition observed by each read at its trip-0 and
/// trip-1 dynamic instances, as `(site, first_trip) -> ReachingDef`.
fn oracle_reaching(prog: &Program) -> Vec<(ReadSite, bool, ReachingDef)> {
    let mut last_def: Vec<Option<(usize, usize, u32)>> = vec![None; prog.reg_count()];
    let mut out = Vec::new();
    for (bi, block) in prog.blocks.iter().enumerate() {
        if !block.executes() {
            continue;
        }
        for trip in 0..block.trips {
            for (ii, instr) in block.instrs.iter().enumerate() {
                if trip <= 1 {
                    for (si, &s) in instr.srcs.iter().enumerate() {
                        let rd = match last_def[s as usize] {
                            None => ReachingDef::ImplicitZero,
                            Some((db, dj, dt)) if db == bi && dt == trip => {
                                ReachingDef::SameTrip(snp_verify::dataflow::DefSite {
                                    block: db,
                                    instr: dj,
                                })
                            }
                            Some((db, dj, _)) if db == bi => {
                                ReachingDef::LoopCarried(snp_verify::dataflow::DefSite {
                                    block: db,
                                    instr: dj,
                                })
                            }
                            Some((db, dj, _)) => {
                                ReachingDef::PriorBlock(snp_verify::dataflow::DefSite {
                                    block: db,
                                    instr: dj,
                                })
                            }
                        };
                        out.push(((bi, ii, si, s), trip == 0, rd));
                    }
                }
                if let Some(d) = instr.dst {
                    last_def[d as usize] = Some((bi, ii, trip));
                }
            }
        }
    }
    out
}

/// Oracle: static write sites none of whose dynamic value instances are
/// ever read before being overwritten or program end.
fn oracle_dead_writes(prog: &Program) -> BTreeSet<(usize, usize)> {
    // value id -> (site, was_read); register -> current value id.
    let mut site_read: Vec<((usize, usize), bool)> = Vec::new();
    let mut holder: Vec<Option<usize>> = vec![None; prog.reg_count()];
    for (bi, block) in prog.blocks.iter().enumerate() {
        if !block.executes() {
            continue;
        }
        for _ in 0..block.trips {
            for (ii, instr) in block.instrs.iter().enumerate() {
                for &s in &instr.srcs {
                    if let Some(id) = holder[s as usize] {
                        site_read[id].1 = true;
                    }
                }
                if let Some(d) = instr.dst {
                    site_read.push(((bi, ii), false));
                    holder[d as usize] = Some(site_read.len() - 1);
                }
            }
        }
    }
    let mut dead: BTreeSet<(usize, usize)> = site_read.iter().map(|&(s, _)| s).collect();
    for &(site, read) in &site_read {
        if read {
            dead.remove(&site);
        }
    }
    dead
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// First-trip implicit-zero reads match the unrolled interpreter
    /// exactly (every classified kind included — V101's never-written
    /// registers are a kind, not an omission).
    #[test]
    fn implicit_reads_agree_with_unrolled_oracle(seed in any::<u64>()) {
        let prog = random_program(seed, true);
        let df = Dataflow::analyze(&prog);
        let got: BTreeSet<(usize, usize, Reg)> =
            df.implicit_reads.iter().map(|r| (r.block, r.instr, r.reg)).collect();
        prop_assert_eq!(got, oracle_implicit_reads(&prog));
    }

    /// Block-entry liveness matches the unrolled interpreter on every
    /// executing block.
    #[test]
    fn liveness_agrees_with_unrolled_oracle(seed in any::<u64>()) {
        let prog = random_program(seed, true);
        let df = Dataflow::analyze(&prog);
        for (bi, block) in prog.blocks.iter().enumerate() {
            if !block.executes() {
                continue;
            }
            prop_assert_eq!(
                df.live_in(bi),
                oracle_live_in(&prog, bi).as_slice(),
                "block {}", bi
            );
        }
        prop_assert!(df.pressure.max_live <= prog.reg_count());
    }

    /// Trip-sensitive reaching definitions match the unrolled interpreter
    /// at both the first-trip and steady-state instances of every read.
    #[test]
    fn reaching_defs_agree_with_unrolled_oracle(seed in any::<u64>()) {
        let prog = random_program(seed, true);
        for ((bi, ii, _si, reg), first, expect) in oracle_reaching(&prog) {
            prop_assert_eq!(
                reach(&prog, bi, ii, reg, first),
                expect,
                "block {} instr {} r{} first_trip={}", bi, ii, reg, first
            );
        }
    }

    /// Dead-write detection is sound: every reported site is dead in the
    /// unrolled trace (the union-of-continuations semantics may keep some
    /// truly-dead writes alive, but must never flag a live one).
    #[test]
    fn dead_writes_are_sound(seed in any::<u64>()) {
        let prog = random_program(seed, true);
        let df = Dataflow::analyze(&prog);
        let oracle = oracle_dead_writes(&prog);
        for dw in &df.dead_writes {
            prop_assert!(
                oracle.contains(&(dw.block, dw.instr)),
                "block {} instr {} r{} flagged dead but is read", dw.block, dw.instr, dw.reg
            );
        }
    }

    /// V113's static bound is a true lower bound: it never exceeds the
    /// detailed engine's measured cycles for a single-group launch, on any
    /// modeled GPU that supports the program.
    #[test]
    fn critical_path_never_exceeds_detailed_cycles(seed in any::<u64>()) {
        let prog = random_program(seed, true);
        for dev in devices::all_gpus() {
            if !supports_program(&dev, &prog) {
                continue;
            }
            let cp = critical_path(&dev, &prog);
            let det = simulate_core(&dev, &prog, 1, 10_000_000).unwrap();
            prop_assert!(
                cp.lower_bound_cycles() <= det.cycles,
                "{}: bound {} > measured {}", dev.name, cp.lower_bound_cycles(), det.cycles
            );
        }
    }
}
