//! Static lints over a kernel plan: the ISA program, the §V-A software
//! parameters, and the declared analytic cost, checked against a device's
//! hard limits and its Eq. 4–7 peak model.

use crate::diag::{Diagnostic, Report, Severity};
use snp_gpu_model::peak::{effective_peak, peak};
use snp_gpu_model::{DeviceSpec, InstrClass, KernelConfig, WordOpKind};
use snp_gpu_sim::isa::Program;

/// Everything the linter needs to know about one planned kernel launch.
///
/// Built by the engine from its `KernelPlan`; keeping this struct flat lets
/// `snp-verify` depend only on the model and simulator crates.
#[derive(Debug, Clone)]
pub struct PlanFacts {
    /// The per-thread-group ISA program.
    pub program: Program,
    /// Resident thread groups per compute core.
    pub groups_per_core: u32,
    /// Declared analytic cost of the launch, in core cycles.
    pub core_cycles: f64,
    /// Compute cores the launch keeps busy.
    pub active_cores: u32,
    /// Total packed word operations the launch performs.
    pub word_ops: f64,
    /// The packed comparison operator (selects the Eq. 4–7 peak).
    pub op_kind: WordOpKind,
    /// Whether the plan lowers its inner product onto the device's 1-bit
    /// matrix unit (prices the cost check against the matrix-unit peak and
    /// arms the fragment-shape rules).
    pub uses_matrix_unit: bool,
}

/// Lints one planned kernel against `dev`'s limits and peak model.
pub fn lint_kernel(dev: &DeviceSpec, cfg: &KernelConfig, facts: &PlanFacts) -> Report {
    let mut report = Report::default();
    let prog = &facts.program;

    // V101: registers read somewhere but never defined anywhere. Loop-
    // carried registers (accumulators, induction values) legitimately read
    // their own previous value, so only never-written registers are flagged.
    // Bitsets keyed by register index keep this linear in program size
    // (`reg_count` bounds every index), and iterating the bitset in order
    // keeps the diagnostics sorted by register.
    let mut read = vec![false; prog.reg_count()];
    let mut written = vec![false; prog.reg_count()];
    for block in &prog.blocks {
        for instr in &block.instrs {
            for &s in &instr.srcs {
                read[s as usize] = true;
            }
            if let Some(d) = instr.dst {
                written[d as usize] = true;
            }
        }
    }
    for (r, (&rd, &wr)) in read.iter().zip(&written).enumerate() {
        if rd && !wr {
            report.diagnostics.push(Diagnostic::new(
                "V101-UNDEFINED-REG",
                Severity::Error,
                format!("register r{r} is read but never written by any instruction"),
            ));
        }
    }

    // V102: register count vs the architectural per-thread maximum. The
    // count is max index + 1 — comparing the raw index admits one register
    // too many (the bug class the `reg_count` accessor exists to prevent).
    let regs = prog.reg_count();
    if regs > dev.max_regs_per_thread as usize {
        report.diagnostics.push(Diagnostic::new(
            "V102-REG-PRESSURE",
            Severity::Error,
            format!(
                "program needs {regs} registers per thread; {} allows at most {}",
                dev.name, dev.max_regs_per_thread,
            ),
        ));
    }

    // V103: the shared-memory A block must fit the per-core capacity.
    let shared = cfg.shared_bytes_used();
    if shared > dev.usable_shared_bytes() as usize {
        report.diagnostics.push(Diagnostic::new(
            "V103-SHARED-MEM",
            Severity::Error,
            format!(
                "plan stages {shared} B of shared memory; {} has {} B usable",
                dev.name,
                dev.usable_shared_bytes(),
            ),
        ));
    }

    // V104: a shared access cannot serialize over more ways than the
    // device has banks (N_b).
    for (bi, block) in prog.blocks.iter().enumerate() {
        for (ii, instr) in block.instrs.iter().enumerate() {
            if instr.class.is_memory() && instr.conflict_ways > dev.shared_banks {
                report.diagnostics.push(Diagnostic::new(
                    "V104-CONFLICT-WAYS",
                    Severity::Error,
                    format!(
                        "block {bi} instr {ii}: {} conflict ways exceed the {}-bank \
                         shared memory of {}",
                        instr.conflict_ways, dev.shared_banks, dev.name,
                    ),
                ));
            }
        }
    }

    // V105: zero-trip or empty blocks execute nothing — almost always a
    // mis-derived blocking factor.
    for (bi, block) in prog.blocks.iter().enumerate() {
        if block.trips == 0 || block.instrs.is_empty() {
            report.diagnostics.push(Diagnostic::new(
                "V105-DEGENERATE-BLOCK",
                Severity::Warning,
                format!(
                    "block {bi} is degenerate ({} trips, {} instructions)",
                    block.trips,
                    block.instrs.len(),
                ),
            ));
        }
    }

    // V106: the declared cost must be reachable — no launch finishes its
    // word-ops faster than the Eq. 4–7 bottleneck pipeline allows. MMA
    // plans are priced against the matrix-unit peak, which is what makes
    // their (legitimately) sub-scalar-peak cycle counts lint clean.
    if facts.word_ops > 0.0 && facts.active_cores > 0 {
        let per_cluster = if facts.uses_matrix_unit {
            effective_peak(dev, facts.op_kind).word_ops_per_cycle_per_cluster
        } else {
            peak(dev, facts.op_kind).word_ops_per_cycle_per_cluster
        };
        let per_core_rate = per_cluster * dev.n_clusters as f64;
        let min_cycles = (facts.word_ops / facts.active_cores as f64) / per_core_rate;
        if facts.core_cycles < min_cycles * 0.999 {
            report.diagnostics.push(Diagnostic::new(
                "V106-UNREACHABLE-COST",
                Severity::Error,
                format!(
                    "declared {:.0} core cycles for {:.0} word-ops on {} cores, but the \
                     peak model needs at least {:.0} cycles",
                    facts.core_cycles, facts.word_ops, facts.active_cores, min_cycles,
                ),
            ));
        }
    }

    // V107: matrix-unit instructions can only execute on a device that
    // declares a matrix unit *and* serves the `mma` class with a pipeline.
    let mma_instrs: usize = prog
        .blocks
        .iter()
        .flat_map(|b| &b.instrs)
        .filter(|i| i.class == InstrClass::Mma)
        .count();
    if mma_instrs > 0
        && (dev.matrix_unit.is_none() || dev.pipeline_index_for(InstrClass::Mma).is_none())
    {
        report.diagnostics.push(Diagnostic::new(
            "V107-MMA-UNSUPPORTED",
            Severity::Error,
            format!(
                "program issues {mma_instrs} mma instruction(s) but {} has no matrix unit",
                dev.name,
            ),
        ));
    }

    // V108: an MMA plan's group output tile must align to the fragment
    // shape — a misaligned tile silently drops or double-counts fragment
    // rows/columns on real matrix units.
    if facts.uses_matrix_unit {
        if let Some(mu) = dev.matrix_unit {
            let nt = dev.n_t.max(1) as usize;
            let groups = cfg.groups_per_cluster.max(1) as usize;
            let cols_per_group = cfg.n_r / groups;
            let groups_per_core = groups * dev.n_clusters.max(1) as usize;
            let outputs_per_thread = cfg.m_c * cfg.n_r / (groups_per_core * nt);
            let cols_per_thread = (cols_per_group / nt).max(1);
            let rows_per_group = outputs_per_thread / cols_per_thread;
            if !rows_per_group.is_multiple_of(mu.frag_m as usize)
                || !cols_per_group.is_multiple_of(mu.frag_n as usize)
            {
                report.diagnostics.push(Diagnostic::new(
                    "V108-FRAG-SHAPE",
                    Severity::Error,
                    format!(
                        "group tile {rows_per_group}x{cols_per_group} does not align to the \
                         {}x{} matrix-unit fragment of {}",
                        mu.frag_m, mu.frag_n, dev.name,
                    ),
                ));
            }
        } else {
            report.diagnostics.push(Diagnostic::new(
                "V108-FRAG-SHAPE",
                Severity::Error,
                format!(
                    "plan declares matrix-unit lowering but {} has no matrix unit",
                    dev.name,
                ),
            ));
        }
    }

    report
}

/// The deep lint: every [`lint_kernel`] rule plus the dataflow layer
/// (V110–V112, [`crate::dataflow::lint_dataflow`]) and the static
/// critical-path reconciliation (V113, [`crate::critpath::lint_critpath`]).
/// This is what `snpgpu lint --deep` runs per target; the cross-lowering
/// rule (V114) needs *two* fact sets and lives in
/// [`crate::critpath::lint_cross_lowering`].
pub fn lint_kernel_deep(dev: &DeviceSpec, cfg: &KernelConfig, facts: &PlanFacts) -> Report {
    let mut report = lint_kernel(dev, cfg, facts);
    report.merge(crate::dataflow::lint_dataflow(dev, facts));
    report.merge(crate::critpath::lint_critpath(dev, facts));
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use snp_gpu_model::config::{derive_config, McRule};
    use snp_gpu_model::devices;
    use snp_gpu_model::{InstrClass, ProblemShape};
    use snp_gpu_sim::isa::{Block, Instr};

    fn facts(program: Program, core_cycles: f64, word_ops: f64) -> PlanFacts {
        PlanFacts {
            program,
            groups_per_core: 1,
            core_cycles,
            active_cores: 1,
            word_ops,
            op_kind: WordOpKind::And,
            uses_matrix_unit: false,
        }
    }

    fn config(dev: &DeviceSpec) -> KernelConfig {
        let shape = ProblemShape {
            m: 4096,
            n: 4096,
            k_words: 512,
        };
        derive_config(dev, shape, McRule::Banks)
    }

    #[test]
    fn well_formed_program_lints_clean() {
        let dev = devices::gtx_980();
        let cfg = config(&dev);
        let prog = Program::dependent_chain(InstrClass::Popc, 8, 100);
        let report = lint_kernel(&dev, &cfg, &facts(prog, 1e6, 1e6));
        assert!(report.diagnostics.is_empty(), "{}", report.render_text("t"));
    }

    #[test]
    fn undefined_register_flagged() {
        let dev = devices::gtx_980();
        let cfg = config(&dev);
        let prog = Program::new(vec![Block::once(vec![Instr::store_global(&[7])])]);
        let report = lint_kernel(&dev, &cfg, &facts(prog, 1e6, 0.0));
        assert_eq!(report.with_code("V101-UNDEFINED-REG").count(), 1);
        assert!(report.has_errors());
    }

    #[test]
    fn register_pressure_uses_count_not_index() {
        let mut dev = devices::gtx_980();
        dev.max_regs_per_thread = 4;
        let cfg = config(&devices::gtx_980());
        // Highest index 4 -> count 5 -> over a 4-register device even
        // though the raw index equals the limit.
        let prog = Program::new(vec![Block::once(vec![
            Instr::load_global(4, &[]),
            Instr::store_global(&[4]),
        ])]);
        let report = lint_kernel(&dev, &cfg, &facts(prog, 1e6, 0.0));
        assert_eq!(report.with_code("V102-REG-PRESSURE").count(), 1);
    }

    #[test]
    fn oversized_shared_block_flagged() {
        let dev = devices::gtx_980();
        let mut cfg = config(&dev);
        cfg.m_c = 1 << 14;
        cfg.k_c = 1 << 10;
        let prog = Program::dependent_chain(InstrClass::Popc, 4, 10);
        let report = lint_kernel(&dev, &cfg, &facts(prog, 1e6, 0.0));
        assert_eq!(report.with_code("V103-SHARED-MEM").count(), 1);
    }

    #[test]
    fn impossible_conflict_ways_flagged() {
        let dev = devices::gtx_980();
        let cfg = config(&dev);
        let prog = Program::new(vec![Block::once(vec![
            Instr::load_global(0, &[]),
            Instr::load_shared(1, &[0], dev.shared_banks + 1),
            Instr::store_global(&[1]),
        ])]);
        let report = lint_kernel(&dev, &cfg, &facts(prog, 1e6, 0.0));
        assert_eq!(report.with_code("V104-CONFLICT-WAYS").count(), 1);
    }

    #[test]
    fn zero_trip_block_warns() {
        let dev = devices::gtx_980();
        let cfg = config(&dev);
        let prog = Program::new(vec![Block::looped(
            0,
            vec![Instr::arith(InstrClass::IntAdd, 0, &[0])],
        )]);
        let report = lint_kernel(&dev, &cfg, &facts(prog, 1e6, 0.0));
        let d = report.with_code("V105-DEGENERATE-BLOCK").next().unwrap();
        assert_eq!(d.severity, Severity::Warning);
        assert!(!report.has_errors());
        assert!(report.has_blocking());
    }

    #[test]
    fn unreachable_cost_flagged_and_peak_cost_passes() {
        let dev = devices::gtx_980();
        let cfg = config(&dev);
        let prog = Program::dependent_chain(InstrClass::Popc, 4, 10);
        // GTX 980 peak: 8 word-ops/cycle/cluster * 4 clusters = 32/cycle/core.
        // 3.2e6 word-ops on 1 core needs >= 1e5 cycles.
        let too_fast = facts(prog.clone(), 0.5e5, 3.2e6);
        let report = lint_kernel(&dev, &cfg, &too_fast);
        assert_eq!(report.with_code("V106-UNREACHABLE-COST").count(), 1);
        let at_peak = facts(prog, 1.0e5, 3.2e6);
        let report = lint_kernel(&dev, &cfg, &at_peak);
        assert!(report.diagnostics.is_empty(), "{}", report.render_text("t"));
    }

    fn mma_program() -> Program {
        Program::new(vec![Block::looped(
            4,
            vec![
                Instr::load_global(1, &[]),
                Instr::load_shared(2, &[], 1),
                Instr::arith(InstrClass::Mma, 0, &[2, 1, 0]),
                Instr::store_global(&[0]),
            ],
        )])
    }

    #[test]
    fn mma_on_scalar_device_flagged_unsupported() {
        let dev = devices::gtx_980();
        let cfg = config(&dev);
        let mut f = facts(mma_program(), 1e6, 0.0);
        f.uses_matrix_unit = true;
        let report = lint_kernel(&dev, &cfg, &f);
        assert_eq!(report.with_code("V107-MMA-UNSUPPORTED").count(), 1);
        // Without a matrix unit there is no fragment shape to align to.
        assert_eq!(report.with_code("V108-FRAG-SHAPE").count(), 1);
        assert!(report.has_errors());
    }

    #[test]
    fn mma_on_tc100_lints_clean_and_misaligned_tile_flagged() {
        let dev = devices::tc100();
        let cfg = config(&dev);
        let mut f = facts(mma_program(), 1e6, 0.0);
        f.uses_matrix_unit = true;
        let report = lint_kernel(&dev, &cfg, &f);
        assert_eq!(report.with_code("V107-MMA-UNSUPPORTED").count(), 0);
        assert_eq!(
            report.with_code("V108-FRAG-SHAPE").count(),
            0,
            "{}",
            report.render_text("t")
        );
        // Shrink m_c so the group tile covers a single output row, which
        // cannot align to 8-row fragments.
        let mut bad = cfg;
        bad.m_c = 4;
        let report = lint_kernel(&dev, &bad, &f);
        assert_eq!(report.with_code("V108-FRAG-SHAPE").count(), 1);
    }

    #[test]
    fn mma_cost_priced_against_matrix_unit_peak() {
        // TC100 scalar peak: 8 word-ops/cycle/cluster * 4 = 32/cycle/core;
        // matrix unit: 32/cycle/cluster * 4 = 128/cycle/core. A cost of
        // 1e5 cycles for 12.8e6 word-ops is only reachable via the matrix
        // unit — the same facts must fail when declared as a scalar plan.
        let dev = devices::tc100();
        let cfg = config(&dev);
        let mut f = facts(mma_program(), 1.0e5, 12.8e6);
        f.uses_matrix_unit = true;
        let report = lint_kernel(&dev, &cfg, &f);
        assert_eq!(
            report.with_code("V106-UNREACHABLE-COST").count(),
            0,
            "{}",
            report.render_text("t")
        );
        let mut scalar = facts(
            Program::dependent_chain(InstrClass::Popc, 4, 10),
            1.0e5,
            12.8e6,
        );
        scalar.uses_matrix_unit = false;
        let report = lint_kernel(&dev, &cfg, &scalar);
        assert_eq!(report.with_code("V106-UNREACHABLE-COST").count(), 1);
    }
}
