//! Diagnostics shared by the race detector and the kernel linter.
//!
//! Every finding carries a stable code (`V0xx` for command-DAG findings,
//! `V1xx` for kernel/ISA findings) so reports are machine-checkable: CI
//! greps for codes, tests assert on them, and the catalog in DESIGN.md §9
//! documents each one.

use std::fmt;

/// How serious a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational: stream facts worth surfacing (overlap statistics,
    /// transitively redundant waits). Never fails a build.
    Info,
    /// Suspicious but not provably wrong (dead events, zero-trip blocks).
    Warning,
    /// A provable defect: an ordering hazard or a plan that violates a
    /// device limit.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Info => write!(f, "info"),
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// One finding from an analyzer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable code, e.g. `V001-RAW`.
    pub code: &'static str,
    /// Severity class.
    pub severity: Severity,
    /// Human-readable description.
    pub message: String,
    /// Enqueue-order indices of the commands involved (empty for kernel
    /// lints).
    pub commands: Vec<usize>,
    /// Index of the buffer involved, if the finding concerns one.
    pub buffer: Option<usize>,
}

impl Diagnostic {
    /// Builds a diagnostic without location payload.
    pub fn new(code: &'static str, severity: Severity, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity,
            message: message.into(),
            commands: Vec::new(),
            buffer: None,
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}] {}", self.severity, self.code, self.message)
    }
}

/// The outcome of one analyzer run: an ordered list of diagnostics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Report {
    /// All findings, in analyzer order.
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// Appends every diagnostic of `other`.
    pub fn merge(&mut self, other: Report) {
        self.diagnostics.extend(other.diagnostics);
    }

    /// Number of diagnostics at exactly `sev`.
    pub fn count(&self, sev: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == sev)
            .count()
    }

    /// True if any finding is an [`Severity::Error`].
    pub fn has_errors(&self) -> bool {
        self.count(Severity::Error) > 0
    }

    /// True if the report would fail a strict gate: any error or warning.
    /// Infos never block.
    pub fn has_blocking(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity >= Severity::Warning)
    }

    /// Findings with `code`.
    pub fn with_code<'a>(&'a self, code: &'a str) -> impl Iterator<Item = &'a Diagnostic> {
        self.diagnostics.iter().filter(move |d| d.code == code)
    }

    /// Multi-line human-readable rendering; `label` names what was checked.
    pub fn render_text(&self, label: &str) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{label}: {} error(s), {} warning(s), {} note(s)\n",
            self.count(Severity::Error),
            self.count(Severity::Warning),
            self.count(Severity::Info),
        ));
        for d in &self.diagnostics {
            out.push_str(&format!("  {d}\n"));
        }
        out
    }

    /// JSON rendering of the report (object with counts and a diagnostic
    /// array), built by hand — the workspace carries no serde.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!(
            "\"errors\":{},\"warnings\":{},\"infos\":{},\"diagnostics\":[",
            self.count(Severity::Error),
            self.count(Severity::Warning),
            self.count(Severity::Info),
        ));
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"code\":\"{}\",\"severity\":\"{}\",\"message\":\"{}\",\"commands\":[{}]",
                d.code,
                d.severity,
                json_escape(&d.message),
                d.commands
                    .iter()
                    .map(|c| c.to_string())
                    .collect::<Vec<_>>()
                    .join(","),
            ));
            match d.buffer {
                Some(b) => out.push_str(&format!(",\"buffer\":{b}}}")),
                None => out.push_str(",\"buffer\":null}"),
            }
        }
        out.push_str("]}");
        out
    }
}

/// Escapes a string for embedding in a JSON literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A report promoted to an error: carried when a verification gate fails,
/// so diagnostics compose with `?` like any other error.
#[derive(Debug, Clone)]
pub struct VerifyError {
    /// The findings that failed the gate.
    pub report: Report,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let blocking: Vec<&Diagnostic> = self
            .report
            .diagnostics
            .iter()
            .filter(|d| d.severity >= Severity::Warning)
            .collect();
        write!(f, "verification failed with {} finding(s):", blocking.len())?;
        for d in blocking {
            write!(f, " {d};")?;
        }
        Ok(())
    }
}

impl std::error::Error for VerifyError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        Report {
            diagnostics: vec![
                Diagnostic::new("V001-RAW", Severity::Error, "a \"raw\" hazard"),
                Diagnostic::new("V004-UNUSED-EVENT", Severity::Warning, "dead event"),
                Diagnostic::new("V006-OVERLAP", Severity::Info, "3 overlapping pairs"),
            ],
        }
    }

    #[test]
    fn counts_and_gates() {
        let r = sample();
        assert_eq!(r.count(Severity::Error), 1);
        assert_eq!(r.count(Severity::Warning), 1);
        assert_eq!(r.count(Severity::Info), 1);
        assert!(r.has_errors());
        assert!(r.has_blocking());
        let infos_only = Report {
            diagnostics: vec![Diagnostic::new("V006-OVERLAP", Severity::Info, "x")],
        };
        assert!(!infos_only.has_blocking());
    }

    #[test]
    fn text_and_json_render() {
        let r = sample();
        let text = r.render_text("stream");
        assert!(text.contains("1 error(s), 1 warning(s), 1 note(s)"));
        assert!(text.contains("error [V001-RAW]"));
        let json = r.to_json();
        assert!(json.contains("\"errors\":1"));
        assert!(
            json.contains("a \\\"raw\\\" hazard"),
            "escaped quote: {json}"
        );
        assert!(json.contains("\"buffer\":null"));
    }

    #[test]
    fn verify_error_displays_blocking_findings_only() {
        let e = VerifyError { report: sample() };
        let s = e.to_string();
        assert!(s.contains("2 finding(s)"));
        assert!(s.contains("V001-RAW") && s.contains("V004-UNUSED-EVENT"));
        assert!(!s.contains("V006-OVERLAP"));
        let _: &dyn std::error::Error = &e;
    }

    #[test]
    fn json_escape_control_chars() {
        assert_eq!(json_escape("a\nb\"c\\d\u{1}"), "a\\nb\\\"c\\\\d\\u0001");
    }
}
