//! Vector-clock race detection over the simulated host's command DAG.
//!
//! The simulator executes functionally in enqueue order, so a missing event
//! dependency never corrupts *data* in simulation — but it would on a real
//! OpenCL device, where queues run concurrently and only in-order queue
//! semantics plus event waits order commands. This analyzer finds exactly
//! those latent bugs: pairs of commands that touch overlapping buffer
//! ranges without a happens-before edge.
//!
//! ## Ordering model
//!
//! Two sources of guaranteed ordering exist (DESIGN.md §9):
//!
//! * **in-order queues** — command `k+1` on a queue starts after command
//!   `k` on the same queue completes;
//! * **event waits** — a command starts after every event in its wait list
//!   completes.
//!
//! Resource serialization (the single host↔device link, the one-kernel-at-
//! a-time compute engine) also orders commands *in this simulator*, but it
//! is incidental — a device with two DMA engines would not provide it — so
//! it deliberately contributes no happens-before edges here.
//!
//! Happens-before is computed with per-queue vector clocks: each command's
//! clock is the join of its queue predecessor's clock and its dependencies'
//! clocks, bumped in its own queue slot. `a` happens-before `b` iff `b`'s
//! clock at `a`'s queue has reached `a`'s position in that queue.

use crate::diag::{Diagnostic, Report, Severity};
use snp_gpu_sim::host::{CommandKind, CommandLog, CommandRecord};

fn kind_name(kind: CommandKind) -> &'static str {
    match kind {
        CommandKind::Write => "write",
        CommandKind::Read => "read",
        CommandKind::Kernel => "kernel",
        CommandKind::UntaggedTransfer => "transfer",
    }
}

/// Per-command ordering state derived from the log.
struct Clocks {
    /// `vc[i][q]` = highest position on queue `q` known to precede (or be)
    /// command `i`.
    vc: Vec<Vec<u64>>,
    /// 1-based position of command `i` within its own queue.
    pos: Vec<u64>,
    /// Enqueue index of command `i`'s predecessor on its queue.
    prev_on_queue: Vec<Option<usize>>,
}

fn join_into(acc: &mut [u64], other: &[u64]) {
    for (a, o) in acc.iter_mut().zip(other) {
        *a = (*a).max(*o);
    }
}

fn compute_clocks(log: &CommandLog) -> Clocks {
    let n = log.commands.len();
    let nq = log.queue_count.max(1);
    let mut vc: Vec<Vec<u64>> = Vec::with_capacity(n);
    let mut pos = Vec::with_capacity(n);
    let mut prev_on_queue = Vec::with_capacity(n);
    let mut frontier: Vec<Option<usize>> = vec![None; nq];
    let mut queue_len = vec![0u64; nq];
    for (i, rec) in log.commands.iter().enumerate() {
        let q = rec.queue.index();
        let mut clock = vec![0u64; nq];
        if let Some(p) = frontier[q] {
            join_into(&mut clock, &vc[p]);
        }
        for d in &rec.deps {
            // Event index == command index by construction of the log.
            if let Some(dvc) = vc.get(d.index()) {
                join_into(&mut clock, dvc);
            }
        }
        queue_len[q] += 1;
        clock[q] = queue_len[q];
        pos.push(queue_len[q]);
        prev_on_queue.push(frontier[q]);
        frontier[q] = Some(i);
        vc.push(clock);
    }
    Clocks {
        vc,
        pos,
        prev_on_queue,
    }
}

impl Clocks {
    /// Does command `a` happen before command `b` (a ≠ b)?
    fn happens_before(&self, log: &CommandLog, a: usize, b: usize) -> bool {
        let qa = log.commands[a].queue.index();
        self.vc[b][qa] >= self.pos[a]
    }
}

fn hazard_between(i: &CommandRecord, j: &CommandRecord) -> Option<(&'static str, usize)> {
    // Priority: a write/write conflict is reported as WAW even if one side
    // also reads (kernels read their inputs and write their output).
    for wi in &i.writes {
        for wj in &j.writes {
            if wi.overlaps(wj) {
                return Some(("V003-WAW", wi.buffer.index()));
            }
        }
    }
    for wi in &i.writes {
        for rj in &j.reads {
            if wi.overlaps(rj) {
                return Some(("V001-RAW", wi.buffer.index()));
            }
        }
    }
    for ri in &i.reads {
        for wj in &j.writes {
            if ri.overlaps(wj) {
                return Some(("V002-WAR", ri.buffer.index()));
            }
        }
    }
    None
}

/// Runs the full command-DAG analysis: hazards (errors), dead events
/// (warnings), transitively redundant waits and cross-queue overlap
/// statistics (infos).
pub fn verify_command_log(log: &CommandLog) -> Report {
    let mut report = Report::default();
    let n = log.commands.len();
    if n == 0 {
        return report;
    }
    let clocks = compute_clocks(log);

    // --- Hazards: unordered pairs touching overlapping ranges. -----------
    for j in 1..n {
        let rj = &log.commands[j];
        if rj.reads.is_empty() && rj.writes.is_empty() {
            continue;
        }
        for i in 0..j {
            let ri = &log.commands[i];
            if clocks.happens_before(log, i, j) {
                continue;
            }
            if let Some((code, buffer)) = hazard_between(ri, rj) {
                let sev = Severity::Error;
                let msg = format!(
                    "{} #{} (queue {}) and {} #{} (queue {}) touch buffer {} with no \
                     happens-before edge; enqueue order is not execution order on a real device",
                    kind_name(ri.kind),
                    i,
                    ri.queue.index(),
                    kind_name(rj.kind),
                    j,
                    rj.queue.index(),
                    buffer,
                );
                report.diagnostics.push(Diagnostic {
                    code,
                    severity: sev,
                    message: msg,
                    commands: vec![i, j],
                    buffer: Some(buffer),
                });
            }
        }
    }

    // --- Dead events: never waited on and never profiled. -----------------
    let mut waited = vec![false; n];
    for rec in &log.commands {
        for d in &rec.deps {
            if let Some(w) = waited.get_mut(d.index()) {
                *w = true;
            }
        }
    }
    for (i, rec) in log.commands.iter().enumerate() {
        let profiled = log.profiled.get(i).copied().unwrap_or(false);
        if !waited[i] && !profiled {
            report.diagnostics.push(Diagnostic {
                code: "V004-UNUSED-EVENT",
                severity: Severity::Warning,
                message: format!(
                    "event of {} #{} (queue {}) is never waited on and never profiled",
                    kind_name(rec.kind),
                    i,
                    rec.queue.index(),
                ),
                commands: vec![i],
                buffer: None,
            });
        }
    }

    // --- Redundant waits: deps already implied by the remaining edges. ----
    let nq = log.queue_count.max(1);
    for (i, rec) in log.commands.iter().enumerate() {
        for (k, d) in rec.deps.iter().enumerate() {
            let di = d.index();
            if di >= n {
                continue;
            }
            // Join of the queue predecessor and every *other* dependency.
            let mut without = vec![0u64; nq];
            if let Some(p) = clocks.prev_on_queue[i] {
                join_into(&mut without, &clocks.vc[p]);
            }
            for (k2, d2) in rec.deps.iter().enumerate() {
                if k2 != k {
                    if let Some(dvc) = clocks.vc.get(d2.index()) {
                        join_into(&mut without, dvc);
                    }
                }
            }
            let dq = log.commands[di].queue.index();
            if without[dq] >= clocks.pos[di] {
                report.diagnostics.push(Diagnostic {
                    code: "V005-REDUNDANT-WAIT",
                    severity: Severity::Info,
                    message: format!(
                        "{} #{}: wait on event #{} is already implied transitively",
                        kind_name(rec.kind),
                        i,
                        di,
                    ),
                    commands: vec![i, di],
                    buffer: None,
                });
            }
        }
    }

    // --- Cross-queue overlap statistics. ----------------------------------
    if log.queue_count > 1 {
        let mut pairs = 0u64;
        let mut overlap_ns = 0u64;
        for j in 1..n {
            let rj = &log.commands[j];
            for ri in log.commands.iter().take(j) {
                if ri.queue == rj.queue {
                    continue;
                }
                let lo = ri.profile.start_ns.max(rj.profile.start_ns);
                let hi = ri.profile.end_ns.min(rj.profile.end_ns);
                if lo < hi {
                    pairs += 1;
                    overlap_ns += hi - lo;
                }
            }
        }
        report.diagnostics.push(Diagnostic {
            code: "V006-OVERLAP",
            severity: Severity::Info,
            message: format!(
                "{pairs} cross-queue command pair(s) overlap in time for {overlap_ns} ns total",
            ),
            commands: Vec::new(),
            buffer: None,
        });
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use snp_gpu_model::devices;
    use snp_gpu_sim::host::{Gpu, KernelCost};
    use snp_gpu_sim::macro_engine::Traffic;

    fn cost() -> KernelCost {
        KernelCost::Analytic {
            core_cycles: 100_000.0,
            active_cores: 4,
            traffic: Traffic::default(),
        }
    }

    fn errors(report: &Report) -> Vec<&'static str> {
        report
            .diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .map(|d| d.code)
            .collect()
    }

    #[test]
    fn ordered_stream_is_clean() {
        let g = Gpu::new(devices::gtx_980());
        let q0 = g.create_queue();
        let q1 = g.create_queue();
        let b = g.create_virtual_buffer(1024).unwrap();
        let c = g.create_virtual_buffer(1024).unwrap();
        let ew = g.enqueue_virtual_write(q0, b, 0, 1024, &[]).unwrap();
        let ek = g
            .enqueue_kernel_timed_on(q1, &cost(), &[b], c, &[ew])
            .unwrap();
        let er = g.enqueue_virtual_read(q0, c, 0, 1024, &[ek]).unwrap();
        let _ = g.event_profile(er).unwrap();
        let report = verify_command_log(&g.command_log());
        assert!(errors(&report).is_empty(), "{}", report.render_text("t"));
        assert!(!report.has_blocking(), "{}", report.render_text("t"));
    }

    #[test]
    fn missing_kernel_dep_is_a_raw_hazard() {
        let g = Gpu::new(devices::gtx_980());
        let q0 = g.create_queue();
        let q1 = g.create_queue();
        let b = g.create_virtual_buffer(1024).unwrap();
        let c = g.create_virtual_buffer(1024).unwrap();
        let _ew = g.enqueue_virtual_write(q0, b, 0, 1024, &[]).unwrap();
        let ek = g
            .enqueue_kernel_timed_on(q1, &cost(), &[b], c, &[]) // missing ew!
            .unwrap();
        let _ = g.event_profile(ek).unwrap();
        let report = verify_command_log(&g.command_log());
        assert_eq!(errors(&report), vec!["V001-RAW"]);
        let d = report.with_code("V001-RAW").next().unwrap();
        assert_eq!(d.commands, vec![0, 1]);
        assert_eq!(d.buffer, Some(b.index()));
    }

    #[test]
    fn unordered_reader_then_writer_is_war() {
        let g = Gpu::new(devices::gtx_980());
        let q0 = g.create_queue();
        let q1 = g.create_queue();
        let b = g.create_virtual_buffer(256).unwrap();
        let c = g.create_virtual_buffer(256).unwrap();
        let ew = g.enqueue_virtual_write(q0, b, 0, 256, &[]).unwrap();
        let ek = g
            .enqueue_kernel_timed_on(q1, &cost(), &[b], c, &[ew])
            .unwrap();
        // Overwrite b without waiting for the kernel that reads it.
        let e2 = g.enqueue_virtual_write(q0, b, 0, 256, &[]).unwrap();
        for e in [ek, e2] {
            let _ = g.event_profile(e).unwrap();
        }
        let report = verify_command_log(&g.command_log());
        assert_eq!(errors(&report), vec!["V002-WAR"]);
    }

    #[test]
    fn unordered_writers_are_waw_and_disjoint_ranges_are_not() {
        let g = Gpu::new(devices::gtx_980());
        let q0 = g.create_queue();
        let q1 = g.create_queue();
        let b = g.create_virtual_buffer(1024).unwrap();
        let e0 = g.enqueue_virtual_write(q0, b, 0, 512, &[]).unwrap();
        let e1 = g.enqueue_virtual_write(q1, b, 256, 512, &[]).unwrap();
        // Disjoint halves from a third command: no extra hazard.
        let e2 = g.enqueue_virtual_write(q1, b, 768, 256, &[]).unwrap();
        for e in [e0, e1, e2] {
            let _ = g.event_profile(e).unwrap();
        }
        let report = verify_command_log(&g.command_log());
        assert_eq!(errors(&report), vec!["V003-WAW"]);
        let d = report.with_code("V003-WAW").next().unwrap();
        assert_eq!(d.commands, vec![0, 1]);
    }

    #[test]
    fn same_queue_ordering_needs_no_events() {
        let g = Gpu::new(devices::gtx_980());
        let q = g.create_queue();
        let b = g.create_virtual_buffer(64).unwrap();
        let e0 = g.enqueue_virtual_write(q, b, 0, 64, &[]).unwrap();
        let e1 = g.enqueue_virtual_write(q, b, 0, 64, &[]).unwrap();
        for e in [e0, e1] {
            let _ = g.event_profile(e).unwrap();
        }
        let report = verify_command_log(&g.command_log());
        assert!(errors(&report).is_empty());
    }

    #[test]
    fn transitive_ordering_through_a_third_queue_is_seen() {
        // w(b) on q0 -> kernel on q1 (dep) -> read waits on the kernel; a
        // later write to b waits only on the read but is still ordered
        // after the kernel transitively.
        let g = Gpu::new(devices::gtx_980());
        let q0 = g.create_queue();
        let q1 = g.create_queue();
        let b = g.create_virtual_buffer(128).unwrap();
        let c = g.create_virtual_buffer(128).unwrap();
        let ew = g.enqueue_virtual_write(q0, b, 0, 128, &[]).unwrap();
        let ek = g
            .enqueue_kernel_timed_on(q1, &cost(), &[b], c, &[ew])
            .unwrap();
        let er = g.enqueue_virtual_read(q0, c, 0, 128, &[ek]).unwrap();
        let e2 = g.enqueue_virtual_write(q0, b, 0, 128, &[er]).unwrap();
        let _ = g.event_profile(e2).unwrap();
        let report = verify_command_log(&g.command_log());
        assert!(errors(&report).is_empty(), "{}", report.render_text("t"));
    }

    #[test]
    fn dead_event_warns_and_profiling_silences() {
        let g = Gpu::new(devices::gtx_980());
        let q = g.create_queue();
        let b = g.create_virtual_buffer(16).unwrap();
        let ev = g.enqueue_virtual_write(q, b, 0, 16, &[]).unwrap();
        let report = verify_command_log(&g.command_log());
        assert_eq!(report.with_code("V004-UNUSED-EVENT").count(), 1);
        let _ = g.event_profile(ev).unwrap();
        let report = verify_command_log(&g.command_log());
        assert_eq!(report.with_code("V004-UNUSED-EVENT").count(), 0);
    }

    #[test]
    fn redundant_same_queue_wait_is_an_info() {
        let g = Gpu::new(devices::gtx_980());
        let q = g.create_queue();
        let b = g.create_virtual_buffer(16).unwrap();
        let c = g.create_virtual_buffer(16).unwrap();
        let e0 = g.enqueue_virtual_write(q, b, 0, 16, &[]).unwrap();
        // Same queue: the wait adds nothing the queue order does not.
        let e1 = g
            .enqueue_kernel_timed_on(q, &cost(), &[b], c, &[e0])
            .unwrap();
        let _ = g.event_profile(e1).unwrap();
        let report = verify_command_log(&g.command_log());
        let d = report.with_code("V005-REDUNDANT-WAIT").next().unwrap();
        assert_eq!(d.severity, Severity::Info);
        assert_eq!(d.commands, vec![1, 0]);
        assert!(!report.has_blocking());
    }

    #[test]
    fn overlap_stats_reported_for_multi_queue_streams() {
        let g = Gpu::new(devices::gtx_980());
        let q0 = g.create_queue();
        let q1 = g.create_queue();
        let b = g.create_virtual_buffer(1 << 20).unwrap();
        let c0 = g.create_virtual_buffer(16).unwrap();
        let c1 = g.create_virtual_buffer(16).unwrap();
        // A long transfer on q0 overlapping a kernel on q1.
        let e0 = g.enqueue_virtual_write(q0, b, 0, 1 << 20, &[]).unwrap();
        let e1 = g
            .enqueue_kernel_timed_on(q1, &cost(), &[c0], c1, &[])
            .unwrap();
        for e in [e0, e1] {
            let _ = g.event_profile(e).unwrap();
        }
        let report = verify_command_log(&g.command_log());
        let d = report.with_code("V006-OVERLAP").next().unwrap();
        assert!(d.message.starts_with("1 cross-queue"), "{}", d.message);
    }
}
