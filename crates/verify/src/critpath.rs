//! Latency-weighted static critical path and cross-lowering consistency
//! (DESIGN.md §14).
//!
//! [`critical_path`] abstractly interprets a program against a device's
//! timing: every register starts available at cycle 0 (the engines'
//! implicit zero-initialization), and each instruction's result becomes
//! available `completion_cycles(class, ways)` after its latest source —
//! exactly the per-instruction delta the detailed engine charges, but with
//! all structural hazards (pipe occupancy, scheduler width) relaxed. The
//! resulting chain length, combined with the per-pipeline issue totals and
//! the dynamic instruction count, is a *provable lower bound* on the
//! detailed engine's cycles for a single-group launch:
//!
//! * the chain relaxation can only start instructions earlier, never later;
//! * a pipeline serving `c` issue cycles of work is busy ≥ `c` cycles;
//! * one group issues at most one instruction per cycle.
//!
//! Rule **V113** checks a plan's declared analytic cost against that bound
//! and reports which blocks are latency-bound (`chain > issue`); the same
//! structure also yields a macro-style multi-group prediction that
//! `snpgpu profile` reconciles against the detailed simulation as a fourth
//! drift column. Rule **V114** cross-checks the scalar and matrix-unit
//! lowerings of one plan: same executed word-ops (up to one trip of
//! fragment padding per k-loop) and the same memory-traffic class counts.

use crate::diag::{Diagnostic, Report, Severity};
use crate::lint::PlanFacts;
use snp_gpu_model::{DeviceSpec, InstrClass};
use snp_gpu_sim::isa::Program;
use snp_gpu_sim::macro_engine::issue_cycles_per_trip;

/// Past this many trips the chain walk stops iterating and extrapolates
/// linearly from the per-trip steady-state delta (exact once two
/// consecutive trips advance register availability identically).
const EXACT_TRIPS: u32 = 4096;

/// Critical-path facts of one executing block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockPath {
    /// Block index in the program.
    pub block: usize,
    /// Trips the block executes.
    pub trips: u32,
    /// Issue cycles one group places on the block's busiest pipeline over
    /// all trips (the block's issue bound at one resident group).
    pub issue_bound: u64,
    /// Cycles the global dependence chain advances across the block
    /// (latency-weighted, loop-carried edges included).
    pub chain_span: u64,
}

impl BlockPath {
    /// Whether the block is latency-bound at one resident group: its
    /// dependence chain outweighs its busiest pipeline's issue work.
    pub fn latency_bound(&self) -> bool {
        self.chain_span > self.issue_bound
    }
}

/// The static critical path of a program on a device.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CritPath {
    /// Per executing block, in program order.
    pub per_block: Vec<BlockPath>,
    /// Length of the longest latency-weighted dependence chain through the
    /// whole program (loop-carried and cross-block edges included).
    pub chain_cycles: u64,
    /// Per-pipeline issue cycles one group places over the whole program.
    pub pipe_issue_cycles: Vec<u64>,
    /// Dynamic instructions per group (one group issues at most one per
    /// cycle, so this too lower-bounds the runtime).
    pub dynamic_instrs: u64,
}

impl CritPath {
    /// The provable single-group lower bound:
    /// `max(chain, busiest pipe, dynamic instructions)`.
    pub fn lower_bound_cycles(&self) -> u64 {
        self.chain_cycles
            .max(self.pipe_issue_cycles.iter().copied().max().unwrap_or(0))
            .max(self.dynamic_instrs)
    }

    /// Macro-style core-cycle prediction at `groups` resident groups on a
    /// device with `n_clusters` pipeline clusters: per block, the issue
    /// bound scales with groups sharing each cluster's pipelines while the
    /// dependence chain does not (extra groups hide latency, they do not
    /// shorten chains), and the block takes whichever bound is larger.
    pub fn predicted_core_cycles(&self, n_clusters: u32, groups: u32) -> f64 {
        let clusters = n_clusters.min(groups).max(1) as f64;
        let gpc = groups.max(1) as f64 / clusters;
        self.per_block
            .iter()
            .map(|b| (gpc * b.issue_bound as f64).max(b.chain_span as f64))
            .sum()
    }
}

/// Computes the latency-weighted critical path of `prog` on `dev`.
///
/// Panics if the program issues a class `dev` has no pipeline for (gate on
/// [`supports_program`] first; the V107 lint owns that diagnostic).
pub fn critical_path(dev: &DeviceSpec, prog: &Program) -> CritPath {
    let n_regs = prog.reg_count();
    let mut avail = vec![0u64; n_regs];
    let mut chain_end = 0u64;
    let mut per_block = Vec::new();
    let mut pipe_totals = vec![0u64; dev.pipelines.len()];

    for (bi, block) in prog.blocks.iter().enumerate() {
        if !block.executes() {
            continue;
        }
        let block_start = chain_end;
        let per_trip = issue_cycles_per_trip(dev, block);
        for (pipe, &c) in per_trip.iter().enumerate() {
            pipe_totals[pipe] += c * block.trips as u64;
        }

        let mut trip = 0u32;
        let mut prev_state: Option<(Vec<u64>, u64)> = None;
        let mut prev_delta: Option<(Vec<u64>, u64)> = None;
        while trip < block.trips {
            for instr in &block.instrs {
                let start = instr
                    .srcs
                    .iter()
                    .map(|&s| avail[s as usize])
                    .max()
                    .unwrap_or(0);
                let done = start + dev.completion_cycles(instr.class, instr.conflict_ways);
                if let Some(d) = instr.dst {
                    avail[d as usize] = done;
                }
                chain_end = chain_end.max(done);
            }
            trip += 1;
            if block.trips <= EXACT_TRIPS {
                continue;
            }
            // Steady-state extrapolation for very long loops: once two
            // consecutive trips advance every register by the same delta,
            // the remaining trips are that delta repeated.
            let (pa, pe) = prev_state.take().unwrap_or_else(|| (vec![0; n_regs], 0));
            let delta: Vec<u64> = avail.iter().zip(&pa).map(|(a, p)| a - p).collect();
            let delta_end = chain_end - pe;
            let steady = prev_delta
                .as_ref()
                .is_some_and(|(pd, pde)| *pd == delta && *pde == delta_end);
            if steady || trip == EXACT_TRIPS {
                let rem = (block.trips - trip) as u64;
                for (a, d) in avail.iter_mut().zip(&delta) {
                    *a += d * rem;
                }
                chain_end += delta_end * rem;
                break;
            }
            prev_delta = Some((delta, delta_end));
            prev_state = Some((avail.clone(), chain_end));
        }

        per_block.push(BlockPath {
            block: bi,
            trips: block.trips,
            issue_bound: per_trip.iter().copied().max().unwrap_or(0) * block.trips as u64,
            chain_span: chain_end - block_start,
        });
    }

    CritPath {
        per_block,
        chain_cycles: chain_end,
        pipe_issue_cycles: pipe_totals,
        dynamic_instrs: prog.dynamic_instrs(),
    }
}

/// Whether `dev` has a pipeline for every class `prog` issues — the
/// precondition for [`critical_path`] (V107 reports the violation).
pub fn supports_program(dev: &DeviceSpec, prog: &Program) -> bool {
    prog.iter_instrs()
        .all(|(_, _, i)| dev.pipeline_index_for(i.class).is_some())
}

/// Rule **V113-CRITPATH**: the declared analytic cost must not undercut the
/// static critical-path lower bound for a single tile job, and the
/// issue-vs-chain balance is reported so latency-bound kernels are visible
/// before any simulation runs.
pub fn lint_critpath(dev: &DeviceSpec, facts: &PlanFacts) -> Report {
    let mut report = Report::default();
    let prog = &facts.program;
    if !supports_program(dev, prog) {
        return report; // V107 owns the diagnostic; no pipeline timing exists.
    }
    let cp = critical_path(dev, prog);
    let lb = cp.lower_bound_cycles();
    if lb == 0 {
        return report;
    }
    let peak_pipe = cp.pipe_issue_cycles.iter().copied().max().unwrap_or(0);
    if facts.core_cycles < lb as f64 * 0.999 {
        report.diagnostics.push(Diagnostic::new(
            "V113-CRITPATH",
            Severity::Error,
            format!(
                "declared {:.0} core cycles, but one tile job alone needs at least {} \
                 (dependence chain {}, busiest-pipe issue {}, {} instructions)",
                facts.core_cycles, lb, cp.chain_cycles, peak_pipe, cp.dynamic_instrs,
            ),
        ));
    }
    let latency_blocks: Vec<String> = cp
        .per_block
        .iter()
        .filter(|b| b.latency_bound())
        .map(|b| b.block.to_string())
        .collect();
    let balance = if latency_blocks.is_empty() {
        "issue-bound in every block".to_string()
    } else {
        format!(
            "latency-bound in block(s) {} at one resident group",
            latency_blocks.join(", "),
        )
    };
    report.diagnostics.push(Diagnostic::new(
        "V113-CRITPATH",
        Severity::Info,
        format!(
            "static critical path: {} cycle lower bound per job (chain {}, busiest-pipe \
             issue {}); predicted {:.0} core cycles at {} resident groups; {}",
            lb,
            cp.chain_cycles,
            peak_pipe,
            cp.predicted_core_cycles(dev.n_clusters, facts.groups_per_core),
            facts.groups_per_core,
            balance,
        ),
    ));
    report
}

/// Word-ops one thread group actually executes: `popc` counts one packed
/// word per thread, `mma` retires a full fragment per instruction.
fn executed_word_ops(dev: &DeviceSpec, prog: &Program) -> u128 {
    let mma_ops = dev
        .matrix_unit
        .map_or(0, |mu| mu.word_ops_per_instr(dev.word_bits)) as u128;
    prog.blocks
        .iter()
        .filter(|b| b.executes())
        .map(|b| {
            let per_trip: u128 = b
                .instrs
                .iter()
                .map(|i| match i.class {
                    InstrClass::Popc => dev.n_t as u128,
                    InstrClass::Mma => mma_ops,
                    _ => 0,
                })
                .sum();
            per_trip * b.trips as u128
        })
        .sum()
}

/// Dynamic per-group instruction count of `class` in `prog`.
fn dynamic_class_count(prog: &Program, class: InstrClass) -> u64 {
    prog.dynamic_instrs_by_class()
        .iter()
        .find(|(c, _)| *c == class)
        .map_or(0, |&(_, n)| n)
}

/// Per-trip static count of `class` summed over executing blocks — the
/// per-class slack one loop-remainder trip can legitimately introduce
/// between two lowerings of the same plan.
fn one_trip_slack(prog: &Program, class: InstrClass) -> u64 {
    prog.blocks
        .iter()
        .filter(|b| b.executes())
        .map(|b| b.instrs.iter().filter(|i| i.class == class).count() as u64)
        .sum()
}

/// Rule **V114-CROSS-LOWERING**: the scalar and matrix-unit tile programs
/// of one plan must describe the same computation — equal logical word-ops,
/// executed word-ops equal up to one trip of fragment padding per k-loop,
/// and matching memory-traffic class counts (stores exactly; global loads
/// within one loop-remainder trip per lowering; shared loads may only
/// shrink under the fragment form's cooperative fetch, never grow).
pub fn lint_cross_lowering(dev: &DeviceSpec, scalar: &PlanFacts, mma: &PlanFacts) -> Report {
    let mut report = Report::default();
    let mut err = |msg: String| {
        report
            .diagnostics
            .push(Diagnostic::new("V114-CROSS-LOWERING", Severity::Error, msg));
    };

    if scalar.groups_per_core != mma.groups_per_core {
        err(format!(
            "lowerings disagree on geometry: {} vs {} groups per core",
            scalar.groups_per_core, mma.groups_per_core,
        ));
        return report;
    }
    if (scalar.word_ops - mma.word_ops).abs() > 0.5 {
        err(format!(
            "lowerings declare different logical word-op totals: {:.0} (scalar) vs {:.0} (mma)",
            scalar.word_ops, mma.word_ops,
        ));
    }

    let s_exec = executed_word_ops(dev, &scalar.program);
    let m_exec = executed_word_ops(dev, &mma.program);
    let mma_per_instr = dev
        .matrix_unit
        .map_or(0, |mu| mu.word_ops_per_instr(dev.word_bits)) as u128;
    // One remainder trip of mma padding per k-loop block is legitimate
    // (trips = ceil(slab / frag_k_words)); anything beyond is dropped or
    // duplicated work.
    let padding: u128 = mma
        .program
        .blocks
        .iter()
        .filter(|b| b.executes() && b.trips > 1)
        .map(|b| {
            b.instrs
                .iter()
                .filter(|i| i.class == InstrClass::Mma)
                .count() as u128
                * mma_per_instr
        })
        .sum();
    if m_exec < s_exec {
        err(format!(
            "mma lowering executes fewer word-ops per group than scalar: {m_exec} vs {s_exec} \
             (dropped work)",
        ));
    } else if m_exec > s_exec + padding {
        err(format!(
            "mma lowering executes {m_exec} word-ops per group vs scalar {s_exec}, beyond the \
             {padding} allowed by one fragment-padding trip per k-loop",
        ));
    }

    for class in [InstrClass::StoreGlobal, InstrClass::StoreShared] {
        let s = dynamic_class_count(&scalar.program, class);
        let m = dynamic_class_count(&mma.program, class);
        if s != m {
            err(format!(
                "lowerings disagree on {class} traffic: {s} (scalar) vs {m} (mma) \
                 instructions per group",
            ));
        }
    }
    {
        // The B panel streams through per-thread global loads in both
        // lowerings, so ld.global counts must agree up to loop-remainder
        // trips.
        let class = InstrClass::LoadGlobal;
        let s = dynamic_class_count(&scalar.program, class);
        let m = dynamic_class_count(&mma.program, class);
        let slack = one_trip_slack(&scalar.program, class) + one_trip_slack(&mma.program, class);
        if s.abs_diff(m) > slack {
            err(format!(
                "lowerings disagree on {class} traffic: {s} (scalar) vs {m} (mma) \
                 instructions per group (beyond the {slack} one-trip remainder slack)",
            ));
        }
    }
    {
        // A-slab shared reads are NOT count-comparable: the scalar form
        // broadcasts (every thread re-reads every A row it combines), while
        // the fragment form fetches each word once per group, cooperatively.
        // Fewer mma shared loads is therefore the expected shape; *more*
        // would be phantom traffic.
        let class = InstrClass::LoadShared;
        let s = dynamic_class_count(&scalar.program, class);
        let m = dynamic_class_count(&mma.program, class);
        let slack = one_trip_slack(&scalar.program, class) + one_trip_slack(&mma.program, class);
        if m > s + slack {
            err(format!(
                "mma lowering issues more {class} traffic than scalar: {m} vs {s} \
                 instructions per group (beyond the {slack} one-trip remainder slack)",
            ));
        } else if m < s {
            report.diagnostics.push(Diagnostic::new(
                "V114-CROSS-LOWERING",
                Severity::Info,
                format!(
                    "{class} traffic {m} (mma) vs {s} (scalar) instructions per group: \
                     the fragment form fetches the A slab cooperatively instead of \
                     per-thread broadcast",
                ),
            ));
        }
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use snp_gpu_model::{devices, WordOpKind};
    use snp_gpu_sim::isa::{Block, Instr};
    use snp_gpu_sim::simulate_core;

    fn facts(program: Program, core_cycles: f64) -> PlanFacts {
        PlanFacts {
            program,
            groups_per_core: 1,
            core_cycles,
            active_cores: 1,
            word_ops: 0.0,
            op_kind: WordOpKind::And,
            uses_matrix_unit: false,
        }
    }

    /// The pinned GTX 980 kernel of `profiler_counters.rs`. Hand-computed
    /// (DESIGN.md §14): ld.global completes at 28; the 2-way shared load
    /// adds max(24 + 4, 8) = 28 → 56; popc +6 → 62; the first add +6 → 68;
    /// each further trip's add chains +6 → 68 + 9·6 = 122. Issue totals
    /// [10, 0, 40, 84] peak at 84, dynamic instrs 31 → bound 122.
    fn pinned_gtx_kernel() -> Program {
        Program::new(vec![
            Block::once(vec![Instr::load_global(0, &[])]),
            Block::looped(
                10,
                vec![
                    Instr::load_shared(1, &[0], 2),
                    Instr::arith(InstrClass::Popc, 2, &[1]),
                    Instr::arith(InstrClass::IntAdd, 3, &[3, 2]),
                ],
            ),
        ])
    }

    /// The pinned TC100 MMA kernel of `mma_plan.rs`. Hand-computed:
    /// ld.global 28; ld.shared +24 → 52; first mma +8 → 60, nine more
    /// carried mma +8 each → 132; the add chains +4 → 136. Issue totals
    /// [20, 0, 0, 44, 40] peak at 44, dynamic instrs 31 → bound 136.
    fn pinned_mma_kernel() -> Program {
        Program::new(vec![
            Block::once(vec![Instr::load_global(0, &[])]),
            Block::looped(
                10,
                vec![
                    Instr::load_shared(1, &[0], 1),
                    Instr::arith(InstrClass::Mma, 2, &[1, 0, 2]),
                    Instr::arith(InstrClass::IntAdd, 3, &[3, 2]),
                ],
            ),
        ])
    }

    #[test]
    fn pinned_gtx_kernel_critical_path() {
        let dev = devices::gtx_980();
        let cp = critical_path(&dev, &pinned_gtx_kernel());
        assert_eq!(cp.chain_cycles, 122);
        assert_eq!(cp.pipe_issue_cycles, vec![10, 0, 40, 84]);
        assert_eq!(cp.dynamic_instrs, 31);
        assert_eq!(cp.lower_bound_cycles(), 122);
        // once-block span: the load's completion (28); the loop carries the
        // rest (122 − 28 = 94) and is latency-bound (94 > 84).
        assert_eq!(cp.per_block[0].chain_span, 28);
        assert_eq!(cp.per_block[1].chain_span, 94);
        assert!(cp.per_block[1].latency_bound());
    }

    #[test]
    fn pinned_mma_kernel_critical_path() {
        let dev = devices::tc100();
        let cp = critical_path(&dev, &pinned_mma_kernel());
        assert_eq!(cp.chain_cycles, 136);
        assert_eq!(cp.pipe_issue_cycles, vec![20, 0, 0, 44, 40]);
        assert_eq!(cp.lower_bound_cycles(), 136);
    }

    #[test]
    fn lower_bound_never_exceeds_detailed_measurement() {
        for prog in [pinned_gtx_kernel(), pinned_mma_kernel()] {
            for dev in devices::all_gpus() {
                if !supports_program(&dev, &prog) {
                    continue;
                }
                let cp = critical_path(&dev, &prog);
                let det = simulate_core(&dev, &prog, 1, 1_000_000).unwrap();
                assert!(
                    cp.lower_bound_cycles() <= det.cycles,
                    "{}: bound {} > measured {}",
                    dev.name,
                    cp.lower_bound_cycles(),
                    det.cycles,
                );
            }
        }
    }

    #[test]
    fn long_loop_extrapolation_matches_exact_iteration() {
        let dev = devices::gtx_980();
        // Same body, one trip count below the cap and one far above: the
        // extrapolated chain must equal the closed form of the exact walk
        // (per-trip delta 6 from the dependent add).
        let body = vec![
            Instr::load_shared(1, &[0], 1),
            Instr::arith(InstrClass::Popc, 2, &[1]),
            Instr::arith(InstrClass::IntAdd, 3, &[3, 2]),
        ];
        let short = Program::new(vec![Block::looped(EXACT_TRIPS, body.clone())]);
        let long = Program::new(vec![Block::looped(EXACT_TRIPS * 4, body)]);
        let cs = critical_path(&dev, &short);
        let cl = critical_path(&dev, &long);
        let per_trip = (cs.chain_cycles
            - critical_path(
                &dev,
                &Program::new(vec![Block::looped(
                    EXACT_TRIPS - 1,
                    vec![
                        Instr::load_shared(1, &[0], 1),
                        Instr::arith(InstrClass::Popc, 2, &[1]),
                        Instr::arith(InstrClass::IntAdd, 3, &[3, 2]),
                    ],
                )]),
            )
            .chain_cycles) as u64;
        assert_eq!(
            cl.chain_cycles,
            cs.chain_cycles + per_trip * (EXACT_TRIPS as u64 * 3),
        );
    }

    #[test]
    fn undercut_cost_is_an_error_and_honest_cost_is_not() {
        let dev = devices::gtx_980();
        let prog = pinned_gtx_kernel();
        let low = lint_critpath(&dev, &facts(prog.clone(), 100.0));
        let d = low.with_code("V113-CRITPATH").next().unwrap();
        assert_eq!(d.severity, Severity::Error);
        assert!(low.has_errors());
        let ok = lint_critpath(&dev, &facts(prog, 130.0));
        assert!(!ok.has_errors(), "{}", ok.render_text("t"));
        // The Info summary is always present for a non-empty program.
        assert_eq!(ok.with_code("V113-CRITPATH").count(), 1);
    }

    #[test]
    fn unsupported_class_defers_to_v107() {
        let dev = devices::gtx_980();
        let prog = Program::new(vec![Block::once(vec![
            Instr::load_global(0, &[]),
            Instr::arith(InstrClass::Mma, 1, &[0, 0, 1]),
        ])]);
        assert!(!supports_program(&dev, &prog));
        let report = lint_critpath(&dev, &facts(prog, 1.0));
        assert!(report.diagnostics.is_empty());
    }

    #[test]
    fn cross_lowering_flags_dropped_and_phantom_work() {
        let dev = devices::tc100();
        let mu_ops = dev.matrix_unit.unwrap().word_ops_per_instr(dev.word_bits);
        assert_eq!(mu_ops, 256);
        // A scalar body popcounting 8 words/thread/trip and an mma body
        // loading the same 8 registers but retiring one 256-word-op fragment
        // per trip describe identical work over 32 trips:
        // 8 · 32 threads · 32 trips = 256 · 32 trips = 8192 word-ops,
        // with the same 8 global loads per trip.
        let scalar_prog = Program::new(vec![Block::looped(
            32,
            (0..8)
                .flat_map(|i| {
                    [
                        Instr::load_global(i, &[]),
                        Instr::arith(InstrClass::Popc, 8 + i, &[i]),
                    ]
                })
                .collect(),
        )]);
        let mma_prog = Program::new(vec![Block::looped(
            32,
            (0..8)
                .map(|i| Instr::load_global(i, &[]))
                .chain([Instr::arith(InstrClass::Mma, 8, &[0, 1, 8])])
                .collect(),
        )]);
        assert_eq!(executed_word_ops(&dev, &scalar_prog), 8 * 32 * 32);
        assert_eq!(executed_word_ops(&dev, &mma_prog), mu_ops as u128 * 32);
        let s = facts(scalar_prog, 1.0);
        let m = facts(mma_prog, 1.0);
        let report = lint_cross_lowering(&dev, &s, &m);
        assert!(
            !report.has_errors(),
            "consistent lowerings must pass: {}",
            report.render_text("t")
        );
        // Dropping mma trips drops fragments' worth of work (and loads).
        let mut dropped = m.clone();
        dropped.program.blocks[0].trips = 16;
        let report = lint_cross_lowering(&dev, &s, &dropped);
        assert!(report.has_errors());
        // Doubling the trips overshoots even the padding allowance.
        let mut phantom = m.clone();
        phantom.program.blocks[0].trips = 64;
        let report = lint_cross_lowering(&dev, &s, &phantom);
        assert!(report.has_errors());
    }

    #[test]
    fn cross_lowering_flags_store_mismatch() {
        let dev = devices::tc100();
        let a = facts(
            Program::new(vec![Block::once(vec![
                Instr::load_global(0, &[]),
                Instr::store_global(&[0]),
            ])]),
            1.0,
        );
        let mut b = a.clone();
        b.program.blocks[0].instrs.push(Instr::store_global(&[0]));
        let report = lint_cross_lowering(&dev, &a, &b);
        assert!(report.has_errors());
        let msg = &report
            .with_code("V114-CROSS-LOWERING")
            .next()
            .unwrap()
            .message;
        assert!(msg.contains("st.global"), "{msg}");
    }
}
