//! Trip-sensitive dataflow over the timing ISA (DESIGN.md §14).
//!
//! The [`Program`](snp_gpu_sim::isa::Program) block/trips structure is a
//! straight-line sequence of counted loops, which makes classical dataflow
//! *exact* rather than fixed-point-approximate: every block executes once,
//! in order, and a looped body repeats verbatim. The analyses here interpret
//! that structure precisely:
//!
//! * **Reaching definitions** ([`reach`]) resolve each register read to the
//!   definition it observes — earlier in the same trip, *loop-carried* from
//!   the previous trip, from an earlier block, or the implicit zero the
//!   engines initialize every register to (`reg_ready = 0` in the detailed
//!   engine's scoreboard — the lattice bottom ⊥ = 0).
//! * **First-trip reads** ([`Dataflow::implicit_reads`]) upgrade the flat
//!   V101 undefined-register lint: a register written only *after* its
//!   first read inside a looped body is invisible to V101 (it *is* written
//!   somewhere) but reads ⊥ on trip one. The self-accumulation idiom
//!   (`acc ← acc + x`, the paper kernel's γ accumulators) is recognized and
//!   reported at note severity; a genuine use-before-def is an error.
//! * **Backward liveness** ([`Dataflow::live_in`]) across blocks, with
//!   loop-carried uses keeping accumulators live through their block, feeds
//!   dead-write detection (V111) and the live-range register-pressure
//!   report (V112) — the occupancy headroom a renaming pass would unlock.
//!
//! The rules are wired into [`lint_kernel_deep`](crate::lint_kernel_deep)
//! and surfaced by `snpgpu lint --deep`.

use crate::diag::{Diagnostic, Report, Severity};
use crate::lint::PlanFacts;
use snp_gpu_model::DeviceSpec;
use snp_gpu_sim::isa::{Program, Reg};

/// A static definition site: `instrs[instr]` of `blocks[block]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DefSite {
    /// Block index.
    pub block: usize,
    /// Instruction index within the block body.
    pub instr: usize,
}

/// The definition a register read observes, in decreasing precedence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReachingDef {
    /// Defined earlier in the same trip of the same block.
    SameTrip(DefSite),
    /// Defined by the previous trip of the same block (the last definition
    /// in the body) — a loop-carried edge, not an undefined read.
    LoopCarried(DefSite),
    /// Defined by an earlier block (the latest such definition).
    PriorBlock(DefSite),
    /// No definition executes before the read: the value is the implicit
    /// zero every register starts with (lattice bottom ⊥ = 0).
    ImplicitZero,
}

/// Why a first-trip read observes the implicit zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ImplicitKind {
    /// The instruction reads its own destination (`acc ← acc + x`): the
    /// accumulate-from-zero idiom of the paper kernels. Reported as a note.
    SelfAccumulate,
    /// A *different*, later instruction of the same looped body defines the
    /// register: trips ≥ 2 read the carried value, trip one reads zero —
    /// software pipelining if intentional, a rotated loop body if not.
    Pipelined,
    /// The register's first definition executes strictly after the read
    /// with no loop-carried path to it: a genuine use-before-def.
    UseBeforeDef(DefSite),
    /// No instruction anywhere defines the register (V101's territory; the
    /// deep rules leave the diagnostic to V101).
    NeverWritten,
}

/// One first-trip read that observes the implicit zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ImplicitZeroRead {
    /// Block of the reading instruction.
    pub block: usize,
    /// Index of the reading instruction.
    pub instr: usize,
    /// The register read.
    pub reg: Reg,
    /// Classification of the read.
    pub kind: ImplicitKind,
}

/// A write whose value is never read before being overwritten (or before
/// the program ends): a wasted issue slot. Loop-carried and cross-block
/// uses are honored, so a value read on *any* continuation is not dead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeadWrite {
    /// Block of the writing instruction.
    pub block: usize,
    /// Index of the writing instruction.
    pub instr: usize,
    /// The register written.
    pub reg: Reg,
}

/// Live-range register pressure of a program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegPressure {
    /// Maximum simultaneously-live registers over all program points
    /// (steady-state trips included).
    pub max_live: usize,
    /// Registers the program *allocates* (`Program::reg_count`): the gap to
    /// `max_live` is what renaming would reclaim.
    pub reg_count: usize,
    /// Block where the maximum occurs.
    pub block: usize,
    /// Instruction before which the maximum occurs.
    pub instr: usize,
}

/// Dense register set sized to a program's `reg_count`.
struct RegSet {
    bits: Vec<bool>,
    len: usize,
}

impl RegSet {
    fn new(n: usize) -> RegSet {
        RegSet {
            bits: vec![false; n],
            len: 0,
        }
    }

    fn insert(&mut self, r: Reg) {
        let slot = &mut self.bits[r as usize];
        if !*slot {
            *slot = true;
            self.len += 1;
        }
    }

    fn remove(&mut self, r: Reg) {
        let slot = &mut self.bits[r as usize];
        if *slot {
            *slot = false;
            self.len -= 1;
        }
    }

    fn contains(&self, r: Reg) -> bool {
        self.bits[r as usize]
    }

    fn to_sorted_vec(&self) -> Vec<Reg> {
        self.bits
            .iter()
            .enumerate()
            .filter(|&(_, &b)| b)
            .map(|(r, _)| r as Reg)
            .collect()
    }
}

/// Resolves the definition the read of `reg` by `blocks[block].instrs[instr]`
/// observes. With `first_trip` the loop-carried edge is unavailable (there
/// is no previous trip yet); otherwise the query describes every trip ≥ 2.
/// Skipped blocks (zero trips or empty) define nothing, matching the
/// engines.
pub fn reach(
    prog: &Program,
    block: usize,
    instr: usize,
    reg: Reg,
    first_trip: bool,
) -> ReachingDef {
    let body = &prog.blocks[block].instrs;
    // Latest definition earlier in the same trip.
    if let Some(j) = (0..instr).rev().find(|&j| body[j].dst == Some(reg)) {
        return ReachingDef::SameTrip(DefSite { block, instr: j });
    }
    // Loop-carried: the previous trip's last definition.
    if !first_trip && prog.blocks[block].trips > 1 {
        if let Some(j) = (0..body.len()).rev().find(|&j| body[j].dst == Some(reg)) {
            return ReachingDef::LoopCarried(DefSite { block, instr: j });
        }
    }
    // Latest definition in an earlier executing block.
    for b in (0..block).rev() {
        if !prog.blocks[b].executes() {
            continue;
        }
        if let Some(j) = (0..prog.blocks[b].instrs.len())
            .rev()
            .find(|&j| prog.blocks[b].instrs[j].dst == Some(reg))
        {
            return ReachingDef::PriorBlock(DefSite { block: b, instr: j });
        }
    }
    ReachingDef::ImplicitZero
}

/// The computed dataflow facts of one program.
#[derive(Debug)]
pub struct Dataflow {
    live_in: Vec<Vec<Reg>>,
    live_out: Vec<Vec<Reg>>,
    /// Live-range pressure over the whole program.
    pub pressure: RegPressure,
    /// Dead writes, in program order.
    pub dead_writes: Vec<DeadWrite>,
    /// First-trip implicit-zero reads, in program order.
    pub implicit_reads: Vec<ImplicitZeroRead>,
}

impl Dataflow {
    /// Registers live on entry to `blocks[block]`, sorted ascending.
    pub fn live_in(&self, block: usize) -> &[Reg] {
        &self.live_in[block]
    }

    /// Registers live on exit from `blocks[block]`, sorted ascending.
    pub fn live_out(&self, block: usize) -> &[Reg] {
        &self.live_out[block]
    }

    /// Runs the analysis on `prog`.
    pub fn analyze(prog: &Program) -> Dataflow {
        let n_regs = prog.reg_count();
        let n_blocks = prog.blocks.len();

        // Per-block first-trip use set (read before any earlier-in-trip
        // definition) and definition set.
        let mut use_sets: Vec<Vec<Reg>> = Vec::with_capacity(n_blocks);
        let mut def_sets: Vec<Vec<bool>> = Vec::with_capacity(n_blocks);
        for block in &prog.blocks {
            let mut uses = RegSet::new(n_regs);
            let mut defd = vec![false; n_regs];
            if block.executes() {
                for instr in &block.instrs {
                    for &s in &instr.srcs {
                        if !defd[s as usize] {
                            uses.insert(s);
                        }
                    }
                    if let Some(d) = instr.dst {
                        defd[d as usize] = true;
                    }
                }
            }
            use_sets.push(uses.to_sorted_vec());
            def_sets.push(defd);
        }

        // Backward liveness. Blocks are a straight line, so one pass is the
        // fixed point; loop-carried uses are in the use set by construction
        // (a carried read has no earlier-in-trip definition).
        let mut live_in: Vec<Vec<Reg>> = vec![Vec::new(); n_blocks];
        let mut live_out: Vec<Vec<Reg>> = vec![Vec::new(); n_blocks];
        let mut live = RegSet::new(n_regs);
        for b in (0..n_blocks).rev() {
            live_out[b] = live.to_sorted_vec();
            if prog.blocks[b].executes() {
                for (r, &defined) in def_sets[b].iter().enumerate() {
                    if defined {
                        live.remove(r as Reg);
                    }
                }
                for &r in &use_sets[b] {
                    live.insert(r);
                }
            }
            live_in[b] = live.to_sorted_vec();
        }

        // Steady-state backward walk per block: dead writes and pressure.
        // The walk's end set is live_out ∪ carried uses — the union of every
        // continuation a write can be read on (later blocks, or the next
        // trip), so a write reported dead is dead on *every* trip.
        let mut pressure = RegPressure {
            max_live: 0,
            reg_count: n_regs,
            block: 0,
            instr: 0,
        };
        let mut dead_writes = Vec::new();
        for (b, block) in prog.blocks.iter().enumerate() {
            if !block.executes() {
                continue;
            }
            let mut set = RegSet::new(n_regs);
            for &r in &live_out[b] {
                set.insert(r);
            }
            if block.trips > 1 {
                for &r in &use_sets[b] {
                    set.insert(r);
                }
            }
            if set.len > pressure.max_live {
                pressure = RegPressure {
                    max_live: set.len,
                    reg_count: n_regs,
                    block: b,
                    instr: block.instrs.len(),
                };
            }
            for (i, instr) in block.instrs.iter().enumerate().rev() {
                if let Some(d) = instr.dst {
                    if !set.contains(d) {
                        dead_writes.push(DeadWrite {
                            block: b,
                            instr: i,
                            reg: d,
                        });
                    }
                    set.remove(d);
                }
                for &s in &instr.srcs {
                    set.insert(s);
                }
                if set.len > pressure.max_live {
                    pressure = RegPressure {
                        max_live: set.len,
                        reg_count: n_regs,
                        block: b,
                        instr: i,
                    };
                }
            }
        }
        dead_writes.reverse();
        dead_writes.sort_by_key(|d| (d.block, d.instr, d.reg));

        // First-trip implicit-zero reads, classified.
        let mut implicit_reads = Vec::new();
        for (b, i, instr) in prog.iter_instrs() {
            for &s in &instr.srcs {
                if reach(prog, b, i, s, true) != ReachingDef::ImplicitZero {
                    continue;
                }
                let body = &prog.blocks[b].instrs;
                let kind = if instr.dst == Some(s) {
                    ImplicitKind::SelfAccumulate
                } else if prog.blocks[b].trips > 1 && body.iter().any(|x| x.dst == Some(s)) {
                    ImplicitKind::Pipelined
                } else if let Some(j) = (i..body.len()).find(|&j| body[j].dst == Some(s)) {
                    ImplicitKind::UseBeforeDef(DefSite { block: b, instr: j })
                } else if let Some(site) = first_def_after(prog, b, s) {
                    ImplicitKind::UseBeforeDef(site)
                } else {
                    ImplicitKind::NeverWritten
                };
                implicit_reads.push(ImplicitZeroRead {
                    block: b,
                    instr: i,
                    reg: s,
                    kind,
                });
            }
        }

        Dataflow {
            live_in,
            live_out,
            pressure,
            dead_writes,
            implicit_reads,
        }
    }
}

/// First definition of `reg` in an executing block strictly after `block`.
fn first_def_after(prog: &Program, block: usize, reg: Reg) -> Option<DefSite> {
    prog.iter_instrs()
        .find(|&(b, _, instr)| b > block && instr.dst == Some(reg))
        .map(|(b, i, _)| DefSite { block: b, instr: i })
}

/// Thread groups one core can host when every thread holds `regs` registers
/// (the register-file occupancy bound, capped by the scheduler limit).
fn groups_supported(dev: &DeviceSpec, regs: usize) -> u32 {
    if regs == 0 {
        return dev.max_thread_groups;
    }
    (dev.registers_per_core / (dev.n_t * regs as u32).max(1)).min(dev.max_thread_groups)
}

/// Formats a register list for a diagnostic, capped at eight entries.
fn reg_list(regs: &[Reg]) -> String {
    let mut s: Vec<String> = regs.iter().take(8).map(|r| format!("r{r}")).collect();
    if regs.len() > 8 {
        s.push(format!("+{} more", regs.len() - 8));
    }
    s.join(", ")
}

/// The trip-sensitive dataflow rules V110–V112 over one planned kernel.
///
/// * **V110-READ-BEFORE-WRITE** — first-trip reads of the implicit zero: a
///   genuine use-before-def is an error; a rotated/pipelined looped body is
///   a warning (trips ≥ 2 are carried, trip one reads zero); the
///   self-accumulation idiom is a per-block note. Registers never written
///   anywhere are left to V101.
/// * **V111-DEAD-WRITE** — writes never read on any continuation.
/// * **V112-LIVE-PRESSURE** — max simultaneously-live registers vs the
///   allocated count, and the occupancy headroom renaming would unlock
///   (`regs_per_thread_at_occupancy`). Escalates to a warning only when
///   even the *live* pressure exceeds the registers available at the
///   configured occupancy.
pub fn lint_dataflow(dev: &DeviceSpec, facts: &PlanFacts) -> Report {
    let prog = &facts.program;
    let df = Dataflow::analyze(prog);
    let mut report = Report::default();

    // V110: errors and warnings per site, idiom notes aggregated per block.
    let mut idiom_blocks: Vec<(usize, Vec<Reg>)> = Vec::new();
    for r in &df.implicit_reads {
        match r.kind {
            ImplicitKind::UseBeforeDef(def) => {
                report.diagnostics.push(Diagnostic::new(
                    "V110-READ-BEFORE-WRITE",
                    Severity::Error,
                    format!(
                        "block {} instr {} reads r{} before its first write (defined at \
                         block {} instr {}): the read observes the implicit zero",
                        r.block, r.instr, r.reg, def.block, def.instr,
                    ),
                ));
            }
            ImplicitKind::Pipelined => {
                report.diagnostics.push(Diagnostic::new(
                    "V110-READ-BEFORE-WRITE",
                    Severity::Warning,
                    format!(
                        "block {} instr {} reads r{} written only later in the looped body: \
                         trips 2+ carry the previous trip's value but the first trip reads \
                         the implicit zero",
                        r.block, r.instr, r.reg,
                    ),
                ));
            }
            ImplicitKind::SelfAccumulate => {
                match idiom_blocks.iter_mut().find(|(b, _)| *b == r.block) {
                    Some((_, regs)) => {
                        if !regs.contains(&r.reg) {
                            regs.push(r.reg);
                        }
                    }
                    None => idiom_blocks.push((r.block, vec![r.reg])),
                }
            }
            ImplicitKind::NeverWritten => {} // V101 reports these.
        }
    }
    for (b, mut regs) in idiom_blocks {
        regs.sort_unstable();
        report.diagnostics.push(Diagnostic::new(
            "V110-READ-BEFORE-WRITE",
            Severity::Info,
            format!(
                "block {b}: {} register(s) accumulate from the implicit zero \
                 (self-accumulation idiom: {})",
                regs.len(),
                reg_list(&regs),
            ),
        ));
    }

    // V111: dead writes (wasted issue slots), capped to keep reports short.
    const MAX_DEAD_REPORTS: usize = 16;
    for dw in df.dead_writes.iter().take(MAX_DEAD_REPORTS) {
        report.diagnostics.push(Diagnostic::new(
            "V111-DEAD-WRITE",
            Severity::Warning,
            format!(
                "block {} instr {}: write to r{} is never read before being overwritten \
                 or program end — a wasted issue slot every trip",
                dw.block, dw.instr, dw.reg,
            ),
        ));
    }
    if df.dead_writes.len() > MAX_DEAD_REPORTS {
        report.diagnostics.push(Diagnostic::new(
            "V111-DEAD-WRITE",
            Severity::Warning,
            format!(
                "{} further dead write(s) suppressed",
                df.dead_writes.len() - MAX_DEAD_REPORTS,
            ),
        ));
    }

    // V112: live-range pressure and the renaming/occupancy headroom.
    let p = &df.pressure;
    if p.reg_count > 0 {
        let avail = dev.regs_per_thread_at_occupancy(facts.groups_per_core);
        let now = groups_supported(dev, p.reg_count);
        let renamed = groups_supported(dev, p.max_live);
        let severity = if p.max_live > avail as usize {
            Severity::Warning
        } else {
            Severity::Info
        };
        report.diagnostics.push(Diagnostic::new(
            "V112-LIVE-PRESSURE",
            severity,
            format!(
                "live-range pressure {} of {} allocated registers (peak before block {} \
                 instr {}); {} registers/thread available at the configured {} groups; \
                 renaming would free {} and lift the register-file occupancy bound from \
                 {} to {} groups per core",
                p.max_live,
                p.reg_count,
                p.block,
                p.instr,
                avail,
                facts.groups_per_core,
                p.reg_count - p.max_live,
                now,
                renamed,
            ),
        ));
        if p.reg_count > avail as usize && p.max_live <= avail as usize {
            report.diagnostics.push(Diagnostic::new(
                "V112-LIVE-PRESSURE",
                Severity::Info,
                format!(
                    "allocated registers ({}) exceed the {} available at {} resident \
                     groups, but the live pressure ({}) fits: the configured occupancy \
                     depends on register renaming",
                    p.reg_count, avail, facts.groups_per_core, p.max_live,
                ),
            ));
        }
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use snp_gpu_model::{devices, InstrClass, WordOpKind};
    use snp_gpu_sim::isa::{Block, Instr};

    fn facts(program: Program) -> PlanFacts {
        PlanFacts {
            program,
            groups_per_core: 1,
            core_cycles: 1e6,
            active_cores: 1,
            word_ops: 0.0,
            op_kind: WordOpKind::And,
            uses_matrix_unit: false,
        }
    }

    /// The pinned 31-instruction GTX 980 kernel of `profiler_counters.rs`:
    /// once[ld.global r0]; loop×10[ld.shared r1←[r0] 2-way; popc r2←[r1];
    /// add r3←[r3,r2]].
    fn pinned_kernel() -> Program {
        Program::new(vec![
            Block::once(vec![Instr::load_global(0, &[])]),
            Block::looped(
                10,
                vec![
                    Instr::load_shared(1, &[0], 2),
                    Instr::arith(InstrClass::Popc, 2, &[1]),
                    Instr::arith(InstrClass::IntAdd, 3, &[3, 2]),
                ],
            ),
        ])
    }

    #[test]
    fn reaching_defs_resolve_trip_sensitively() {
        let p = pinned_kernel();
        // popc reads r1 defined earlier in the same trip.
        assert_eq!(
            reach(&p, 1, 1, 1, true),
            ReachingDef::SameTrip(DefSite { block: 1, instr: 0 })
        );
        // The shared load reads r0 from the prior block on every trip.
        assert_eq!(
            reach(&p, 1, 0, 0, true),
            ReachingDef::PriorBlock(DefSite { block: 0, instr: 0 })
        );
        // The accumulator is implicit zero on trip one, carried afterwards.
        assert_eq!(reach(&p, 1, 2, 3, true), ReachingDef::ImplicitZero);
        assert_eq!(
            reach(&p, 1, 2, 3, false),
            ReachingDef::LoopCarried(DefSite { block: 1, instr: 2 })
        );
    }

    #[test]
    fn pinned_kernel_liveness_and_pressure() {
        let p = pinned_kernel();
        let df = Dataflow::analyze(&p);
        // r3 is live into the whole program (accumulates from ⊥ = 0); r0
        // crosses from block 0 into the loop.
        assert_eq!(df.live_in(0), &[3]);
        assert_eq!(df.live_in(1), &[0, 3]);
        assert_eq!(df.live_out(1), &[] as &[Reg]);
        // Hand-computed: the widest point holds {r0, r2, r3} (equivalently
        // {r0, r1, r3}) — 3 live of 4 allocated.
        assert_eq!(df.pressure.max_live, 3);
        assert_eq!(df.pressure.reg_count, 4);
        assert!(df.dead_writes.is_empty());
        // The only implicit-zero read is the accumulator idiom.
        assert_eq!(df.implicit_reads.len(), 1);
        assert_eq!(df.implicit_reads[0].reg, 3);
        assert_eq!(df.implicit_reads[0].kind, ImplicitKind::SelfAccumulate);
    }

    #[test]
    fn use_before_def_in_straight_line_is_an_error() {
        // Swapped staging pair: the store reads r5 before the load defines it.
        let p = Program::new(vec![Block::once(vec![
            Instr::store_shared(&[5], 1),
            Instr::load_global(5, &[]),
            Instr::store_global(&[5]),
        ])]);
        let dev = devices::gtx_980();
        let report = lint_dataflow(&dev, &facts(p));
        let d = report.with_code("V110-READ-BEFORE-WRITE").next().unwrap();
        assert_eq!(d.severity, Severity::Error);
        assert!(d.message.contains("r5"), "{}", d.message);
    }

    #[test]
    fn cross_block_use_before_first_def_is_an_error() {
        // Block 0 reads r2; only block 1 defines it.
        let p = Program::new(vec![
            Block::once(vec![Instr::store_global(&[2])]),
            Block::once(vec![Instr::load_global(2, &[]), Instr::store_global(&[2])]),
        ]);
        let dev = devices::gtx_980();
        let report = lint_dataflow(&dev, &facts(p));
        assert!(report.has_errors());
        assert_eq!(report.with_code("V110-READ-BEFORE-WRITE").count(), 1);
    }

    #[test]
    fn pipelined_body_warns_but_never_written_defers_to_v101() {
        // r7 is read at the top of the looped body and written at the
        // bottom by a different instruction: carried on trips 2+, zero on
        // trip 1 — warning. r9 is never written: left to V101.
        let p = Program::new(vec![Block::looped(
            4,
            vec![
                Instr::arith(InstrClass::Popc, 1, &[7]),
                Instr::load_global(7, &[9]),
                Instr::store_global(&[1]),
            ],
        )]);
        let dev = devices::gtx_980();
        let report = lint_dataflow(&dev, &facts(p.clone()));
        let warns: Vec<_> = report
            .with_code("V110-READ-BEFORE-WRITE")
            .filter(|d| d.severity == Severity::Warning)
            .collect();
        assert_eq!(warns.len(), 1);
        assert!(warns[0].message.contains("r7"));
        assert!(!report.has_errors(), "{}", report.render_text("t"));
        let df = Dataflow::analyze(&facts(p.clone()).program);
        assert!(df
            .implicit_reads
            .iter()
            .any(|r| r.reg == 9 && r.kind == ImplicitKind::NeverWritten));
    }

    #[test]
    fn dead_write_flagged_with_site() {
        // r4 is written every trip and never read anywhere.
        let p = Program::new(vec![
            Block::once(vec![Instr::load_global(0, &[])]),
            Block::looped(
                8,
                vec![
                    Instr::arith(InstrClass::Logic, 4, &[0]),
                    Instr::arith(InstrClass::Popc, 1, &[0]),
                ],
            ),
            Block::once(vec![Instr::store_global(&[1])]),
        ]);
        let dev = devices::gtx_980();
        let report = lint_dataflow(&dev, &facts(p.clone()));
        let d = report.with_code("V111-DEAD-WRITE").next().unwrap();
        assert_eq!(d.severity, Severity::Warning);
        assert!(d.message.contains("r4"), "{}", d.message);
        let df = Dataflow::analyze(&p);
        assert_eq!(
            df.dead_writes,
            vec![DeadWrite {
                block: 1,
                instr: 0,
                reg: 4
            }]
        );
    }

    #[test]
    fn overwritten_before_read_is_dead_but_carried_self_use_is_not() {
        // Body: read r2 (carried), def r2 (dead — next trip reads the
        // *last* def), def r2 again (live via the carried read).
        let p = Program::new(vec![Block::looped(
            5,
            vec![
                Instr::arith(InstrClass::Popc, 1, &[2]),
                Instr::arith(InstrClass::Logic, 2, &[1]),
                Instr::arith(InstrClass::Logic, 2, &[1]),
                Instr::store_global(&[2]),
            ],
        )]);
        let df = Dataflow::analyze(&p);
        assert_eq!(
            df.dead_writes,
            vec![DeadWrite {
                block: 0,
                instr: 1,
                reg: 2
            }]
        );
    }

    #[test]
    fn pressure_reports_renaming_headroom() {
        let dev = devices::gtx_980();
        let p = pinned_kernel();
        let report = lint_dataflow(&dev, &facts(p));
        let d = report.with_code("V112-LIVE-PRESSURE").next().unwrap();
        assert_eq!(d.severity, Severity::Info);
        assert!(d.message.contains("pressure 3 of 4"), "{}", d.message);
    }

    #[test]
    fn zero_trip_blocks_define_nothing() {
        // The def of r1 sits in a zero-trip block, so the read in block 1
        // is genuinely undefined (never written from the engines' view).
        let p = Program::new(vec![
            Block::looped(0, vec![Instr::load_global(1, &[])]),
            Block::once(vec![Instr::store_global(&[1])]),
        ]);
        let df = Dataflow::analyze(&p);
        assert_eq!(df.implicit_reads.len(), 1);
        assert_eq!(df.implicit_reads[0].kind, ImplicitKind::NeverWritten);
        assert_eq!(reach(&p, 1, 0, 1, true), ReachingDef::ImplicitZero);
    }

    #[test]
    fn empty_program_analyzes_cleanly() {
        let df = Dataflow::analyze(&Program::default());
        assert_eq!(df.pressure.max_live, 0);
        assert!(df.dead_writes.is_empty());
        assert!(df.implicit_reads.is_empty());
    }
}
