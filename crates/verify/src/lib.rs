//! # snp-verify — static analyzers for the simulated GPU stack
//!
//! Two analyzers over artifacts the rest of the workspace already builds
//! (DESIGN.md §9):
//!
//! * [`verify_command_log`] — a vector-clock **race detector** over the
//!   host's command DAG. The simulator's functional semantics are enqueue-
//!   order, so a dropped event edge costs nothing *here* — but on a real
//!   OpenCL device it is a data race. The detector reports RAW/WAR/WAW
//!   hazards (`V001`–`V003`), dead events (`V004`), transitively redundant
//!   waits (`V005`) and cross-queue overlap statistics (`V006`).
//! * [`lint_kernel`] — a **kernel/ISA linter** checking a planned launch
//!   against its device: undefined registers (`V101`), register pressure
//!   vs the architectural cap (`V102`), shared-memory capacity (`V103`),
//!   bank-conflict degrees vs `N_b` (`V104`), degenerate blocks (`V105`)
//!   and declared costs that beat the Eq. 4–7 peak model (`V106`).
//! * [`lint_kernel_deep`] — the above plus the **dataflow /
//!   abstract-interpretation layer** (DESIGN.md §14): trip-sensitive
//!   reaching definitions with loop-carried edges, first-trip
//!   read-before-write (`V110`), dead writes (`V111`), live-range register
//!   pressure and the occupancy headroom renaming would unlock (`V112`),
//!   a latency-weighted static critical-path lower bound reconciled
//!   against the declared analytic cost (`V113`), and scalar-vs-MMA
//!   cross-lowering consistency ([`lint_cross_lowering`], `V114`).
//!
//! All return a [`Report`] of coded [`Diagnostic`]s; [`VerifyError`] wraps
//! a failing report as a `std::error::Error` so gates compose with `?`.
//!
//! ```
//! use snp_gpu_model::devices;
//! use snp_gpu_sim::host::{Gpu, KernelCost};
//! use snp_gpu_sim::macro_engine::Traffic;
//!
//! let gpu = Gpu::new(devices::gtx_980());
//! let (q0, q1) = (gpu.create_queue(), gpu.create_queue());
//! let src = gpu.create_virtual_buffer(1024).unwrap();
//! let dst = gpu.create_virtual_buffer(1024).unwrap();
//! let cost = KernelCost::Analytic { core_cycles: 1e5, active_cores: 4, traffic: Traffic::default() };
//! let ev = gpu.enqueue_virtual_write(q0, src, 0, 1024, &[]).unwrap();
//! // Forget `&[ev]` and the kernel races the transfer on a real device:
//! let k = gpu.enqueue_kernel_timed_on(q1, &cost, &[src], dst, &[]).unwrap();
//! let _ = (gpu.event_profile(ev).unwrap(), gpu.event_profile(k).unwrap());
//! let report = snp_verify::verify_command_log(&gpu.command_log());
//! assert_eq!(report.with_code("V001-RAW").count(), 1);
//! ```

#![warn(missing_docs)]

pub mod critpath;
pub mod dataflow;
pub mod diag;
pub mod lint;
pub mod race;

pub use critpath::{critical_path, lint_critpath, lint_cross_lowering, supports_program, CritPath};
pub use dataflow::{lint_dataflow, Dataflow, RegPressure};
pub use diag::{json_escape, Diagnostic, Report, Severity, VerifyError};
pub use lint::{lint_kernel, lint_kernel_deep, PlanFacts};
pub use race::verify_command_log;
