//! Property-based tests for the bit-matrix substrate.

use proptest::prelude::*;
use snp_bitmat::{reference_gamma, reference_gamma_self, BitMatrix, CompareOp, PackedPanels};

/// Strategy: a random bit matrix with the given bounds, as bool rows.
fn bit_matrix(max_rows: usize, max_cols: usize) -> impl Strategy<Value = BitMatrix<u64>> {
    (1..=max_rows, 1..=max_cols).prop_flat_map(|(r, c)| {
        prop::collection::vec(prop::collection::vec(any::<bool>(), c), r)
            .prop_map(move |rows| BitMatrix::from_bool_rows(&rows))
    })
}

fn pair_same_cols(
    max_rows: usize,
    max_cols: usize,
) -> impl Strategy<Value = (BitMatrix<u64>, BitMatrix<u64>)> {
    (1..=max_rows, 1..=max_rows, 1..=max_cols).prop_flat_map(|(ra, rb, c)| {
        let a = prop::collection::vec(prop::collection::vec(any::<bool>(), c), ra)
            .prop_map(move |rows| BitMatrix::from_bool_rows(&rows));
        let b = prop::collection::vec(prop::collection::vec(any::<bool>(), c), rb)
            .prop_map(move |rows| BitMatrix::from_bool_rows(&rows));
        (a, b)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// get/set round-trip for arbitrary matrices, plus padding invariant.
    #[test]
    fn construction_preserves_bits(m in bit_matrix(12, 200)) {
        prop_assert!(m.padding_is_zero());
        let copy = BitMatrix::<u64>::from_fn(m.rows(), m.cols(), |r, c| m.get(r, c));
        prop_assert_eq!(copy, m);
    }

    /// Word-type conversion is lossless in both directions.
    #[test]
    fn convert_roundtrip(m in bit_matrix(8, 150)) {
        let v: BitMatrix<u32> = m.convert();
        prop_assert!(v.padding_is_zero());
        let back: BitMatrix<u64> = v.convert();
        prop_assert_eq!(back, m);
    }

    /// γ is invariant under padding of rows and words, for every operator.
    #[test]
    fn gamma_padding_invariance((a, b) in pair_same_cols(8, 150)) {
        for op in CompareOp::ALL {
            let base = reference_gamma(&a, &b, op);
            let ap = a.padded_to(4, 3);
            let bp = b.padded_to(8, 3);
            let padded = reference_gamma(&ap, &bp, op);
            prop_assert_eq!(
                padded.cropped(a.rows(), b.rows()).first_mismatch(&base), None,
                "op {}", op
            );
        }
    }

    /// AND and XOR self-comparisons are symmetric.
    #[test]
    fn self_gamma_symmetry(a in bit_matrix(10, 120)) {
        for op in [CompareOp::And, CompareOp::Xor] {
            let c = reference_gamma_self(&a, op);
            for i in 0..a.rows() {
                for j in 0..a.rows() {
                    prop_assert_eq!(c.get(i, j), c.get(j, i));
                }
            }
        }
    }

    /// XOR diagonal is zero; AND diagonal equals the row popcount.
    #[test]
    fn self_gamma_diagonals(a in bit_matrix(10, 120)) {
        let x = reference_gamma_self(&a, CompareOp::Xor);
        let n = reference_gamma_self(&a, CompareOp::And);
        for i in 0..a.rows() {
            prop_assert_eq!(x.get(i, i), 0);
            let ones: u32 = a.row(i).iter().map(|w| w.count_ones()).sum();
            prop_assert_eq!(n.get(i, i), ones);
        }
    }

    /// Inclusion-exclusion ties the three operators together:
    /// |a ^ b| = |a| + |b| - 2|a & b| and |a & !b| = |a| - |a & b|.
    #[test]
    fn operator_inclusion_exclusion((a, b) in pair_same_cols(6, 130)) {
        let and = reference_gamma(&a, &b, CompareOp::And);
        let xor = reference_gamma(&a, &b, CompareOp::Xor);
        let andnot = reference_gamma(&a, &b, CompareOp::AndNot);
        for i in 0..a.rows() {
            let pa: u32 = a.row(i).iter().map(|w| w.count_ones()).sum();
            for j in 0..b.rows() {
                let pb: u32 = b.row(j).iter().map(|w| w.count_ones()).sum();
                prop_assert_eq!(xor.get(i, j), pa + pb - 2 * and.get(i, j));
                prop_assert_eq!(andnot.get(i, j), pa - and.get(i, j));
            }
        }
    }

    /// Mixture pre-negation: AND-NOT(a, b) == AND(a, ¬b) at matrix level.
    #[test]
    fn prenegation_matrix_identity((a, b) in pair_same_cols(6, 130)) {
        let direct = reference_gamma(&a, &b, CompareOp::AndNot);
        let pre = reference_gamma(&a, &b.negated(), CompareOp::And);
        prop_assert_eq!(direct.first_mismatch(&pre), None);
    }

    /// Packing into panels of any width reconstructs the original rows.
    #[test]
    fn pack_unpack_roundtrip(m in bit_matrix(12, 200), panel_rows in 1usize..6) {
        let p = PackedPanels::pack_all(&m, panel_rows);
        let flat = p.unpack();
        for r in 0..m.rows() {
            prop_assert_eq!(&flat[r * p.k()..(r + 1) * p.k()], m.row(r));
        }
    }

    /// Negation preserves shape, inverts density, and keeps padding clean.
    #[test]
    fn negation_properties(m in bit_matrix(8, 100)) {
        let n = m.negated();
        prop_assert!(n.padding_is_zero());
        prop_assert_eq!(n.rows(), m.rows());
        prop_assert_eq!(n.cols(), m.cols());
        prop_assert_eq!(n.count_ones() + m.count_ones(), (m.rows() * m.cols()) as u64);
        prop_assert_eq!(n.negated(), m);
    }
}
