//! BLIS-style panel packing.
//!
//! The blocked popcount-GEMM (paper §III, Fig. 3) copies blocks of the input
//! matrices into contiguous, microkernel-friendly buffers before the
//! innermost loops run. A block of `rows` sequences × `k` packed words is
//! reorganized into ⌈rows / r⌉ *panels* of `r` sequences each, stored
//! k-major: within a panel, the `r` words of shared-dimension index `p` are
//! adjacent, so the microkernel streams the panel with unit stride. Edge
//! panels are zero-padded, which is count-neutral for every comparison
//! operator.

use crate::matrix::BitMatrix;
use crate::word::Word;

/// A packed block: `panels` panels of `panel_rows` sequences over `k` words.
///
/// Layout of panel `q`: `[m(q·r+0, 0), m(q·r+1, 0), …, m(q·r+r-1, 0),
/// m(q·r+0, 1), …]` — i.e. word index major, row-in-panel minor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedPanels<W: Word = u64> {
    panel_rows: usize,
    k: usize,
    panels: usize,
    logical_rows: usize,
    data: Vec<W>,
}

impl<W: Word> PackedPanels<W> {
    /// Packs rows `row_lo..row_hi` and words `word_lo..word_hi` of `m` into
    /// panels of `panel_rows` sequences. Ranges are clamped to the matrix;
    /// out-of-range tail rows within the final panel are zero-filled.
    pub fn pack(
        m: &BitMatrix<W>,
        row_lo: usize,
        row_hi: usize,
        word_lo: usize,
        word_hi: usize,
        panel_rows: usize,
    ) -> Self {
        assert!(panel_rows > 0, "panel_rows must be positive");
        assert!(
            row_lo <= row_hi && row_hi <= m.rows(),
            "row range {row_lo}..{row_hi} out of bounds"
        );
        assert!(
            word_lo <= word_hi && word_hi <= m.words_per_row(),
            "word range {word_lo}..{word_hi} out of bounds ({} words per row)",
            m.words_per_row()
        );
        let logical_rows = row_hi - row_lo;
        let k = word_hi - word_lo;
        let panels = logical_rows
            .div_ceil(panel_rows)
            .max(if logical_rows == 0 { 0 } else { 1 });
        let mut data = vec![W::ZERO; panels * panel_rows * k];
        for q in 0..panels {
            let base = q * panel_rows * k;
            for i in 0..panel_rows {
                let r = row_lo + q * panel_rows + i;
                if r >= row_hi {
                    continue; // zero padding
                }
                let row = &m.row(r)[word_lo..word_hi];
                for (p, &w) in row.iter().enumerate() {
                    data[base + p * panel_rows + i] = w;
                }
            }
        }
        PackedPanels {
            panel_rows,
            k,
            panels,
            logical_rows,
            data,
        }
    }

    /// Packs an entire matrix (all rows, all words).
    pub fn pack_all(m: &BitMatrix<W>, panel_rows: usize) -> Self {
        Self::pack(m, 0, m.rows(), 0, m.words_per_row(), panel_rows)
    }

    /// Number of rows per panel (the register-blocking factor `m_r`/`n_r`).
    #[inline]
    pub fn panel_rows(&self) -> usize {
        self.panel_rows
    }

    /// Shared-dimension length in words (`k_c` for a cache block).
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of panels.
    #[inline]
    pub fn panels(&self) -> usize {
        self.panels
    }

    /// Number of logical (unpadded) rows packed.
    #[inline]
    pub fn logical_rows(&self) -> usize {
        self.logical_rows
    }

    /// The contiguous storage of panel `q` (`panel_rows * k` words).
    #[inline]
    pub fn panel(&self, q: usize) -> &[W] {
        debug_assert!(
            q < self.panels,
            "panel {q} out of bounds ({} panels)",
            self.panels
        );
        let len = self.panel_rows * self.k;
        &self.data[q * len..(q + 1) * len]
    }

    /// The full packed buffer.
    #[inline]
    pub fn as_slice(&self) -> &[W] {
        &self.data
    }

    /// Reads the packed word for `(logical_row, word_index)`; zero for
    /// padded rows. Primarily for tests and the reference unpacker.
    pub fn get(&self, row: usize, word: usize) -> W {
        assert!(word < self.k);
        let q = row / self.panel_rows;
        let i = row % self.panel_rows;
        assert!(q < self.panels, "row {row} out of packed range");
        self.panel(q)[word * self.panel_rows + i]
    }

    /// Reconstructs the packed block as a plain row-major word buffer of
    /// `logical_rows × k`, dropping panel padding. Inverse of `pack` for
    /// in-range rows.
    pub fn unpack(&self) -> Vec<W> {
        let mut out = vec![W::ZERO; self.logical_rows * self.k];
        for r in 0..self.logical_rows {
            for p in 0..self.k {
                out[r * self.k + p] = self.get(r, p);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BitMatrix<u64> {
        BitMatrix::from_fn(7, 130, |r, c| (r * 31 + c * 7) % 3 == 0)
    }

    #[test]
    fn pack_all_roundtrips() {
        let m = sample();
        for panel_rows in [1, 2, 3, 4, 8] {
            let p = PackedPanels::pack_all(&m, panel_rows);
            assert_eq!(p.logical_rows(), 7);
            assert_eq!(p.k(), m.words_per_row());
            assert_eq!(p.panels(), 7usize.div_ceil(panel_rows));
            let flat = p.unpack();
            for r in 0..7 {
                assert_eq!(
                    &flat[r * p.k()..(r + 1) * p.k()],
                    m.row(r),
                    "panel_rows={panel_rows} row={r}"
                );
            }
        }
    }

    #[test]
    fn panel_layout_is_word_major() {
        let m = sample();
        let p = PackedPanels::pack_all(&m, 2);
        let panel0 = p.panel(0);
        // First two entries are word 0 of rows 0 and 1.
        assert_eq!(panel0[0], m.row(0)[0]);
        assert_eq!(panel0[1], m.row(1)[0]);
        // Next pair is word 1.
        assert_eq!(panel0[2], m.row(0)[1]);
        assert_eq!(panel0[3], m.row(1)[1]);
    }

    #[test]
    fn edge_panel_is_zero_padded() {
        let m = sample(); // 7 rows
        let p = PackedPanels::pack_all(&m, 4);
        assert_eq!(p.panels(), 2);
        // Rows 7 within panel 1 (panel-local index 3) must be zero.
        let panel1 = p.panel(1);
        for word in 0..p.k() {
            assert_eq!(panel1[word * 4 + 3], 0, "padded lane must stay zero");
        }
    }

    #[test]
    fn sub_block_pack_matches_matrix() {
        let m = sample();
        let p = PackedPanels::pack(&m, 2, 6, 1, 3, 2);
        assert_eq!(p.logical_rows(), 4);
        assert_eq!(p.k(), 2);
        for r in 0..4 {
            for w in 0..2 {
                assert_eq!(p.get(r, w), m.row(r + 2)[w + 1]);
            }
        }
    }

    #[test]
    fn empty_ranges_produce_empty_pack() {
        let m = sample();
        let p = PackedPanels::pack(&m, 3, 3, 0, 2, 4);
        assert_eq!(p.panels(), 0);
        assert_eq!(p.logical_rows(), 0);
        assert!(p.as_slice().is_empty());
        assert!(p.unpack().is_empty());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn bad_row_range_panics() {
        let m = sample();
        let _ = PackedPanels::pack(&m, 0, 100, 0, 1, 2);
    }

    #[test]
    fn works_for_u32() {
        let m: BitMatrix<u32> = sample().convert();
        let p = PackedPanels::pack_all(&m, 4);
        let flat = p.unpack();
        for r in 0..m.rows() {
            assert_eq!(&flat[r * p.k()..(r + 1) * p.k()], m.row(r));
        }
    }
}
