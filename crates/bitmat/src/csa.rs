//! Carry-save adder (Harley–Seal) population-count primitives.
//!
//! The hot loop of every comparison engine is `γ += POPC(a ⋄ b)` — one
//! population count per combined word. A carry-save adder tree trades most
//! of those popcounts for cheap bitwise adds: `k` words are first reduced
//! bit-column-wise into counters of weight 1, 2, 4, … and only the counters
//! are popcounted, so an 8-word tree needs 4 popcounts instead of 8. On
//! targets without a hardware popcount instruction (where `count_ones()`
//! lowers to a ~12-op SWAR sequence) this roughly halves the work in the
//! microkernel; with hardware POPCNT it still relieves the popcount port.
//!
//! Everything here is exact bit arithmetic — no floating point, no ordering
//! effects — so CSA-accumulated counts are bit-identical to summing
//! `count_ones()` word by word. The scalar path stays available as the
//! oracle the property tests compare against.

use crate::word::Word;

/// Half adder over bit columns: returns `(sum, carry)` with
/// `a + b = sum + 2·carry` independently in every bit position.
#[inline(always)]
pub fn half<W: Word>(a: W, b: W) -> (W, W) {
    (a ^ b, a & b)
}

/// Full (carry-save) adder over bit columns: returns `(sum, carry)` with
/// `s + a + b = sum + 2·carry` independently in every bit position.
#[inline(always)]
pub fn csa<W: Word>(s: W, a: W, b: W) -> (W, W) {
    let u = s ^ a;
    (u ^ b, (s & a) | (u & b))
}

/// Population count of 4 words via a CSA tree: 3 popcounts instead of 4.
#[inline(always)]
pub fn popcount4<W: Word>(w: &[W; 4]) -> u32 {
    let (a1, c1) = half(w[0], w[1]);
    let (a2, c2) = half(w[2], w[3]);
    let (ones, c3) = half(a1, a2);
    let (twos, fours) = csa(c1, c2, c3);
    ones.count_ones() + 2 * twos.count_ones() + 4 * fours.count_ones()
}

/// Population count of 8 words via a Harley–Seal CSA tree: 4 popcounts
/// instead of 8.
#[inline(always)]
pub fn popcount8<W: Word>(w: &[W; 8]) -> u32 {
    // Reduce the eight weight-1 inputs pairwise to one weight-1 counter
    // (`ones`) plus seven weight-2 partial carries…
    let (a1, c1) = half(w[0], w[1]);
    let (a2, c2) = half(w[2], w[3]);
    let (a3, c3) = half(w[4], w[5]);
    let (a4, c4) = half(w[6], w[7]);
    let (b1, d1) = half(a1, a2);
    let (b2, d2) = half(a3, a4);
    let (ones, d3) = half(b1, b2);
    // …then fold the weight-2 pool {c1..c4, d1..d3} into `twos` plus three
    // weight-4 carries, and those into `fours` and `eights`.
    let (e1, f1) = csa(c1, c2, c3);
    let (e2, f2) = csa(c4, d1, d2);
    let (twos, f3) = csa(e1, e2, d3);
    let (fours, eights) = csa(f1, f2, f3);
    ones.count_ones() + 2 * twos.count_ones() + 4 * fours.count_ones() + 8 * eights.count_ones()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scalar_popcount<W: Word>(w: &[W]) -> u32 {
        w.iter().map(|x| x.count_ones()).sum()
    }

    /// Deterministic word stream (SplitMix64) without external dependencies.
    fn stream(seed: u64) -> impl Iterator<Item = u64> {
        let mut x = seed;
        std::iter::repeat_with(move || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        })
    }

    #[test]
    fn half_and_csa_are_column_adders() {
        for (i, (a, b, s)) in stream(1)
            .zip(stream(2))
            .zip(stream(3))
            .map(|((a, b), s)| (a, b, s))
            .take(200)
            .enumerate()
        {
            let (sum, carry) = half(a, b);
            assert_eq!(
                sum.count_ones() + 2 * carry.count_ones(),
                a.count_ones() + b.count_ones(),
                "half adder mismatch on case {i}"
            );
            let (sum, carry) = csa(s, a, b);
            assert_eq!(
                sum.count_ones() + 2 * carry.count_ones(),
                s.count_ones() + a.count_ones() + b.count_ones(),
                "csa mismatch on case {i}"
            );
        }
    }

    #[test]
    fn popcount8_matches_scalar() {
        let words: Vec<u64> = stream(7).take(8 * 100).collect();
        for chunk in words.chunks_exact(8) {
            let arr: &[u64; 8] = chunk.try_into().unwrap();
            assert_eq!(popcount8(arr), scalar_popcount(chunk));
        }
    }

    #[test]
    fn popcount4_matches_scalar() {
        let words: Vec<u32> = stream(9).map(|w| w as u32).take(4 * 100).collect();
        for chunk in words.chunks_exact(4) {
            let arr: &[u32; 4] = chunk.try_into().unwrap();
            assert_eq!(popcount4(arr), scalar_popcount(chunk));
        }
    }

    #[test]
    fn extremes() {
        assert_eq!(popcount8(&[0u64; 8]), 0);
        assert_eq!(popcount8(&[u64::MAX; 8]), 8 * 64);
        assert_eq!(popcount4(&[0u8; 4]), 0);
        assert_eq!(popcount4(&[u8::MAX; 4]), 32);
        let mut w = [0u64; 8];
        w[3] = 1;
        assert_eq!(popcount8(&w), 1);
    }

    #[test]
    fn works_for_all_word_widths() {
        for seed in 0..8 {
            let w64: Vec<u64> = stream(seed).take(8).collect();
            let w32: [u32; 8] = std::array::from_fn(|i| w64[i] as u32);
            let w16: [u16; 8] = std::array::from_fn(|i| w64[i] as u16);
            let w8: [u8; 8] = std::array::from_fn(|i| w64[i] as u8);
            assert_eq!(popcount8(&w32), scalar_popcount(&w32));
            assert_eq!(popcount8(&w16), scalar_popcount(&w16));
            assert_eq!(popcount8(&w8), scalar_popcount(&w8));
        }
    }
}
