//! Scalar reference implementation of the popcount-GEMM.
//!
//! Every optimized engine in the workspace (the BLIS CPU engine, the
//! simulated GPU kernels, the sparse kernels) is validated against this
//! triple loop. It is deliberately naive: correctness is its only job.

use crate::count::CountMatrix;
use crate::matrix::BitMatrix;
use crate::ops::{dot, CompareOp};
use crate::word::Word;

/// Computes `γ[i][j] = Σ_k popc(op(a[i][k], b[j][k]))` with a plain triple
/// loop (paper §III):
///
/// * LD (`op = And`, `b = a`): `γ` is the matrix of co-occurring minor
///   alleles from which `p_AB` is estimated.
/// * FastID identity search (`op = Xor`): `γ[i][j]` is the number of sites
///   where query `i` differs from database profile `j`.
/// * Mixture analysis (`op = AndNot`): `γ[i][j]` counts minor alleles of
///   reference `i` missing from mixture `j`.
///
/// Panics if the operands disagree on `words_per_row` (callers pad first;
/// padding is count-neutral for every `CompareOp`).
pub fn reference_gamma<W: Word>(a: &BitMatrix<W>, b: &BitMatrix<W>, op: CompareOp) -> CountMatrix {
    assert_eq!(
        a.words_per_row(),
        b.words_per_row(),
        "operands must share a packed width: {} vs {} words per row",
        a.words_per_row(),
        b.words_per_row()
    );
    let mut c = CountMatrix::zeros(a.rows(), b.rows());
    #[allow(clippy::needless_range_loop)] // index symmetry (i, j) mirrors the math
    for i in 0..a.rows() {
        let ai = a.row(i);
        let ci = c.row_mut(i);
        for j in 0..b.rows() {
            ci[j] = dot(op, ai, b.row(j)) as u32;
        }
    }
    c
}

/// Symmetric self-comparison `reference_gamma(a, a, op)` — the LD case where
/// the query and database coincide.
pub fn reference_gamma_self<W: Word>(a: &BitMatrix<W>, op: CompareOp) -> CountMatrix {
    reference_gamma(a, a, op)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> (BitMatrix<u64>, BitMatrix<u64>) {
        // a: 2 sequences x 5 sites, b: 3 sequences x 5 sites
        let a = BitMatrix::from_bool_rows(&[
            vec![true, false, true, true, false],
            vec![false, true, true, false, false],
        ]);
        let b = BitMatrix::from_bool_rows(&[
            vec![true, true, false, true, false],
            vec![false, false, false, false, false],
            vec![true, false, true, true, true],
        ]);
        (a, b)
    }

    #[test]
    fn and_counts_by_hand() {
        let (a, b) = tiny();
        let c = reference_gamma(&a, &b, CompareOp::And);
        // a0 = {0,2,3}; b0 = {0,1,3}; intersect = {0,3} -> 2
        assert_eq!(c.get(0, 0), 2);
        assert_eq!(c.get(0, 1), 0); // empty b1
        assert_eq!(c.get(0, 2), 3); // b2 = {0,2,3,4}
        assert_eq!(c.get(1, 0), 1); // a1 = {1,2} ∩ {0,1,3} = {1}
        assert_eq!(c.get(1, 2), 1); // {1,2} ∩ {0,2,3,4} = {2}
    }

    #[test]
    fn xor_counts_by_hand() {
        let (a, b) = tiny();
        let c = reference_gamma(&a, &b, CompareOp::Xor);
        // a0 = {0,2,3} vs b0 = {0,1,3}: symmetric difference {1,2} -> 2
        assert_eq!(c.get(0, 0), 2);
        assert_eq!(c.get(0, 1), 3); // vs empty: |a0| = 3
        assert_eq!(c.get(0, 2), 1); // {4}
    }

    #[test]
    fn andnot_counts_by_hand() {
        let (a, b) = tiny();
        let c = reference_gamma(&a, &b, CompareOp::AndNot);
        // a0 \ b0 = {2} -> 1; a0 \ {} = 3; a0 \ b2 = {} -> 0
        assert_eq!(c.get(0, 0), 1);
        assert_eq!(c.get(0, 1), 3);
        assert_eq!(c.get(0, 2), 0);
    }

    #[test]
    fn xor_self_diagonal_is_zero() {
        let (a, _) = tiny();
        let c = reference_gamma_self(&a, CompareOp::Xor);
        for i in 0..a.rows() {
            assert_eq!(c.get(i, i), 0, "a profile always matches itself");
        }
    }

    #[test]
    fn and_self_is_symmetric_with_popcount_diagonal() {
        let (a, _) = tiny();
        let c = reference_gamma_self(&a, CompareOp::And);
        for i in 0..a.rows() {
            for j in 0..a.rows() {
                assert_eq!(c.get(i, j), c.get(j, i));
            }
            let ones: u32 = a.row(i).iter().map(|w| w.count_ones()).sum();
            assert_eq!(c.get(i, i), ones);
        }
    }

    #[test]
    fn andnot_equals_and_with_pre_negated_database() {
        let (a, b) = tiny();
        let direct = reference_gamma(&a, &b, CompareOp::AndNot);
        let pre = reference_gamma(&a, &b.negated(), CompareOp::And);
        assert_eq!(direct.first_mismatch(&pre), None);
    }

    #[test]
    fn padding_is_count_neutral() {
        let (a, b) = tiny();
        let base = reference_gamma(&a, &b, CompareOp::Xor);
        let ap = a.padded_to(4, 3);
        let bp = b.padded_to(8, 3);
        let padded = reference_gamma(&ap, &bp, CompareOp::Xor);
        assert_eq!(
            padded.cropped(a.rows(), b.rows()).first_mismatch(&base),
            None
        );
    }

    #[test]
    #[should_panic(expected = "packed width")]
    fn mismatched_widths_panic() {
        let a = BitMatrix::<u64>::zeros(1, 64);
        let b = BitMatrix::<u64>::zeros(1, 65);
        let _ = reference_gamma(&a, &b, CompareOp::And);
    }

    #[test]
    fn works_for_u32_words() {
        let a32 = BitMatrix::<u32>::from_fn(3, 70, |r, c| (r * 7 + c * 3) % 5 == 0);
        let a64: BitMatrix<u64> = a32.convert();
        for op in CompareOp::ALL {
            let c32 = reference_gamma_self(&a32, op);
            let c64 = reference_gamma_self(&a64, op);
            assert_eq!(c32.first_mismatch(&c64), None, "op {op}");
        }
    }
}
