//! Dense output matrices of comparison counts (the `γ` values).

/// A dense, row-major matrix of `u32` comparison counts.
///
/// `γ[i][j]` is the popcount accumulated over the shared dimension for row
/// `i` of the left operand against row `j` of the right operand. A `u32` can
/// hold counts for sequences of up to 2³² sites, far beyond any SNP panel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CountMatrix {
    rows: usize,
    cols: usize,
    data: Vec<u32>,
}

impl CountMatrix {
    /// Creates an all-zeros `rows × cols` count matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        CountMatrix {
            rows,
            cols,
            data: vec![0; rows * cols],
        }
    }

    /// Wraps an existing row-major buffer; `data.len()` must be `rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<u32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} != {rows} x {cols}",
            data.len()
        );
        CountMatrix { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Reads `γ[r][c]`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> u32 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r}, {c}) out of bounds ({} x {})",
            self.rows,
            self.cols
        );
        self.data[r * self.cols + c]
    }

    /// Writes `γ[r][c]`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: u32) {
        assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Adds `v` to `γ[r][c]`.
    #[inline]
    pub fn add(&mut self, r: usize, c: usize, v: u32) {
        assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] += v;
    }

    /// Row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[u32] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [u32] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The raw row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[u32] {
        &self.data
    }

    /// Mutable raw buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [u32] {
        &mut self.data
    }

    /// Copies the top-left `rows × cols` corner — used to strip blocking
    /// padding from a padded result.
    pub fn cropped(&self, rows: usize, cols: usize) -> CountMatrix {
        assert!(rows <= self.rows && cols <= self.cols);
        let mut out = CountMatrix::zeros(rows, cols);
        for r in 0..rows {
            out.row_mut(r).copy_from_slice(&self.row(r)[..cols]);
        }
        out
    }

    /// True if `self` equals `other` everywhere; on mismatch returns the
    /// first differing index for diagnostics.
    pub fn first_mismatch(&self, other: &CountMatrix) -> Option<(usize, usize, u32, u32)> {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "shape mismatch"
        );
        // Walk the raw buffers directly: one linear scan with no per-element
        // bounds checks, so validating large γ results costs a memcmp-like
        // pass rather than two indexed loads per entry.
        self.data
            .iter()
            .zip(&other.data)
            .position(|(a, b)| a != b)
            .map(|idx| {
                (
                    idx / self.cols,
                    idx % self.cols,
                    self.data[idx],
                    other.data[idx],
                )
            })
    }

    /// Maximum entry, or 0 for an empty matrix.
    pub fn max(&self) -> u32 {
        self.data.iter().copied().max().unwrap_or(0)
    }

    /// Minimum entry, or 0 for an empty matrix.
    pub fn min(&self) -> u32 {
        self.data.iter().copied().min().unwrap_or(0)
    }

    /// Index of the minimum entry in row `r` — e.g. the best FastID database
    /// match for query `r` (fewest differences). `None` when there are no
    /// columns.
    pub fn argmin_in_row(&self, r: usize) -> Option<usize> {
        self.row(r)
            .iter()
            .enumerate()
            .min_by_key(|&(_, v)| *v)
            .map(|(i, _)| i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_indexing() {
        let mut m = CountMatrix::zeros(2, 3);
        assert_eq!((m.rows(), m.cols()), (2, 3));
        m.set(1, 2, 7);
        m.add(1, 2, 3);
        assert_eq!(m.get(1, 2), 10);
        assert_eq!(m.get(0, 0), 0);
    }

    #[test]
    fn from_vec_validates_len() {
        let ok = CountMatrix::from_vec(2, 2, vec![1, 2, 3, 4]);
        assert_eq!(ok.get(1, 0), 3);
        assert!(std::panic::catch_unwind(|| CountMatrix::from_vec(2, 2, vec![1])).is_err());
    }

    #[test]
    fn rows_are_contiguous() {
        let m = CountMatrix::from_vec(2, 3, vec![1, 2, 3, 4, 5, 6]);
        assert_eq!(m.row(0), &[1, 2, 3]);
        assert_eq!(m.row(1), &[4, 5, 6]);
    }

    #[test]
    fn cropped_strips_padding() {
        let m = CountMatrix::from_vec(3, 3, vec![1, 2, 0, 3, 4, 0, 0, 0, 0]);
        let c = m.cropped(2, 2);
        assert_eq!(c.as_slice(), &[1, 2, 3, 4]);
    }

    #[test]
    fn first_mismatch_reports_position() {
        let a = CountMatrix::from_vec(2, 2, vec![1, 2, 3, 4]);
        let mut b = a.clone();
        assert_eq!(a.first_mismatch(&b), None);
        b.set(1, 0, 9);
        assert_eq!(a.first_mismatch(&b), Some((1, 0, 3, 9)));
        let empty = CountMatrix::zeros(2, 0);
        assert_eq!(empty.first_mismatch(&CountMatrix::zeros(2, 0)), None);
    }

    #[test]
    fn min_max_argmin() {
        let m = CountMatrix::from_vec(2, 3, vec![5, 1, 9, 4, 4, 2]);
        assert_eq!(m.max(), 9);
        assert_eq!(m.min(), 1);
        assert_eq!(m.argmin_in_row(0), Some(1));
        assert_eq!(m.argmin_in_row(1), Some(2));
        assert_eq!(CountMatrix::zeros(1, 0).argmin_in_row(0), None);
    }
}
