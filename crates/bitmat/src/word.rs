//! Machine-word abstraction.
//!
//! SNP matrices are stored as packed machine words so that one logical
//! AND/XOR/ANDNOT plus one population count compares `W::BITS` SNP sites at a
//! time. The CPU engine prefers `u64` (the paper's CPU popcount operates on
//! 64-bit words) while the model GPU operates on 32-bit elements (the paper's
//! kernels use 4-byte elements; see Eq. 6), so the substrate is generic over
//! the word type.

use std::fmt::Debug;
use std::hash::Hash;
use std::ops::{BitAnd, BitAndAssign, BitOr, BitOrAssign, BitXor, BitXorAssign, Not};

/// An unsigned machine word usable as a packed SNP bit container.
///
/// Implemented for `u8`, `u16`, `u32` and `u64`. All bit positions are
/// little-endian within a word: bit `i` of word `w` holds logical column
/// `w * W::BITS + i`.
pub trait Word:
    Copy
    + Default
    + Eq
    + Ord
    + Hash
    + Debug
    + Send
    + Sync
    + BitAnd<Output = Self>
    + BitOr<Output = Self>
    + BitXor<Output = Self>
    + BitAndAssign
    + BitOrAssign
    + BitXorAssign
    + Not<Output = Self>
    + 'static
{
    /// Number of bits in the word.
    const BITS: u32;
    /// The all-zeros word.
    const ZERO: Self;
    /// The all-ones word.
    const ONES: Self;

    /// Population count: number of set bits.
    fn count_ones(self) -> u32;

    /// Truncating conversion from `u64` (keeps the low `BITS` bits).
    fn from_u64(v: u64) -> Self;

    /// Zero-extending conversion to `u64`.
    fn to_u64(self) -> u64;

    /// Returns bit `i` (must be `< BITS`).
    #[inline]
    fn bit(self, i: u32) -> bool {
        debug_assert!(i < Self::BITS);
        (self.to_u64() >> i) & 1 == 1
    }

    /// Returns `self` with bit `i` set to `v` (must be `< BITS`).
    #[inline]
    fn with_bit(self, i: u32, v: bool) -> Self {
        debug_assert!(i < Self::BITS);
        let mask = Self::from_u64(1u64 << i);
        if v {
            self | mask
        } else {
            self & !mask
        }
    }

    /// A word whose low `n` bits are set (`n <= BITS`).
    #[inline]
    fn low_mask(n: u32) -> Self {
        assert!(
            n <= Self::BITS,
            "mask width {n} exceeds word width {}",
            Self::BITS
        );
        if n == Self::BITS {
            Self::ONES
        } else {
            Self::from_u64((1u64 << n) - 1)
        }
    }
}

macro_rules! impl_word {
    ($($t:ty),*) => {$(
        impl Word for $t {
            const BITS: u32 = <$t>::BITS;
            const ZERO: Self = 0;
            const ONES: Self = <$t>::MAX;

            #[inline]
            fn count_ones(self) -> u32 {
                <$t>::count_ones(self)
            }

            #[inline]
            fn from_u64(v: u64) -> Self {
                v as $t
            }

            #[inline]
            fn to_u64(self) -> u64 {
                self as u64
            }
        }
    )*};
}

impl_word!(u8, u16, u32, u64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_constants() {
        assert_eq!(<u8 as Word>::BITS, 8);
        assert_eq!(<u16 as Word>::BITS, 16);
        assert_eq!(<u32 as Word>::BITS, 32);
        assert_eq!(<u64 as Word>::BITS, 64);
    }

    #[test]
    fn zero_and_ones() {
        assert_eq!(<u32 as Word>::ZERO, 0u32);
        assert_eq!(<u32 as Word>::ONES, u32::MAX);
        assert_eq!(<u64 as Word>::ONES.count_ones(), 64);
        assert_eq!(<u64 as Word>::ZERO.count_ones(), 0);
    }

    #[test]
    fn from_u64_truncates() {
        assert_eq!(<u8 as Word>::from_u64(0x1FF), 0xFFu8);
        assert_eq!(<u32 as Word>::from_u64(u64::MAX), u32::MAX);
        assert_eq!(<u64 as Word>::from_u64(u64::MAX), u64::MAX);
    }

    #[test]
    fn bit_get_set_roundtrip() {
        let mut w = 0u64;
        for i in [0u32, 1, 5, 31, 32, 63] {
            w = w.with_bit(i, true);
            assert!(w.bit(i), "bit {i} should be set");
        }
        assert_eq!(w.count_ones(), 6);
        w = w.with_bit(31, false);
        assert!(!w.bit(31));
        assert_eq!(w.count_ones(), 5);
    }

    #[test]
    fn with_bit_idempotent() {
        let w = 0u32.with_bit(7, true);
        assert_eq!(w.with_bit(7, true), w);
        assert_eq!(w.with_bit(7, false).with_bit(7, false), 0);
    }

    #[test]
    fn low_mask_widths() {
        assert_eq!(<u32 as Word>::low_mask(0), 0);
        assert_eq!(<u32 as Word>::low_mask(1), 1);
        assert_eq!(<u32 as Word>::low_mask(32), u32::MAX);
        assert_eq!(<u64 as Word>::low_mask(64), u64::MAX);
        assert_eq!(<u64 as Word>::low_mask(10).count_ones(), 10);
    }

    #[test]
    #[should_panic(expected = "mask width")]
    fn low_mask_too_wide_panics() {
        let _ = <u32 as Word>::low_mask(33);
    }
}
