//! SNP comparison operators.
//!
//! All three algorithms in the paper reduce to the same blocked
//! popcount-GEMM; they differ only in the word-combining operator applied
//! before the population count (paper §II):
//!
//! * **Linkage disequilibrium** (Eq. 1): `γ = (a & b)ᵀ(a & b)` — logical AND.
//! * **FastID identity search** (Eq. 2): `γ = (a ⊕ b)ᵀ(a ⊕ b)` — XOR.
//! * **FastID mixture analysis** (Eq. 3): `γ = ((r ⊕ m) & r)ᵀ((r ⊕ m) & r)`,
//!   which simplifies to `r & ¬m` — AND-NOT (paper §II-C).

use crate::word::Word;

/// The word-level combining operator of an SNP comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CompareOp {
    /// `a & b`: counts sites where *both* inputs carry the minor allele.
    /// Used for linkage disequilibrium (the `p_AB` term) and, with a
    /// pre-negated database, for mixture analysis.
    And,
    /// `a ^ b`: counts sites where the inputs *differ*. Used for FastID
    /// identity search; a count of zero is a positive match.
    Xor,
    /// `a & !b`: counts minor alleles present in `a` but absent from `b`.
    /// Used for FastID mixture analysis (`r & ¬m`); architectures without a
    /// fused AND-NOT either spend an extra NOT or pre-negate the database.
    AndNot,
}

impl CompareOp {
    /// All supported operators, in presentation order.
    pub const ALL: [CompareOp; 3] = [CompareOp::And, CompareOp::Xor, CompareOp::AndNot];

    /// Applies the operator to one pair of packed words.
    #[inline]
    pub fn combine<W: Word>(self, a: W, b: W) -> W {
        match self {
            CompareOp::And => a & b,
            CompareOp::Xor => a ^ b,
            CompareOp::AndNot => a & !b,
        }
    }

    /// Popcount of the combined word: the per-word contribution to `γ`.
    #[inline]
    pub fn combine_count<W: Word>(self, a: W, b: W) -> u32 {
        self.combine(a, b).count_ones()
    }

    /// Whether zero padding in *either* operand leaves `γ` unchanged.
    ///
    /// This holds for every supported operator: zero bits can never
    /// contribute to the popcount of `a & b`, `a ^ b` (both operands padded
    /// with zeros in the same positions) or `a & !b` (zero in `a` masks the
    /// negated `b`). This property is what lets the framework pad matrices to
    /// blocking multiples (paper Fig. 2) without affecting results.
    pub fn padding_safe(self) -> bool {
        true
    }

    /// The equivalent operator after pre-negating the second operand, if one
    /// exists in the supported set.
    ///
    /// `AndNot` with a pre-negated database becomes plain `And`, which is the
    /// paper's §II-C transformation ("mixture analysis reduces down to the
    /// same computation as linkage disequilibrium"). `And`/`Xor` have no
    /// useful pre-negated form and return `None`.
    pub fn pre_negated(self) -> Option<CompareOp> {
        match self {
            CompareOp::AndNot => Some(CompareOp::And),
            CompareOp::And | CompareOp::Xor => None,
        }
    }

    /// Short lowercase name used in configuration files and bench output.
    pub fn name(self) -> &'static str {
        match self {
            CompareOp::And => "and",
            CompareOp::Xor => "xor",
            CompareOp::AndNot => "andnot",
        }
    }
}

impl std::fmt::Display for CompareOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Popcount dot product of two packed rows under `op`:
/// `Σ_k popc(op(a[k], b[k]))`.
///
/// This is the innermost computation of every algorithm in the paper
/// (paper §III): one logical op, one population count, one integer add per
/// word. Panics if the rows have different lengths.
#[inline]
pub fn dot<W: Word>(op: CompareOp, a: &[W], b: &[W]) -> u64 {
    assert_eq!(
        a.len(),
        b.len(),
        "dot: row length mismatch {} vs {}",
        a.len(),
        b.len()
    );
    let mut acc = 0u64;
    for (&x, &y) in a.iter().zip(b.iter()) {
        acc += op.combine_count(x, y) as u64;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn and_counts_shared_minor_alleles() {
        assert_eq!(CompareOp::And.combine(0b1100u64, 0b1010), 0b1000);
        assert_eq!(CompareOp::And.combine_count(0b1100u64, 0b1010), 1);
    }

    #[test]
    fn xor_counts_differences() {
        assert_eq!(CompareOp::Xor.combine(0b1100u64, 0b1010), 0b0110);
        assert_eq!(CompareOp::Xor.combine_count(0b1100u64, 0b1010), 2);
        // Identical profiles differ nowhere: a positive FastID match.
        assert_eq!(CompareOp::Xor.combine_count(0xDEADBEEFu64, 0xDEADBEEF), 0);
    }

    #[test]
    fn andnot_counts_alleles_missing_from_mixture() {
        // r has alleles {3, 2}; m has {1, 3}; r & !m = {2}.
        let r = 0b1100u64;
        let m = 0b1010u64;
        assert_eq!(CompareOp::AndNot.combine(r, m), 0b0100);
        assert_eq!(CompareOp::AndNot.combine_count(r, m), 1);
    }

    #[test]
    fn mixture_simplification_identity() {
        // (r ^ m) & r == r & !m for arbitrary words (paper §II-C).
        for r in [0u64, 1, 0xF0F0, u64::MAX, 0x0123_4567_89AB_CDEF] {
            for m in [0u64, 7, 0xFF00, u64::MAX, 0xFEDC_BA98_7654_3210] {
                assert_eq!((r ^ m) & r, CompareOp::AndNot.combine(r, m));
            }
        }
    }

    #[test]
    fn pre_negation_equivalence() {
        assert_eq!(CompareOp::AndNot.pre_negated(), Some(CompareOp::And));
        assert_eq!(CompareOp::And.pre_negated(), None);
        assert_eq!(CompareOp::Xor.pre_negated(), None);
        // andnot(a, b) == and(a, !b)
        let (a, b) = (0xCAFEu64, 0xBEEFu64);
        assert_eq!(
            CompareOp::AndNot.combine(a, b),
            CompareOp::And.combine(a, !b)
        );
    }

    #[test]
    fn padding_safety_bitwise() {
        // Appending zero words to both operands never changes the count.
        let a = [0xFFu64, 0x0F, 0x00];
        let b = [0x0Fu64, 0xF0, 0x00];
        for op in CompareOp::ALL {
            assert!(op.padding_safe());
            assert_eq!(dot(op, &a[..2], &b[..2]), dot(op, &a, &b));
        }
    }

    #[test]
    fn dot_matches_manual_sum() {
        let a = [u64::MAX, 0, 0b1011];
        let b = [u64::MAX, u64::MAX, 0b0110];
        assert_eq!(dot(CompareOp::And, &a, &b), 64 + 1);
        assert_eq!(dot(CompareOp::Xor, &a, &b), 64 + 3);
        assert_eq!(dot(CompareOp::AndNot, &a, &b), 2);
    }

    #[test]
    #[should_panic(expected = "row length mismatch")]
    fn dot_length_mismatch_panics() {
        let _ = dot(CompareOp::And, &[0u64; 3], &[0u64; 4]);
    }

    #[test]
    fn names_roundtrip_display() {
        for op in CompareOp::ALL {
            assert_eq!(op.to_string(), op.name());
        }
    }
}
