//! Packed bit matrices of SNP data.
//!
//! A [`BitMatrix`] stores one sequence (an SNP string, a forensic profile, …)
//! per row, with one bit per SNP site: `1` marks the presence of the minor
//! allele, `0` its absence (paper Fig. 2). Rows are packed into machine words
//! and zero-padded so that every row occupies `words_per_row` whole words.
//! Zero padding never changes comparison results (see
//! [`CompareOp::padding_safe`](crate::CompareOp::padding_safe)).

use crate::word::Word;

/// A dense, row-major, bit-packed binary matrix.
///
/// Logical shape is `rows × cols` bits; physical storage is
/// `rows × words_per_row` words of type `W`, where `words_per_row` is at
/// least `ceil(cols / W::BITS)` and may be larger when padding to a blocking
/// multiple was requested.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitMatrix<W: Word = u64> {
    rows: usize,
    cols: usize,
    words_per_row: usize,
    data: Vec<W>,
}

impl<W: Word> BitMatrix<W> {
    /// Minimum number of `W` words needed to hold `cols` bits.
    #[inline]
    pub fn words_for_cols(cols: usize) -> usize {
        cols.div_ceil(W::BITS as usize)
    }

    /// Creates an all-zeros matrix of `rows × cols` bits.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self::zeros_padded(rows, cols, Self::words_for_cols(cols))
    }

    /// Creates an all-zeros matrix whose rows are padded to
    /// `words_per_row >= ceil(cols / W::BITS)` words.
    pub fn zeros_padded(rows: usize, cols: usize, words_per_row: usize) -> Self {
        let min = Self::words_for_cols(cols);
        assert!(
            words_per_row >= min,
            "words_per_row {words_per_row} cannot hold {cols} bit columns (need >= {min})"
        );
        BitMatrix {
            rows,
            cols,
            words_per_row,
            data: vec![W::ZERO; rows * words_per_row],
        }
    }

    /// Builds a matrix from a bit-valued closure `f(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> bool) -> Self {
        let mut m = Self::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                if f(r, c) {
                    m.set(r, c, true);
                }
            }
        }
        m
    }

    /// Builds a matrix from row slices of booleans. All rows must have equal
    /// length; an empty input produces a `0 × 0` matrix.
    pub fn from_bool_rows(rows: &[Vec<bool>]) -> Self {
        let cols = rows.first().map_or(0, |r| r.len());
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(
                r.len(),
                cols,
                "row {i} has length {} but row 0 has {cols}",
                r.len()
            );
        }
        Self::from_fn(rows.len(), cols, |r, c| rows[r][c])
    }

    /// Wraps existing packed words. `data.len()` must equal
    /// `rows * words_per_row`, and padding bits beyond `cols` must be zero
    /// (checked).
    pub fn from_words(rows: usize, cols: usize, words_per_row: usize, data: Vec<W>) -> Self {
        assert!(words_per_row >= Self::words_for_cols(cols));
        assert_eq!(
            data.len(),
            rows * words_per_row,
            "data length {} != rows {rows} * words_per_row {words_per_row}",
            data.len()
        );
        let m = BitMatrix {
            rows,
            cols,
            words_per_row,
            data,
        };
        assert!(
            m.padding_is_zero(),
            "padding bits beyond column {cols} must be zero"
        );
        m
    }

    /// Number of logical rows (sequences).
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of logical bit columns (SNP sites).
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of storage words per row (including padding words).
    #[inline]
    pub fn words_per_row(&self) -> usize {
        self.words_per_row
    }

    /// The full packed storage, row-major.
    #[inline]
    pub fn words(&self) -> &[W] {
        &self.data
    }

    /// The packed words of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[W] {
        debug_assert!(r < self.rows, "row {r} out of bounds ({} rows)", self.rows);
        &self.data[r * self.words_per_row..(r + 1) * self.words_per_row]
    }

    /// Mutable packed words of row `r`. Callers must keep padding bits zero;
    /// prefer [`set`](Self::set) unless performance demands raw access.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [W] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.words_per_row..(r + 1) * self.words_per_row]
    }

    /// Reads bit (`r`, `c`).
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> bool {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r}, {c}) out of bounds ({} x {})",
            self.rows,
            self.cols
        );
        let w = c / W::BITS as usize;
        let b = (c % W::BITS as usize) as u32;
        self.data[r * self.words_per_row + w].bit(b)
    }

    /// Writes bit (`r`, `c`).
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: bool) {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r}, {c}) out of bounds ({} x {})",
            self.rows,
            self.cols
        );
        let w = c / W::BITS as usize;
        let b = (c % W::BITS as usize) as u32;
        let word = &mut self.data[r * self.words_per_row + w];
        *word = word.with_bit(b, v);
    }

    /// Total number of set bits (minor alleles) in the matrix.
    pub fn count_ones(&self) -> u64 {
        self.data.iter().map(|w| w.count_ones() as u64).sum()
    }

    /// Fraction of logical bits that are set; `0.0` for empty matrices.
    pub fn density(&self) -> f64 {
        let total = (self.rows * self.cols) as f64;
        if total == 0.0 {
            0.0
        } else {
            self.count_ones() as f64 / total
        }
    }

    /// True if every padding bit (beyond `cols`, and all padding words) is
    /// zero. This is an invariant of the type; it is validated on untrusted
    /// construction paths and checkable in tests.
    pub fn padding_is_zero(&self) -> bool {
        let full_words = self.cols / W::BITS as usize;
        let rem_bits = (self.cols % W::BITS as usize) as u32;
        for r in 0..self.rows {
            let row = self.row(r);
            if rem_bits != 0 && row[full_words] & !W::low_mask(rem_bits) != W::ZERO {
                return false;
            }
            let first_pad = full_words + usize::from(rem_bits != 0);
            if row[first_pad..].iter().any(|&w| w != W::ZERO) {
                return false;
            }
        }
        true
    }

    /// Returns a copy with rows padded (with zero rows) to a multiple of
    /// `row_multiple` and row storage padded to a multiple of `word_multiple`
    /// words, as required by the blocked algorithms (paper Fig. 2). The
    /// logical `rows()`/`cols()` of the result reflect the *padded* shape in
    /// rows but keep the original bit columns.
    pub fn padded_to(&self, row_multiple: usize, word_multiple: usize) -> BitMatrix<W> {
        assert!(row_multiple > 0 && word_multiple > 0);
        let new_rows = self.rows.next_multiple_of(row_multiple);
        let new_wpr = self.words_per_row.next_multiple_of(word_multiple);
        let mut out = BitMatrix::zeros_padded(new_rows, self.cols, new_wpr);
        for r in 0..self.rows {
            out.data[r * new_wpr..r * new_wpr + self.words_per_row].copy_from_slice(self.row(r));
        }
        out
    }

    /// Returns a copy containing only rows `lo..hi`.
    pub fn row_slice(&self, lo: usize, hi: usize) -> BitMatrix<W> {
        assert!(
            lo <= hi && hi <= self.rows,
            "row slice {lo}..{hi} out of bounds ({} rows)",
            self.rows
        );
        BitMatrix {
            rows: hi - lo,
            cols: self.cols,
            words_per_row: self.words_per_row,
            data: self.data[lo * self.words_per_row..hi * self.words_per_row].to_vec(),
        }
    }

    /// Bitwise NOT of every *logical* bit; padding stays zero. Used to
    /// pre-negate a mixture database so AND-NOT reduces to AND (paper §II-C).
    pub fn negated(&self) -> BitMatrix<W> {
        let mut out = self.clone();
        let full_words = self.cols / W::BITS as usize;
        let rem_bits = (self.cols % W::BITS as usize) as u32;
        for r in 0..self.rows {
            let row = out.row_mut(r);
            for w in row.iter_mut().take(full_words) {
                *w = !*w;
            }
            if rem_bits != 0 {
                row[full_words] = !row[full_words] & W::low_mask(rem_bits);
            }
        }
        out
    }

    /// Converts the packed storage to a matrix over a different word type,
    /// preserving the logical bit layout. Useful for moving host-side `u64`
    /// data into the GPU's 32-bit element world.
    pub fn convert<V: Word>(&self) -> BitMatrix<V> {
        BitMatrix::<V>::from_fn(self.rows, self.cols, |r, c| self.get(r, c))
    }

    /// Physical size of the packed payload in bytes (what a device transfer
    /// must move).
    pub fn payload_bytes(&self) -> usize {
        self.data.len() * (W::BITS as usize / 8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn checkerboard(rows: usize, cols: usize) -> BitMatrix<u64> {
        BitMatrix::from_fn(rows, cols, |r, c| (r + c) % 2 == 0)
    }

    #[test]
    fn zeros_shape_and_contents() {
        let m = BitMatrix::<u64>::zeros(3, 130);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 130);
        assert_eq!(m.words_per_row(), 3); // ceil(130/64)
        assert_eq!(m.count_ones(), 0);
        assert!(m.padding_is_zero());
    }

    #[test]
    fn words_for_cols_boundaries() {
        assert_eq!(BitMatrix::<u64>::words_for_cols(0), 0);
        assert_eq!(BitMatrix::<u64>::words_for_cols(1), 1);
        assert_eq!(BitMatrix::<u64>::words_for_cols(64), 1);
        assert_eq!(BitMatrix::<u64>::words_for_cols(65), 2);
        assert_eq!(BitMatrix::<u32>::words_for_cols(64), 2);
    }

    #[test]
    fn get_set_roundtrip_across_word_boundaries() {
        let mut m = BitMatrix::<u32>::zeros(2, 70);
        m.set(0, 0, true);
        m.set(0, 31, true);
        m.set(0, 32, true);
        m.set(1, 69, true);
        assert!(m.get(0, 0) && m.get(0, 31) && m.get(0, 32) && m.get(1, 69));
        assert!(!m.get(1, 0));
        assert_eq!(m.count_ones(), 4);
        m.set(0, 32, false);
        assert!(!m.get(0, 32));
        assert!(m.padding_is_zero());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        let m = BitMatrix::<u64>::zeros(2, 10);
        let _ = m.get(0, 10);
    }

    #[test]
    fn from_bool_rows_matches_from_fn() {
        let rows = vec![vec![true, false, true], vec![false, false, true]];
        let a = BitMatrix::<u64>::from_bool_rows(&rows);
        let b = BitMatrix::<u64>::from_fn(2, 3, |r, c| rows[r][c]);
        assert_eq!(a, b);
    }

    #[test]
    fn from_words_validates_padding() {
        // 1 row, 4 cols in a u8 word: high 4 bits are padding.
        let ok = BitMatrix::<u8>::from_words(1, 4, 1, vec![0b0000_1010]);
        assert!(ok.get(0, 1) && ok.get(0, 3));
        let bad =
            std::panic::catch_unwind(|| BitMatrix::<u8>::from_words(1, 4, 1, vec![0b0001_1010]));
        assert!(bad.is_err(), "dirty padding must be rejected");
    }

    #[test]
    fn density_of_checkerboard() {
        let m = checkerboard(4, 64);
        assert!((m.density() - 0.5).abs() < 1e-12);
        assert_eq!(BitMatrix::<u64>::zeros(0, 0).density(), 0.0);
    }

    #[test]
    fn padded_to_preserves_content_and_zero_pads() {
        let m = checkerboard(3, 100);
        let p = m.padded_to(8, 4);
        assert_eq!(p.rows(), 8);
        assert_eq!(p.cols(), 100);
        assert_eq!(p.words_per_row(), 4);
        assert!(p.padding_is_zero());
        for r in 0..3 {
            for c in 0..100 {
                assert_eq!(p.get(r, c), m.get(r, c));
            }
        }
        assert_eq!(p.count_ones(), m.count_ones());
    }

    #[test]
    fn row_slice_extracts_rows() {
        let m = checkerboard(5, 33);
        let s = m.row_slice(1, 4);
        assert_eq!(s.rows(), 3);
        for r in 0..3 {
            assert_eq!(s.row(r), m.row(r + 1));
        }
    }

    #[test]
    fn negated_flips_logical_bits_only() {
        let m = checkerboard(2, 70);
        let n = m.negated();
        assert!(n.padding_is_zero());
        for r in 0..2 {
            for c in 0..70 {
                assert_eq!(n.get(r, c), !m.get(r, c));
            }
        }
        assert_eq!(n.count_ones() + m.count_ones(), 2 * 70);
    }

    #[test]
    fn double_negation_is_identity() {
        let m = checkerboard(3, 65);
        assert_eq!(m.negated().negated(), m);
    }

    #[test]
    fn convert_u64_to_u32_preserves_bits() {
        let m = checkerboard(3, 130);
        let c: BitMatrix<u32> = m.convert();
        assert_eq!(c.rows(), 3);
        assert_eq!(c.cols(), 130);
        assert!(c.padding_is_zero());
        for r in 0..3 {
            for col in 0..130 {
                assert_eq!(c.get(r, col), m.get(r, col));
            }
        }
        // And back again.
        let back: BitMatrix<u64> = c.convert();
        assert_eq!(back, m);
    }

    #[test]
    fn payload_bytes_accounts_for_padding_words() {
        let m = BitMatrix::<u32>::zeros_padded(4, 40, 8);
        assert_eq!(m.payload_bytes(), 4 * 8 * 4);
    }
}
