//! # snp-bitmat — bit-packed SNP matrix substrate
//!
//! This crate is the data-representation layer shared by every engine in the
//! workspace: SNP sequences are stored as bit-packed binary matrices in which
//! a `1` marks the presence of a minor allele at a site and a `0` its absence
//! (paper §III, Fig. 2). On top of the representation it provides:
//!
//! * [`Word`] — the machine-word abstraction (`u32` for the model GPU's
//!   4-byte elements, `u64` for the CPU engine);
//! * [`BitMatrix`] — packed, padded, row-major bit matrices;
//! * [`CompareOp`] — the three word-combining operators (AND for linkage
//!   disequilibrium, XOR for FastID identity search, AND-NOT for mixture
//!   analysis) plus the pre-negation transformation of paper §II-C;
//! * [`PackedPanels`] — BLIS-style panel packing used by the blocked engines;
//! * [`reference_gamma`] — the scalar reference popcount-GEMM every
//!   optimized engine is validated against;
//! * [`CountMatrix`] — dense `γ` output matrices.
//!
//! ```
//! use snp_bitmat::{BitMatrix, CompareOp, reference_gamma};
//!
//! // Three 6-site profiles.
//! let db = BitMatrix::<u64>::from_bool_rows(&[
//!     vec![true, false, true, false, true, false],
//!     vec![true, true, false, false, true, false],
//!     vec![false, false, true, true, false, true],
//! ]);
//! let query = db.row_slice(1, 2); // "suspect" profile equals database row 1
//! let gamma = reference_gamma(&query, &db, CompareOp::Xor);
//! assert_eq!(gamma.get(0, 1), 0); // zero differences: a positive match
//! assert!(gamma.get(0, 0) > 0 && gamma.get(0, 2) > 0);
//! ```

#![warn(missing_docs)]

mod count;
pub mod csa;
mod matrix;
mod ops;
mod pack;
mod reference;
mod transpose;
mod word;

pub use count::CountMatrix;
pub use matrix::BitMatrix;
pub use ops::{dot, CompareOp};
pub use pack::PackedPanels;
pub use reference::{reference_gamma, reference_gamma_self};
pub use transpose::transpose;
pub use word::Word;
