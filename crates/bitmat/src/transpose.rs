//! Bit-level matrix transpose.
//!
//! LD pipelines move between two layouts of the same data: genotype
//! matrices arrive as samples × sites (one row per individual, the FastID
//! layout) while the LD computation wants sites × samples (one row per SNP,
//! paper Fig. 2). Transposing a packed bit matrix efficiently is a
//! word-block problem: we lift 8×8 bit tiles through the classic
//! delta-swap network instead of moving single bits.

use crate::matrix::BitMatrix;
use crate::word::Word;

/// Transposes an 8×8 bit tile held as 8 bytes (row `i` in byte `i`,
/// little-endian bit order). Three delta-swap rounds (Hacker's Delight §7-3).
#[inline]
fn transpose8x8(b: [u8; 8]) -> [u8; 8] {
    let mut x: u64 = u64::from_le_bytes(b);
    // Swap 1x1 sub-blocks across the diagonal within 2x2 blocks, then 2x2
    // within 4x4, then 4x4 within 8x8.
    let mut t = (x ^ (x >> 7)) & 0x00AA_00AA_00AA_00AA;
    x ^= t ^ (t << 7);
    t = (x ^ (x >> 14)) & 0x0000_CCCC_0000_CCCC;
    x ^= t ^ (t << 14);
    t = (x ^ (x >> 28)) & 0x0000_0000_F0F0_F0F0;
    x ^= t ^ (t << 28);
    x.to_le_bytes()
}

/// Returns the bit-transpose of `m`: output bit (`r`, `c`) equals input bit
/// (`c`, `r`). Works for any word type and any (including ragged) shape;
/// padding in the result is zero.
pub fn transpose<W: Word>(m: &BitMatrix<W>) -> BitMatrix<W> {
    let (rows, cols) = (m.rows(), m.cols());
    let mut out = BitMatrix::<W>::zeros(cols, rows);
    if rows == 0 || cols == 0 {
        return out;
    }
    let wb = W::BITS as usize;
    let out_wpr = out.words_per_row();
    // Process 8x8 bit tiles: gather 8 source rows x 8 source columns,
    // transpose the tile, scatter into 8 destination rows.
    for r0 in (0..rows).step_by(8) {
        let r_max = 8.min(rows - r0);
        for c0 in (0..cols).step_by(8) {
            let c_max = 8.min(cols - c0);
            // Gather: byte i = bits (r0+i, c0..c0+8).
            let mut tile = [0u8; 8];
            for (i, t) in tile.iter_mut().enumerate().take(r_max) {
                let r = r0 + i;
                let row = m.row(r);
                // The 8 source columns may straddle a word boundary.
                let w = c0 / wb;
                let off = (c0 % wb) as u32;
                let lo = row[w].to_u64() >> off;
                let hi = if off != 0 && w + 1 < row.len() {
                    row[w + 1].to_u64() << (wb as u32 - off)
                } else {
                    0
                };
                *t = ((lo | hi) & 0xFF) as u8;
            }
            let tt = transpose8x8(tile);
            // Scatter: byte j = output bits (c0+j, r0..r0+8).
            let out_words = out.words_per_row();
            debug_assert_eq!(out_words, out_wpr);
            for (j, &byte) in tt.iter().enumerate().take(c_max) {
                let byte = byte & low_u8(r_max);
                if byte == 0 {
                    continue;
                }
                let or = c0 + j;
                let w = r0 / wb;
                let off = (r0 % wb) as u32;
                let row = out.row_mut(or);
                row[w] |= W::from_u64((byte as u64) << off);
                let spill = off as usize + 8;
                if spill > wb && w + 1 < row.len() {
                    row[w + 1] |= W::from_u64((byte as u64) >> (wb as u32 - off));
                }
            }
        }
    }
    debug_assert!(out.padding_is_zero());
    out
}

#[inline]
fn low_u8(n: usize) -> u8 {
    if n >= 8 {
        0xFF
    } else {
        (1u8 << n) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(rows: usize, cols: usize) -> BitMatrix<u64> {
        BitMatrix::from_fn(rows, cols, |r, c| {
            (r.wrapping_mul(0x9E37_79B9) ^ c.wrapping_mul(0x85EB_CA6B)).rotate_left(11) % 3 == 0
        })
    }

    #[test]
    fn tile_transpose_identity_cases() {
        assert_eq!(transpose8x8([0; 8]), [0; 8]);
        assert_eq!(transpose8x8([0xFF; 8]), [0xFF; 8]);
        // Identity matrix is its own transpose.
        let ident = [1u8, 2, 4, 8, 16, 32, 64, 128];
        assert_eq!(transpose8x8(ident), ident);
        // A single bit at (row 2, col 5) moves to (5, 2).
        let mut t = [0u8; 8];
        t[2] = 1 << 5;
        let tt = transpose8x8(t);
        for (i, &b) in tt.iter().enumerate() {
            assert_eq!(b, if i == 5 { 1 << 2 } else { 0 });
        }
    }

    #[test]
    fn transpose_matches_definition() {
        for (rows, cols) in [
            (1usize, 1usize),
            (8, 8),
            (3, 17),
            (65, 9),
            (70, 130),
            (128, 64),
        ] {
            let m = sample(rows, cols);
            let t = transpose(&m);
            assert_eq!((t.rows(), t.cols()), (cols, rows));
            assert!(t.padding_is_zero());
            for r in 0..rows {
                for c in 0..cols {
                    assert_eq!(t.get(c, r), m.get(r, c), "{rows}x{cols} at ({r},{c})");
                }
            }
        }
    }

    #[test]
    fn double_transpose_is_identity() {
        let m = sample(37, 203);
        assert_eq!(transpose(&transpose(&m)), m);
    }

    #[test]
    fn works_for_u32_words() {
        let m64 = sample(20, 75);
        let m32: BitMatrix<u32> = m64.convert();
        let t32 = transpose(&m32);
        let t64 = transpose(&m64);
        assert_eq!(t32.convert::<u64>(), t64);
    }

    #[test]
    fn empty_matrices() {
        let m = BitMatrix::<u64>::zeros(0, 5);
        let t = transpose(&m);
        assert_eq!((t.rows(), t.cols()), (5, 0));
    }

    #[test]
    fn transpose_preserves_popcount() {
        let m = sample(50, 333);
        assert_eq!(transpose(&m).count_ones(), m.count_ones());
    }
}
