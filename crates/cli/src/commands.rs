//! The `snpgpu` subcommands. Each returns its report as a `String` so the
//! command layer is directly testable.

use std::fmt::Write as _;

use snp_bitmat::{reference_gamma, BitMatrix};
use snp_core::{
    compare_op, config_for, Algorithm, CpuModel, EngineError, EngineOptions, ExecMode, FaultPlan,
    FaultProfile, GpuEngine, KernelPlan, Lowering, MixtureStrategy, RecoverySummary,
};
use snp_cpu::CpuEngine;
use snp_gpu_model::config::ProblemShape;
use snp_gpu_model::peak::peak;
use snp_gpu_model::{devices, DeviceSpec, InstrClass, WordOpKind};
use snp_microbench::recover_parameters;
use snp_popgen::forensic::{
    generate_database, generate_mixtures, generate_queries, DatabaseConfig,
};
use snp_popgen::ld_stats::ld_pair;
use snp_popgen::population::{generate_panel, PanelConfig};
use snp_popgen::IdentityScorer;

use crate::args::{algorithm_selection, algorithm_slug, device_selection, ArgError, Args};

/// Top-level usage text.
pub const USAGE: &str = "\
snpgpu — portable SNP comparisons on simulated GPUs

USAGE: snpgpu <command> [--option value]...

COMMANDS:
  devices                      list modeled devices (Table I summary)
  config    --device D --algorithm ld|search|mixture [--m N --n N --snps N]
                               show the derived kernel configuration
  microbench --device D        recover hardware parameters (§V-C/§V-D)
  ld        --device D [--snps N --samples N --seed S]
                               LD scan on a synthetic panel
  search    --device D [--profiles N --snps N --queries N --noise F --seed S]
                               FastID identity search with planted queries
  mixture   --device D [--profiles N --snps N --contributors K --seed S]
                               FastID mixture analysis
  cpu       [--snps N --samples N --seed S]
                               run the real multithreaded CPU engine (wall time)
  trace     --algo ld|fastid|mixture [--device D --out F --summary F ...]
                               run a workload with tracing on; write a Chrome
                               trace_event JSON timeline (open in Perfetto or
                               chrome://tracing) plus a text summary
  lint      [ld|fastid|mixture|all] [--device D|all --json F --deep]
                               statically verify the command DAG (race
                               detection) and the planned kernel (ISA and
                               capacity lints); nonzero findings fail.
                               --deep adds the dataflow layer: trip-sensitive
                               def-use (V110), dead writes (V111), live-range
                               register pressure (V112), the static
                               critical-path cost bound (V113), and
                               scalar-vs-MMA cross-lowering checks (V114)
  chaos     [ld|fastid|mixture|all] [--device D|all --profile P|all --seed S --json F]
                               fault-injection matrix: run every algorithm x
                               device x fault-profile cell on a memory-shrunk
                               device and compare against the fault-free
                               oracle; any silent corruption fails (exit 5)
  profile   [ld|fastid|mixture|all] [--device D|all --m N --n N --snps N --json F]
                               per-kernel hardware counters (FU utilization,
                               bank-conflict replays, achieved bandwidth,
                               occupancy), roofline classification, and the
                               four-way analytic/macro/critpath/detailed
                               drift table; any out-of-tolerance cell fails
  loadgen   [ld|fastid|mixture|all] [--device D --rate Q --queries N --seed S
            --arrival poisson|bursty --mode run|sweep|chaos --slo-p50-ms X
            --slo-p99-ms X --error-budget F --fault-profile P --fault-at Q
            --admission --deadline-slack X --shed-budget F --queue-cap N
            --flight-capacity N --anatomy --json F --trace F --flight F]
                               replay a seeded open-loop query stream against
                               the engine, judge per-algorithm latency SLOs
                               (exit 6 on breach), write slo-report.json,
                               a query-attributed Chrome timeline, and a
                               flight-recorder post-mortem; --admission turns
                               on per-tenant quotas, deadline-aware (EDF +
                               weighted-fair) scheduling, typed load shedding
                               (exit 7 past the shed budget), and brownout
                               degradation; --mode sweep steps offered load
                               and reports the latency-vs-throughput knee;
                               --mode chaos runs the combined overload+fault
                               matrix (bursty 8x load, device loss mid-run,
                               admission on) and fails on any silent
                               corruption; --anatomy appends the per-query
                               latency-anatomy table (percentile bands x
                               named critical-path segments) to the report
  whatif    [ld|fastid|mixture|all] [--device D --rate Q --queries N --seed S
            --arrival poisson|bursty --admission --deadline-slack X
            --shed-budget F --queue-cap N
            --perturb kernel:F,transfer:F,slack:F,sched --json F]
                               causal what-if profiling: replay the same
                               seeded stream once per perturbation with that
                               component's virtual cost rescaled, rank the
                               perturbations by accepted-p99 leverage, then
                               confirm the winner with an independent replay
                               under different observation settings (exit 1
                               if prediction and replay disagree by over 5%)
  metrics   [ld|fastid|mixture|all] [--device D --seed S --queries N --out F]
                               run a small seeded load and dump the live
                               metrics registry in Prometheus text format

Fault profiles: none, transient, corruption, stall, loss, mixed.
ld / search / mixture also accept --fault-profile P [--fault-seed S] to run
under fault injection (P may also be loss@N: lose the device at command N);
a run that finishes on the CPU fallback exits 2. loadgen accepts the same
profiles (--fault-at Q arms the plan only for query Q).
Devices: gtx-980, titan-v, vega-64, tc100 (case- and separator-insensitive).

EXIT CODES: 0 success, 1 usage/planning error, 2 degraded success (device
lost, finished on CPU), 3 command-stream hazard, 4 unrecovered device fault,
5 silent corruption detected by the chaos oracle, 6 SLO breach reported by
loadgen, 7 admission shed budget exceeded (see README \"Exit codes\").";

/// The CLI's exit-code taxonomy (DESIGN.md §10, README "Exit codes") — one
/// enum, one meaning per code. Hazards, typed device faults, degraded
/// completions, chaos-detected silent corruption, SLO breaches, and
/// admission shed-budget overruns are all distinguishable by scripts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ExitCode {
    /// Clean success.
    Ok = 0,
    /// Usage, planning, or I/O error.
    Error = 1,
    /// The run completed but degraded (device lost, CPU fallback finished).
    Degraded = 2,
    /// The race detector found an ordering hazard.
    Hazard = 3,
    /// A typed device fault survived all recovery attempts.
    Fault = 4,
    /// The chaos oracle caught silently corrupted results.
    Corruption = 5,
    /// `loadgen` judged a latency objective or error budget breached.
    SloBreach = 6,
    /// Admission shed more of the offered load than the shed budget allows.
    ShedBudgetExceeded = 7,
}

impl ExitCode {
    /// The process exit status this code maps to.
    pub fn code(self) -> u8 {
        self as u8
    }

    /// Severity rank for combining overload-chaos cells: silent corruption
    /// dominates, then a blown shed budget, then a latency breach. This is
    /// deliberately *not* the numeric code order — corruption (5) outranks
    /// shed-budget (7).
    fn overload_severity(self) -> u8 {
        match self {
            ExitCode::Corruption => 3,
            ExitCode::ShedBudgetExceeded => 2,
            ExitCode::SloBreach => 1,
            _ => 0,
        }
    }
}

/// A command's report text plus its process exit code.
#[derive(Debug, Clone)]
pub struct CmdReport {
    /// Human-readable report for stdout.
    pub text: String,
    /// Process exit code (see [`ExitCode`]).
    pub exit: ExitCode,
}

/// A command failure: printable message plus its exit code.
#[derive(Debug, Clone)]
pub struct CliError {
    /// Message for stderr.
    pub message: String,
    /// Process exit code (see [`ExitCode`]).
    pub exit: ExitCode,
}

impl From<ArgError> for CliError {
    fn from(e: ArgError) -> Self {
        CliError {
            message: e.to_string(),
            exit: ExitCode::Error,
        }
    }
}

/// Maps an engine error to its exit code: hazards, typed device faults, and
/// everything else are distinct.
fn engine_exit(e: &EngineError) -> ExitCode {
    if e.is_hazard() {
        ExitCode::Hazard
    } else if e.device_fault().is_some() {
        ExitCode::Fault
    } else {
        ExitCode::Error
    }
}

/// Converts an engine error into a CLI failure with the matching exit code.
fn engine_err(e: EngineError) -> CliError {
    CliError {
        exit: engine_exit(&e),
        message: e.to_string(),
    }
}

fn device_arg(args: &Args) -> Result<DeviceSpec, ArgError> {
    let name = args.get_or("device", "Titan V");
    devices::by_name(name)
        .filter(|d| d.shared_mem_bytes > 0)
        .ok_or_else(|| ArgError(format!("unknown GPU device {name:?} (try: snpgpu devices)")))
}

/// Dispatches a parsed command line, returning text only (exit codes
/// collapse to generic failure). Prefer [`run_full`] in binaries.
pub fn run(args: &Args) -> Result<String, ArgError> {
    match run_full(args) {
        Ok(report) if report.exit == ExitCode::Ok || report.exit == ExitCode::Degraded => {
            Ok(report.text)
        }
        Ok(report) => Err(ArgError(report.text)),
        Err(e) => Err(ArgError(e.message)),
    }
}

/// Dispatches a parsed command line with the full exit-code taxonomy.
pub fn run_full(args: &Args) -> Result<CmdReport, CliError> {
    let simple = |r: Result<String, ArgError>| -> Result<CmdReport, CliError> {
        Ok(CmdReport {
            text: r?,
            exit: ExitCode::Ok,
        })
    };
    match args.command.as_deref() {
        Some("devices") => simple(cmd_devices(args)),
        Some("config") => simple(cmd_config(args)),
        Some("microbench") => simple(cmd_microbench(args)),
        Some("ld") => cmd_ld(args),
        Some("search") => cmd_search(args),
        Some("mixture") => cmd_mixture(args),
        Some("cpu") => simple(cmd_cpu(args)),
        Some("trace") => simple(cmd_trace(args)),
        Some("lint") => simple(cmd_lint(args)),
        Some("chaos") => cmd_chaos(args),
        Some("profile") => cmd_profile(args),
        Some("loadgen") => cmd_loadgen(args),
        Some("whatif") => cmd_whatif(args),
        Some("metrics") => simple(cmd_metrics(args)),
        Some(other) => Err(CliError {
            message: format!("unknown command {other:?}\n\n{USAGE}"),
            exit: ExitCode::Error,
        }),
        None => simple(Ok(USAGE.to_string())),
    }
}

fn cmd_devices(args: &Args) -> Result<String, ArgError> {
    args.expect_only(&[])?;
    let mut out = String::new();
    for d in devices::all_devices() {
        let pk = peak(&d, WordOpKind::And);
        let mma = match (&d.matrix_unit, d.n_fn(InstrClass::Mma)) {
            (Some(mu), Some(lanes)) => format!(
                ", mma x{lanes} ({}x{}x{}b, {:.0} G word-ops/s)",
                mu.frag_m,
                mu.frag_n,
                mu.frag_k_bits,
                snp_gpu_model::peak::matrix_unit_peak(&d, WordOpKind::And)
                    .map_or(0.0, |p| p.word_ops_per_sec / 1e9),
            ),
            _ => String::new(),
        };
        let _ = writeln!(
            out,
            "{:<18} {:<12} {:>3} cores x {} clusters, {}-thread {}s, popc x{} (L={}), peak {:.0} G word-ops/s{}",
            d.name,
            d.microarchitecture,
            d.n_cores,
            d.n_clusters,
            d.n_t,
            d.thread_group_term(),
            d.n_fn(InstrClass::Popc).unwrap(),
            d.l_fn,
            pk.word_ops_per_sec / 1e9,
            mma,
        );
    }
    Ok(out)
}

fn algorithm_arg(args: &Args) -> Result<Algorithm, ArgError> {
    match args.get_or("algorithm", "ld") {
        "ld" => Ok(Algorithm::LinkageDisequilibrium),
        "search" => Ok(Algorithm::IdentitySearch),
        "mixture" => Ok(Algorithm::MixtureAnalysis),
        other => Err(ArgError(format!(
            "unknown algorithm {other:?} (ld|search|mixture)"
        ))),
    }
}

fn cmd_config(args: &Args) -> Result<String, ArgError> {
    args.expect_only(&["device", "algorithm", "m", "n", "snps"])?;
    let dev = device_arg(args)?;
    let alg = algorithm_arg(args)?;
    let m = args.get_parse("m", 10_000usize)?;
    let n = args.get_parse("n", 10_000usize)?;
    let snps = args.get_parse("snps", 10_000usize)?;
    let shape = ProblemShape {
        m,
        n,
        k_words: snps.div_ceil(32).max(1),
    };
    let cfg = config_for(&dev, alg, shape);
    let mut out = String::new();
    let _ = writeln!(out, "device:    {} ({})", dev.name, dev.microarchitecture);
    let _ = writeln!(out, "algorithm: {}", alg.name());
    let _ = writeln!(
        out,
        "problem:   {m} x {n} over {snps} SNP-string bits ({} device words)",
        shape.k_words
    );
    let _ = writeln!(out, "m_c = {:<5} (A tile rows in shared memory)", cfg.m_c);
    let _ = writeln!(out, "m_r = {:<5} (register rows; Eq. 4: N_vec)", cfg.m_r);
    let _ = writeln!(out, "k_c = {:<5} (shared-memory depth; Eq. 6)", cfg.k_c);
    let _ = writeln!(out, "n_r = {:<5} (register columns; Eq. 7 bounds)", cfg.n_r);
    let _ = writeln!(
        out,
        "core grid = {} x {} (third x second loop)",
        cfg.grid_m, cfg.grid_n
    );
    let _ = writeln!(
        out,
        "thread groups per cluster = {} (= L_fn)",
        cfg.groups_per_cluster
    );
    Ok(out)
}

fn cmd_microbench(args: &Args) -> Result<String, ArgError> {
    args.expect_only(&["device"])?;
    let dev = device_arg(args)?;
    let r = recover_parameters(&dev);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "recovered parameters for {} (dependent chains + group sweeps):",
        dev.name
    );
    for (class, lat) in &r.latency {
        let units = r.units_for(*class).unwrap();
        let _ = writeln!(
            out,
            "  {class:<6} latency {lat:>5.2} cycles, {units:>2} units/cluster"
        );
    }
    let shared: Vec<String> = r
        .shared_pairs
        .iter()
        .map(|(a, b)| format!("{a}+{b}"))
        .collect();
    let _ = writeln!(
        out,
        "  shared pipelines: {}",
        if shared.is_empty() {
            "none".into()
        } else {
            shared.join(", ")
        }
    );
    Ok(out)
}

/// Parses the optional `--fault-profile NAME [--fault-seed S]` pair shared
/// by the workload commands into an armed [`FaultPlan`].
fn fault_args(args: &Args) -> Result<Option<FaultPlan>, ArgError> {
    let Some(name) = args.get("fault-profile") else {
        return Ok(None);
    };
    // `loss@N` pins device loss at host command N (the bare `loss` preset
    // loses the device at command 9, which short runs may never reach).
    let profile = if let Some(at) = name.strip_prefix("loss@") {
        let at: u64 = at
            .parse()
            .map_err(|_| ArgError(format!("bad command index in {name:?}")))?;
        FaultProfile {
            device_loss_at: Some(at),
            ..FaultProfile::none()
        }
    } else {
        FaultProfile::by_name(name).ok_or_else(|| {
            ArgError(format!(
                "unknown fault profile {name:?} (expected one of: {}, or loss@N)",
                FaultProfile::NAMES.join(", ")
            ))
        })?
    };
    let seed = args.get_parse("fault-seed", 42u64)?;
    Ok(Some(FaultPlan::new(seed, profile)))
}

/// Folds a run's recovery summary into the report: appends the summary
/// line when a plan was armed and downgrades the exit to `DEGRADED` when
/// the run finished on the CPU fallback.
fn finish_workload(mut text: String, recovery: Option<&RecoverySummary>) -> CmdReport {
    let mut exit = ExitCode::Ok;
    if let Some(rec) = recovery {
        use std::fmt::Write as _;
        let _ = writeln!(text, "{}", rec.render_line());
        if rec.degraded() {
            exit = ExitCode::Degraded;
        }
    }
    CmdReport { text, exit }
}

fn cmd_ld(args: &Args) -> Result<CmdReport, CliError> {
    args.expect_only(&[
        "device",
        "snps",
        "samples",
        "seed",
        "fault-profile",
        "fault-seed",
    ])?;
    let dev = device_arg(args)?;
    let snps = args.get_parse("snps", 256usize)?;
    let samples = args.get_parse("samples", 2048usize)?;
    let seed = args.get_parse("seed", 42u64)?;
    let panel = generate_panel(
        &PanelConfig {
            snps,
            samples,
            ..Default::default()
        },
        seed,
    );
    let mut engine = GpuEngine::new(dev.clone());
    if let Some(plan) = fault_args(args)? {
        engine = engine.with_fault_plan(plan);
    }
    let run = engine.ld_self(&panel.matrix).map_err(engine_err)?;
    let gamma = run.gamma.expect("full mode");
    // Strongest off-diagonal pair.
    let mut best = (0usize, 1usize, -1.0f64);
    for a in 0..snps {
        for b in (a + 1)..snps {
            let r2 = ld_pair(&gamma, samples, a, b).r2;
            if r2 > best.2 {
                best = (a, b, r2);
            }
        }
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "LD scan: {snps} SNPs x {samples} haplotypes on {}",
        dev.name
    );
    let _ = writeln!(
        out,
        "modeled end-to-end {:.2} ms (kernel {:.3} ms, {} pass(es))",
        run.timing.end_to_end_ns as f64 / 1e6,
        run.timing.kernel_ns as f64 / 1e6,
        run.passes
    );
    let _ = writeln!(
        out,
        "strongest pair: SNP {} ~ SNP {} with r² = {:.3}",
        best.0, best.1, best.2
    );
    Ok(finish_workload(out, run.recovery.as_ref()))
}

fn cmd_search(args: &Args) -> Result<CmdReport, CliError> {
    args.expect_only(&[
        "device",
        "profiles",
        "snps",
        "queries",
        "noise",
        "seed",
        "fault-profile",
        "fault-seed",
    ])?;
    let dev = device_arg(args)?;
    let profiles = args.get_parse("profiles", 10_000usize)?;
    let snps = args.get_parse("snps", 512usize)?;
    let queries = args.get_parse("queries", 8usize)?;
    let noise = args.get_parse("noise", 0.01f64)?;
    let seed = args.get_parse("seed", 42u64)?;
    let db = generate_database(
        &DatabaseConfig {
            profiles,
            snps,
            ..Default::default()
        },
        seed,
    );
    let planted = queries.div_ceil(2);
    let qs = generate_queries(&db, queries, planted, noise, seed + 1);
    let mut engine = GpuEngine::new(dev.clone());
    if let Some(plan) = fault_args(args)? {
        engine = engine.with_fault_plan(plan);
    }
    let run = engine
        .identity_search(&qs.queries, &db.profiles)
        .map_err(engine_err)?;
    let gamma = run.gamma.expect("full mode");
    let scorer = IdentityScorer::new(db.site_maf.clone(), noise.max(1e-4));
    let mut out = String::new();
    let _ = writeln!(
        out,
        "identity search: {queries} queries vs {profiles} profiles x {snps} SNPs on {} ({:.2} ms end-to-end, {} pass(es))",
        dev.name,
        run.timing.end_to_end_ns as f64 / 1e6,
        run.passes
    );
    for q in 0..queries {
        let best = gamma.argmin_in_row(q).unwrap();
        let d = gamma.get(q, best);
        let lr = scorer.log_lr(d);
        let verdict = if lr > 0.0 { "MATCH" } else { "no match" };
        let truth = match qs.truth[q] {
            Some(t) if t == best => " [planted: correct]",
            Some(_) => " [planted: WRONG PROFILE]",
            None => " [non-member]",
        };
        let _ = writeln!(
            out,
            "  query {q}: profile {best} at {d} differences, log LR {lr:>8.1} -> {verdict}{truth}"
        );
    }
    Ok(finish_workload(out, run.recovery.as_ref()))
}

fn cmd_mixture(args: &Args) -> Result<CmdReport, CliError> {
    args.expect_only(&[
        "device",
        "profiles",
        "snps",
        "contributors",
        "seed",
        "fault-profile",
        "fault-seed",
    ])?;
    let dev = device_arg(args)?;
    let profiles = args.get_parse("profiles", 5_000usize)?;
    let snps = args.get_parse("snps", 512usize)?;
    let contributors = args.get_parse("contributors", 3usize)?;
    let seed = args.get_parse("seed", 42u64)?;
    let db = generate_database(
        &DatabaseConfig {
            profiles,
            snps,
            ..Default::default()
        },
        seed,
    );
    let (mixtures, matrix) = generate_mixtures(&db, 1, contributors, seed + 1);
    let strategy = if dev.fused_andnot {
        MixtureStrategy::Direct
    } else {
        MixtureStrategy::PreNegate
    };
    let mut engine = GpuEngine::new(dev.clone()).with_options(EngineOptions {
        mode: ExecMode::Full,
        double_buffer: true,
        mixture: strategy,
        ..Default::default()
    });
    if let Some(plan) = fault_args(args)? {
        engine = engine.with_fault_plan(plan);
    }
    let run = engine
        .mixture_analysis(&db.profiles, &matrix)
        .map_err(engine_err)?;
    let gamma = run.gamma.expect("full mode");
    let included: Vec<usize> = (0..profiles).filter(|&r| gamma.get(r, 0) == 0).collect();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "mixture analysis on {} (strategy {:?}, chosen for this microarchitecture):",
        dev.name, strategy
    );
    let _ = writeln!(out, "  planted contributors: {:?}", {
        let mut c = mixtures[0].contributors.clone();
        c.sort_unstable();
        c
    });
    let _ = writeln!(
        out,
        "  profiles consistent with the mixture (γ = 0): {included:?}"
    );
    let _ = writeln!(
        out,
        "  modeled kernel {:.3} ms at {:.0} G word-ops/s",
        run.timing.kernel_ns as f64 / 1e6,
        run.kernel_word_ops_per_sec / 1e9
    );
    Ok(finish_workload(out, run.recovery.as_ref()))
}

fn cmd_cpu(args: &Args) -> Result<String, ArgError> {
    args.expect_only(&["snps", "samples", "seed"])?;
    let snps = args.get_parse("snps", 512usize)?;
    let samples = args.get_parse("samples", 4096usize)?;
    let seed = args.get_parse("seed", 42u64)?;
    let panel = snp_popgen::random_dense(snps, samples, seed);
    let engine = CpuEngine::new();
    let t0 = std::time::Instant::now();
    let gamma = engine.ld_self_symmetric(&panel);
    let dt = t0.elapsed();
    let word_ops = snps * snps * panel.words_per_row();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "real CPU engine (this host): {snps} x {snps} LD over {samples} samples"
    );
    let _ = writeln!(
        out,
        "wall time {:.1} ms, {:.2} G word64-ops/s (symmetric path)",
        dt.as_secs_f64() * 1e3,
        word_ops as f64 / dt.as_secs_f64() / 1e9
    );
    let model = CpuModel::ivy_bridge_workstation();
    let _ = writeln!(
        out,
        "(the paper's Xeon E5-2620 v2 model would need {:.1} ms)",
        model.time_ns_for_bits(WordOpKind::And, snps, snps, samples) / 1e6
    );
    let _ = writeln!(out, "γ[0][0] = {} (self count)", gamma.get(0, 0));
    let _ = BitMatrix::<u64>::zeros(0, 0); // keep the type in the public surface
    Ok(out)
}

fn cmd_trace(args: &Args) -> Result<String, ArgError> {
    args.expect_only(&[
        "algo",
        "algorithm",
        "device",
        "snps",
        "samples",
        "profiles",
        "queries",
        "contributors",
        "seed",
        "out",
        "summary",
    ])?;
    let dev = device_arg(args)?;
    let algo = args
        .get("algo")
        .or_else(|| args.get("algorithm"))
        .unwrap_or("ld");
    let seed = args.get_parse("seed", 42u64)?;
    let tracer = snp_trace::Tracer::enabled();
    let engine = GpuEngine::new(dev.clone())
        .with_options(EngineOptions {
            mode: ExecMode::Full,
            double_buffer: true,
            mixture: if dev.fused_andnot {
                MixtureStrategy::Direct
            } else {
                MixtureStrategy::PreNegate
            },
            ..Default::default()
        })
        .with_tracer(tracer.clone());
    let (label, timing, passes) = match algo {
        "ld" => {
            let snps = args.get_parse("snps", 128usize)?;
            let samples = args.get_parse("samples", 1024usize)?;
            let panel = generate_panel(
                &PanelConfig {
                    snps,
                    samples,
                    ..Default::default()
                },
                seed,
            );
            let run = engine
                .ld_self(&panel.matrix)
                .map_err(|e| ArgError(e.to_string()))?;
            (
                format!("LD scan: {snps} SNPs x {samples} haplotypes"),
                run.timing,
                run.passes,
            )
        }
        "fastid" | "search" => {
            let profiles = args.get_parse("profiles", 2_000usize)?;
            let snps = args.get_parse("snps", 256usize)?;
            let queries = args.get_parse("queries", 4usize)?;
            let db = generate_database(
                &DatabaseConfig {
                    profiles,
                    snps,
                    ..Default::default()
                },
                seed,
            );
            let qs = generate_queries(&db, queries, queries.div_ceil(2), 0.01, seed + 1);
            let run = engine
                .identity_search(&qs.queries, &db.profiles)
                .map_err(|e| ArgError(e.to_string()))?;
            (
                format!("FastID identity search: {queries} queries vs {profiles} profiles"),
                run.timing,
                run.passes,
            )
        }
        "mixture" => {
            let profiles = args.get_parse("profiles", 1_000usize)?;
            let snps = args.get_parse("snps", 256usize)?;
            let contributors = args.get_parse("contributors", 2usize)?;
            let db = generate_database(
                &DatabaseConfig {
                    profiles,
                    snps,
                    ..Default::default()
                },
                seed,
            );
            let (_mixtures, matrix) = generate_mixtures(&db, 1, contributors, seed + 1);
            let run = engine
                .mixture_analysis(&db.profiles, &matrix)
                .map_err(|e| ArgError(e.to_string()))?;
            (
                format!(
                    "FastID mixture analysis: {profiles} profiles, {contributors} contributors"
                ),
                run.timing,
                run.passes,
            )
        }
        other => {
            return Err(ArgError(format!(
                "unknown algo {other:?} (ld|fastid|mixture)"
            )))
        }
    };

    let trace = tracer.snapshot().expect("tracing was enabled");
    let json = snp_trace::chrome::export_chrome_trace(&trace);
    let stats = snp_trace::chrome::validate(&json)
        .map_err(|e| ArgError(format!("internal: emitted trace failed validation: {e}")))?;
    let out_path = args.get_or("out", "trace.json");
    std::fs::write(out_path, &json)
        .map_err(|e| ArgError(format!("cannot write {out_path}: {e}")))?;
    let mut summary_text = snp_trace::summary::render_summary(&trace);
    summary_text.push('\n');
    summary_text.push_str(&snp_trace::summary::render_metrics(snp_trace::registry()));
    let summary_path = args.get_or("summary", "trace.txt");
    std::fs::write(summary_path, &summary_text)
        .map_err(|e| ArgError(format!("cannot write {summary_path}: {e}")))?;

    let mut out = String::new();
    let _ = writeln!(out, "{label} on {}", dev.name);
    let _ = writeln!(
        out,
        "modeled end-to-end {:.2} ms ({} pass(es), kernel {:.3} ms)",
        timing.end_to_end_ns as f64 / 1e6,
        passes,
        timing.kernel_ns as f64 / 1e6
    );
    let _ = writeln!(
        out,
        "timeline: {out_path} ({} slices, {} counter events, {} tracks; validated Chrome trace_event JSON)",
        stats.slices,
        stats.counters,
        trace.tracks.len()
    );
    let _ = writeln!(
        out,
        "summary:  {summary_path} (hierarchical text view + metrics registry)"
    );
    let _ = writeln!(
        out,
        "open the timeline at https://ui.perfetto.dev or chrome://tracing"
    );
    Ok(out)
}

/// A problem shape guaranteeing a multi-chunk, double-buffered command
/// stream on `dev` — the interesting case for race detection, since the
/// slot-recycling WAR/WAW edges only appear once `n` spans several chunks.
fn lint_shape(dev: &DeviceSpec) -> ProblemShape {
    let k_words = 256usize; // 8192 SNP-string bits
    let rows_per_alloc = (dev.max_alloc_bytes / 4) as usize / k_words;
    ProblemShape {
        m: 64,
        n: rows_per_alloc.saturating_mul(6).max(4096),
        k_words,
    }
}

fn cmd_lint(args: &Args) -> Result<String, ArgError> {
    args.expect_only(&["device", "json", "deep"])?;
    let deep = args.flag("deep");
    let algorithms = algorithm_selection(args.positional.as_deref().unwrap_or("all"))?;
    let devs = device_selection(args.get_or("device", "all"))?;

    let mut out = String::new();
    let mut json_targets = Vec::new();
    let mut blocking = 0usize;
    for dev in &devs {
        for &alg in &algorithms {
            let shape = lint_shape(dev);
            let mixture = if dev.fused_andnot {
                MixtureStrategy::Direct
            } else {
                MixtureStrategy::PreNegate
            };
            let engine = GpuEngine::new(dev.clone()).with_options(EngineOptions {
                mode: ExecMode::TimingOnly,
                double_buffer: true,
                mixture,
                verify: true,
                ..Default::default()
            });
            let run = engine
                .run_shape(shape, alg)
                .map_err(|e| ArgError(format!("{} / {}: {e}", dev.name, alg.name())))?;
            let mut report = run.verify_report.expect("verification was enabled");
            let op = compare_op(alg, mixture);
            let plan = KernelPlan::new(dev, &run.config, op, shape.m, shape.n, shape.k_words);
            let facts = plan.facts(dev, shape.k_words);
            let mut deep_json = String::new();
            if deep {
                report.merge(snp_verify::lint_kernel_deep(dev, &run.config, &facts));
                // Cross-lowering consistency (V114): on matrix-unit devices
                // whose plan actually lowers to MMA, the pinned scalar
                // program of the same plan must describe the same work.
                if plan.lowering.uses_matrix_unit() {
                    let scalar = KernelPlan::with_lowering(
                        dev,
                        &run.config,
                        op,
                        shape.m,
                        shape.n,
                        shape.k_words,
                        Lowering::Scalar,
                    );
                    report.merge(snp_verify::lint_cross_lowering(
                        dev,
                        &scalar.facts(dev, shape.k_words),
                        &facts,
                    ));
                }
                let df = snp_verify::Dataflow::analyze(&facts.program);
                let cp = snp_verify::critical_path(dev, &facts.program);
                deep_json = format!(
                    ",\"deep\":{{\"max_live\":{},\"reg_count\":{},\"chain_cycles\":{},\
                     \"peak_pipe_issue_cycles\":{},\"lower_bound_cycles\":{},\
                     \"predicted_core_cycles\":{:.0}}}",
                    df.pressure.max_live,
                    df.pressure.reg_count,
                    cp.chain_cycles,
                    cp.pipe_issue_cycles.iter().copied().max().unwrap_or(0),
                    cp.lower_bound_cycles(),
                    cp.predicted_core_cycles(dev.n_clusters, facts.groups_per_core),
                );
            } else {
                report.merge(snp_verify::lint_kernel(dev, &run.config, &facts));
            }
            let label = format!("{} / {}", dev.name, alg.name());
            out.push_str(&report.render_text(&label));
            if report.has_blocking() {
                blocking += 1;
            }
            json_targets.push(format!(
                "{{\"device\":\"{}\",\"algorithm\":\"{}\",\"report\":{}{}}}",
                snp_verify::json_escape(&dev.name),
                snp_verify::json_escape(alg.name()),
                report.to_json(),
                deep_json,
            ));
        }
    }
    if let Some(path) = args.get("json") {
        let json = format!("{{\"targets\":[{}]}}\n", json_targets.join(","));
        std::fs::write(path, json).map_err(|e| ArgError(format!("cannot write {path}: {e}")))?;
        let _ = writeln!(out, "machine-readable report: {path}");
    }
    if blocking > 0 {
        return Err(ArgError(format!(
            "lint failed: {blocking} target(s) with blocking findings\n\n{out}"
        )));
    }
    let _ = writeln!(
        out,
        "all {} target(s) verified: no races, no kernel lint findings{}",
        devs.len() * algorithms.len(),
        if deep {
            " (deep dataflow rules included)"
        } else {
            ""
        },
    );
    Ok(out)
}

/// Shrinks a device's memory so the chaos workload needs several chunks —
/// checkpointing, loss-resume, and failover are only exercised multi-chunk.
fn chaos_device(base: &DeviceSpec) -> DeviceSpec {
    let mut d = base.clone();
    d.max_alloc_bytes = d.max_alloc_bytes.min(1 << 17);
    d.global_mem_bytes = d.global_mem_bytes.min(1 << 20);
    d
}

fn chaos_matrix(rows: usize, cols: usize, salt: u64) -> BitMatrix<u64> {
    BitMatrix::from_fn(rows, cols, |r, c| {
        let h = (r as u64)
            .wrapping_mul(1_000_003)
            .wrapping_add(c as u64)
            .wrapping_add(salt.wrapping_mul(7_777_777))
            .wrapping_mul(0x9E37_79B9);
        (h >> 13).is_multiple_of(4)
    })
}

fn cmd_chaos(args: &Args) -> Result<CmdReport, CliError> {
    args.expect_only(&["device", "profile", "seed", "json"])?;
    let algorithms = algorithm_selection(args.positional.as_deref().unwrap_or("all"))?;
    let devs = device_selection(args.get_or("device", "all"))?;
    let profiles: Vec<&str> = match args.get_or("profile", "all") {
        "all" => FaultProfile::NAMES.to_vec(),
        name => {
            if FaultProfile::by_name(name).is_none() {
                return Err(ArgError(format!(
                    "unknown fault profile {name:?} (one of: {})",
                    FaultProfile::NAMES.join(", ")
                ))
                .into());
            }
            vec![name]
        }
    };
    let seed = args.get_parse("seed", 42u64)?;

    // One shared workload per algorithm: small enough to be quick, large
    // enough that the shrunken devices plan several passes.
    let a = chaos_matrix(8, 320, seed);
    let b = chaos_matrix(9000, 320, seed + 1);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "chaos matrix: {} algorithm(s) x {} device(s) x {} profile(s), seed {seed}",
        algorithms.len(),
        devs.len(),
        profiles.len()
    );
    let _ = writeln!(
        out,
        "{:<24} {:<10} {:<11} {:<18} outcome",
        "device", "algorithm", "profile", "recovery"
    );
    let mut rows = Vec::new();
    let mut corruptions = 0usize;
    let mut hazards = 0usize;
    for dev in &devs {
        let cdev = chaos_device(dev);
        for &alg in &algorithms {
            let opts = EngineOptions {
                mode: ExecMode::Full,
                double_buffer: true,
                mixture: MixtureStrategy::Direct,
                verify: true,
                ..Default::default()
            };
            let op = compare_op(alg, MixtureStrategy::Direct);
            let want = reference_gamma(&a, &b, op);
            for &profile in &profiles {
                // Decorrelate cells: same base seed, distinct fault draws.
                let cell_seed =
                    seed.wrapping_add((rows.len() as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                let plan = FaultPlan::new(
                    cell_seed,
                    FaultProfile::by_name(profile).expect("validated above"),
                );
                let run = GpuEngine::new(cdev.clone())
                    .with_options(opts)
                    .with_fault_plan(plan)
                    .compare(&a, &b, alg);
                let (outcome, detail) = match &run {
                    Ok(report) => {
                        let gamma = report.gamma.as_ref().expect("full mode");
                        let rec = report.recovery.as_ref().expect("recovering path");
                        let detail = format!(
                            "r{} c{} s{} {}ck",
                            rec.retries,
                            rec.corruption_detected,
                            rec.stalls_absorbed,
                            rec.verified_chunks,
                        );
                        if gamma.first_mismatch(&want).is_some() {
                            corruptions += 1;
                            ("SILENT-CORRUPTION", detail)
                        } else if rec.degraded() {
                            (
                                "degraded",
                                format!("{detail} resume@{}", rec.resumed_from_chunk.unwrap_or(0)),
                            )
                        } else if rec.retries + rec.corruption_detected + rec.stalls_absorbed > 0 {
                            ("recovered", detail)
                        } else {
                            ("clean", detail)
                        }
                    }
                    Err(e) if e.is_hazard() => {
                        hazards += 1;
                        ("HAZARD", e.to_string())
                    }
                    Err(e) if e.device_fault().is_some() => ("typed-error", e.to_string()),
                    Err(e) => ("error", e.to_string()),
                };
                let _ = writeln!(
                    out,
                    "{:<24} {:<10} {:<11} {:<18} {outcome}",
                    cdev.name,
                    algorithm_slug(alg),
                    profile,
                    detail
                );
                rows.push(format!(
                    "{{\"device\":\"{}\",\"algorithm\":\"{}\",\"profile\":\"{}\",\"seed\":{cell_seed},\"outcome\":\"{}\",\"detail\":\"{}\"}}",
                    snp_verify::json_escape(&cdev.name),
                    snp_verify::json_escape(algorithm_slug(alg)),
                    snp_verify::json_escape(profile),
                    snp_verify::json_escape(outcome),
                    snp_verify::json_escape(&detail),
                ));
            }
        }
    }
    let exit = if corruptions > 0 {
        ExitCode::Corruption
    } else if hazards > 0 {
        ExitCode::Hazard
    } else {
        ExitCode::Ok
    };
    let _ = writeln!(
        out,
        "{} cell(s): {corruptions} silent corruption(s), {hazards} hazard(s)",
        rows.len()
    );
    if let Some(path) = args.get("json") {
        let json = format!(
            "{{\"seed\":{seed},\"cells\":[{}],\"silent_corruptions\":{corruptions},\"hazards\":{hazards}}}\n",
            rows.join(",")
        );
        std::fs::write(path, json)
            .map_err(|e| CliError::from(ArgError(format!("cannot write {path}: {e}"))))?;
        let _ = writeln!(out, "machine-readable report: {path}");
    }
    if exit == ExitCode::Ok {
        let _ = writeln!(
            out,
            "no silent corruption: every fault was retried, detected, absorbed, or surfaced typed"
        );
    }
    Ok(CmdReport { text: out, exit })
}

/// JSON for one profiled cell (hand-rolled, like the lint/chaos reports).
fn profile_cell_json(c: &snp_core::CellProfile) -> String {
    let fu: Vec<String> = c
        .fu
        .iter()
        .map(|f| {
            format!(
                "{{\"pipeline\":\"{}\",\"busy_cycles\":{},\"detailed_busy_cycles\":{},\"utilization\":{:.6}}}",
                snp_verify::json_escape(&f.pipeline),
                f.busy_cycles,
                f.detailed_busy_cycles,
                f.utilization
            )
        })
        .collect();
    let instrs: Vec<String> = c
        .instrs_by_class
        .iter()
        .map(|(class, n)| {
            format!(
                "{{\"class\":\"{}\",\"count\":{n}}}",
                snp_verify::json_escape(class)
            )
        })
        .collect();
    format!(
        concat!(
            "{{\"device\":\"{device}\",\"algorithm\":\"{alg}\",",
            "\"m\":{m},\"n\":{n},\"k_words\":{k},\"passes\":{passes},\"kernel_ns\":{kns},",
            "\"fu\":[{fu}],\"instrs_by_class\":[{instrs}],",
            "\"bank_conflict_replays\":{replays},\"job_cycles\":{jc},",
            "\"occupancy\":{{\"groups_per_core\":{gpc},\"target_groups\":{tg},\"achieved\":{occ:.6}}},",
            "\"bandwidth\":{{\"bytes_moved\":{bytes},\"achieved_bytes_s\":{abw:.1},",
            "\"peak_bytes_s\":{pbw:.1},\"fraction\":{bwf:.6}}},",
            "\"roofline\":{{\"arithmetic_intensity\":{ai:.6},\"ridge\":{ridge:.6},",
            "\"matrix_unit_ridge\":{mur},",
            "\"compute_peak_word_ops_s\":{cpk:.1},\"memory_peak_bytes_s\":{mpk:.1},",
            "\"bound\":\"{bound}\"}},",
            "\"drift\":{{\"analytic_ns\":{an:.1},\"macro_ns\":{mn:.1},",
            "\"critpath_ns\":{cn:.1},\"detailed_ns\":{dn:.1},",
            "\"analytic_vs_macro\":{avm:.6},\"macro_vs_detailed\":{mvd:.6},",
            "\"analytic_vs_detailed\":{avd:.6},\"critpath_vs_detailed\":{cvd:.6},",
            "\"within_tolerance\":{within}}}}}"
        ),
        device = snp_verify::json_escape(&c.device),
        alg = snp_verify::json_escape(algorithm_slug(c.algorithm)),
        m = c.shape.m,
        n = c.shape.n,
        k = c.shape.k_words,
        passes = c.passes,
        kns = c.kernel_ns,
        fu = fu.join(","),
        instrs = instrs.join(","),
        replays = c.bank_conflict_replays,
        jc = c.job_cycles,
        gpc = c.occupancy.groups_per_core,
        tg = c.occupancy.target_groups,
        occ = c.occupancy.achieved,
        bytes = c.bandwidth.bytes_moved,
        abw = c.bandwidth.achieved_bytes_s,
        pbw = c.bandwidth.peak_bytes_s,
        bwf = c.bandwidth.fraction,
        ai = c.roofline.arithmetic_intensity,
        ridge = c.roofline.ridge,
        mur = c
            .roofline
            .matrix_unit_ridge
            .map_or("null".to_string(), |r| format!("{r:.6}")),
        cpk = c.roofline.compute_peak_word_ops_s,
        mpk = c.roofline.memory_peak_bytes_s,
        bound = c.roofline.bound.label(),
        an = c.drift.analytic_ns,
        mn = c.drift.macro_ns,
        cn = c.drift.critpath_ns,
        dn = c.drift.detailed_ns,
        avm = c.drift.analytic_vs_macro,
        mvd = c.drift.macro_vs_detailed,
        avd = c.drift.analytic_vs_detailed,
        cvd = c.drift.critpath_vs_detailed,
        within = c.drift.within_tolerance(),
    )
}

fn cmd_profile(args: &Args) -> Result<CmdReport, CliError> {
    args.expect_only(&["device", "m", "n", "snps", "json"])?;
    let algorithms = algorithm_selection(args.positional.as_deref().unwrap_or("all"))?;
    let devs = device_selection(args.get_or("device", "all"))?;
    let m = args.get_parse("m", 2048usize)?;
    let n = args.get_parse("n", 2048usize)?;
    let snps = args.get_parse("snps", 8192usize)?;
    let shape = ProblemShape {
        m,
        n,
        k_words: snps.div_ceil(32).max(1),
    };

    let mut out = String::new();
    let _ = writeln!(
        out,
        "profiling {} algorithm(s) x {} device(s) at {m} x {n} over {} device words",
        algorithms.len(),
        devs.len(),
        shape.k_words
    );
    let mut cells = Vec::new();
    let mut violations = 0usize;
    for dev in &devs {
        for &alg in &algorithms {
            let cell = snp_core::profile_cell(dev, alg, shape).map_err(engine_err)?;
            let _ = writeln!(
                out,
                "\n== {} / {} ==",
                cell.device,
                algorithm_slug(cell.algorithm)
            );
            let _ = writeln!(
                out,
                "  {} pass(es), kernel {:.3} ms, {} tile-job cycles per core",
                cell.passes,
                cell.kernel_ns as f64 / 1e6,
                cell.job_cycles
            );
            let fu_line: Vec<String> = cell
                .fu
                .iter()
                .map(|f| format!("{} {:.1}%", f.pipeline, f.utilization * 100.0))
                .collect();
            let _ = writeln!(out, "  FU utilization: {}", fu_line.join(", "));
            let _ = writeln!(
                out,
                "  bank-conflict replays: {}",
                cell.bank_conflict_replays
            );
            let _ = writeln!(
                out,
                "  occupancy: {}/{} resident groups per core ({:.0}%)",
                cell.occupancy.groups_per_core,
                cell.occupancy.target_groups,
                cell.occupancy.achieved * 100.0
            );
            let _ = writeln!(
                out,
                "  bandwidth: {:.1} MB moved, {:.1} / {:.1} GB/s ({:.1}% of peak)",
                cell.bandwidth.bytes_moved as f64 / 1e6,
                cell.bandwidth.achieved_bytes_s / 1e9,
                cell.bandwidth.peak_bytes_s / 1e9,
                cell.bandwidth.fraction * 100.0
            );
            let mur = cell
                .roofline
                .matrix_unit_ridge
                .map_or(String::new(), |r| format!(" (matrix-unit ridge {r:.1})"));
            let _ = writeln!(
                out,
                "  roofline: {:.1} word-ops/B vs ridge {:.1} -> {}-bound{mur}",
                cell.roofline.arithmetic_intensity,
                cell.roofline.ridge,
                cell.roofline.bound.label()
            );
            let ok = cell.drift.within_tolerance();
            let _ = writeln!(
                out,
                "  drift: analytic {:.3} ms | macro {:.3} ms | critpath {:.3} ms | detailed {:.3} ms",
                cell.drift.analytic_ns / 1e6,
                cell.drift.macro_ns / 1e6,
                cell.drift.critpath_ns / 1e6,
                cell.drift.detailed_ns / 1e6
            );
            let _ = writeln!(
                out,
                "         analytic~macro {:.1}% (tol {:.0}%), macro~detailed {:.2}% (tol {:.0}%), \
                 critpath~detailed {:.2}% (tol {:.0}%)  {}",
                cell.drift.analytic_vs_macro * 100.0,
                cell.drift.analytic_tolerance * 100.0,
                cell.drift.macro_vs_detailed * 100.0,
                cell.drift.engine_tolerance * 100.0,
                cell.drift.critpath_vs_detailed * 100.0,
                cell.drift.critpath_tolerance * 100.0,
                if ok { "OK" } else { "DRIFT" }
            );
            if !ok {
                violations += 1;
            }
            cells.push(profile_cell_json(&cell));
        }
    }
    let _ = writeln!(
        out,
        "\n{} cell(s) profiled, {violations} drift violation(s)",
        cells.len()
    );
    if let Some(path) = args.get("json") {
        let json = format!(
            "{{\"shape\":{{\"m\":{m},\"n\":{n},\"k_words\":{}}},\
             \"tolerances\":{{\"analytic\":{},\"engine\":{},\"critpath\":{}}},\
             \"cells\":[{}],\"drift_violations\":{violations}}}\n",
            shape.k_words,
            snp_core::ANALYTIC_DRIFT_TOLERANCE,
            snp_core::ENGINE_DRIFT_TOLERANCE,
            snp_core::CRITPATH_DRIFT_TOLERANCE,
            cells.join(",")
        );
        std::fs::write(path, json)
            .map_err(|e| CliError::from(ArgError(format!("cannot write {path}: {e}"))))?;
        let _ = writeln!(out, "machine-readable report: {path}");
    }
    let exit = if violations > 0 {
        ExitCode::Error
    } else {
        ExitCode::Ok
    };
    Ok(CmdReport { text: out, exit })
}

/// Parses loadgen's `--fault-profile NAME [--fault-at Q]` into a
/// [`snp_load::FaultSpec`]. Accepts the same `loss@N` pin as the workload
/// commands.
fn loadgen_fault(args: &Args) -> Result<Option<snp_load::FaultSpec>, ArgError> {
    let Some(name) = args.get("fault-profile") else {
        return Ok(None);
    };
    let profile = if let Some(at) = name.strip_prefix("loss@") {
        let at: u64 = at
            .parse()
            .map_err(|_| ArgError(format!("bad command index in {name:?}")))?;
        FaultProfile {
            device_loss_at: Some(at),
            ..FaultProfile::none()
        }
    } else {
        FaultProfile::by_name(name).ok_or_else(|| {
            ArgError(format!(
                "unknown fault profile {name:?} (expected one of: {}, or loss@N)",
                FaultProfile::NAMES.join(", ")
            ))
        })?
    };
    let at_query = match args.get("fault-at") {
        None => None,
        Some(_) => Some(args.get_parse("fault-at", 0usize)?),
    };
    Ok(Some(snp_load::FaultSpec {
        profile_name: name.to_string(),
        profile,
        at_query,
    }))
}

/// Applies `--slo-p50-ms / --slo-p99-ms / --error-budget` overrides: each
/// replaces that objective for *every* algorithm (the defaults are
/// per-algorithm; the overrides are blanket, which is what a smoke test or
/// an injected-breach check wants).
fn loadgen_slo(args: &Args) -> Result<snp_load::SloPolicy, ArgError> {
    let mut policy = snp_load::SloPolicy::default();
    let p50_ms: Option<f64> = match args.get("slo-p50-ms") {
        None => None,
        Some(_) => Some(args.get_parse("slo-p50-ms", 0.0f64)?),
    };
    let p99_ms: Option<f64> = match args.get("slo-p99-ms") {
        None => None,
        Some(_) => Some(args.get_parse("slo-p99-ms", 0.0f64)?),
    };
    let budget: Option<f64> = match args.get("error-budget") {
        None => None,
        Some(_) => Some(args.get_parse("error-budget", 0.0f64)?),
    };
    let apply = |slo: &mut snp_load::Slo| {
        if let Some(ms) = p50_ms {
            slo.p50_ns = (ms * 1e6) as u64;
        }
        if let Some(ms) = p99_ms {
            slo.p99_ns = (ms * 1e6) as u64;
        }
        if let Some(b) = budget {
            slo.error_budget = b;
        }
    };
    for (_, slo) in policy.per_algorithm.iter_mut() {
        apply(slo);
    }
    apply(&mut policy.default);
    Ok(policy)
}

/// Parses the admission-control options. `--admission` switches the layer
/// on; the tuning knobs require it (on the legacy FIFO path they would
/// silently do nothing). `implied: true` is overload-chaos mode, where
/// admission is always on and the shed budget defaults to a chaos-friendly
/// 0.9 — under 8x overload, typed shedding *is* the correct behavior.
fn loadgen_admission(args: &Args, implied: bool) -> Result<snp_load::AdmissionConfig, ArgError> {
    if !args.flag("admission") && !implied {
        for knob in ["deadline-slack", "shed-budget", "queue-cap"] {
            if args.get(knob).is_some() {
                return Err(ArgError(format!("--{knob} requires --admission")));
            }
        }
        return Ok(snp_load::AdmissionConfig::disabled());
    }
    let mut adm = snp_load::AdmissionConfig::standard();
    if implied {
        adm.shed_budget = 0.9;
    }
    adm.deadline_slack = args.get_parse("deadline-slack", adm.deadline_slack)?;
    adm.shed_budget = args.get_parse("shed-budget", adm.shed_budget)?;
    adm.queue_cap = args.get_parse("queue-cap", adm.queue_cap)?;
    if adm.deadline_slack.is_nan() || adm.deadline_slack <= 0.0 {
        return Err(ArgError(format!(
            "--deadline-slack must be positive, got {}",
            adm.deadline_slack
        )));
    }
    if adm.shed_budget.is_nan() || !(0.0..=1.0).contains(&adm.shed_budget) {
        return Err(ArgError(format!(
            "--shed-budget must be in [0, 1], got {}",
            adm.shed_budget
        )));
    }
    if adm.queue_cap == 0 {
        return Err(ArgError("--queue-cap must be at least 1".into()));
    }
    Ok(adm)
}

/// Builds the load config shared by `loadgen` and `metrics`.
fn loadgen_config(args: &Args, default_queries: usize) -> Result<snp_load::LoadConfig, ArgError> {
    let algorithms = algorithm_selection(args.positional.as_deref().unwrap_or("all"))?;
    let dev = device_arg(args)?;
    let rate = args.get_parse("rate", 2_000.0f64)?;
    // `rate <= 0.0` alone would let NaN through (NaN compares false both ways).
    if rate.is_nan() || rate <= 0.0 {
        return Err(ArgError(format!("--rate must be positive, got {rate}")));
    }
    let arrival_name = args.get_or("arrival", "poisson");
    let arrival = snp_load::ArrivalKind::by_name(arrival_name).ok_or_else(|| {
        ArgError(format!(
            "unknown arrival process {arrival_name:?} (poisson|bursty)"
        ))
    })?;
    let mut cfg = snp_load::LoadConfig::new(dev, snp_load::templates_for(&algorithms));
    cfg.rate_qps = rate;
    cfg.queries = args.get_parse("queries", default_queries)?;
    cfg.seed = args.get_parse("seed", 42u64)?;
    cfg.arrival = arrival;
    cfg.fault = loadgen_fault(args)?;
    cfg.slo = loadgen_slo(args)?;
    cfg.flight_capacity = args.get_parse("flight-capacity", cfg.flight_capacity)?;
    if cfg.flight_capacity == 0 {
        return Err(ArgError("--flight-capacity must be at least 1".into()));
    }
    cfg.anatomy = args.flag("anatomy");
    Ok(cfg)
}

/// Exit code for one loadgen run: silent corruption dominates, then a blown
/// shed budget, then the latency SLOs.
fn loadgen_exit(report: &snp_load::LoadReport) -> ExitCode {
    match &report.admission {
        Some(adm) if adm.corruptions > 0 => ExitCode::Corruption,
        Some(adm) if adm.shed_budget_exceeded => ExitCode::ShedBudgetExceeded,
        _ if report.breached => ExitCode::SloBreach,
        _ => ExitCode::Ok,
    }
}

fn cmd_loadgen(args: &Args) -> Result<CmdReport, CliError> {
    args.expect_only(&[
        "device",
        "rate",
        "queries",
        "seed",
        "arrival",
        "mode",
        "slo-p50-ms",
        "slo-p99-ms",
        "error-budget",
        "fault-profile",
        "fault-at",
        "admission",
        "deadline-slack",
        "shed-budget",
        "queue-cap",
        "flight-capacity",
        "anatomy",
        "json",
        "trace",
        "flight",
    ])?;
    let write = |path: &str, data: &str| -> Result<(), CliError> {
        std::fs::write(path, data)
            .map_err(|e| CliError::from(ArgError(format!("cannot write {path}: {e}"))))
    };
    let mode = args.get_or("mode", "run");
    match mode {
        "run" => {
            let mut cfg = loadgen_config(args, 64)?;
            cfg.admission = loadgen_admission(args, false)?;
            let report = snp_load::run(&cfg);
            let mut text = report.render_text();
            if let Some(path) = args.get("json") {
                write(path, &report.to_json())?;
                let _ = writeln!(text, "slo report: {path}");
            }
            if let Some(path) = args.get("trace") {
                let timeline = report.timeline.as_ref().expect("run mode records");
                let json = snp_trace::chrome::export_chrome_trace(timeline);
                let stats = snp_trace::chrome::validate(&json).map_err(|e| {
                    CliError::from(ArgError(format!(
                        "internal: merged timeline failed validation: {e}"
                    )))
                })?;
                write(path, &json)?;
                let _ = writeln!(
                    text,
                    "timeline: {path} ({} slices, {} counter events, {} tracks; query-attributed)",
                    stats.slices,
                    stats.counters,
                    timeline.tracks.len()
                );
            }
            if let Some(path) = args.get("flight") {
                match &report.postmortem {
                    Some(pm) => {
                        write(path, &pm.json)?;
                        let _ = writeln!(text, "flight-recorder dump: {path} ({})", pm.reason);
                    }
                    None => {
                        let _ = writeln!(
                            text,
                            "flight-recorder dump: not written (no typed fault or SLO breach)"
                        );
                    }
                }
            }
            Ok(CmdReport {
                text,
                exit: loadgen_exit(&report),
            })
        }
        "sweep" => {
            if args.get("trace").is_some() || args.get("flight").is_some() {
                return Err(CliError::from(ArgError(
                    "--trace/--flight are per-run artifacts; use --mode run".into(),
                )));
            }
            let mut cfg = loadgen_config(args, 48)?;
            cfg.admission = loadgen_admission(args, false)?;
            let sweep = snp_load::saturation_sweep(&cfg, &snp_load::SWEEP_MULTIPLIERS);
            let mut text = sweep.render_text();
            if let Some(path) = args.get("json") {
                write(path, &sweep.to_json())?;
                let _ = writeln!(text, "slo report: {path}");
            }
            let exit = if sweep.breached() {
                ExitCode::SloBreach
            } else {
                ExitCode::Ok
            };
            Ok(CmdReport { text, exit })
        }
        "chaos" => {
            if args.get("trace").is_some() || args.get("flight").is_some() {
                return Err(CliError::from(ArgError(
                    "--trace/--flight are per-run artifacts; use --mode run".into(),
                )));
            }
            let algorithms = algorithm_selection(args.positional.as_deref().unwrap_or("all"))?;
            let mut base = loadgen_config(args, 48)?;
            base.admission = loadgen_admission(args, true)?;
            // The combined-failure matrix: bursty arrivals at 8x the
            // offered rate, plus a device loss mid-stream unless the caller
            // pinned a different fault.
            base.rate_qps *= 8.0;
            base.arrival = snp_load::ArrivalKind::Bursty;
            if base.fault.is_none() {
                base.fault = Some(snp_load::FaultSpec {
                    profile_name: "loss@2".to_string(),
                    profile: FaultProfile {
                        device_loss_at: Some(2),
                        ..FaultProfile::none()
                    },
                    at_query: Some(base.queries / 3),
                });
            }
            let fault = base.fault.as_ref().expect("chaos always arms a fault");
            let mut text = String::new();
            let _ = writeln!(
                text,
                "overload-chaos: {} cell(s) on {} — bursty arrivals at {:.0} q/s (8x), \
                 fault {} at query {}, admission on (shed budget {:.0}%)",
                algorithms.len(),
                base.device.name,
                base.rate_qps,
                fault.profile_name,
                fault.at_query.unwrap_or(0),
                base.admission.shed_budget * 100.0,
            );
            let mut worst = ExitCode::Ok;
            let mut cells: Vec<(&'static str, ExitCode, snp_load::LoadReport)> = Vec::new();
            for &alg in &algorithms {
                let mut cfg = base.clone();
                cfg.templates = snp_load::templates_for(&[alg]);
                let report = snp_load::run(&cfg);
                let exit = loadgen_exit(&report);
                if exit.overload_severity() > worst.overload_severity() {
                    worst = exit;
                }
                {
                    let adm = report
                        .admission
                        .as_ref()
                        .expect("chaos runs with admission on");
                    let ratio = if adm.tenant_goodput_ratio.is_finite() {
                        format!("{:.2}", adm.tenant_goodput_ratio)
                    } else {
                        "inf (starved tenant)".to_string()
                    };
                    let _ = writeln!(
                        text,
                        "  cell {:<8} offered {:>3}, admitted {:>3}, shed {:>5.1}%, \
                         goodput {:>8.1} q/s, tenant ratio {}, corruptions {}, \
                         final tier {}, exit {}",
                        algorithm_slug(alg),
                        adm.offered,
                        adm.admitted,
                        adm.shed_fraction * 100.0,
                        adm.goodput_qps,
                        ratio,
                        adm.corruptions,
                        adm.final_tier.label(),
                        exit.code(),
                    );
                }
                cells.push((algorithm_slug(alg), exit, report));
            }
            let corruptions: usize = cells
                .iter()
                .map(|(_, _, r)| r.admission.as_ref().map_or(0, |a| a.corruptions))
                .sum();
            let _ = writeln!(
                text,
                "verdict: {} silent corruption(s) across {} cell(s), worst exit {}",
                corruptions,
                cells.len(),
                worst.code(),
            );
            if let Some(path) = args.get("json") {
                let mut json = String::new();
                let _ = write!(
                    json,
                    "{{\"schema_version\":1,\"kind\":\"overload-chaos\",\
                     \"device\":\"{}\",\"rate_qps\":{:.3},\"arrival\":\"bursty\",\
                     \"fault_profile\":\"{}\",\"silent_corruptions\":{},\
                     \"worst_exit\":{},\"cells\":[",
                    base.device.name,
                    base.rate_qps,
                    fault.profile_name,
                    corruptions,
                    worst.code(),
                );
                for (i, (slug, exit, report)) in cells.iter().enumerate() {
                    if i > 0 {
                        json.push(',');
                    }
                    let _ = write!(
                        json,
                        "{{\"algorithm\":\"{}\",\"exit\":{},\"report\":{}}}",
                        slug,
                        exit.code(),
                        report.to_json().trim_end(),
                    );
                }
                json.push_str("]}\n");
                write(path, &json)?;
                let _ = writeln!(text, "admission report: {path}");
            }
            Ok(CmdReport { text, exit: worst })
        }
        other => Err(CliError::from(ArgError(format!(
            "unknown mode {other:?} (run|sweep|chaos)"
        )))),
    }
}

fn cmd_whatif(args: &Args) -> Result<CmdReport, CliError> {
    args.expect_only(&[
        "device",
        "rate",
        "queries",
        "seed",
        "arrival",
        "admission",
        "deadline-slack",
        "shed-budget",
        "queue-cap",
        "perturb",
        "json",
    ])?;
    let mut cfg = loadgen_config(args, 24)?;
    cfg.admission = loadgen_admission(args, false)?;
    let perturbations = match args.get("perturb") {
        None => snp_load::default_perturbations(),
        Some(spec) => {
            let mut ps = Vec::new();
            for tok in spec.split(',') {
                ps.push(snp_load::Perturbation::parse(tok.trim()).map_err(ArgError)?);
            }
            ps
        }
    };
    let report = snp_load::run_whatif(&cfg, &perturbations);
    let mut text = report.render_text();
    if let Some(path) = args.get("json") {
        std::fs::write(path, report.to_json())
            .map_err(|e| CliError::from(ArgError(format!("cannot write {path}: {e}"))))?;
        let _ = writeln!(text, "what-if report: {path}");
    }
    // A confirmation miss means observation perturbed virtual timing — an
    // internal modeling error, not a property of the workload.
    let exit = if report.confirmation.within_5_percent {
        ExitCode::Ok
    } else {
        ExitCode::Error
    };
    Ok(CmdReport { text, exit })
}

fn cmd_metrics(args: &Args) -> Result<String, ArgError> {
    args.expect_only(&["device", "seed", "queries", "out"])?;
    let mut cfg = loadgen_config(args, 12)?;
    // Populate the registry with a small seeded load; skip per-query
    // tracing — this command is about the metrics substrate.
    cfg.record_timeline = false;
    let report = snp_load::run(&cfg);
    let exposition = snp_trace::render_registry();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# registry snapshot after {} seeded queries on {} (seed {})",
        report.records.len(),
        report.device,
        report.seed
    );
    out.push_str(&exposition);
    if let Some(path) = args.get("out") {
        std::fs::write(path, &out).map_err(|e| ArgError(format!("cannot write {path}: {e}")))?;
        Ok(format!("prometheus exposition: {path}\n"))
    } else {
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_line(line: &str) -> Result<String, ArgError> {
        run(&Args::parse(line.split_whitespace().map(str::to_string)).unwrap())
    }

    #[test]
    fn no_command_prints_usage() {
        let out = run_line("").unwrap();
        assert!(out.contains("USAGE"));
    }

    #[test]
    fn unknown_command_errors_with_usage() {
        let err = run_line("frobnicate").unwrap_err();
        assert!(err.to_string().contains("unknown command"));
    }

    #[test]
    fn devices_lists_all_five() {
        let out = run_line("devices").unwrap();
        for name in ["GTX 980", "Titan V", "Vega 64", "TC100", "Xeon"] {
            assert!(out.contains(name), "missing {name} in:\n{out}");
        }
        // The matrix unit shows up on the TC100 line only.
        assert_eq!(out.matches("mma x8 (8x8x128b").count(), 1);
    }

    #[test]
    fn config_reports_table2_values() {
        let out = run_line("config --device titan-v --algorithm ld").unwrap();
        assert!(out.contains("n_r = 1024"));
        assert!(out.contains("k_c = 383"));
        assert!(out.contains("core grid = 80 x 1"));
    }

    #[test]
    fn config_rejects_unknown_algorithm_and_device() {
        assert!(run_line("config --algorithm nope").is_err());
        assert!(run_line("config --device GTX9999").is_err());
        // The CPU row is not a GPU target.
        assert!(run_line("config --device xeon-e5-2620-v2").is_err());
    }

    #[test]
    fn ld_command_runs_and_reports() {
        let out = run_line("ld --device gtx-980 --snps 48 --samples 512 --seed 7").unwrap();
        assert!(out.contains("LD scan"));
        assert!(out.contains("strongest pair"));
    }

    #[test]
    fn search_command_identifies_planted_queries() {
        let out =
            run_line("search --device vega-64 --profiles 400 --snps 256 --queries 4 --noise 0.0")
                .unwrap();
        assert!(out.contains("MATCH"));
        assert!(out.contains("[planted: correct]"));
        assert!(!out.contains("WRONG PROFILE"));
    }

    #[test]
    fn mixture_command_recovers_contributors() {
        let out = run_line("mixture --device titan-v --profiles 300 --snps 384 --contributors 2")
            .unwrap();
        assert!(out.contains("planted contributors"));
        // The planted set must appear inside the consistent set line.
        let planted: Vec<usize> = out
            .lines()
            .find(|l| l.contains("planted contributors"))
            .unwrap()
            .split(['[', ']'])
            .nth(1)
            .unwrap()
            .split(", ")
            .map(|s| s.parse().unwrap())
            .collect();
        let consistent_line = out.lines().find(|l| l.contains("γ = 0")).unwrap();
        for c in planted {
            assert!(
                consistent_line.contains(&c.to_string()),
                "{c} missing from {consistent_line}"
            );
        }
    }

    #[test]
    fn cpu_command_runs_for_real() {
        let out = run_line("cpu --snps 64 --samples 512").unwrap();
        assert!(out.contains("real CPU engine"));
        assert!(out.contains("wall time"));
    }

    #[test]
    fn trace_command_writes_validated_artifacts() {
        let dir = std::env::temp_dir();
        let out = dir.join("snpgpu_test_trace.json");
        let summary = dir.join("snpgpu_test_trace.txt");
        let line = format!(
            "trace --algo ld --device gtx-980 --snps 48 --samples 512 --out {} --summary {}",
            out.display(),
            summary.display()
        );
        let report = run_line(&line).unwrap();
        assert!(report.contains("validated Chrome trace_event JSON"));
        assert!(report.contains("perfetto"));
        let json = std::fs::read_to_string(&out).unwrap();
        let stats = snp_trace::chrome::validate(&json).unwrap();
        assert!(stats.slices > 0, "timeline must contain slices");
        let text = std::fs::read_to_string(&summary).unwrap();
        assert!(text.contains("run:"), "summary must show the run span");
        let _ = std::fs::remove_file(&out);
        let _ = std::fs::remove_file(&summary);
    }

    #[test]
    fn trace_command_supports_fastid_and_rejects_unknown_algo() {
        let dir = std::env::temp_dir();
        let out = dir.join("snpgpu_test_trace_fastid.json");
        let summary = dir.join("snpgpu_test_trace_fastid.txt");
        let line = format!(
            "trace --algo fastid --device titan-v --profiles 300 --snps 128 --queries 2 --out {} --summary {}",
            out.display(),
            summary.display()
        );
        let report = run_line(&line).unwrap();
        assert!(report.contains("FastID identity search"));
        let _ = std::fs::remove_file(&out);
        let _ = std::fs::remove_file(&summary);
        assert!(run_line("trace --algo nope").is_err());
    }

    #[test]
    fn lint_passes_clean_for_all_algorithms_and_devices() {
        let out = run_line("lint all --device all").unwrap();
        for dev in ["GTX 980", "Titan V", "Vega 64"] {
            assert!(out.contains(dev), "missing {dev} in:\n{out}");
        }
        assert!(out.contains("0 error(s), 0 warning(s)"));
        assert!(out.contains("no races, no kernel lint findings"));
    }

    #[test]
    fn lint_single_algorithm_writes_json_report() {
        let path = std::env::temp_dir().join("snpgpu_test_lint.json");
        let line = format!("lint ld --device titan-v --json {}", path.display());
        let out = run_line(&line).unwrap();
        assert!(out.contains("Titan V / Linkage disequilibrium"));
        let json = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        for key in [
            "\"targets\"",
            "\"device\":\"Titan V\"",
            "\"errors\":0",
            "\"warnings\":0",
            "\"diagnostics\"",
        ] {
            assert!(json.contains(key), "missing {key} in:\n{json}");
        }
    }

    #[test]
    fn lint_rejects_unknown_target_and_device() {
        assert!(run_line("lint nope").is_err());
        assert!(run_line("lint ld --device xeon-e5-2620-v2").is_err());
    }

    #[test]
    fn chaos_single_cell_reports_recovery() {
        let out = run_line("chaos fastid --device gtx-980 --profile mixed --seed 7").unwrap();
        assert!(out.contains("0 silent corruption(s)"), "{out}");
        assert!(out.contains("0 hazard(s)"), "{out}");
    }

    #[test]
    fn chaos_loss_profile_degrades_and_resumes_midway() {
        let out = run_line("chaos ld --device titan-v --profile loss").unwrap();
        assert!(out.contains("degraded"), "{out}");
        assert!(out.contains("resume@"), "{out}");
        assert!(
            !out.contains("resume@0"),
            "loss must resume from a checkpoint, not chunk 0:\n{out}"
        );
    }

    #[test]
    fn chaos_writes_json_and_uses_exit_codes() {
        let path = std::env::temp_dir().join("snpgpu_test_chaos.json");
        let line = format!(
            "chaos mixture --device vega-64 --profile transient --json {}",
            path.display()
        );
        let report =
            run_full(&Args::parse(line.split_whitespace().map(str::to_string)).unwrap()).unwrap();
        assert_eq!(report.exit, ExitCode::Ok);
        let json = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        for key in ["\"cells\"", "\"outcome\"", "\"silent_corruptions\":0"] {
            assert!(json.contains(key), "missing {key} in:\n{json}");
        }
    }

    #[test]
    fn workload_under_device_loss_exits_degraded() {
        let report = run_full(
            &Args::parse(
                "ld --device gtx-980 --fault-profile loss@3"
                    .split_whitespace()
                    .map(str::to_string),
            )
            .unwrap(),
        )
        .unwrap();
        assert_eq!(report.exit, ExitCode::Degraded);
        assert!(report.text.contains("DEVICE LOST"), "{}", report.text);
        // The degraded run still computes the right answer (CPU fallback).
        let clean = run_line("ld --device gtx-980").unwrap();
        let pair = |s: &str| {
            s.lines()
                .find(|l| l.starts_with("strongest pair"))
                .map(str::to_string)
        };
        assert_eq!(pair(&report.text), pair(&clean));
    }

    #[test]
    fn chaos_rejects_unknown_profile_and_target() {
        assert!(run_line("chaos nope").is_err());
        assert!(run_line("chaos ld --profile gamma-rays").is_err());
    }

    #[test]
    fn typo_in_option_is_caught() {
        let err = run_line("ld --snsp 100").unwrap_err();
        assert!(err.to_string().contains("--snsp"));
    }

    #[test]
    fn loadgen_run_reports_and_writes_json() {
        let path = std::env::temp_dir().join("snpgpu_test_loadgen.json");
        let line = format!("loadgen ld --queries 12 --json {}", path.display());
        let report =
            run_full(&Args::parse(line.split_whitespace().map(str::to_string)).unwrap()).unwrap();
        assert_eq!(report.exit, ExitCode::Ok, "{}", report.text);
        assert!(
            report.text.contains("loadgen: 12 queries"),
            "{}",
            report.text
        );
        let json = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        let doc = snp_trace::json::parse(&json).expect("valid slo-report.json");
        let obj = doc.as_obj().unwrap();
        assert_eq!(obj["slo_breached"], snp_trace::json::Value::Bool(false));
        assert_eq!(obj["queries"].as_num(), Some(12.0));
        assert!(!obj["algorithms"].as_arr().unwrap().is_empty());
    }

    #[test]
    fn loadgen_breach_exits_with_slo_code() {
        let report = run_full(
            &Args::parse(
                "loadgen ld --queries 12 --slo-p99-ms 0.000001"
                    .split_whitespace()
                    .map(str::to_string),
            )
            .unwrap(),
        )
        .unwrap();
        assert_eq!(report.exit, ExitCode::SloBreach, "{}", report.text);
        assert!(report.text.contains("BREACH"), "{}", report.text);
    }

    #[test]
    fn loadgen_fault_run_dumps_flight_with_query_id() {
        let path = std::env::temp_dir().join("snpgpu_test_flight.json");
        let line = format!(
            "loadgen fastid --queries 16 --fault-profile loss@2 --fault-at 5 --flight {}",
            path.display()
        );
        let report =
            run_full(&Args::parse(line.split_whitespace().map(str::to_string)).unwrap()).unwrap();
        assert!(
            report.text.contains("flight-recorder dump:"),
            "{}",
            report.text
        );
        let json = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        snp_trace::chrome::validate(&json).expect("flight bundle is a valid Chrome trace");
        assert!(
            json.contains("\"query_id\":5"),
            "dump must carry the failing query id"
        );
        assert!(
            json.contains("\"flightRecorder\""),
            "dump must carry the postmortem header"
        );
    }

    #[test]
    fn loadgen_sweep_rejects_per_run_artifacts() {
        let err = run_line("loadgen ld --mode sweep --trace t.json").unwrap_err();
        assert!(err.to_string().contains("per-run artifacts"), "{err}");
    }

    #[test]
    fn metrics_emits_prometheus_exposition() {
        // The registry is process-global and shared across parallel tests,
        // so assert structure, not exact counter values.
        let out = run_line("metrics --queries 8").unwrap();
        assert!(
            out.contains("# registry snapshot after 8 seeded queries"),
            "{out}"
        );
        assert!(out.contains("# TYPE load_latency_ns_ld histogram"), "{out}");
        assert!(out.contains("load_queries_total"), "{out}");
        assert!(out.contains("load_queue_wait_ns_bucket"), "{out}");
        // Per-tenant latency series render with a tenant label, sharing
        // one TYPE line per family.
        assert!(
            out.contains("load_tenant_latency_ns_count{tenant=\"casework\"}"),
            "{out}"
        );
        assert!(
            out.contains("load_tenant_latency_ns_count{tenant=\"research\"}"),
            "{out}"
        );
        assert_eq!(
            out.matches("# TYPE load_tenant_latency_ns histogram")
                .count(),
            1,
            "{out}"
        );
    }

    #[test]
    fn loadgen_admission_sheds_typed_and_respects_budget_exit() {
        // Saturating bursty load with admission on: sheds are typed and the
        // tiny shed budget flips the exit to 7 (SHED_BUDGET_EXCEEDED).
        let report = run_full(
            &Args::parse(
                "loadgen ld --admission --rate 50000 --arrival bursty --queries 32 --shed-budget 0.05"
                    .split_whitespace()
                    .map(str::to_string),
            )
            .unwrap(),
        )
        .unwrap();
        assert_eq!(report.exit, ExitCode::ShedBudgetExceeded, "{}", report.text);
        assert!(report.text.contains("OVER BUDGET"), "{}", report.text);
        assert!(report.text.contains("tenant casework"), "{}", report.text);
    }

    #[test]
    fn loadgen_anatomy_appends_the_budget_table() {
        let out = run_line("loadgen ld --anatomy --queries 12 --rate 4000").unwrap();
        assert!(out.contains("latency anatomy"), "{out}");
        assert!(out.contains("sched_queue"), "{out}");
        assert!(out.contains("p99+"), "{out}");
    }

    #[test]
    fn whatif_ranks_confirms_and_reproduces_byte_for_byte() {
        let path = std::env::temp_dir().join("snpgpu_test_whatif.json");
        let line = format!(
            "whatif ld --queries 16 --rate 8000 --json {}",
            path.display()
        );
        let run_once = || {
            let report =
                run_full(&Args::parse(line.split_whitespace().map(str::to_string)).unwrap())
                    .unwrap();
            assert_eq!(report.exit, ExitCode::Ok, "{}", report.text);
            assert!(report.text.contains("within 5%"), "{}", report.text);
            std::fs::read_to_string(&path).unwrap()
        };
        let first = run_once();
        let second = run_once();
        let _ = std::fs::remove_file(&path);
        assert_eq!(first, second, "seeded what-if JSON is byte-reproducible");
        assert!(first.contains("\"tool\":\"snpgpu whatif\""), "{first}");
        assert!(first.contains("\"within_5_percent\":true"), "{first}");
    }

    #[test]
    fn whatif_rejects_malformed_perturbations() {
        let err = run_line("whatif ld --perturb warp:2").unwrap_err();
        assert!(
            err.to_string().contains("unknown perturbation kind"),
            "{err}"
        );
        let err = run_line("whatif ld --perturb kernel:zero").unwrap_err();
        assert!(err.to_string().contains("not a number"), "{err}");
    }

    #[test]
    fn loadgen_admission_knobs_require_the_flag() {
        let err = run_line("loadgen ld --shed-budget 0.5").unwrap_err();
        assert!(err.to_string().contains("requires --admission"), "{err}");
        let err = run_line("loadgen ld --admission --queue-cap 0").unwrap_err();
        assert!(err.to_string().contains("--queue-cap"), "{err}");
    }

    #[test]
    fn loadgen_chaos_matrix_survives_overload_plus_device_loss() {
        let path = std::env::temp_dir().join("snpgpu_test_overload_chaos.json");
        let line = format!("loadgen all --mode chaos --json {}", path.display());
        let report =
            run_full(&Args::parse(line.split_whitespace().map(str::to_string)).unwrap()).unwrap();
        assert_eq!(report.exit, ExitCode::Ok, "{}", report.text);
        assert!(
            report
                .text
                .contains("0 silent corruption(s) across 3 cell(s)"),
            "{}",
            report.text
        );
        let json = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        let doc = snp_trace::json::parse(&json).expect("valid admission-report.json");
        let obj = doc.as_obj().unwrap();
        assert_eq!(obj["silent_corruptions"].as_num(), Some(0.0));
        assert_eq!(obj["worst_exit"].as_num(), Some(0.0));
        let cells = obj["cells"].as_arr().unwrap();
        assert_eq!(cells.len(), 3);
        for cell in cells {
            let cell = cell.as_obj().unwrap();
            let adm = cell["report"].as_obj().unwrap()["admission"]
                .as_obj()
                .unwrap();
            assert_eq!(adm["corruptions"].as_num(), Some(0.0));
            // No tenant starves: the goodput ratio stays finite and small.
            let ratio = adm["tenant_goodput_ratio"]
                .as_num()
                .expect("ratio is finite");
            assert!(ratio <= 2.0, "tenant goodput ratio {ratio} > 2");
        }
    }
}
