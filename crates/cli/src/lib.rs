//! # snp-cli — the `snpgpu` command-line tool
//!
//! A thin, dependency-free front end over the workspace: list the modeled
//! devices, derive kernel configurations, run microbenchmarks, and execute
//! LD / identity-search / mixture-analysis workloads on any simulated GPU
//! (or the real CPU engine). See [`commands::USAGE`].

#![warn(missing_docs)]

pub mod args;
pub mod commands;

pub use args::{ArgError, Args};
pub use commands::{run, run_full, CliError, CmdReport, ExitCode, USAGE};
