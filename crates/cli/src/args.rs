//! Minimal `--key value` argument parsing (no external dependencies), plus
//! the algorithm × device matrix selection shared by the matrix-shaped
//! subcommands (`trace`, `lint`, `chaos`, `profile`).

use std::collections::BTreeMap;

use snp_gpu_model::config::Algorithm;
use snp_gpu_model::{devices, DeviceSpec};

/// Parsed command line: a subcommand plus `--key value` options.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Args {
    /// The subcommand (first non-flag token).
    pub command: Option<String>,
    /// An optional second bare token (e.g. `lint ld`); a third still errors.
    pub positional: Option<String>,
    options: BTreeMap<String, String>,
}

/// Argument errors, with a message suitable for direct printing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgError(pub String);

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ArgError {}

/// Option names that are boolean flags: they take no value token
/// (`snpgpu lint all --deep`, `snpgpu loadgen --admission`) and parse as
/// `"true"`.
const FLAG_KEYS: &[&str] = &["deep", "admission", "anatomy"];

impl Args {
    /// Parses a token stream: `command --key value --key2 value2 …`.
    /// Names in [`FLAG_KEYS`] are value-less boolean flags.
    pub fn parse<I: IntoIterator<Item = String>>(tokens: I) -> Result<Args, ArgError> {
        let mut args = Args::default();
        let mut it = tokens.into_iter().peekable();
        while let Some(tok) = it.next() {
            if let Some(key) = tok.strip_prefix("--") {
                if key.is_empty() {
                    return Err(ArgError("empty option name `--`".into()));
                }
                let value = if FLAG_KEYS.contains(&key) {
                    "true".to_string()
                } else {
                    it.next()
                        .ok_or_else(|| ArgError(format!("option --{key} is missing its value")))?
                };
                if args.options.insert(key.to_string(), value).is_some() {
                    return Err(ArgError(format!("option --{key} given twice")));
                }
            } else if args.command.is_none() {
                args.command = Some(tok);
            } else if args.positional.is_none() {
                args.positional = Some(tok);
            } else {
                return Err(ArgError(format!("unexpected positional argument {tok:?}")));
            }
        }
        Ok(args)
    }

    /// A string option.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// Whether a boolean flag (a [`FLAG_KEYS`] name) was given.
    pub fn flag(&self, key: &str) -> bool {
        self.get(key) == Some("true")
    }

    /// A string option with a default.
    pub fn get_or<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.get(key).unwrap_or(default)
    }

    /// A parsed numeric option with a default.
    pub fn get_parse<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, ArgError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ArgError(format!("option --{key}: cannot parse {v:?}"))),
        }
    }

    /// Errors on unknown option names (catches typos).
    pub fn expect_only(&self, allowed: &[&str]) -> Result<(), ArgError> {
        for key in self.options.keys() {
            if !allowed.contains(&key.as_str()) {
                return Err(ArgError(format!(
                    "unknown option --{key} (expected one of: {})",
                    allowed
                        .iter()
                        .map(|a| format!("--{a}"))
                        .collect::<Vec<_>>()
                        .join(", ")
                )));
            }
        }
        Ok(())
    }
}

/// Expands an algorithm selection token — `ld`, `fastid` (alias `search`),
/// `mixture`, or `all` — into the algorithms it names, in matrix order.
pub fn algorithm_selection(sel: &str) -> Result<Vec<Algorithm>, ArgError> {
    Ok(match sel {
        "ld" => vec![Algorithm::LinkageDisequilibrium],
        "fastid" | "search" => vec![Algorithm::IdentitySearch],
        "mixture" => vec![Algorithm::MixtureAnalysis],
        "all" => vec![
            Algorithm::LinkageDisequilibrium,
            Algorithm::IdentitySearch,
            Algorithm::MixtureAnalysis,
        ],
        other => {
            return Err(ArgError(format!(
                "unknown algorithm selection {other:?} (ld|fastid|mixture|all)"
            )))
        }
    })
}

/// Expands a device selection token — `all` or one device name — into GPU
/// specs, rejecting names that resolve to non-GPU devices.
pub fn device_selection(sel: &str) -> Result<Vec<DeviceSpec>, ArgError> {
    match sel {
        "all" => Ok(devices::all_gpus()),
        name => Ok(vec![devices::by_name(name)
            .filter(|d| d.shared_mem_bytes > 0)
            .ok_or_else(|| {
                ArgError(format!("unknown GPU device {name:?} (try: snpgpu devices)"))
            })?]),
    }
}

/// The short stable algorithm label used in selections, reports, and JSON
/// (`ld`, `fastid`, `mixture`).
pub fn algorithm_slug(alg: Algorithm) -> &'static str {
    match alg {
        Algorithm::LinkageDisequilibrium => "ld",
        Algorithm::IdentitySearch => "fastid",
        Algorithm::MixtureAnalysis => "mixture",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn algorithm_selection_expands_matrix_axis() {
        assert_eq!(
            algorithm_selection("ld").unwrap(),
            vec![Algorithm::LinkageDisequilibrium]
        );
        assert_eq!(
            algorithm_selection("search").unwrap(),
            algorithm_selection("fastid").unwrap()
        );
        let all = algorithm_selection("all").unwrap();
        assert_eq!(all.len(), 3);
        assert!(algorithm_selection("bogus").is_err());
        for alg in all {
            assert_eq!(algorithm_selection(algorithm_slug(alg)).unwrap(), vec![alg]);
        }
    }

    #[test]
    fn device_selection_expands_gpus_only() {
        let all = device_selection("all").unwrap();
        assert_eq!(all.len(), 4, "matrix is 3 algorithms x 4 devices");
        assert!(all.iter().any(|d| d.name == "TC100"));
        assert!(all.iter().all(|d| d.shared_mem_bytes > 0));
        let one = device_selection("Titan V").unwrap();
        assert_eq!(one.len(), 1);
        let tc = device_selection("tc100").unwrap();
        assert_eq!(tc[0].name, "TC100");
        assert!(device_selection("Xeon E5-2620 v2").is_err(), "CPU rejected");
        assert!(device_selection("nope").is_err());
    }

    #[test]
    fn parses_command_and_options() {
        let a = Args::parse(toks("ld --snps 100 --device Titan")).unwrap();
        assert_eq!(a.command.as_deref(), Some("ld"));
        assert_eq!(a.get("snps"), Some("100"));
        assert_eq!(a.get_or("device", "x"), "Titan");
        assert_eq!(a.get_or("missing", "dflt"), "dflt");
    }

    #[test]
    fn numeric_parsing_with_default() {
        let a = Args::parse(toks("ld --snps 100")).unwrap();
        assert_eq!(a.get_parse("snps", 5usize).unwrap(), 100);
        assert_eq!(a.get_parse("samples", 64usize).unwrap(), 64);
        let bad = Args::parse(toks("ld --snps abc")).unwrap();
        assert!(bad.get_parse("snps", 0usize).is_err());
    }

    #[test]
    fn second_bare_token_is_positional() {
        let a = Args::parse(toks("lint ld --device all")).unwrap();
        assert_eq!(a.command.as_deref(), Some("lint"));
        assert_eq!(a.positional.as_deref(), Some("ld"));
        assert_eq!(a.get("device"), Some("all"));
        let none = Args::parse(toks("lint --device all")).unwrap();
        assert_eq!(none.positional, None);
    }

    #[test]
    fn boolean_flags_take_no_value() {
        let a = Args::parse(toks("lint all --deep --device all")).unwrap();
        assert!(a.flag("deep"));
        assert_eq!(a.get("device"), Some("all"));
        let b = Args::parse(toks("lint all --device all")).unwrap();
        assert!(!b.flag("deep"));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Args::parse(toks("ld --snps")).is_err(), "missing value");
        assert!(Args::parse(toks("ld x y")).is_err(), "extra positional");
        assert!(
            Args::parse(toks("ld --snps 1 --snps 2")).is_err(),
            "duplicate"
        );
        assert!(Args::parse(toks("ld -- 1")).is_err(), "empty name");
    }

    #[test]
    fn unknown_options_detected() {
        let a = Args::parse(toks("ld --snsp 100")).unwrap();
        let err = a.expect_only(&["snps", "device"]).unwrap_err();
        assert!(err.to_string().contains("--snsp"));
        let ok = Args::parse(toks("ld --snps 100")).unwrap();
        assert!(ok.expect_only(&["snps"]).is_ok());
    }

    #[test]
    fn empty_input_is_empty_command() {
        let a = Args::parse(Vec::new()).unwrap();
        assert_eq!(a.command, None);
    }
}
