//! `snpgpu` binary entry point.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args = match snp_cli::Args::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("snpgpu: {e}");
            return ExitCode::FAILURE;
        }
    };
    match snp_cli::run_full(&args) {
        Ok(report) => {
            println!("{}", report.text);
            ExitCode::from(report.exit.code())
        }
        Err(e) => {
            eprintln!("snpgpu: {}", e.message);
            ExitCode::from(e.exit.code())
        }
    }
}
