//! Symmetric self-comparison: exploit `γ = γᵀ`.
//!
//! Linkage disequilibrium compares a panel against itself with a symmetric
//! operator (`popc(a & b) = popc(b & a)`, likewise XOR), so only the upper
//! triangle of `γ` needs computing — the classical SYRK-style saving over
//! GEMM, worth up to 2× on large panels. Blocks entirely below the diagonal
//! are skipped; straddling blocks are computed whole; a final mirror pass
//! fills the strict lower triangle.

use rayon::prelude::*;
use snp_bitmat::{BitMatrix, CompareOp, CountMatrix, PackedPanels};

use crate::blocking::{CpuBlocking, MR, NR};
use crate::gemm::macro_kernel;

/// True when `op(a, b) == op(b, a)` for all words — the precondition for
/// the triangular saving. AND and XOR are symmetric; AND-NOT is not.
pub fn op_is_symmetric(op: CompareOp) -> bool {
    matches!(op, CompareOp::And | CompareOp::Xor)
}

/// Self-comparison `γ = A ⋄ Aᵀ` computing only upper-triangle blocks, then
/// mirroring. Results are identical to the full
/// [`gamma_parallel`](crate::parallel::gamma_parallel) (tested), at roughly
/// half the block work for large `m`.
///
/// Panics if `op` is not symmetric or `blocking` is invalid.
pub fn gamma_self_symmetric(
    a: &BitMatrix<u64>,
    op: CompareOp,
    blocking: &CpuBlocking,
) -> CountMatrix {
    assert!(
        op_is_symmetric(op),
        "operator {op} is not symmetric; use the general engine for AND-NOT"
    );
    let viol = blocking.violations();
    assert!(viol.is_empty(), "invalid blocking: {viol:?}");
    let m = a.rows();
    let k_words = a.words_per_row();
    let mut c = CountMatrix::zeros(m, m);
    if m == 0 {
        return c;
    }
    let cols = m;
    for jc in (0..m).step_by(blocking.n_c) {
        let n_blk = blocking.n_c.min(m - jc);
        for pc in (0..k_words).step_by(blocking.k_c) {
            let k_blk = blocking.k_c.min(k_words - pc);
            let b_pack = PackedPanels::pack(a, jc, jc + n_blk, pc, pc + k_blk, NR);
            // Parallel third loop over m_c row blocks, skipping blocks that
            // lie entirely below this column block (row start beyond the
            // block's last column).
            c.as_mut_slice()
                .par_chunks_mut(blocking.m_c * cols)
                .enumerate()
                .for_each(|(blk, rows)| {
                    let ic = blk * blocking.m_c;
                    if ic >= jc + n_blk {
                        return; // strictly below the diagonal: mirrored later
                    }
                    let m_blk = blocking.m_c.min(m - ic);
                    let a_pack = PackedPanels::pack(a, ic, ic + m_blk, pc, pc + k_blk, MR);
                    macro_kernel(op, &a_pack, &b_pack, rows, m_blk, cols, jc, n_blk);
                });
        }
    }
    mirror_lower(&mut c);
    c
}

/// Copies the strict upper triangle onto the strict lower triangle.
fn mirror_lower(c: &mut CountMatrix) {
    let n = c.rows();
    debug_assert_eq!(n, c.cols());
    for i in 1..n {
        for j in 0..i {
            let v = c.get(j, i);
            c.set(i, j, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parallel::gamma_parallel;
    use snp_bitmat::reference_gamma_self;

    fn matrix(rows: usize, cols: usize) -> BitMatrix<u64> {
        BitMatrix::from_fn(rows, cols, |r, c| (r * 23 + c * 11) % 7 < 3)
    }

    fn blocking_small() -> CpuBlocking {
        CpuBlocking {
            m_r: MR,
            n_r: NR,
            k_c: 3,
            m_c: 2 * MR,
            n_c: 3 * NR,
        }
    }

    #[test]
    fn symmetric_matches_full_for_and_and_xor() {
        for rows in [1usize, 7, MR, 3 * MR + 5, 100] {
            let a = matrix(rows, 300);
            for op in [CompareOp::And, CompareOp::Xor] {
                let sym = gamma_self_symmetric(&a, op, &blocking_small());
                let full = gamma_parallel(&a, &a, op, &blocking_small());
                assert_eq!(sym.first_mismatch(&full), None, "rows={rows} op={op}");
            }
        }
    }

    #[test]
    fn symmetric_matches_reference_with_default_blocking() {
        let a = matrix(90, 777);
        let sym = gamma_self_symmetric(&a, CompareOp::And, &CpuBlocking::default());
        let want = reference_gamma_self(&a, CompareOp::And);
        assert_eq!(sym.first_mismatch(&want), None);
    }

    #[test]
    fn result_is_exactly_symmetric() {
        let a = matrix(64, 256);
        let c = gamma_self_symmetric(&a, CompareOp::Xor, &blocking_small());
        for i in 0..64 {
            for j in 0..64 {
                assert_eq!(c.get(i, j), c.get(j, i));
            }
        }
    }

    #[test]
    #[should_panic(expected = "not symmetric")]
    fn andnot_rejected() {
        let a = matrix(8, 64);
        let _ = gamma_self_symmetric(&a, CompareOp::AndNot, &blocking_small());
    }

    #[test]
    fn empty_matrix_ok() {
        let a = BitMatrix::<u64>::zeros(0, 0);
        let c = gamma_self_symmetric(&a, CompareOp::And, &CpuBlocking::default());
        assert_eq!((c.rows(), c.cols()), (0, 0));
    }

    #[test]
    fn operator_symmetry_classification() {
        assert!(op_is_symmetric(CompareOp::And));
        assert!(op_is_symmetric(CompareOp::Xor));
        assert!(!op_is_symmetric(CompareOp::AndNot));
    }
}
