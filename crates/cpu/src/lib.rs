//! # snp-cpu — the high-performance CPU baseline
//!
//! A from-scratch Rust reimplementation of the CPU algorithm the paper
//! builds on (Alachiotis et al. \[11\], paper §III): the BLIS five-loop
//! blocked matrix multiplication with the floating-point microkernel
//! replaced by the three-instruction popcount sequence
//! `γ += POPC(a ⋄ b)` over packed 64-bit words. The second and third loops
//! are parallelized across cores with rayon, mirroring \[11\]'s
//! parallelization.
//!
//! This is both a real, runnable engine (benchmarked with Criterion in
//! `snp-bench`) and the correctness oracle the simulated GPU kernels are
//! validated against at scale.
//!
//! * [`CpuEngine`] — algorithm-level API (LD, identity search, mixture
//!   analysis);
//! * [`CpuBlocking`] — cache-derived blocking parameters (Low et al. \[21\]);
//! * [`microkernel`] — the architecture-specific inner kernel;
//! * [`gemm`] / [`parallel`] — the sequential and multithreaded loop nests.

#![warn(missing_docs)]

pub mod blocking;
pub mod engine;
pub mod gemm;
pub mod microkernel;
pub mod parallel;
#[cfg(feature = "simd")]
pub mod simd;
pub mod symmetric;

pub use blocking::{CacheParams, CpuBlocking};
pub use engine::CpuEngine;
pub use parallel::{
    gamma_parallel_into_traced, ParallelSchedule, ParallelStats, PARALLEL_A_PACKS_METRIC,
    PARALLEL_RUNS_METRIC, PARALLEL_TASKS_METRIC,
};
pub use symmetric::gamma_self_symmetric;
