//! The five-loop blocked popcount-GEMM (sequential core).
//!
//! Loop structure after BLIS (paper Fig. 3), computing
//! `γ (m × n) += A (m × K) ⋄ Bᵀ` where both inputs store one sequence per
//! row over `K` packed words:
//!
//! ```text
//! 5th loop:  jc over n in steps of n_c        (B̃ block fits L3)
//! 4th loop:  pc over K in steps of k_c        (pack B̃: n_c × k_c, NR panels)
//! 3rd loop:  ic over m in steps of m_c        (pack Ã: m_c × k_c, MR panels)
//! 2nd loop:  jr over B̃ panels (n_r = NR)
//! 1st loop:  ir over Ã panels (m_r = MR)
//! microkernel: MR × NR popcount accumulation over k_c words
//! ```
//!
//! Edge tiles are handled by the packers' zero padding; the writeback clips
//! to the logical matrix. Accumulation across `pc` blocks happens directly
//! in `γ`, so the routine *adds into* its output.

use snp_bitmat::{BitMatrix, CompareOp, CountMatrix, PackedPanels};

use crate::blocking::{CpuBlocking, MR, NR};
use crate::microkernel::{microkernel, zero_tile};

/// Adds `A ⋄ Bᵀ` into `c` using the blocked algorithm.
///
/// Panics if shapes disagree (`a`, `b` must share `words_per_row`; `c` must
/// be `a.rows() × b.rows()`), or if `blocking` is invalid.
pub fn gamma_blocked_into(
    a: &BitMatrix<u64>,
    b: &BitMatrix<u64>,
    op: CompareOp,
    blocking: &CpuBlocking,
    c: &mut CountMatrix,
) {
    check_shapes(a, b, c, blocking);
    let (m, n, k_words) = (a.rows(), b.rows(), a.words_per_row());
    let cols = c.cols();
    for jc in (0..n).step_by(blocking.n_c) {
        let n_blk = blocking.n_c.min(n - jc);
        for pc in (0..k_words).step_by(blocking.k_c) {
            let k_blk = blocking.k_c.min(k_words - pc);
            let b_pack = PackedPanels::pack(b, jc, jc + n_blk, pc, pc + k_blk, NR);
            for ic in (0..m).step_by(blocking.m_c) {
                let m_blk = blocking.m_c.min(m - ic);
                let a_pack = PackedPanels::pack(a, ic, ic + m_blk, pc, pc + k_blk, MR);
                let rows = &mut c.as_mut_slice()[ic * cols..(ic + m_blk) * cols];
                macro_kernel(op, &a_pack, &b_pack, rows, m_blk, cols, jc, n_blk);
            }
        }
    }
}

/// Convenience wrapper allocating a fresh output.
pub fn gamma_blocked(
    a: &BitMatrix<u64>,
    b: &BitMatrix<u64>,
    op: CompareOp,
    blocking: &CpuBlocking,
) -> CountMatrix {
    let mut c = CountMatrix::zeros(a.rows(), b.rows());
    gamma_blocked_into(a, b, op, blocking, &mut c);
    c
}

/// The macro-kernel: loops 1–2 over the packed panels, adding each
/// microkernel tile into the (row-major) `c_rows` slice, which covers
/// `m_blk` full rows of γ starting at block-local row 0; the block's columns
/// start at `jc` and span `n_blk`.
#[allow(clippy::too_many_arguments)] // mirrors the BLIS macro-kernel signature
pub(crate) fn macro_kernel(
    op: CompareOp,
    a_pack: &PackedPanels<u64>,
    b_pack: &PackedPanels<u64>,
    c_rows: &mut [u32],
    m_blk: usize,
    cols: usize,
    jc: usize,
    n_blk: usize,
) {
    debug_assert_eq!(a_pack.k(), b_pack.k());
    let k = a_pack.k();
    for jp in 0..b_pack.panels() {
        let j0 = jp * NR;
        for ip in 0..a_pack.panels() {
            let i0 = ip * MR;
            let mut acc = zero_tile();
            microkernel(op, k, a_pack.panel(ip), b_pack.panel(jp), &mut acc);
            let i_max = MR.min(m_blk - i0.min(m_blk));
            let j_max = NR.min(n_blk - j0.min(n_blk));
            for (i, acc_row) in acc.iter().enumerate().take(i_max) {
                let row = i0 + i;
                let base = row * cols + jc + j0;
                let out = &mut c_rows[base..base + j_max];
                for (o, &v) in out.iter_mut().zip(acc_row.iter()) {
                    *o += v;
                }
            }
        }
    }
}

pub(crate) fn check_shapes(
    a: &BitMatrix<u64>,
    b: &BitMatrix<u64>,
    c: &CountMatrix,
    blocking: &CpuBlocking,
) {
    assert_eq!(
        a.words_per_row(),
        b.words_per_row(),
        "operands disagree on packed width: {} vs {}",
        a.words_per_row(),
        b.words_per_row()
    );
    assert_eq!(
        c.rows(),
        a.rows(),
        "output rows {} != A rows {}",
        c.rows(),
        a.rows()
    );
    assert_eq!(
        c.cols(),
        b.rows(),
        "output cols {} != B rows {}",
        c.cols(),
        b.rows()
    );
    let viol = blocking.violations();
    assert!(viol.is_empty(), "invalid blocking: {viol:?}");
}

#[cfg(test)]
mod tests {
    use super::*;
    use snp_bitmat::reference_gamma;

    fn blocking_small() -> CpuBlocking {
        // Tiny blocks force every loop to iterate multiple times even on
        // small inputs, exercising all edge paths.
        CpuBlocking {
            m_r: MR,
            n_r: NR,
            k_c: 2,
            m_c: 2 * MR,
            n_c: 2 * NR,
        }
    }

    fn matrix(rows: usize, cols: usize, salt: usize) -> BitMatrix<u64> {
        BitMatrix::from_fn(rows, cols, |r, c| (r * 37 + c * 11 + salt) % 7 < 3)
    }

    #[test]
    fn matches_reference_exact_multiples() {
        let a = matrix(2 * MR, 256, 0);
        let b = matrix(2 * NR, 256, 1);
        for op in CompareOp::ALL {
            let got = gamma_blocked(&a, &b, op, &blocking_small());
            let want = reference_gamma(&a, &b, op);
            assert_eq!(got.first_mismatch(&want), None, "op {op}");
        }
    }

    #[test]
    fn matches_reference_ragged_everything() {
        // Rows, cols and words that are NOT multiples of any block size.
        let a = matrix(MR * 2 + 3, 64 * 5 + 17, 2);
        let b = matrix(NR * 3 + 1, 64 * 5 + 17, 3);
        for op in CompareOp::ALL {
            let got = gamma_blocked(&a, &b, op, &blocking_small());
            let want = reference_gamma(&a, &b, op);
            assert_eq!(got.first_mismatch(&want), None, "op {op}");
        }
    }

    #[test]
    fn matches_reference_with_default_blocking() {
        let a = matrix(37, 900, 4);
        let b = matrix(29, 900, 5);
        let got = gamma_blocked(&a, &b, CompareOp::Xor, &CpuBlocking::default());
        let want = reference_gamma(&a, &b, CompareOp::Xor);
        assert_eq!(got.first_mismatch(&want), None);
    }

    #[test]
    fn accumulates_into_existing_output() {
        let a = matrix(5, 128, 6);
        let b = matrix(7, 128, 7);
        let mut c = CountMatrix::zeros(5, 7);
        gamma_blocked_into(&a, &b, CompareOp::And, &blocking_small(), &mut c);
        gamma_blocked_into(&a, &b, CompareOp::And, &blocking_small(), &mut c);
        let want = reference_gamma(&a, &b, CompareOp::And);
        for i in 0..5 {
            for j in 0..7 {
                assert_eq!(c.get(i, j), 2 * want.get(i, j));
            }
        }
    }

    #[test]
    fn single_row_and_column() {
        let a = matrix(1, 70, 8);
        let b = matrix(1, 70, 9);
        let got = gamma_blocked(&a, &b, CompareOp::AndNot, &blocking_small());
        let want = reference_gamma(&a, &b, CompareOp::AndNot);
        assert_eq!(got.first_mismatch(&want), None);
    }

    #[test]
    #[should_panic(expected = "packed width")]
    fn width_mismatch_panics() {
        let a = matrix(4, 64, 0);
        let b = matrix(4, 128, 0);
        let _ = gamma_blocked(&a, &b, CompareOp::And, &CpuBlocking::default());
    }

    #[test]
    #[should_panic(expected = "invalid blocking")]
    fn invalid_blocking_panics() {
        let a = matrix(4, 64, 0);
        let bad = CpuBlocking {
            m_r: 2,
            n_r: NR,
            k_c: 8,
            m_c: 16,
            n_c: 16,
        };
        let _ = gamma_blocked(&a, &a, CompareOp::And, &bad);
    }
}
