//! Portable 4-lane wide popcount for the CSA microkernel (`simd` feature).
//!
//! [`W64x4`] is an explicit `u64x4`-style vector: a `#[repr(align(32))]`
//! wrapper over `[u64; 4]` whose lane-wise bit operations and SWAR popcount
//! are written as straight-line per-lane arithmetic so the auto-vectorizer
//! lowers them to 256-bit vector instructions where the target has them —
//! no `core::simd`, no target intrinsics, stable everywhere. The vector
//! width deliberately equals the microkernel's `NR` register tile, so one
//! vector holds the four B lanes of a shared-dimension step and the
//! Harley–Seal tree of [`popcount8_lanes`] reduces all four γ columns at
//! once.
//!
//! Everything is exact bit arithmetic; the scalar CSA path remains the
//! correctness oracle (`microkernel_csa`), and the property tests pin the
//! two bit-identical.

/// Four 64-bit lanes, aligned to the 256-bit vector width.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(align(32))]
pub struct W64x4(pub [u64; 4]);

impl W64x4 {
    /// Lane count — must match the microkernel's `NR`.
    pub const LANES: usize = 4;

    /// All lanes equal to `x`.
    #[inline(always)]
    pub fn splat(x: u64) -> Self {
        W64x4([x; 4])
    }

    /// Loads the first four words of `w`.
    #[inline(always)]
    pub fn load(w: &[u64]) -> Self {
        W64x4([w[0], w[1], w[2], w[3]])
    }

    /// Lane-wise wrapping add.
    #[inline(always)]
    pub fn wrapping_add(self, o: Self) -> Self {
        W64x4(std::array::from_fn(|l| self.0[l].wrapping_add(o.0[l])))
    }

    /// Lane-wise SWAR population count: each lane is replaced by its own
    /// `count_ones()`, computed with the classic 0x5555…/0x3333…/0x0f0f…
    /// reduction so the whole vector popcounts without leaving the lanes.
    #[inline(always)]
    pub fn popcount_lanes(self) -> Self {
        W64x4(std::array::from_fn(|l| {
            let mut x = self.0[l];
            x -= (x >> 1) & 0x5555_5555_5555_5555;
            x = (x & 0x3333_3333_3333_3333) + ((x >> 2) & 0x3333_3333_3333_3333);
            x = (x + (x >> 4)) & 0x0f0f_0f0f_0f0f_0f0f;
            x.wrapping_mul(0x0101_0101_0101_0101) >> 56
        }))
    }

    /// The lanes narrowed to `u32` (valid after [`Self::popcount_lanes`]
    /// sums, which are ≤ 8 × 64 per lane).
    #[inline(always)]
    pub fn lanes_u32(self) -> [u32; 4] {
        std::array::from_fn(|l| self.0[l] as u32)
    }
}

impl std::ops::BitAnd for W64x4 {
    type Output = W64x4;
    #[inline(always)]
    fn bitand(self, o: Self) -> Self {
        W64x4(std::array::from_fn(|l| self.0[l] & o.0[l]))
    }
}

impl std::ops::BitOr for W64x4 {
    type Output = W64x4;
    #[inline(always)]
    fn bitor(self, o: Self) -> Self {
        W64x4(std::array::from_fn(|l| self.0[l] | o.0[l]))
    }
}

impl std::ops::BitXor for W64x4 {
    type Output = W64x4;
    #[inline(always)]
    fn bitxor(self, o: Self) -> Self {
        W64x4(std::array::from_fn(|l| self.0[l] ^ o.0[l]))
    }
}

impl std::ops::Not for W64x4 {
    type Output = W64x4;
    #[inline(always)]
    fn not(self) -> Self {
        W64x4(std::array::from_fn(|l| !self.0[l]))
    }
}

/// Lane-wise half adder: `a + b = sum + 2·carry` in every bit column of
/// every lane.
#[inline(always)]
pub fn half_v(a: W64x4, b: W64x4) -> (W64x4, W64x4) {
    (a ^ b, a & b)
}

/// Lane-wise carry-save adder: `s + a + b = sum + 2·carry` in every bit
/// column of every lane.
#[inline(always)]
pub fn csa_v(s: W64x4, a: W64x4, b: W64x4) -> (W64x4, W64x4) {
    let u = s ^ a;
    (u ^ b, (s & a) | (u & b))
}

/// Population count of 8 vectors, per lane: the same Harley–Seal tree as
/// [`snp_bitmat::csa::popcount8`], run across all four lanes at once —
/// 4 wide popcounts instead of 32 scalar ones.
#[inline(always)]
pub fn popcount8_lanes(w: &[W64x4; 8]) -> [u32; 4] {
    let (a1, c1) = half_v(w[0], w[1]);
    let (a2, c2) = half_v(w[2], w[3]);
    let (a3, c3) = half_v(w[4], w[5]);
    let (a4, c4) = half_v(w[6], w[7]);
    let (b1, d1) = half_v(a1, a2);
    let (b2, d2) = half_v(a3, a4);
    let (ones, d3) = half_v(b1, b2);
    let (e1, f1) = csa_v(c1, c2, c3);
    let (e2, f2) = csa_v(c4, d1, d2);
    let (twos, f3) = csa_v(e1, e2, d3);
    let (fours, eights) = csa_v(f1, f2, f3);
    // total = pc(ones) + 2·pc(twos) + 4·pc(fours) + 8·pc(eights), lane-wise;
    // the weights are lane shifts, the sums stay well inside u64.
    let two = twos.popcount_lanes();
    let four = fours.popcount_lanes();
    let eight = eights.popcount_lanes();
    ones.popcount_lanes()
        .wrapping_add(two.wrapping_add(two))
        .wrapping_add(W64x4(std::array::from_fn(|l| four.0[l] << 2)))
        .wrapping_add(W64x4(std::array::from_fn(|l| eight.0[l] << 3)))
        .lanes_u32()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic word stream (SplitMix64) without external dependencies.
    fn stream(seed: u64) -> impl Iterator<Item = u64> {
        let mut x = seed;
        std::iter::repeat_with(move || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        })
    }

    #[test]
    fn swar_popcount_matches_count_ones() {
        for w in stream(11).take(400) {
            let v = W64x4([w, !w, w.rotate_left(13), 0]);
            let pc = v.popcount_lanes();
            for l in 0..4 {
                assert_eq!(pc.0[l], v.0[l].count_ones() as u64, "lane {l} of {w:#x}");
            }
        }
        assert_eq!(W64x4::splat(u64::MAX).popcount_lanes(), W64x4::splat(64));
        assert_eq!(W64x4::splat(0).popcount_lanes(), W64x4::splat(0));
    }

    #[test]
    fn popcount8_lanes_matches_scalar_tree() {
        let words: Vec<u64> = stream(23).take(8 * 4 * 50).collect();
        for chunk in words.chunks_exact(8 * 4) {
            let w: [W64x4; 8] = std::array::from_fn(|p| W64x4::load(&chunk[p * 4..]));
            let got = popcount8_lanes(&w);
            for (l, &g) in got.iter().enumerate() {
                let lane: [u64; 8] = std::array::from_fn(|p| w[p].0[l]);
                assert_eq!(g, snp_bitmat::csa::popcount8(&lane), "lane {l}");
            }
        }
    }

    #[test]
    fn lane_adders_are_column_adders() {
        let mut it = stream(31);
        for _ in 0..100 {
            let a = W64x4::load(&it.by_ref().take(4).collect::<Vec<_>>());
            let b = W64x4::load(&it.by_ref().take(4).collect::<Vec<_>>());
            let s = W64x4::load(&it.by_ref().take(4).collect::<Vec<_>>());
            let (sum, carry) = half_v(a, b);
            let (csum, ccarry) = csa_v(s, a, b);
            for l in 0..4 {
                assert_eq!(
                    sum.0[l].count_ones() + 2 * carry.0[l].count_ones(),
                    a.0[l].count_ones() + b.0[l].count_ones()
                );
                assert_eq!(
                    csum.0[l].count_ones() + 2 * ccarry.0[l].count_ones(),
                    s.0[l].count_ones() + a.0[l].count_ones() + b.0[l].count_ones()
                );
            }
        }
    }
}
