//! Multithreaded blocked popcount-GEMM.
//!
//! \[11\] parallelizes the second and third loops around the microkernel; we
//! do the same with rayon: the shared `B̃` block is packed once per
//! (`jc`, `pc`) iteration, then the third loop's `m_c`-row blocks are
//! distributed across the thread pool. Each task packs its own `Ã` block
//! and owns a disjoint row range of `γ`, so no synchronization is needed
//! beyond the fork/join.

use rayon::prelude::*;
use snp_bitmat::{BitMatrix, CompareOp, CountMatrix, PackedPanels};

use crate::blocking::{CpuBlocking, MR, NR};
use crate::gemm::{check_shapes, macro_kernel};

/// Parallel version of [`crate::gemm::gamma_blocked_into`]. Produces results
/// bit-identical to the sequential path (integer accumulation commutes).
pub fn gamma_parallel_into(
    a: &BitMatrix<u64>,
    b: &BitMatrix<u64>,
    op: CompareOp,
    blocking: &CpuBlocking,
    c: &mut CountMatrix,
) {
    check_shapes(a, b, c, blocking);
    let (m, n, k_words) = (a.rows(), b.rows(), a.words_per_row());
    if m == 0 || n == 0 {
        return;
    }
    let cols = c.cols();
    for jc in (0..n).step_by(blocking.n_c) {
        let n_blk = blocking.n_c.min(n - jc);
        for pc in (0..k_words).step_by(blocking.k_c) {
            let k_blk = blocking.k_c.min(k_words - pc);
            let b_pack = PackedPanels::pack(b, jc, jc + n_blk, pc, pc + k_blk, NR);
            // Third loop in parallel: disjoint m_c-row chunks of γ.
            c.as_mut_slice()
                .par_chunks_mut(blocking.m_c * cols)
                .enumerate()
                .for_each(|(blk, rows)| {
                    let ic = blk * blocking.m_c;
                    let m_blk = blocking.m_c.min(m - ic);
                    let a_pack = PackedPanels::pack(a, ic, ic + m_blk, pc, pc + k_blk, MR);
                    macro_kernel(op, &a_pack, &b_pack, rows, m_blk, cols, jc, n_blk);
                });
        }
    }
}

/// Convenience wrapper allocating a fresh output.
pub fn gamma_parallel(
    a: &BitMatrix<u64>,
    b: &BitMatrix<u64>,
    op: CompareOp,
    blocking: &CpuBlocking,
) -> CountMatrix {
    let mut c = CountMatrix::zeros(a.rows(), b.rows());
    gamma_parallel_into(a, b, op, blocking, &mut c);
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::gamma_blocked;
    use snp_bitmat::reference_gamma;

    fn matrix(rows: usize, cols: usize, salt: usize) -> BitMatrix<u64> {
        BitMatrix::from_fn(rows, cols, |r, c| (r * 41 + c * 13 + salt) % 5 < 2)
    }

    fn blocking_small() -> CpuBlocking {
        CpuBlocking { m_r: MR, n_r: NR, k_c: 3, m_c: 2 * MR, n_c: 3 * NR }
    }

    #[test]
    fn parallel_matches_sequential_and_reference() {
        let a = matrix(3 * MR + 5, 700, 0);
        let b = matrix(5 * NR + 2, 700, 1);
        for op in CompareOp::ALL {
            let par = gamma_parallel(&a, &b, op, &blocking_small());
            let seq = gamma_blocked(&a, &b, op, &blocking_small());
            let want = reference_gamma(&a, &b, op);
            assert_eq!(par.first_mismatch(&seq), None, "op {op}: par vs seq");
            assert_eq!(par.first_mismatch(&want), None, "op {op}: par vs reference");
        }
    }

    #[test]
    fn parallel_is_deterministic() {
        let a = matrix(100, 512, 2);
        let b = matrix(64, 512, 3);
        let x = gamma_parallel(&a, &b, CompareOp::Xor, &CpuBlocking::default());
        let y = gamma_parallel(&a, &b, CompareOp::Xor, &CpuBlocking::default());
        assert_eq!(x.first_mismatch(&y), None);
    }

    #[test]
    fn handles_fewer_rows_than_one_block() {
        let a = matrix(2, 128, 4);
        let b = matrix(300, 128, 5);
        let par = gamma_parallel(&a, &b, CompareOp::And, &CpuBlocking::default());
        let want = reference_gamma(&a, &b, CompareOp::And);
        assert_eq!(par.first_mismatch(&want), None);
    }

    #[test]
    fn accumulates_like_sequential() {
        let a = matrix(20, 256, 6);
        let b = matrix(20, 256, 7);
        let mut c = CountMatrix::zeros(20, 20);
        gamma_parallel_into(&a, &b, CompareOp::And, &blocking_small(), &mut c);
        gamma_parallel_into(&a, &b, CompareOp::Xor, &blocking_small(), &mut c);
        let want_and = reference_gamma(&a, &b, CompareOp::And);
        let want_xor = reference_gamma(&a, &b, CompareOp::Xor);
        for i in 0..20 {
            for j in 0..20 {
                assert_eq!(c.get(i, j), want_and.get(i, j) + want_xor.get(i, j));
            }
        }
    }
}
