//! Multithreaded blocked popcount-GEMM with shape-aware scheduling.
//!
//! \[11\] parallelizes the second and third loops around the microkernel.
//! Splitting only the third (`ic`, row-block) loop works for square LD
//! problems but degenerates for FastID-shaped ones — a handful of query
//! rows against millions of database profiles yields a single `m_c` block
//! and therefore a single task. This module therefore picks between two
//! schedules by problem shape (or on request):
//!
//! * [`ParallelSchedule::RowBlocks`] — the classic `ic` split. The `pc`
//!   loop is outermost and every `m_c` block of `Ã` is packed **once per
//!   `pc`** into a cache reused across all `jc` iterations (the seed packed
//!   it once per `(jc, pc)`, re-packing the same words `n / n_c` times).
//!   Each task owns a disjoint row range of `γ`.
//! * [`ParallelSchedule::ColumnStrips`] — the `jc` split for wide problems.
//!   `Ã` (small by assumption) is packed once per `pc` up front; each task
//!   owns a disjoint **column** strip of `γ`, packs the `B̃` blocks of its
//!   strip itself, and accumulates into a private `m × strip` buffer that
//!   is added into `γ` after the join, keeping all writes disjoint without
//!   synchronization.
//!
//! Both schedules produce results bit-identical to the sequential path:
//! every `γ` cell is a sum of `u32` tile contributions, and integer
//! addition is associative and commutative, so neither the loop order nor
//! the task boundaries are observable in the output.

use rayon::prelude::*;
use snp_bitmat::{BitMatrix, CompareOp, CountMatrix, PackedPanels};
use snp_trace::{LazyCounter, TimeDomain, Tracer, TrackId};

use crate::blocking::{CpuBlocking, MR, NR};
use crate::gemm::{check_shapes, macro_kernel};

/// Registry name of the counter of parallel GEMM runs.
pub const PARALLEL_RUNS_METRIC: &str = "cpu.parallel.runs";
/// Registry name of the counter of parallel tasks spawned across runs.
pub const PARALLEL_TASKS_METRIC: &str = "cpu.parallel.tasks";
/// Registry name of the counter of `Ã` block packs across runs.
pub const PARALLEL_A_PACKS_METRIC: &str = "cpu.parallel.a_packs";

static RUNS: LazyCounter = LazyCounter::new(PARALLEL_RUNS_METRIC);
static TASKS: LazyCounter = LazyCounter::new(PARALLEL_TASKS_METRIC);
static A_PACKS: LazyCounter = LazyCounter::new(PARALLEL_A_PACKS_METRIC);

/// Which loop of the blocked GEMM is split across threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParallelSchedule {
    /// Pick by shape: [`ParallelSchedule::ColumnStrips`] when `m` fits in at
    /// most two `m_c` blocks and the `n` dimension offers more tasks,
    /// [`ParallelSchedule::RowBlocks`] otherwise.
    Auto,
    /// Split the third (`ic`) loop: tasks own disjoint row ranges of `γ`.
    RowBlocks,
    /// Split the fifth (`jc`) loop: tasks own disjoint column strips of `γ`.
    ColumnStrips,
}

/// What the scheduler actually did — exposed so tests and benches can assert
/// on parallelization behavior rather than only on timing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelStats {
    /// The schedule that ran (never [`ParallelSchedule::Auto`]).
    pub schedule: ParallelSchedule,
    /// Number of independent parallel tasks per parallel region.
    pub tasks: usize,
    /// Number of `Ã` block packs performed (cache effectiveness: without the
    /// per-`pc` cache this would be multiplied by the number of `jc` steps).
    pub a_packs: usize,
}

/// Parallel version of [`crate::gemm::gamma_blocked_into`] using the
/// [`ParallelSchedule::Auto`] schedule. Produces results bit-identical to
/// the sequential path.
pub fn gamma_parallel_into(
    a: &BitMatrix<u64>,
    b: &BitMatrix<u64>,
    op: CompareOp,
    blocking: &CpuBlocking,
    c: &mut CountMatrix,
) {
    let _ = gamma_parallel_into_scheduled(a, b, op, blocking, c, ParallelSchedule::Auto);
}

/// Like [`gamma_parallel_into`] but with an explicit schedule; returns what
/// was actually run.
pub fn gamma_parallel_into_scheduled(
    a: &BitMatrix<u64>,
    b: &BitMatrix<u64>,
    op: CompareOp,
    blocking: &CpuBlocking,
    c: &mut CountMatrix,
    schedule: ParallelSchedule,
) -> ParallelStats {
    gamma_parallel_into_traced(a, b, op, blocking, c, schedule, &Tracer::disabled())
}

/// Like [`gamma_parallel_into_scheduled`] with per-task wall-clock spans
/// recorded on `tracer` (a no-op for a disabled tracer). Every run also
/// bumps the process-wide [`snp_trace::registry`] counters
/// [`PARALLEL_RUNS_METRIC`], [`PARALLEL_TASKS_METRIC`] and
/// [`PARALLEL_A_PACKS_METRIC`], which supersede hand-plumbing
/// [`ParallelStats`] out of call sites for aggregate reporting.
pub fn gamma_parallel_into_traced(
    a: &BitMatrix<u64>,
    b: &BitMatrix<u64>,
    op: CompareOp,
    blocking: &CpuBlocking,
    c: &mut CountMatrix,
    schedule: ParallelSchedule,
    tracer: &Tracer,
) -> ParallelStats {
    check_shapes(a, b, c, blocking);
    let (m, n) = (a.rows(), b.rows());
    let row_tasks = m.div_ceil(blocking.m_c);
    let col_tasks = n.div_ceil(blocking.n_c);
    let resolved = match schedule {
        ParallelSchedule::Auto => {
            if row_tasks <= 2 && col_tasks > row_tasks {
                ParallelSchedule::ColumnStrips
            } else {
                ParallelSchedule::RowBlocks
            }
        }
        explicit => explicit,
    };
    if m == 0 || n == 0 {
        return ParallelStats {
            schedule: resolved,
            tasks: 0,
            a_packs: 0,
        };
    }
    let track = tracer.track("cpu parallel", TimeDomain::Wall);
    let run = tracer.begin_span(track, "run", run_name(resolved), tracer.wall_now_ns());
    let stats = match resolved {
        ParallelSchedule::RowBlocks => row_blocks(a, b, op, blocking, c, tracer, track),
        ParallelSchedule::ColumnStrips => column_strips(a, b, op, blocking, c, tracer, track),
        ParallelSchedule::Auto => unreachable!("resolved above"),
    };
    tracer.end_span_with(
        run,
        tracer.wall_now_ns(),
        vec![
            ("tasks", (stats.tasks as u64).into()),
            ("a_packs", (stats.a_packs as u64).into()),
        ],
    );
    RUNS.add(1);
    TASKS.add(stats.tasks as u64);
    A_PACKS.add(stats.a_packs as u64);
    stats
}

fn run_name(schedule: ParallelSchedule) -> &'static str {
    match schedule {
        ParallelSchedule::RowBlocks => "parallel gamma (row blocks)",
        ParallelSchedule::ColumnStrips => "parallel gamma (column strips)",
        ParallelSchedule::Auto => "parallel gamma",
    }
}

/// Convenience wrapper allocating a fresh output.
pub fn gamma_parallel(
    a: &BitMatrix<u64>,
    b: &BitMatrix<u64>,
    op: CompareOp,
    blocking: &CpuBlocking,
) -> CountMatrix {
    let mut c = CountMatrix::zeros(a.rows(), b.rows());
    gamma_parallel_into(a, b, op, blocking, &mut c);
    c
}

/// `ic` split with the per-`pc` `Ã` cache: `pc` is the outermost loop so
/// each `m_c × k_c` block of `Ã` is packed exactly once and reused across
/// every `jc` iteration; tasks own disjoint `m_c`-row chunks of `γ`.
fn row_blocks(
    a: &BitMatrix<u64>,
    b: &BitMatrix<u64>,
    op: CompareOp,
    blocking: &CpuBlocking,
    c: &mut CountMatrix,
    tracer: &Tracer,
    track: TrackId,
) -> ParallelStats {
    let (m, n, k_words) = (a.rows(), b.rows(), a.words_per_row());
    let cols = c.cols();
    let mut a_packs_done = 0;
    for pc in (0..k_words).step_by(blocking.k_c) {
        let k_blk = blocking.k_c.min(k_words - pc);
        let pack_start = tracer.wall_now_ns();
        let a_packs: Vec<PackedPanels<u64>> = (0..m)
            .step_by(blocking.m_c)
            .map(|ic| {
                let m_blk = blocking.m_c.min(m - ic);
                PackedPanels::pack(a, ic, ic + m_blk, pc, pc + k_blk, MR)
            })
            .collect();
        if tracer.is_enabled() {
            tracer.span_with(
                track,
                "pack",
                "pack A blocks",
                pack_start,
                tracer.wall_now_ns(),
                vec![("blocks", (a_packs.len() as u64).into())],
            );
        }
        a_packs_done += a_packs.len();
        for jc in (0..n).step_by(blocking.n_c) {
            let n_blk = blocking.n_c.min(n - jc);
            let b_pack = PackedPanels::pack(b, jc, jc + n_blk, pc, pc + k_blk, NR);
            c.as_mut_slice()
                .par_chunks_mut(blocking.m_c * cols)
                .enumerate()
                .for_each(|(blk, rows)| {
                    let ic = blk * blocking.m_c;
                    let m_blk = blocking.m_c.min(m - ic);
                    let t0 = tracer.wall_now_ns();
                    macro_kernel(op, &a_packs[blk], &b_pack, rows, m_blk, cols, jc, n_blk);
                    if tracer.is_enabled() {
                        tracer.span_with(
                            track,
                            "task",
                            format!("row block {blk}"),
                            t0,
                            tracer.wall_now_ns(),
                            vec![("rows", (m_blk as u64).into()), ("jc", (jc as u64).into())],
                        );
                    }
                });
        }
    }
    ParallelStats {
        schedule: ParallelSchedule::RowBlocks,
        tasks: m.div_ceil(blocking.m_c),
        a_packs: a_packs_done,
    }
}

/// `jc` split for wide problems: all of `Ã` is packed once per `pc` up
/// front (by assumption it fits a couple of `m_c` blocks), then each task
/// processes one `n_c`-column strip of `γ` across **all** `pc` blocks into a
/// private buffer, which is added into `γ` after the join. Tasks touch
/// disjoint columns, so the final writeback is the only cross-strip step.
fn column_strips(
    a: &BitMatrix<u64>,
    b: &BitMatrix<u64>,
    op: CompareOp,
    blocking: &CpuBlocking,
    c: &mut CountMatrix,
    tracer: &Tracer,
    track: TrackId,
) -> ParallelStats {
    let (m, n, k_words) = (a.rows(), b.rows(), a.words_per_row());
    let cols = c.cols();
    // Per-pc Ã cache for the whole run: pc-major list of row-block packs.
    let pc_steps: Vec<usize> = (0..k_words).step_by(blocking.k_c).collect();
    let a_cache: Vec<Vec<PackedPanels<u64>>> = pc_steps
        .iter()
        .map(|&pc| {
            let k_blk = blocking.k_c.min(k_words - pc);
            (0..m)
                .step_by(blocking.m_c)
                .map(|ic| {
                    let m_blk = blocking.m_c.min(m - ic);
                    PackedPanels::pack(a, ic, ic + m_blk, pc, pc + k_blk, MR)
                })
                .collect()
        })
        .collect();
    let a_packs_done: usize = a_cache.iter().map(Vec::len).sum();

    let strips: Vec<usize> = (0..n).step_by(blocking.n_c).collect();
    let tasks = strips.len();
    let strip_results: Vec<(usize, usize, Vec<u32>)> = strips
        .into_par_iter()
        .map(|jc| {
            let n_blk = blocking.n_c.min(n - jc);
            let t0 = tracer.wall_now_ns();
            let mut strip = vec![0u32; m * n_blk];
            for (pi, &pc) in pc_steps.iter().enumerate() {
                let k_blk = blocking.k_c.min(k_words - pc);
                let b_pack = PackedPanels::pack(b, jc, jc + n_blk, pc, pc + k_blk, NR);
                for (blk, a_pack) in a_cache[pi].iter().enumerate() {
                    let ic = blk * blocking.m_c;
                    let m_blk = blocking.m_c.min(m - ic);
                    let rows = &mut strip[ic * n_blk..(ic + m_blk) * n_blk];
                    macro_kernel(op, a_pack, &b_pack, rows, m_blk, n_blk, 0, n_blk);
                }
            }
            if tracer.is_enabled() {
                tracer.span_with(
                    track,
                    "task",
                    format!("column strip @{jc}"),
                    t0,
                    tracer.wall_now_ns(),
                    vec![("cols", (n_blk as u64).into())],
                );
            }
            (jc, n_blk, strip)
        })
        .collect();

    let out = c.as_mut_slice();
    for (jc, n_blk, strip) in strip_results {
        for r in 0..m {
            let dst = &mut out[r * cols + jc..r * cols + jc + n_blk];
            let src = &strip[r * n_blk..(r + 1) * n_blk];
            for (o, &v) in dst.iter_mut().zip(src) {
                *o += v;
            }
        }
    }
    ParallelStats {
        schedule: ParallelSchedule::ColumnStrips,
        tasks,
        a_packs: a_packs_done,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::gamma_blocked;
    use snp_bitmat::reference_gamma;

    fn matrix(rows: usize, cols: usize, salt: usize) -> BitMatrix<u64> {
        BitMatrix::from_fn(rows, cols, |r, c| (r * 41 + c * 13 + salt) % 5 < 2)
    }

    fn blocking_small() -> CpuBlocking {
        CpuBlocking {
            m_r: MR,
            n_r: NR,
            k_c: 3,
            m_c: 2 * MR,
            n_c: 3 * NR,
        }
    }

    #[test]
    fn parallel_matches_sequential_and_reference() {
        let a = matrix(3 * MR + 5, 700, 0);
        let b = matrix(5 * NR + 2, 700, 1);
        for op in CompareOp::ALL {
            let par = gamma_parallel(&a, &b, op, &blocking_small());
            let seq = gamma_blocked(&a, &b, op, &blocking_small());
            let want = reference_gamma(&a, &b, op);
            assert_eq!(par.first_mismatch(&seq), None, "op {op}: par vs seq");
            assert_eq!(par.first_mismatch(&want), None, "op {op}: par vs reference");
        }
    }

    #[test]
    fn both_schedules_match_sequential_on_every_shape() {
        // Square-ish, wide (FastID-like), tall, and single-row shapes all
        // must be bit-identical under either explicit schedule.
        let shapes = [(3 * MR + 5, 5 * NR + 2), (5, 40 * NR), (60, 7), (1, 90)];
        for (m, n) in shapes {
            let a = matrix(m, 450, m);
            let b = matrix(n, 450, n + 1);
            for op in CompareOp::ALL {
                let seq = gamma_blocked(&a, &b, op, &blocking_small());
                for schedule in [ParallelSchedule::RowBlocks, ParallelSchedule::ColumnStrips] {
                    let mut got = CountMatrix::zeros(m, n);
                    let stats = gamma_parallel_into_scheduled(
                        &a,
                        &b,
                        op,
                        &blocking_small(),
                        &mut got,
                        schedule,
                    );
                    assert_eq!(stats.schedule, schedule);
                    assert_eq!(
                        got.first_mismatch(&seq),
                        None,
                        "{schedule:?} vs sequential on {m}x{n}, op {op}"
                    );
                }
            }
        }
    }

    #[test]
    fn auto_picks_column_strips_for_fastid_shape() {
        // 32 queries × many profiles: one m_c block but many n_c blocks.
        let a = matrix(32, 320, 0);
        let b = matrix(40 * NR, 320, 1);
        let mut c = CountMatrix::zeros(a.rows(), b.rows());
        let stats = gamma_parallel_into_scheduled(
            &a,
            &b,
            CompareOp::Xor,
            &blocking_small(),
            &mut c,
            ParallelSchedule::Auto,
        );
        assert_eq!(stats.schedule, ParallelSchedule::ColumnStrips);
        assert!(stats.tasks > 1, "FastID shape must fan out, got {stats:?}");
        let want = reference_gamma(&a, &b, CompareOp::Xor);
        assert_eq!(c.first_mismatch(&want), None);
    }

    #[test]
    fn auto_keeps_row_blocks_for_square_shape() {
        let a = matrix(6 * MR, 256, 2);
        let b = matrix(6 * NR, 256, 3);
        let mut c = CountMatrix::zeros(a.rows(), b.rows());
        let stats = gamma_parallel_into_scheduled(
            &a,
            &b,
            CompareOp::And,
            &blocking_small(),
            &mut c,
            ParallelSchedule::Auto,
        );
        assert_eq!(stats.schedule, ParallelSchedule::RowBlocks);
        assert!(stats.tasks > 1);
    }

    #[test]
    fn a_pack_cache_packs_each_block_once_per_pc() {
        // 2 m_c row blocks × 4 k_c blocks = 8 packs regardless of how many
        // jc steps run (the seed implementation did row_blocks × jc_steps ×
        // pc_steps packs).
        let a = matrix(4 * MR, 64 * 12, 4);
        let b = matrix(9 * NR, 64 * 12, 5);
        let mut c = CountMatrix::zeros(a.rows(), b.rows());
        let stats = gamma_parallel_into_scheduled(
            &a,
            &b,
            CompareOp::And,
            &blocking_small(),
            &mut c,
            ParallelSchedule::RowBlocks,
        );
        let pc_steps = 12usize.div_ceil(3);
        let row_blks = (4 * MR).div_ceil(2 * MR);
        assert_eq!(stats.a_packs, row_blks * pc_steps);
    }

    #[test]
    fn runs_feed_the_metrics_registry() {
        let a = matrix(3 * MR, 300, 10);
        let b = matrix(4 * NR, 300, 11);
        let reg = snp_trace::registry();
        let runs0 = reg.counter(PARALLEL_RUNS_METRIC).get();
        let tasks0 = reg.counter(PARALLEL_TASKS_METRIC).get();
        let packs0 = reg.counter(PARALLEL_A_PACKS_METRIC).get();
        let mut c = CountMatrix::zeros(a.rows(), b.rows());
        let stats = gamma_parallel_into_scheduled(
            &a,
            &b,
            CompareOp::Xor,
            &blocking_small(),
            &mut c,
            ParallelSchedule::RowBlocks,
        );
        assert_eq!(reg.counter(PARALLEL_RUNS_METRIC).get(), runs0 + 1);
        assert_eq!(
            reg.counter(PARALLEL_TASKS_METRIC).get(),
            tasks0 + stats.tasks as u64
        );
        assert_eq!(
            reg.counter(PARALLEL_A_PACKS_METRIC).get(),
            packs0 + stats.a_packs as u64
        );
    }

    #[test]
    fn traced_run_records_wall_clock_task_spans() {
        let a = matrix(32, 320, 12);
        let b = matrix(10 * NR, 320, 13);
        let tracer = snp_trace::Tracer::enabled();
        let mut c = CountMatrix::zeros(a.rows(), b.rows());
        let stats = gamma_parallel_into_traced(
            &a,
            &b,
            CompareOp::Xor,
            &blocking_small(),
            &mut c,
            ParallelSchedule::ColumnStrips,
            &tracer,
        );
        let trace = tracer.snapshot().expect("tracer is enabled");
        let run: Vec<_> = trace.events_in_cat("run").collect();
        assert_eq!(run.len(), 1);
        assert_eq!(
            trace.track(run[0].track).domain,
            snp_trace::TimeDomain::Wall
        );
        let tasks: Vec<_> = trace.events_in_cat("task").collect();
        assert_eq!(tasks.len(), stats.tasks);
        for t in &tasks {
            assert!(
                t.start_ns >= run[0].start_ns && t.end_ns <= run[0].end_ns,
                "task span must nest inside the run span"
            );
        }
    }

    #[test]
    fn parallel_is_deterministic() {
        let a = matrix(100, 512, 2);
        let b = matrix(64, 512, 3);
        let x = gamma_parallel(&a, &b, CompareOp::Xor, &CpuBlocking::default());
        let y = gamma_parallel(&a, &b, CompareOp::Xor, &CpuBlocking::default());
        assert_eq!(x.first_mismatch(&y), None);
    }

    #[test]
    fn handles_fewer_rows_than_one_block() {
        let a = matrix(2, 128, 4);
        let b = matrix(300, 128, 5);
        let par = gamma_parallel(&a, &b, CompareOp::And, &CpuBlocking::default());
        let want = reference_gamma(&a, &b, CompareOp::And);
        assert_eq!(par.first_mismatch(&want), None);
    }

    #[test]
    fn accumulates_like_sequential() {
        let a = matrix(20, 256, 6);
        let b = matrix(20, 256, 7);
        let mut c = CountMatrix::zeros(20, 20);
        gamma_parallel_into(&a, &b, CompareOp::And, &blocking_small(), &mut c);
        gamma_parallel_into(&a, &b, CompareOp::Xor, &blocking_small(), &mut c);
        let want_and = reference_gamma(&a, &b, CompareOp::And);
        let want_xor = reference_gamma(&a, &b, CompareOp::Xor);
        for i in 0..20 {
            for j in 0..20 {
                assert_eq!(c.get(i, j), want_and.get(i, j) + want_xor.get(i, j));
            }
        }
    }

    #[test]
    fn column_strips_accumulates_into_existing_output() {
        let a = matrix(8, 200, 8);
        let b = matrix(120, 200, 9);
        let mut c = CountMatrix::zeros(8, 120);
        for _ in 0..2 {
            gamma_parallel_into_scheduled(
                &a,
                &b,
                CompareOp::AndNot,
                &blocking_small(),
                &mut c,
                ParallelSchedule::ColumnStrips,
            );
        }
        let want = reference_gamma(&a, &b, CompareOp::AndNot);
        for i in 0..8 {
            for j in 0..120 {
                assert_eq!(c.get(i, j), 2 * want.get(i, j));
            }
        }
    }
}
