//! The popcount microkernel.
//!
//! The entire architecture-specific part of the CPU engine, exactly as in
//! \[11\]: an `MR × NR` block of `γ` accumulators updated along the shared
//! dimension with the three-instruction sequence
//! `γ += POPC(a ⋄ b)` (paper §III). The operands arrive as packed panels
//! (word-major, produced by [`snp_bitmat::PackedPanels`]) so every access is
//! unit-stride.
//!
//! Three paths compute the same counts bit-identically:
//!
//! * [`microkernel`] — the production path. With the `simd` feature (the
//!   default) full [`CSA_BLOCK`]-deep slabs run the 4-lane wide Harley–Seal
//!   tree of [`crate::simd`]: one [`crate::simd::W64x4`] vector carries the
//!   `NR` B lanes of a shared-dimension step, so the tree reduces all four
//!   γ columns at once and popcounts 4 wide counters instead of 32 scalar
//!   ones. Without the feature it is the scalar CSA path.
//! * [`microkernel_csa`] — the scalar Harley–Seal path
//!   ([`snp_bitmat::csa::popcount8`]): 4 popcounts per 8 combined words
//!   instead of 8. The correctness oracle for the SIMD lane, and the
//!   ablation baseline.
//! * [`microkernel_scalar`] — the original one-popcount-per-word loop, kept
//!   public as the oracle the property tests compare the CSA paths against.
//!
//! The `k % CSA_BLOCK` remainder always falls back to the scalar loop.

use snp_bitmat::csa::popcount8;
use snp_bitmat::CompareOp;

use crate::blocking::{MR, NR};
#[cfg(feature = "simd")]
use crate::simd::{popcount8_lanes, W64x4};

#[cfg(feature = "simd")]
const _: () = assert!(NR == W64x4::LANES, "the SIMD lane width is the NR tile");

/// Shared-dimension steps folded per CSA tree in [`microkernel`].
pub const CSA_BLOCK: usize = 8;

/// Computes `acc[i][j] += Σ_p popc(op(a_panel[p·MR + i], b_panel[p·NR + j]))`
/// for `p` in `0..k`, using the fastest compiled-in popcount path for full
/// 8-step blocks (wide SIMD with the `simd` feature, scalar CSA without).
///
/// `a_panel` must hold `k × MR` words, `b_panel` `k × NR` words.
#[inline]
pub fn microkernel(
    op: CompareOp,
    k: usize,
    a_panel: &[u64],
    b_panel: &[u64],
    acc: &mut [[u32; NR]; MR],
) {
    #[cfg(feature = "simd")]
    return microkernel_simd(op, k, a_panel, b_panel, acc);
    #[cfg(not(feature = "simd"))]
    microkernel_csa(op, k, a_panel, b_panel, acc)
}

/// The scalar Harley–Seal CSA path: same contract and bit-identical results
/// as [`microkernel`]; the oracle the SIMD lane is verified against, and the
/// ablation baseline when benchmarking with `--no-default-features`.
#[inline]
pub fn microkernel_csa(
    op: CompareOp,
    k: usize,
    a_panel: &[u64],
    b_panel: &[u64],
    acc: &mut [[u32; NR]; MR],
) {
    // Monomorphize per operator so the combine compiles to a single
    // instruction (AND / XOR / ANDN) in the inner loop.
    match op {
        CompareOp::And => csa_impl(k, a_panel, b_panel, acc, |a, b| a & b),
        CompareOp::Xor => csa_impl(k, a_panel, b_panel, acc, |a, b| a ^ b),
        CompareOp::AndNot => csa_impl(k, a_panel, b_panel, acc, |a, b| a & !b),
    }
}

/// The wide 4-lane SIMD path: the Harley–Seal tree of [`crate::simd`] over
/// `W64x4` vectors, one vector per shared-dimension step holding all `NR`
/// B lanes. Bit-identical to [`microkernel_csa`].
#[cfg(feature = "simd")]
#[inline]
pub fn microkernel_simd(
    op: CompareOp,
    k: usize,
    a_panel: &[u64],
    b_panel: &[u64],
    acc: &mut [[u32; NR]; MR],
) {
    match op {
        CompareOp::And => simd_impl(k, a_panel, b_panel, acc, |a, b| a & b),
        CompareOp::Xor => simd_impl(k, a_panel, b_panel, acc, |a, b| a ^ b),
        CompareOp::AndNot => simd_impl(k, a_panel, b_panel, acc, |a, b| a & !b),
    }
}

#[cfg(feature = "simd")]
#[inline(always)]
fn simd_impl(
    k: usize,
    a_panel: &[u64],
    b_panel: &[u64],
    acc: &mut [[u32; NR]; MR],
    combine: impl Fn(u64, u64) -> u64 + Copy,
) {
    let combine_v =
        move |a: W64x4, b: W64x4| W64x4(std::array::from_fn(|l| combine(a.0[l], b.0[l])));
    check_panels(k, a_panel, b_panel);
    let full = k - k % CSA_BLOCK;
    for p0 in (0..full).step_by(CSA_BLOCK) {
        let a: &[u64; CSA_BLOCK * MR] = a_panel[p0 * MR..(p0 + CSA_BLOCK) * MR].try_into().unwrap();
        let b: &[u64; CSA_BLOCK * NR] = b_panel[p0 * NR..(p0 + CSA_BLOCK) * NR].try_into().unwrap();
        // One vector load per B step, reused across the MR rows.
        let bv: [W64x4; CSA_BLOCK] = std::array::from_fn(|p| W64x4::load(&b[p * NR..]));
        #[allow(clippy::needless_range_loop)] // explicit row index keeps the tile obvious
        for i in 0..MR {
            let w: [W64x4; CSA_BLOCK] =
                std::array::from_fn(|p| combine_v(W64x4::splat(a[p * MR + i]), bv[p]));
            let counts = popcount8_lanes(&w);
            for j in 0..NR {
                acc[i][j] += counts[j];
            }
        }
    }
    scalar_steps(full, k, a_panel, b_panel, acc, combine);
}

/// The pre-CSA microkernel: one `count_ones()` per combined word. Exact same
/// contract and results as [`microkernel`]; kept as the reference oracle and
/// for old-vs-new benchmarking.
#[inline]
pub fn microkernel_scalar(
    op: CompareOp,
    k: usize,
    a_panel: &[u64],
    b_panel: &[u64],
    acc: &mut [[u32; NR]; MR],
) {
    match op {
        CompareOp::And => scalar_impl(k, a_panel, b_panel, acc, |a, b| a & b),
        CompareOp::Xor => scalar_impl(k, a_panel, b_panel, acc, |a, b| a ^ b),
        CompareOp::AndNot => scalar_impl(k, a_panel, b_panel, acc, |a, b| a & !b),
    }
}

#[inline(always)]
fn check_panels(k: usize, a_panel: &[u64], b_panel: &[u64]) {
    assert!(
        a_panel.len() >= k * MR,
        "A panel too short: {} < {}",
        a_panel.len(),
        k * MR
    );
    assert!(
        b_panel.len() >= k * NR,
        "B panel too short: {} < {}",
        b_panel.len(),
        k * NR
    );
}

#[inline(always)]
fn csa_impl(
    k: usize,
    a_panel: &[u64],
    b_panel: &[u64],
    acc: &mut [[u32; NR]; MR],
    combine: impl Fn(u64, u64) -> u64 + Copy,
) {
    check_panels(k, a_panel, b_panel);
    let full = k - k % CSA_BLOCK;
    #[allow(clippy::needless_range_loop)] // explicit indices keep the unrolled tile obvious
    for p0 in (0..full).step_by(CSA_BLOCK) {
        // One CSA_BLOCK-deep slab of both panels; fixed-size views let the
        // compiler unroll and hoist the loads out of the (i, j) tile loops.
        let a: &[u64; CSA_BLOCK * MR] = a_panel[p0 * MR..(p0 + CSA_BLOCK) * MR].try_into().unwrap();
        let b: &[u64; CSA_BLOCK * NR] = b_panel[p0 * NR..(p0 + CSA_BLOCK) * NR].try_into().unwrap();
        for i in 0..MR {
            for j in 0..NR {
                let words: [u64; CSA_BLOCK] =
                    std::array::from_fn(|p| combine(a[p * MR + i], b[p * NR + j]));
                // u32 adds are associative, so block-summing via the CSA tree
                // is bit-identical to the scalar per-word accumulation.
                acc[i][j] += popcount8(&words);
            }
        }
    }
    scalar_steps(full, k, a_panel, b_panel, acc, combine);
}

#[inline(always)]
fn scalar_impl(
    k: usize,
    a_panel: &[u64],
    b_panel: &[u64],
    acc: &mut [[u32; NR]; MR],
    combine: impl Fn(u64, u64) -> u64 + Copy,
) {
    check_panels(k, a_panel, b_panel);
    scalar_steps(0, k, a_panel, b_panel, acc, combine);
}

/// Scalar accumulation of shared-dimension steps `lo..hi` (panel bounds must
/// already be checked by the caller).
#[inline(always)]
fn scalar_steps(
    lo: usize,
    hi: usize,
    a_panel: &[u64],
    b_panel: &[u64],
    acc: &mut [[u32; NR]; MR],
    combine: impl Fn(u64, u64) -> u64 + Copy,
) {
    #[allow(clippy::needless_range_loop)]
    for p in lo..hi {
        // Slices of the current shared-dimension step; fixed-size arrays let
        // the compiler unroll and keep everything in registers.
        let a: &[u64; MR] = a_panel[p * MR..p * MR + MR].try_into().unwrap();
        let b: &[u64; NR] = b_panel[p * NR..p * NR + NR].try_into().unwrap();
        #[allow(clippy::needless_range_loop)]
        for i in 0..MR {
            for j in 0..NR {
                acc[i][j] += combine(a[i], b[j]).count_ones();
            }
        }
    }
}

/// A fresh zeroed accumulator tile.
#[inline]
pub fn zero_tile() -> [[u32; NR]; MR] {
    [[0u32; NR]; MR]
}

#[cfg(test)]
mod tests {
    use super::*;
    use snp_bitmat::{reference_gamma, BitMatrix, PackedPanels};

    fn panels_of(a: &BitMatrix<u64>, b: &BitMatrix<u64>) -> (PackedPanels<u64>, PackedPanels<u64>) {
        (PackedPanels::pack_all(a, MR), PackedPanels::pack_all(b, NR))
    }

    #[test]
    fn matches_reference_on_full_tile() {
        let a = BitMatrix::<u64>::from_fn(MR, 130, |r, c| (r * 13 + c) % 3 == 0);
        let b = BitMatrix::<u64>::from_fn(NR, 130, |r, c| (r * 7 + c) % 5 == 0);
        let (pa, pb) = panels_of(&a, &b);
        for op in CompareOp::ALL {
            let mut acc = zero_tile();
            microkernel(op, pa.k(), pa.panel(0), pb.panel(0), &mut acc);
            let expect = reference_gamma(&a, &b, op);
            for (i, acc_row) in acc.iter().enumerate() {
                for (j, &got) in acc_row.iter().enumerate() {
                    assert_eq!(got, expect.get(i, j), "op {op} at ({i}, {j})");
                }
            }
        }
    }

    #[test]
    fn accumulates_across_calls() {
        // Splitting the k dimension across two calls must equal one call —
        // the property the k_c loop relies on.
        let a = BitMatrix::<u64>::from_fn(MR, 256, |r, c| (r + c) % 2 == 0);
        let b = BitMatrix::<u64>::from_fn(NR, 256, |r, c| (r * c) % 3 == 1);
        let k = 4usize; // words per row
        let pa = PackedPanels::pack_all(&a, MR);
        let pb = PackedPanels::pack_all(&b, NR);
        assert_eq!(pa.k(), k);
        let mut whole = zero_tile();
        microkernel(CompareOp::And, k, pa.panel(0), pb.panel(0), &mut whole);
        let pa1 = PackedPanels::pack(&a, 0, MR, 0, 2, MR);
        let pa2 = PackedPanels::pack(&a, 0, MR, 2, 4, MR);
        let pb1 = PackedPanels::pack(&b, 0, NR, 0, 2, NR);
        let pb2 = PackedPanels::pack(&b, 0, NR, 2, 4, NR);
        let mut split = zero_tile();
        microkernel(CompareOp::And, 2, pa1.panel(0), pb1.panel(0), &mut split);
        microkernel(CompareOp::And, 2, pa2.panel(0), pb2.panel(0), &mut split);
        assert_eq!(whole, split);
    }

    #[test]
    fn zero_k_is_identity() {
        let mut acc = zero_tile();
        acc[1][2] = 77;
        microkernel(CompareOp::Xor, 0, &[], &[], &mut acc);
        assert_eq!(acc[1][2], 77);
    }

    #[test]
    fn padded_lanes_contribute_nothing() {
        // Panel with fewer logical rows than MR: padding lanes are zero and
        // must produce zero counts for AND / AndNot, and |b| for XOR rows.
        let a = BitMatrix::<u64>::from_fn(3, 64, |_, c| c % 2 == 0);
        let b = BitMatrix::<u64>::from_fn(NR, 64, |_, c| c % 4 == 0);
        let pa = PackedPanels::pack_all(&a, MR);
        let mut acc = zero_tile();
        microkernel(
            CompareOp::And,
            pa.k(),
            pa.panel(0),
            PackedPanels::pack_all(&b, NR).panel(0),
            &mut acc,
        );
        for (i, lane) in acc.iter().enumerate().skip(3) {
            assert_eq!(lane, &[0; NR], "padded A lane {i} must stay zero");
        }
    }

    #[test]
    #[should_panic(expected = "A panel too short")]
    fn short_panel_panics() {
        let mut acc = zero_tile();
        microkernel(CompareOp::And, 2, &[0u64; MR], &[0u64; 2 * NR], &mut acc);
    }

    #[test]
    fn csa_path_matches_scalar_oracle() {
        // Every k regime: below one CSA block, exact multiples, and odd
        // remainders — for all three operators.
        for k_bits in [1usize, 63, 64, 65, 7 * 64, 8 * 64, 8 * 64 + 1, 13 * 64 + 17] {
            let a = BitMatrix::<u64>::from_fn(MR, k_bits, |r, c| (r * 31 + c * 7) % 5 < 2);
            let b = BitMatrix::<u64>::from_fn(NR, k_bits, |r, c| (r * 17 + c * 3) % 4 == 0);
            let (pa, pb) = panels_of(&a, &b);
            for op in CompareOp::ALL {
                let mut fast = zero_tile();
                microkernel(op, pa.k(), pa.panel(0), pb.panel(0), &mut fast);
                let mut oracle = zero_tile();
                microkernel_scalar(op, pa.k(), pa.panel(0), pb.panel(0), &mut oracle);
                assert_eq!(fast, oracle, "op {op}, k_bits {k_bits}");
            }
        }
    }

    #[test]
    fn scalar_oracle_matches_reference() {
        let a = BitMatrix::<u64>::from_fn(MR, 200, |r, c| (r + 2 * c) % 3 == 0);
        let b = BitMatrix::<u64>::from_fn(NR, 200, |r, c| (3 * r + c) % 7 < 3);
        let (pa, pb) = panels_of(&a, &b);
        for op in CompareOp::ALL {
            let mut acc = zero_tile();
            microkernel_scalar(op, pa.k(), pa.panel(0), pb.panel(0), &mut acc);
            let expect = reference_gamma(&a, &b, op);
            for (i, acc_row) in acc.iter().enumerate() {
                for (j, &got) in acc_row.iter().enumerate() {
                    assert_eq!(got, expect.get(i, j), "op {op} at ({i}, {j})");
                }
            }
        }
    }
}
