//! The public CPU engine: algorithm-level entry points over the blocked
//! popcount-GEMM.

use snp_bitmat::{BitMatrix, CompareOp, CountMatrix};

use crate::blocking::CpuBlocking;
use crate::gemm::gamma_blocked_into;
use crate::parallel::gamma_parallel_into;

/// A configured CPU comparison engine.
///
/// ```
/// use snp_cpu::CpuEngine;
/// use snp_bitmat::{BitMatrix, CompareOp};
///
/// let panel = BitMatrix::<u64>::from_fn(16, 200, |r, c| (r + c) % 3 == 0);
/// let engine = CpuEngine::new();
/// let gamma = engine.ld_self(&panel);           // AND self-comparison
/// assert_eq!(gamma.rows(), 16);
/// let direct = engine.gamma(&panel, &panel, CompareOp::And);
/// assert_eq!(gamma.first_mismatch(&direct), None);
/// ```
#[derive(Debug, Clone)]
pub struct CpuEngine {
    blocking: CpuBlocking,
    parallel: bool,
}

impl Default for CpuEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl CpuEngine {
    /// Multithreaded engine with cache-derived blocking.
    pub fn new() -> Self {
        CpuEngine {
            blocking: CpuBlocking::default(),
            parallel: true,
        }
    }

    /// Single-threaded engine (useful for reproducible profiling and as the
    /// per-core baseline).
    pub fn sequential() -> Self {
        CpuEngine {
            blocking: CpuBlocking::default(),
            parallel: false,
        }
    }

    /// Overrides the blocking parameters.
    pub fn with_blocking(mut self, blocking: CpuBlocking) -> Self {
        assert!(
            blocking.violations().is_empty(),
            "invalid blocking: {:?}",
            blocking.violations()
        );
        self.blocking = blocking;
        self
    }

    /// The blocking in effect.
    pub fn blocking(&self) -> &CpuBlocking {
        &self.blocking
    }

    /// Whether the engine uses the rayon-parallel path.
    pub fn is_parallel(&self) -> bool {
        self.parallel
    }

    /// General comparison: `γ[i][j] = Σ_k popc(op(a[i][k], b[j][k]))`.
    pub fn gamma(&self, a: &BitMatrix<u64>, b: &BitMatrix<u64>, op: CompareOp) -> CountMatrix {
        let mut c = CountMatrix::zeros(a.rows(), b.rows());
        self.gamma_into(a, b, op, &mut c);
        c
    }

    /// Like [`gamma`](Self::gamma) but accumulating into an existing output
    /// (which must be zeroed by the caller if a fresh result is wanted).
    pub fn gamma_into(
        &self,
        a: &BitMatrix<u64>,
        b: &BitMatrix<u64>,
        op: CompareOp,
        c: &mut CountMatrix,
    ) {
        if self.parallel {
            gamma_parallel_into(a, b, op, &self.blocking, c);
        } else {
            gamma_blocked_into(a, b, op, &self.blocking, c);
        }
    }

    /// Linkage disequilibrium: AND self-comparison of an SNP panel
    /// (paper Eq. 1). The result feeds `snp_popgen::ld_stats`-style
    /// post-processing.
    pub fn ld_self(&self, panel: &BitMatrix<u64>) -> CountMatrix {
        self.gamma(panel, panel, CompareOp::And)
    }

    /// Linkage disequilibrium exploiting symmetry: computes only the upper
    /// triangle of `γ` and mirrors it — identical results to
    /// [`ld_self`](Self::ld_self) at roughly half the block work for large
    /// panels (the SYRK-style saving).
    pub fn ld_self_symmetric(&self, panel: &BitMatrix<u64>) -> CountMatrix {
        crate::symmetric::gamma_self_symmetric(panel, CompareOp::And, &self.blocking)
    }

    /// FastID identity search: XOR of queries against a database
    /// (paper Eq. 2). `γ[q][p] == 0` is a positive match.
    pub fn identity_search(
        &self,
        queries: &BitMatrix<u64>,
        database: &BitMatrix<u64>,
    ) -> CountMatrix {
        self.gamma(queries, database, CompareOp::Xor)
    }

    /// FastID mixture analysis (paper Eq. 3): counts reference alleles
    /// missing from each mixture. With `pre_negate`, the mixture matrix is
    /// negated up front and the kernel runs plain AND (the §II-C
    /// transformation — profitable on devices without fused AND-NOT);
    /// results are identical either way.
    pub fn mixture_analysis(
        &self,
        references: &BitMatrix<u64>,
        mixtures: &BitMatrix<u64>,
        pre_negate: bool,
    ) -> CountMatrix {
        if pre_negate {
            let negated = mixtures.negated();
            self.gamma(references, &negated, CompareOp::And)
        } else {
            self.gamma(references, mixtures, CompareOp::AndNot)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snp_bitmat::reference_gamma;

    fn matrix(rows: usize, cols: usize, salt: usize) -> BitMatrix<u64> {
        BitMatrix::from_fn(rows, cols, |r, c| (r * 19 + c * 23 + salt) % 6 < 2)
    }

    #[test]
    fn engine_paths_agree_with_reference() {
        let a = matrix(30, 300, 0);
        let b = matrix(25, 300, 1);
        for engine in [CpuEngine::new(), CpuEngine::sequential()] {
            for op in CompareOp::ALL {
                let got = engine.gamma(&a, &b, op);
                let want = reference_gamma(&a, &b, op);
                assert_eq!(got.first_mismatch(&want), None, "op {op}");
            }
        }
    }

    #[test]
    fn ld_self_is_and_self() {
        let a = matrix(12, 200, 2);
        let e = CpuEngine::new();
        assert_eq!(
            e.ld_self(&a)
                .first_mismatch(&e.gamma(&a, &a, CompareOp::And)),
            None
        );
    }

    #[test]
    fn identity_search_finds_planted_profile() {
        // Hash-mixed pattern so that no two database rows coincide.
        let db = BitMatrix::<u64>::from_fn(50, 256, |r, c| {
            (r.wrapping_mul(0x9E37_79B9) ^ c.wrapping_mul(0x85EB_CA6B)).rotate_left(7) % 5 == 0
        });
        let q = db.row_slice(17, 18);
        let gamma = CpuEngine::new().identity_search(&q, &db);
        assert_eq!(gamma.get(0, 17), 0);
        assert_eq!(gamma.argmin_in_row(0), Some(17));
    }

    #[test]
    fn mixture_prenegation_is_equivalent() {
        let refs = matrix(20, 192, 4);
        let mixes = matrix(6, 192, 5);
        let e = CpuEngine::new();
        let direct = e.mixture_analysis(&refs, &mixes, false);
        let pre = e.mixture_analysis(&refs, &mixes, true);
        assert_eq!(direct.first_mismatch(&pre), None);
    }

    #[test]
    #[should_panic(expected = "invalid blocking")]
    fn with_blocking_rejects_bad_params() {
        let bad = CpuBlocking {
            m_r: 1,
            n_r: 1,
            k_c: 0,
            m_c: 1,
            n_c: 1,
        };
        let _ = CpuEngine::new().with_blocking(bad);
    }
}
