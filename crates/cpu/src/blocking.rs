//! CPU blocking parameters and their analytical derivation.
//!
//! Alachiotis et al. \[11\] obtained their high-performance CPU implementation
//! by swapping the BLIS microkernel for a popcount variant and keeping the
//! five-loop blocked structure (paper §III, Fig. 3). The blocking values
//! follow the analytical model of Low et al. \[21\]: register blocks sized by
//! latency-throughput balance of the bottleneck unit, cache blocks sized so
//! the packed panels occupy fixed fractions of each cache level.

/// Register and cache blocking for the CPU popcount-GEMM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CpuBlocking {
    /// Register-block rows (A panel height). Fixed at compile time by the
    /// microkernel; this field documents the value in use.
    pub m_r: usize,
    /// Register-block columns (B panel height).
    pub n_r: usize,
    /// Shared-dimension words per cache block (packed panels resident in L1).
    pub k_c: usize,
    /// A-block rows per cache block (Ã resident in L2).
    pub m_c: usize,
    /// B-block columns per outermost block (B̃ resident in L3).
    pub n_c: usize,
}

/// Cache hierarchy description used to derive blocking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheParams {
    /// L1 data cache per core in bytes.
    pub l1_bytes: usize,
    /// L2 cache per core in bytes.
    pub l2_bytes: usize,
    /// Shared L3 in bytes.
    pub l3_bytes: usize,
    /// Word size in bytes (8 for the u64 engine).
    pub word_bytes: usize,
}

impl Default for CacheParams {
    fn default() -> Self {
        // Conservative modern-x86 defaults (and the Ivy Bridge sizes of the
        // paper's reference workstation).
        CacheParams {
            l1_bytes: 32 << 10,
            l2_bytes: 256 << 10,
            l3_bytes: 15 << 20,
            word_bytes: 8,
        }
    }
}

/// The compile-time microkernel shape: 8 × 4 accumulators of `u32`.
///
/// Eight A words against four B words yields 32 independent
/// AND→POPCNT→ADD chains, enough to cover the 3-cycle POPCNT latency of the
/// model CPU (Table I) several times over while fitting comfortably in 16
/// architectural registers' worth of spill-free accumulation (the compiler
/// keeps the 32 `u32` accumulators in 8 SIMD registers when vectorizing).
pub const MR: usize = 8;
/// See [`MR`].
pub const NR: usize = 4;

impl CpuBlocking {
    /// Derives blocking from cache sizes per the Low et al. recipe:
    ///
    /// * `k_c`: the `m_r × k_c` A panel plus `n_r × k_c` B panel fill half
    ///   of L1;
    /// * `m_c`: the `m_c × k_c` packed Ã fills half of L2;
    /// * `n_c`: the `n_c × k_c` packed B̃ fills half of L3.
    pub fn from_caches(c: CacheParams) -> Self {
        let k_c = (c.l1_bytes / 2 / ((MR + NR) * c.word_bytes)).max(16);
        let m_c = (c.l2_bytes / 2 / (k_c * c.word_bytes))
            .next_multiple_of(MR)
            .max(MR);
        let n_c = (c.l3_bytes / 2 / (k_c * c.word_bytes))
            .next_multiple_of(NR)
            .max(NR);
        CpuBlocking {
            m_r: MR,
            n_r: NR,
            k_c,
            m_c,
            n_c,
        }
    }

    /// The default blocking for this machine class.
    pub fn default_params() -> Self {
        Self::from_caches(CacheParams::default())
    }

    /// Validates divisibility and sanity; returns violations (empty = ok).
    pub fn violations(&self) -> Vec<String> {
        let mut v = Vec::new();
        if self.m_r != MR || self.n_r != NR {
            v.push(format!(
                "register blocks must match the compiled microkernel ({MR} x {NR}), got {} x {}",
                self.m_r, self.n_r
            ));
        }
        if !self.m_c.is_multiple_of(self.m_r) {
            v.push(format!(
                "m_c {} must be a multiple of m_r {}",
                self.m_c, self.m_r
            ));
        }
        if !self.n_c.is_multiple_of(self.n_r) {
            v.push(format!(
                "n_c {} must be a multiple of n_r {}",
                self.n_c, self.n_r
            ));
        }
        if self.k_c == 0 {
            v.push("k_c must be positive".into());
        }
        v
    }
}

impl Default for CpuBlocking {
    fn default() -> Self {
        Self::default_params()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_blocking_is_valid() {
        let b = CpuBlocking::default();
        assert!(b.violations().is_empty(), "{:?}", b.violations());
        assert_eq!(b.m_r, MR);
        assert_eq!(b.n_r, NR);
    }

    #[test]
    fn panels_fit_their_cache_levels() {
        let c = CacheParams::default();
        let b = CpuBlocking::from_caches(c);
        let panel_bytes = (MR + NR) * b.k_c * c.word_bytes;
        assert!(panel_bytes <= c.l1_bytes / 2 + (MR + NR) * c.word_bytes);
        assert!(b.m_c * b.k_c * c.word_bytes <= c.l2_bytes / 2 + MR * b.k_c * c.word_bytes);
        assert!(b.n_c * b.k_c * c.word_bytes <= c.l3_bytes / 2 + NR * b.k_c * c.word_bytes);
    }

    #[test]
    fn tiny_caches_still_produce_usable_blocking() {
        let b = CpuBlocking::from_caches(CacheParams {
            l1_bytes: 1 << 10,
            l2_bytes: 4 << 10,
            l3_bytes: 16 << 10,
            word_bytes: 8,
        });
        assert!(b.violations().is_empty(), "{:?}", b.violations());
        assert!(b.k_c >= 16 && b.m_c >= MR && b.n_c >= NR);
    }

    #[test]
    fn violations_detected() {
        let b = CpuBlocking {
            m_c: MR + 1,
            ..CpuBlocking::default()
        };
        assert!(!b.violations().is_empty());
        let b2 = CpuBlocking {
            m_r: 2,
            ..CpuBlocking::default()
        };
        assert!(!b2.violations().is_empty());
    }
}
