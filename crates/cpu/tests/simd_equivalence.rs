//! The SIMD, scalar-CSA, and one-popcount-per-word microkernel paths must be
//! bit-identical on every operator, shape, and seed: the wide lane is a pure
//! performance transformation.

use proptest::prelude::*;
use snp_bitmat::{BitMatrix, CompareOp, PackedPanels};
use snp_cpu::blocking::{MR, NR};
use snp_cpu::microkernel::{microkernel, microkernel_csa, microkernel_scalar, zero_tile};

fn random_panel(rows: usize, k_bits: usize, seed: u64) -> BitMatrix<u64> {
    BitMatrix::<u64>::from_fn(rows, k_bits, |r, c| {
        let x = (r as u64)
            .wrapping_mul(0x9E3779B97F4A7C15)
            .wrapping_add((c as u64).wrapping_mul(0xD1B54A32D192ED03))
            .wrapping_add(seed);
        (x ^ (x >> 31)).wrapping_mul(0xBF58476D1CE4E5B9) & 1 == 1
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random shared-dimension lengths hit every k regime (below one CSA
    /// block, multiples, odd remainders); every operator; random bits.
    #[test]
    fn all_microkernel_paths_agree(
        k_bits in 1usize..1400,
        op_i in 0usize..3,
        seed in 0u64..1u64 << 48,
    ) {
        let op = CompareOp::ALL[op_i];
        let a = random_panel(MR, k_bits, seed);
        let b = random_panel(NR, k_bits, seed ^ 0xDEADBEEF);
        let pa = PackedPanels::pack_all(&a, MR);
        let pb = PackedPanels::pack_all(&b, NR);

        let mut production = zero_tile();
        microkernel(op, pa.k(), pa.panel(0), pb.panel(0), &mut production);
        let mut csa = zero_tile();
        microkernel_csa(op, pa.k(), pa.panel(0), pb.panel(0), &mut csa);
        let mut scalar = zero_tile();
        microkernel_scalar(op, pa.k(), pa.panel(0), pb.panel(0), &mut scalar);

        prop_assert_eq!(csa, scalar, "csa vs scalar, op {}, k_bits {}", op, k_bits);
        prop_assert_eq!(production, scalar, "production vs scalar, op {}, k_bits {}", op, k_bits);

        #[cfg(feature = "simd")]
        {
            let mut simd = zero_tile();
            snp_cpu::microkernel::microkernel_simd(op, pa.k(), pa.panel(0), pb.panel(0), &mut simd);
            prop_assert_eq!(simd, scalar, "simd vs scalar, op {}, k_bits {}", op, k_bits);
        }
    }
}
