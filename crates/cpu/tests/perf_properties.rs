//! Property tests of the throughput-critical CPU paths.
//!
//! The CSA microkernel, the scalar oracle, and the bit-level reference must
//! agree on arbitrary inputs (all three operators, every `k % CSA_BLOCK`
//! remainder, padded panels), and both shape-aware parallel schedules must
//! be bit-identical to the sequential loop nest on both the paper's problem
//! shapes (square LD, wide FastID).

use proptest::prelude::*;
use snp_bitmat::{reference_gamma, BitMatrix, CompareOp, CountMatrix, PackedPanels};
use snp_cpu::blocking::{MR, NR};
use snp_cpu::gemm::gamma_blocked_into;
use snp_cpu::microkernel::{microkernel, microkernel_scalar, zero_tile};
use snp_cpu::parallel::gamma_parallel_into_scheduled;
use snp_cpu::{CpuBlocking, ParallelSchedule};

/// A blocking small enough that property-sized problems span several cache
/// blocks in every dimension (forcing multi-task schedules).
fn tiny_blocking() -> CpuBlocking {
    CpuBlocking {
        m_r: MR,
        n_r: NR,
        k_c: 2,
        m_c: 2 * MR,
        n_c: 2 * NR,
    }
}

fn bitmat(
    rows: impl Strategy<Value = usize>,
    cols: usize,
) -> impl Strategy<Value = BitMatrix<u64>> {
    rows.prop_flat_map(move |r| {
        prop::collection::vec(prop::collection::vec(any::<bool>(), cols), r)
            .prop_map(|rows| BitMatrix::from_bool_rows(&rows))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// CSA path == scalar oracle == reference, including padded panel lanes
    /// (fewer logical rows than MR/NR) and every k remainder class.
    #[test]
    fn csa_equals_scalar_equals_reference(
        rows_a in 1usize..=MR,
        rows_b in 1usize..=NR,
        k_bits in 1usize..1100,
        op_idx in 0usize..3,
        seed in any::<u32>(),
    ) {
        let op = CompareOp::ALL[op_idx];
        let mix = |r: usize, c: usize, salt: u32| {
            (r as u32).wrapping_mul(0x9E37_79B9)
                ^ (c as u32).wrapping_mul(0x85EB_CA6B)
                ^ salt
        };
        let a = BitMatrix::<u64>::from_fn(rows_a, k_bits, |r, c| mix(r, c, seed) % 5 < 2);
        let b = BitMatrix::<u64>::from_fn(rows_b, k_bits, |r, c| mix(r, c, !seed) % 3 == 0);
        let pa = PackedPanels::pack_all(&a, MR);
        let pb = PackedPanels::pack_all(&b, NR);
        let mut fast = zero_tile();
        microkernel(op, pa.k(), pa.panel(0), pb.panel(0), &mut fast);
        let mut oracle = zero_tile();
        microkernel_scalar(op, pa.k(), pa.panel(0), pb.panel(0), &mut oracle);
        prop_assert_eq!(fast, oracle, "CSA vs scalar, op {}, k_bits {}", op, k_bits);
        let want = reference_gamma(&a, &b, op);
        for (i, lane) in fast.iter().enumerate().take(rows_a) {
            for (j, &got) in lane.iter().enumerate().take(rows_b) {
                prop_assert_eq!(got, want.get(i, j), "vs reference at ({}, {})", i, j);
            }
        }
    }

    /// Both explicit schedules and Auto match the sequential loop nest on
    /// square (LD-like) problems.
    #[test]
    fn parallel_schedules_match_sequential_on_square(
        a in bitmat(33usize..90, 300),
        op_idx in 0usize..3,
    ) {
        let op = CompareOp::ALL[op_idx];
        let blocking = tiny_blocking();
        let mut want = CountMatrix::zeros(a.rows(), a.rows());
        gamma_blocked_into(&a, &a, op, &blocking, &mut want);
        for schedule in [
            ParallelSchedule::Auto,
            ParallelSchedule::RowBlocks,
            ParallelSchedule::ColumnStrips,
        ] {
            let mut got = CountMatrix::zeros(a.rows(), a.rows());
            let stats = gamma_parallel_into_scheduled(&a, &a, op, &blocking, &mut got, schedule);
            prop_assert_eq!(
                got.first_mismatch(&want), None,
                "{:?} diverged from sequential", stats.schedule
            );
            prop_assert!(stats.tasks >= 1);
        }
    }

    /// FastID shapes (a handful of query rows against a wide database) must
    /// resolve Auto to the column-strip schedule, actually fan out to more
    /// than one task, and stay bit-identical to the sequential result.
    #[test]
    fn fastid_shape_fans_out_column_strips(
        queries in bitmat(1usize..=32, 260),
        db_rows in 200usize..400,
        op_idx in 0usize..3,
    ) {
        let op = CompareOp::ALL[op_idx];
        let db = BitMatrix::<u64>::from_fn(db_rows, 260, |r, c| (r * 7 + c * 13) % 4 == 0);
        let blocking = tiny_blocking();
        let mut want = CountMatrix::zeros(queries.rows(), db_rows);
        gamma_blocked_into(&queries, &db, op, &blocking, &mut want);
        let mut got = CountMatrix::zeros(queries.rows(), db_rows);
        let stats = gamma_parallel_into_scheduled(
            &queries, &db, op, &blocking, &mut got, ParallelSchedule::Auto,
        );
        prop_assert_eq!(stats.schedule, ParallelSchedule::ColumnStrips);
        prop_assert!(stats.tasks > 1, "FastID shape must fan out, got {} task(s)", stats.tasks);
        prop_assert_eq!(got.first_mismatch(&want), None);
    }
}
