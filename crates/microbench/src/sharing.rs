//! Pipeline-sharing detection via mixed instruction streams (paper §V-D).
//!
//! "Combining different instructions can expose which instructions share
//! functional unit pipelines… execution time remained nearly constant when
//! exclusively performing population count and when simultaneously
//! performing population count with an equal number of arithmetic
//! operations" (separate pipes), whereas "on the Vega 64 the addition and
//! logical AND operations fall on the same pipeline which becomes the
//! bottleneck".

use snp_gpu_model::{DeviceSpec, InstrClass};
use snp_gpu_sim::detailed::simulate_core;
use snp_gpu_sim::isa::Program;

/// Outcome of a sharing probe between two instruction classes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineSharing {
    /// First class.
    pub a: InstrClass,
    /// Second class.
    pub b: InstrClass,
    /// Elapsed time of the mixed stream relative to the slower
    /// single-class stream of the same per-class instruction count.
    pub slowdown: f64,
    /// `true` when the probe concludes the classes contend for one pipeline.
    pub shared: bool,
}

const PAIRS: usize = 4;
const ITERS: u32 = 128;

fn run_cycles(dev: &DeviceSpec, prog: &Program, groups: u32) -> u64 {
    simulate_core(dev, prog, groups, 1_000_000_000)
        .expect("sharing probe within budget")
        .cycles
}

/// Probes whether `a` and `b` share a pipeline on `dev`.
///
/// Method: run `a`-only, `b`-only and interleaved `a`+`b` streams with the
/// same per-class instruction count at saturating occupancy. If the pipes
/// are separate, the mixed stream takes about as long as the slower
/// single-class stream; if shared, it takes about their sum.
pub fn classify_sharing(dev: &DeviceSpec, a: InstrClass, b: InstrClass) -> PipelineSharing {
    let groups = dev.chosen_occupancy_groups();
    let only_a = Program::independent_streams(a, PAIRS, ITERS);
    let only_b = Program::independent_streams(b, PAIRS, ITERS);
    let mixed = Program::interleaved_pair(a, b, PAIRS, ITERS);
    let ta = run_cycles(dev, &only_a, groups) as f64;
    let tb = run_cycles(dev, &only_b, groups) as f64;
    let tm = run_cycles(dev, &mixed, groups) as f64;
    let slower = ta.max(tb);
    let slowdown = tm / slower;
    // Separate pipes: tm ≈ slower (ratio ~1). Shared: tm ≈ ta + tb (ratio ~2
    // for equal-rate classes). Threshold halfway.
    let shared = slowdown > 1.0 + 0.5 * (ta.min(tb) / slower);
    PipelineSharing {
        a,
        b,
        slowdown,
        shared,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snp_gpu_model::devices;

    #[test]
    fn popc_is_separate_from_int_math_everywhere() {
        // Footnote observation reproduced on all three GPUs.
        for dev in [devices::gtx_980(), devices::titan_v(), devices::vega_64()] {
            let s = classify_sharing(&dev, InstrClass::Popc, InstrClass::IntAdd);
            assert!(
                !s.shared,
                "{}: popc must not share with add (slowdown {})",
                dev.name, s.slowdown
            );
        }
    }

    #[test]
    fn vega_add_and_logic_share() {
        let dev = devices::vega_64();
        let s = classify_sharing(&dev, InstrClass::IntAdd, InstrClass::Logic);
        assert!(
            s.shared,
            "Vega ADD/AND share the VALU (slowdown {})",
            s.slowdown
        );
        assert!(
            s.slowdown > 1.8,
            "shared equal-rate classes should nearly double: {}",
            s.slowdown
        );
    }

    #[test]
    fn nvidia_add_and_logic_are_separate() {
        for dev in [devices::gtx_980(), devices::titan_v()] {
            let s = classify_sharing(&dev, InstrClass::IntAdd, InstrClass::Logic);
            assert!(!s.shared, "{}: slowdown {}", dev.name, s.slowdown);
            assert!(s.slowdown < 1.2);
        }
    }

    #[test]
    fn vega_not_shares_with_add() {
        // The Fig. 9 mechanism: the standalone NOT contends with ADD/AND.
        let dev = devices::vega_64();
        let s = classify_sharing(&dev, InstrClass::Not, InstrClass::IntAdd);
        assert!(s.shared);
    }
}
