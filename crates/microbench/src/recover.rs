//! Hardware-parameter recovery: the user-facing workflow of §V-B.
//!
//! "Users of the framework are expected to only identify the hardware
//! features of the GPU" — and where spec sheets are silent (AMD's popcount
//! throughput, footnote 1), the parameters are measured. This module runs
//! the full measurement suite against a device and reconstructs the Table I
//! quantities `L_fn` and `N_fn` per instruction class, plus the pipeline
//! sharing map; tests assert the round trip recovers the database values.

use snp_gpu_model::{DeviceSpec, InstrClass};

use crate::latency::measure_latency_cycles;
use crate::sharing::classify_sharing;
use crate::throughput::measure_throughput;

/// Parameters recovered by microbenchmarking alone.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveredParams {
    /// Device name, for reporting.
    pub device: String,
    /// Measured arithmetic latency in cycles, per class
    /// (class, cycles-per-instruction from the dependent chain).
    pub latency: Vec<(InstrClass, f64)>,
    /// Recovered `N_fn` per class (functional units per cluster), from the
    /// saturated throughput divided by `N_cl`.
    pub n_fn: Vec<(InstrClass, u32)>,
    /// Pairs of classes found to share a pipeline.
    pub shared_pairs: Vec<(InstrClass, InstrClass)>,
}

/// The arithmetic classes the SNP kernels care about.
pub const PROBE_CLASSES: [InstrClass; 4] = [
    InstrClass::IntAdd,
    InstrClass::Logic,
    InstrClass::Not,
    InstrClass::Popc,
];

/// Runs the §V-C/§V-D suite against `dev` and reconstructs its parameters.
pub fn recover_parameters(dev: &DeviceSpec) -> RecoveredParams {
    let mut latency = Vec::new();
    let mut n_fn = Vec::new();
    for class in PROBE_CLASSES {
        latency.push((class, measure_latency_cycles(dev, class).cycles_per_instr));
        let sat = dev.chosen_occupancy_groups();
        let m = measure_throughput(dev, class, sat);
        let units = (m.instrs_per_cycle / dev.n_clusters as f64).round() as u32;
        n_fn.push((class, units));
    }
    let mut shared_pairs = Vec::new();
    for (i, &a) in PROBE_CLASSES.iter().enumerate() {
        for &b in &PROBE_CLASSES[i + 1..] {
            if classify_sharing(dev, a, b).shared {
                shared_pairs.push((a, b));
            }
        }
    }
    RecoveredParams {
        device: dev.name.clone(),
        latency,
        n_fn,
        shared_pairs,
    }
}

impl RecoveredParams {
    /// The recovered `N_fn` for a class, if probed.
    pub fn units_for(&self, class: InstrClass) -> Option<u32> {
        self.n_fn
            .iter()
            .find(|&&(c, _)| c == class)
            .map(|&(_, u)| u)
    }

    /// The recovered latency for a class, if probed.
    pub fn latency_for(&self, class: InstrClass) -> Option<f64> {
        self.latency
            .iter()
            .find(|&&(c, _)| c == class)
            .map(|&(_, l)| l)
    }

    /// Whether two classes were found to share a pipeline.
    pub fn is_shared(&self, a: InstrClass, b: InstrClass) -> bool {
        self.shared_pairs
            .iter()
            .any(|&(x, y)| (x == a && y == b) || (x == b && y == a))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snp_gpu_model::devices;

    #[test]
    fn recovery_round_trips_table1() {
        for dev in [devices::gtx_980(), devices::titan_v(), devices::vega_64()] {
            let r = recover_parameters(&dev);
            for class in [InstrClass::IntAdd, InstrClass::Logic, InstrClass::Popc] {
                assert_eq!(
                    r.units_for(class),
                    dev.n_fn(class),
                    "{} {class}: N_fn mismatch",
                    dev.name
                );
            }
            // Latency round-trips where L_fn >= issue width (true for the
            // popcount pipes of all three GPUs).
            let l = r.latency_for(InstrClass::Popc).unwrap();
            assert!((l - dev.l_fn as f64).abs() < 0.1, "{}: {l}", dev.name);
        }
    }

    #[test]
    fn sharing_map_matches_pipeline_tables() {
        let vega = recover_parameters(&devices::vega_64());
        assert!(vega.is_shared(InstrClass::IntAdd, InstrClass::Logic));
        assert!(vega.is_shared(InstrClass::IntAdd, InstrClass::Not));
        assert!(!vega.is_shared(InstrClass::Popc, InstrClass::IntAdd));
        let titan = recover_parameters(&devices::titan_v());
        assert!(!titan.is_shared(InstrClass::IntAdd, InstrClass::Logic));
        assert!(
            titan.is_shared(InstrClass::Logic, InstrClass::Not),
            "NOT issues on the logic pipe"
        );
    }

    #[test]
    fn accessors_return_none_for_unprobed() {
        let r = recover_parameters(&devices::gtx_980());
        assert_eq!(r.units_for(InstrClass::LoadGlobal), None);
        assert_eq!(r.latency_for(InstrClass::StoreShared), None);
    }
}
