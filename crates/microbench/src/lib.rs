//! # snp-microbench — instruction microbenchmarking on the model GPU
//!
//! Implements the paper's §V-B–§V-D methodology for determining the hardware
//! parameters that "we had to manually benchmark the GPUs to identify":
//! instruction latency (`L_fn`) via single-group dependent chains,
//! instruction throughput (`N_fn`) via thread-group sweeps, and
//! pipeline-sharing detection via mixed instruction streams. The recovered
//! values are validated against the Table I database — closing the loop
//! between the simulator's parameterization and the measurement procedure a
//! user would run on real hardware.

#![warn(missing_docs)]

pub mod latency;
pub mod recover;
pub mod sharing;
pub mod throughput;

pub use latency::{measure_latency_cycles, LatencyMeasurement};
pub use recover::{recover_parameters, RecoveredParams};
pub use sharing::{classify_sharing, PipelineSharing};
pub use throughput::{measure_throughput, sweep_thread_groups, ThroughputMeasurement};
