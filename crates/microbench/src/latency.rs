//! Instruction latency via dependent chains (paper §V-C).
//!
//! "To measure the latency of a given instruction, we write a simple program
//! that consists of a long chain of dependent operations using the
//! instruction… Executing the kernel with one thread group is sufficient."
//! Latency is `clock_frequency × execution_time / #instructions`; we report
//! it directly in cycles per instruction.

use snp_gpu_model::{DeviceSpec, InstrClass};
use snp_gpu_sim::detailed::simulate_core_width;
use snp_gpu_sim::isa::Program;

/// One latency measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyMeasurement {
    /// Instruction class measured.
    pub class: InstrClass,
    /// Raw cycles / chain instructions — the §V-C quotient. Loop and
    /// load/store bookkeeping is amortized by the long chain, exactly as
    /// the paper prescribes ("increasing the number of instructions in the
    /// loop body will diminish the effects of managing the loop").
    pub cycles_per_instr: f64,
    /// Execution time in nanoseconds on the device's clock.
    pub time_ns: f64,
    /// Dynamic chain instructions executed.
    pub chain_instrs: u64,
}

/// Default chain shape: long enough that the ±2-instruction prologue and
/// epilogue perturb the quotient by well under 1 %.
pub const CHAIN_LEN: usize = 32;
/// Default loop trip count.
pub const CHAIN_ITERS: u32 = 256;

/// Measures the dependent-chain latency of `class` on one thread group with
/// a single active work-item — launching one thread keeps the measurement
/// latency-bound even on pipelines narrower than the thread group (on the
/// Titan V, a full 32-thread warp would be issue-bound at 8 cycles on the
/// 4-lane popcount pipe and hide the 4-cycle latency).
pub fn measure_latency_cycles(dev: &DeviceSpec, class: InstrClass) -> LatencyMeasurement {
    let prog = Program::dependent_chain(class, CHAIN_LEN, CHAIN_ITERS);
    let r =
        simulate_core_width(dev, &prog, 1, 1, 1_000_000_000).expect("latency chain within budget");
    let chain_instrs = CHAIN_LEN as u64 * CHAIN_ITERS as u64;
    let cycles_per_instr = r.cycles as f64 / chain_instrs as f64;
    LatencyMeasurement {
        class,
        cycles_per_instr,
        time_ns: dev.cycles_to_ns(r.cycles as f64),
        chain_instrs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snp_gpu_model::devices;

    #[test]
    fn popcount_latency_matches_table1() {
        for (dev, expect) in [
            (devices::gtx_980(), 6.0),
            (devices::titan_v(), 4.0),
            (devices::vega_64(), 4.0),
            (devices::xeon_e5_2620_v2(), 3.0),
        ] {
            let m = measure_latency_cycles(&dev, InstrClass::Popc);
            assert!(
                (m.cycles_per_instr - expect).abs() < 0.1,
                "{}: measured {} expected {expect}",
                dev.name,
                m.cycles_per_instr
            );
        }
    }

    #[test]
    fn arithmetic_classes_share_the_modeled_latency() {
        // The paper's simplifying assumption: L_fn is the same for all
        // arithmetic instructions — the chain must recover it for each.
        let dev = devices::gtx_980();
        for class in [InstrClass::IntAdd, InstrClass::Logic, InstrClass::Popc] {
            let m = measure_latency_cycles(&dev, class);
            assert!(
                (m.cycles_per_instr - dev.l_fn as f64).abs() < 0.1,
                "{class}: {}",
                m.cycles_per_instr
            );
        }
    }

    #[test]
    fn time_is_cycles_over_frequency() {
        let dev = devices::titan_v();
        let m = measure_latency_cycles(&dev, InstrClass::Popc);
        let cycles = m.cycles_per_instr * m.chain_instrs as f64;
        assert!((m.time_ns - cycles / dev.frequency_ghz).abs() / m.time_ns < 1e-6);
    }

    #[test]
    fn measurement_is_deterministic() {
        let dev = devices::vega_64();
        let a = measure_latency_cycles(&dev, InstrClass::Logic);
        let b = measure_latency_cycles(&dev, InstrClass::Logic);
        assert_eq!(a, b);
    }
}
