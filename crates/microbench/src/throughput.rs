//! Instruction throughput via thread-group sweeps (paper §V-D).
//!
//! "To measure throughput, we can use the same program as before, but change
//! the number of thread groups… using `N_grp = N_cl × L_fn` is sufficient
//! for achieving peak throughput." Throughput is
//! `#instructions × N_T × N_grp / (clock_frequency × execution_time)`;
//! we report it as thread-instructions per cycle per core, whose saturated
//! value is `N_fn × N_cl`.

use snp_gpu_model::{DeviceSpec, InstrClass};
use snp_gpu_sim::detailed::simulate_core;
use snp_gpu_sim::isa::Program;

/// One throughput measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThroughputMeasurement {
    /// Instruction class measured.
    pub class: InstrClass,
    /// Resident thread groups used.
    pub n_grp: u32,
    /// Thread-instructions per cycle per core.
    pub instrs_per_cycle: f64,
    /// Same, in instructions per second on the device's clock.
    pub instrs_per_sec: f64,
    /// Total elapsed cycles of the measurement.
    pub cycles: u64,
}

/// Chain length per group: §V-D uses "the same program as before" — the
/// dependent chain — varying only the number of thread groups, so latency
/// hiding comes entirely from group-level parallelism.
pub const CHAIN: usize = 8;
/// Loop trips per measurement.
pub const ITERS: u32 = 128;

/// Measures throughput of `class` with `n_grp` resident groups on one core.
pub fn measure_throughput(
    dev: &DeviceSpec,
    class: InstrClass,
    n_grp: u32,
) -> ThroughputMeasurement {
    let prog = Program::dependent_chain(class, CHAIN, ITERS);
    let r = simulate_core(dev, &prog, n_grp, 1_000_000_000).expect("throughput run within budget");
    // Count only the measured class (prologue loads / epilogue stores are
    // bookkeeping, exactly as in the paper's counting of the loop body).
    let body_instrs = CHAIN as u64 * ITERS as u64 * n_grp as u64;
    let instrs_per_cycle = body_instrs as f64 * dev.n_t as f64 / r.cycles as f64;
    ThroughputMeasurement {
        class,
        n_grp,
        instrs_per_cycle,
        instrs_per_sec: instrs_per_cycle * dev.frequency_ghz * 1e9,
        cycles: r.cycles,
    }
}

/// Sweeps `N_grp` from 1 to `max_groups`, returning one measurement per
/// group count — the data behind the paper's observation that time is flat
/// for `N_grp ≤ N_cl` and throughput saturates at `N_cl × L_fn` groups.
pub fn sweep_thread_groups(
    dev: &DeviceSpec,
    class: InstrClass,
    max_groups: u32,
) -> Vec<ThroughputMeasurement> {
    (1..=max_groups)
        .map(|g| measure_throughput(dev, class, g))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use snp_gpu_model::devices;

    #[test]
    fn saturated_throughput_equals_n_fn_times_n_cl() {
        for dev in [devices::gtx_980(), devices::titan_v(), devices::vega_64()] {
            for class in [InstrClass::Popc, InstrClass::IntAdd] {
                let sat = dev.chosen_occupancy_groups();
                let m = measure_throughput(&dev, class, sat);
                let expect = (dev.n_fn(class).unwrap() * dev.n_clusters) as f64;
                assert!(
                    (m.instrs_per_cycle - expect).abs() / expect < 0.05,
                    "{} {class}: {} vs {expect}",
                    dev.name,
                    m.instrs_per_cycle
                );
            }
        }
    }

    #[test]
    fn execution_time_flat_up_to_cluster_count() {
        // §V-D: "we expect the execution time to remain nearly constant for
        // N_grp <= N_cl".
        let dev = devices::gtx_980();
        let sweep = sweep_thread_groups(&dev, InstrClass::Popc, dev.n_clusters);
        let t1 = sweep[0].cycles as f64;
        for m in &sweep {
            assert!(
                (m.cycles as f64 - t1).abs() / t1 < 0.05,
                "N_grp={}: {} vs {t1}",
                m.n_grp,
                m.cycles
            );
        }
    }

    #[test]
    fn extra_groups_beyond_saturation_do_not_help() {
        let dev = devices::titan_v();
        let sat = dev.chosen_occupancy_groups();
        let at = measure_throughput(&dev, InstrClass::Popc, sat);
        let beyond = measure_throughput(&dev, InstrClass::Popc, sat * 2);
        assert!(beyond.instrs_per_cycle <= at.instrs_per_cycle * 1.02);
    }

    #[test]
    fn throughput_grows_until_saturation() {
        // Compare at whole-cluster group counts (uneven cluster loads make
        // the in-between points non-monotone, as on real hardware).
        let dev = devices::gtx_980();
        let sat = dev.chosen_occupancy_groups();
        let mut prev = 0.0;
        let mut g = dev.n_clusters;
        while g <= sat {
            let m = measure_throughput(&dev, InstrClass::Popc, g);
            assert!(
                m.instrs_per_cycle >= prev * 0.999,
                "N_grp={g}: {} < {prev}",
                m.instrs_per_cycle
            );
            prev = m.instrs_per_cycle;
            g += dev.n_clusters;
        }
        // And the paper's sufficiency claim: N_cl x L_fn groups reach peak.
        let expect = (dev.n_fn(InstrClass::Popc).unwrap() * dev.n_clusters) as f64;
        assert!(prev > 0.95 * expect, "{prev} should approach {expect}");
    }
}
