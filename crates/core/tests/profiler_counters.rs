//! Profiler counter reconciliation: the hardware-counter records attached
//! to kernel launches must agree with the engine's own timing accounting
//! (`Timing::busy_ns`/`validate`), the bandwidth floor, and — for one tiny
//! hand-computed kernel — exact pinned values.

use proptest::prelude::*;
use snp_bitmat::BitMatrix;
use snp_core::{group_geometry, tile_program, EngineOptions, ExecMode, GpuEngine, MixtureStrategy};
use snp_gpu_model::config::{Algorithm, ProblemShape};
use snp_gpu_model::{devices, InstrClass};
use snp_gpu_sim::host::{Gpu, KernelCost};
use snp_gpu_sim::{program_counters, simulate_core, Block, Instr, Program, Traffic};

fn gpu_by_index(i: usize) -> snp_gpu_model::DeviceSpec {
    let all = devices::all_gpus();
    all[i % all.len()].clone()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Per-launch profiles reconcile with the run's timing: the summed
    /// launch wall times reproduce `Timing::kernel_ns` (within per-launch
    /// rounding), every launch respects its bandwidth floor, achieved
    /// bandwidth never exceeds the device peak, and the timing passes its
    /// own phase-sum validation.
    #[test]
    fn profiles_reconcile_with_timing(
        dev_i in 0usize..3,
        m in 16usize..160,
        n in 16usize..160,
        k_words in 2usize..24,
        alg_i in 0usize..3,
    ) {
        let dev = gpu_by_index(dev_i);
        let alg = [
            Algorithm::LinkageDisequilibrium,
            Algorithm::IdentitySearch,
            Algorithm::MixtureAnalysis,
        ][alg_i];
        let engine = GpuEngine::new(dev.clone()).with_options(EngineOptions {
            mode: ExecMode::TimingOnly,
            profile: true,
            ..Default::default()
        });
        let run = engine
            .run_shape(ProblemShape { m, n, k_words }, alg)
            .unwrap();
        prop_assert!(run.timing.validate().is_ok(), "{:?}", run.timing.validate());

        let profiles = run.kernel_profiles.as_ref().expect("profiling was on");
        prop_assert_eq!(profiles.len(), run.passes);
        let total: f64 = profiles.iter().map(|p| p.time.total_ns).sum();
        // Each launch's duration is rounded to whole virtual ns on the
        // event timeline, so the sums agree within one ns per launch.
        prop_assert!(
            (total - run.timing.kernel_ns as f64).abs() <= run.passes as f64 + 1.0,
            "profiles sum {total} vs kernel_ns {}", run.timing.kernel_ns
        );
        prop_assert!(run.timing.kernel_ns <= run.timing.busy_ns());

        let peak_bw = dev.memory.effective_bandwidth_bytes_s();
        for p in profiles {
            // The launch can never beat its own bandwidth bound.
            prop_assert!(p.time.total_ns >= p.time.memory_ns);
            prop_assert!(p.time.total_ns >= p.time.compute_ns);
            prop_assert!(p.achieved_bandwidth_bytes_s() <= peak_bw * (1.0 + 1e-9));
            if p.memory_bound() {
                // Bandwidth-bound launches sit on the memory floor (plus
                // the fixed launch overhead).
                let floor = p.time.memory_ns + dev.transfer.kernel_launch_ns as f64;
                prop_assert!((p.time.total_ns - floor).abs() < 1e-6);
            }
        }
    }

    /// Static per-pipeline issue counters and measured busy cycles never
    /// exceed the wall cycles of the detailed-engine run: no FU can be
    /// busier than the clock.
    #[test]
    fn fu_busy_cycles_bounded_by_wall(
        dev_i in 0usize..3,
        k_words in 2usize..32,
        alg_i in 0usize..3,
    ) {
        let dev = gpu_by_index(dev_i);
        let alg = [
            Algorithm::LinkageDisequilibrium,
            Algorithm::IdentitySearch,
            Algorithm::MixtureAnalysis,
        ][alg_i];
        let mixture = if dev.fused_andnot {
            MixtureStrategy::Direct
        } else {
            MixtureStrategy::PreNegate
        };
        let op = snp_core::compare_op(alg, mixture);
        let shape = ProblemShape { m: 256, n: 256, k_words };
        let cfg = snp_core::config_for(&dev, alg, shape);
        let geo = group_geometry(&dev, &cfg);
        let prog = tile_program(&dev, &cfg, op, k_words);
        let counters = program_counters(&dev, &prog);
        let det = simulate_core(&dev, &prog, geo.groups_per_core, 500_000_000).unwrap();

        let per_cluster_groups = cfg.groups_per_cluster as u64;
        for (p, &issue) in counters.issue_cycles_per_pipeline.iter().enumerate() {
            // One cluster serves `groups_per_cluster` groups' issue slots
            // serially on each pipeline; that work can't take less wall
            // time than it occupies the pipeline.
            prop_assert!(
                issue * per_cluster_groups <= det.cycles,
                "pipeline {p}: {} issue cycles/cluster vs {} wall",
                issue * per_cluster_groups,
                det.cycles
            );
            prop_assert!(det.pipeline_busy[p] <= det.cycles * dev.n_clusters as u64);
        }
        // The SNP tile kernel stages A conflict-free (DESIGN.md §4).
        prop_assert_eq!(counters.bank_conflict_replays, 0);
    }
}

/// A functional run with profiling enabled carries one profile per pass and
/// matches the timing-only accounting invariants.
#[test]
fn full_run_collects_profiles() {
    let dev = devices::gtx_980();
    let panel = BitMatrix::<u64>::from_fn(40, 512, |r, c| (r * 13 + c * 5) % 7 == 0);
    let run = GpuEngine::new(dev)
        .with_options(EngineOptions {
            profile: true,
            ..Default::default()
        })
        .ld_self(&panel)
        .unwrap();
    assert!(run.gamma.is_some());
    let profiles = run.kernel_profiles.expect("profiling was on");
    assert_eq!(profiles.len(), run.passes);
    assert!(profiles.iter().all(|p| p.time.total_ns > 0.0));
}

/// Profiling stays off (and free) by default.
#[test]
fn profiles_absent_by_default() {
    let dev = devices::titan_v();
    let run = GpuEngine::new(dev)
        .run_shape(
            ProblemShape {
                m: 64,
                n: 64,
                k_words: 4,
            },
            Algorithm::LinkageDisequilibrium,
        )
        .unwrap();
    assert!(run.kernel_profiles.is_none());
}

/// Pinned values for one hand-computed tiny kernel on the GTX 980
/// (N_T = 32; popc 8 lanes → 4 issue cycles, add/logic 32 lanes → 1,
/// lsu 8 lanes → 4):
///
/// ```text
/// once:       load_global            → lsu 4
/// loop × 10:  load_shared (2-way)    → lsu 4 × 2 = 8 per trip
///             popc                   → popc 4 per trip
///             int_add                → add 1 per trip
/// ```
#[test]
fn pinned_counters_for_hand_computed_kernel() {
    let dev = devices::gtx_980();
    let prog = Program::new(vec![
        Block::once(vec![Instr::load_global(0, &[])]),
        Block::looped(
            10,
            vec![
                Instr::load_shared(1, &[0], 2),
                Instr::arith(InstrClass::Popc, 2, &[1]),
                Instr::arith(InstrClass::IntAdd, 3, &[3, 2]),
            ],
        ),
    ]);

    let c = program_counters(&dev, &prog);
    assert_eq!(c.instrs_per_group, 31); // 1 + 10 × 3
    assert_eq!(c.bank_conflict_replays, 10); // (2 − 1) replay × 10 trips
                                             // Pipelines on the GTX 980 are [add, logic, popc, lsu].
    assert_eq!(c.issue_cycles_per_pipeline, vec![10, 0, 40, 84]);

    // The same program through the host API: the event's profile carries
    // the detailed engine's measured counters.
    let gpu = Gpu::new(dev.clone());
    let q = gpu.create_queue();
    let cost = KernelCost::Detailed {
        program: prog,
        groups_per_core: 1,
        active_cores: 16,
        traffic: Traffic {
            read_bytes: 1 << 20,
            write_bytes: 4096,
        },
    };
    let ev = gpu.enqueue_kernel_timed(q, &cost, &[]).unwrap();
    gpu.finish_all();
    let p = gpu.kernel_profile(ev).expect("kernel event has a profile");
    assert_eq!(p.total_instrs, Some(31));
    assert_eq!(p.groups_per_core, Some(1));
    assert_eq!(p.active_cores, 16);
    // One resident group occupies one cluster; measured busy equals the
    // static issue counters exactly.
    assert_eq!(p.pipeline_busy, Some(vec![10, 0, 40, 84]));
    assert_eq!(p.traffic.total(), (1 << 20) + 4096);
    // Wall cycles cover at least the busiest pipeline.
    assert!(p.core_cycles >= 84.0);
    assert!(p.time.total_ns >= p.time.memory_ns);
}
