//! Matrix-unit lowering equivalence: the MMA-tiled kernel plan must be a
//! pure performance transformation. On every algorithm and every shape the
//! TC100's matrix-unit path produces γ counts bit-identical to the
//! scalar-popcount plan (the oracle), and both match the host reference.
//! A pinned-value test covers the MMA issue-cycle counters in the style of
//! `profiler_counters.rs`.

use proptest::prelude::*;
use snp_bitmat::{reference_gamma, BitMatrix};
use snp_core::{compare_op, config_for, lowering_for, tile_program, GpuEngine, Lowering};
use snp_gpu_model::config::{Algorithm, ProblemShape};
use snp_gpu_model::{devices, InstrClass};
use snp_gpu_sim::{program_counters, simulate_core, Block, Instr, Program};

/// The TC100 with its matrix unit disabled: identical memory system and
/// scalar pipelines, so every plan lowers to the scalar-popcount oracle.
fn tc100_scalar_oracle() -> snp_gpu_model::DeviceSpec {
    let mut dev = devices::tc100();
    dev.matrix_unit = None;
    dev.pipelines
        .retain(|p| !p.classes.contains(&InstrClass::Mma));
    dev.validate().expect("oracle device is consistent");
    dev
}

fn random_panel(rows: usize, words: usize, seed: u64) -> BitMatrix<u64> {
    BitMatrix::<u64>::from_fn(rows, words * 64, |r, c| {
        let x = (r as u64)
            .wrapping_mul(0x9E3779B97F4A7C15)
            .wrapping_add((c as u64).wrapping_mul(0xD1B54A32D192ED03))
            .wrapping_add(seed);
        (x ^ (x >> 31)).wrapping_mul(0xBF58476D1CE4E5B9) & 1 == 1
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// MMA plan ≡ scalar plan ≡ host reference, on all three algorithms
    /// over random shapes and seeds.
    #[test]
    fn mma_and_scalar_plans_are_bit_identical(
        m in 9usize..120,
        n in 9usize..120,
        words in 1usize..12,
        alg_i in 0usize..3,
        seed in 0u64..1u64 << 48,
    ) {
        let alg = [
            Algorithm::LinkageDisequilibrium,
            Algorithm::IdentitySearch,
            Algorithm::MixtureAnalysis,
        ][alg_i];
        let a = random_panel(m, words, seed);
        let b = if alg == Algorithm::LinkageDisequilibrium {
            a.clone()
        } else {
            random_panel(n, words, seed ^ 0x5DEECE66D)
        };

        let mma_engine = GpuEngine::new(devices::tc100());
        let scalar_engine = GpuEngine::new(tc100_scalar_oracle());
        let got = mma_engine.compare(&a, &b, alg).unwrap();
        let want = scalar_engine.compare(&a, &b, alg).unwrap();

        let got = got.gamma.expect("full mode returns gamma");
        let want = want.gamma.expect("full mode returns gamma");
        prop_assert_eq!(got.first_mismatch(&want), None, "mma vs scalar plan");

        let op = compare_op(alg, mma_engine.options().mixture);
        let reference = reference_gamma(&a, &b, op);
        prop_assert_eq!(got.first_mismatch(&reference), None, "mma vs host reference");
    }
}

/// At the preset-aligned FastID shape the TC100 genuinely takes the
/// matrix-unit lowering (the proptest's random shapes may fall back), and
/// the result is still exact.
#[test]
fn aligned_fastid_run_uses_mma_lowering_and_stays_exact() {
    let dev = devices::tc100();
    let cfg = config_for(
        &dev,
        Algorithm::IdentitySearch,
        ProblemShape {
            m: 64,
            n: 2048,
            k_words: 32,
        },
    );
    assert_eq!(lowering_for(&dev, &cfg), Lowering::Mma);

    let queries = random_panel(64, 16, 7);
    let database = random_panel(2048, 16, 11);
    let run = GpuEngine::new(dev)
        .identity_search(&queries, &database)
        .unwrap();
    let want = reference_gamma(&queries, &database, snp_bitmat::CompareOp::Xor);
    assert_eq!(run.gamma.unwrap().first_mismatch(&want), None);
}

/// Pinned issue-cycle counters for a hand-computed MMA kernel on the TC100
/// (N_T = 32; add 16 lanes → 2 issue cycles, lsu 8 lanes → 4, mma 8 lanes
/// → 4):
///
/// ```text
/// once:       load_global            → lsu 4
/// loop × 10:  load_shared            → lsu 4 per trip
///             mma (acc-carried)      → mma 4 per trip
///             int_add                → add 2 per trip
/// ```
#[test]
fn pinned_counters_for_hand_computed_mma_kernel() {
    let dev = devices::tc100();
    let prog = Program::new(vec![
        Block::once(vec![Instr::load_global(0, &[])]),
        Block::looped(
            10,
            vec![
                Instr::load_shared(1, &[0], 1),
                Instr::arith(InstrClass::Mma, 2, &[1, 0, 2]),
                Instr::arith(InstrClass::IntAdd, 3, &[3, 2]),
            ],
        ),
    ]);

    let c = program_counters(&dev, &prog);
    assert_eq!(c.instrs_per_group, 31); // 1 + 10 × 3
    assert_eq!(c.bank_conflict_replays, 0);
    // Pipelines on the TC100 are [add, logic, popc, lsu, mma].
    assert_eq!(c.issue_cycles_per_pipeline, vec![20, 0, 0, 44, 40]);

    // The detailed engine agrees: with one resident group per cluster the
    // measured busy cycles equal the static issue counters exactly.
    let det = simulate_core(&dev, &prog, 1, 1_000_000).unwrap();
    assert_eq!(det.pipeline_busy, vec![20, 0, 0, 44, 40]);
}

/// The real TC100 MMA tile program's per-trip counters, pinned: 16 B loads
/// plus 1 A load on the lsu (4 issue cycles each), 64 mma fragments (4
/// issue cycles each), 2 scalar bookkeeping ops on the add pipe.
#[test]
fn pinned_counters_for_the_tc100_tile_program() {
    let dev = devices::tc100();
    let cfg = config_for(
        &dev,
        Algorithm::LinkageDisequilibrium,
        ProblemShape {
            m: 10_000,
            n: 10_000,
            k_words: 1000,
        },
    );
    assert_eq!(lowering_for(&dev, &cfg), Lowering::Mma);
    // k = 4 words is one fragment trip of one slab.
    let prog = tile_program(&dev, &cfg, snp_bitmat::CompareOp::And, 4);
    let c = program_counters(&dev, &prog);
    let body = &prog.blocks[1].instrs;
    let mma = body.iter().filter(|i| i.class == InstrClass::Mma).count() as u64;
    assert_eq!(mma, 64);
    // Per trip: mma pipe 64 × 4 = 256 issue cycles — the dominant term the
    // macro model charges per fragment trip.
    let mma_pipe = dev
        .pipeline_index_for(InstrClass::Mma)
        .expect("TC100 has an mma pipeline");
    assert_eq!(c.issue_cycles_per_pipeline[mma_pipe], 256);
    assert_eq!(c.bank_conflict_replays, 0);
}
