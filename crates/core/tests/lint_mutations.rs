//! Seeded mutation tests for the deep dataflow rules: deleting a def
//! (V110), orphaning a write (V111), and inflating a register's live range
//! (V112) in a real paper-kernel program must each produce the expected
//! diagnostic. The mutation site is chosen by a fixed-seed LCG over the
//! eligible sites so the test is deterministic but not hand-pinned to one
//! instruction index.

use snp_core::{compare_op, config_for, Algorithm, KernelPlan, MixtureStrategy};
use snp_gpu_model::config::ProblemShape;
use snp_gpu_model::devices;
use snp_gpu_sim::isa::{Program, Reg};
use snp_verify::{lint_dataflow, PlanFacts, Severity};

const SEED: u64 = 0x5eed_0008;

fn lcg_pick(len: usize) -> usize {
    assert!(len > 0, "no eligible mutation sites");
    let x = SEED
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    ((x >> 33) % len as u64) as usize
}

/// The paper's LD kernel on GTX 980, sized past `k_c` so the k panel splits
/// into multiple slabs (prologue/body block pairs) — the shape every
/// cross-block dataflow mutation needs.
fn gtx_ld_facts() -> PlanFacts {
    let dev = devices::by_name("GTX 980").unwrap();
    let shape = ProblemShape {
        m: 2048,
        n: 2048,
        k_words: 1024,
    };
    let cfg = config_for(&dev, Algorithm::LinkageDisequilibrium, shape);
    let op = compare_op(Algorithm::LinkageDisequilibrium, MixtureStrategy::Direct);
    let plan = KernelPlan::new(&dev, &cfg, op, shape.m, shape.n, shape.k_words);
    plan.facts(&dev, shape.k_words)
}

fn assert_clean(facts: &PlanFacts, dev_name: &str) {
    let dev = devices::by_name(dev_name).unwrap();
    let report = lint_dataflow(&dev, facts);
    assert!(
        !report
            .diagnostics
            .iter()
            .any(|d| d.severity >= Severity::Warning),
        "unmutated paper kernel must lint clean: {report:?}"
    );
}

/// Sites where deleting the instruction orphans a register's block-local
/// defs: the deleted instruction is the register's only def in its block,
/// another instruction in the same block reads it (not as a pure
/// self-accumulator), no earlier block defines it, and a later block does —
/// exactly the shape whose first-trip reads become use-before-def.
fn v110_sites(prog: &Program) -> Vec<(usize, usize, Reg)> {
    let mut sites = Vec::new();
    for (bi, block) in prog.blocks.iter().enumerate() {
        if !block.executes() {
            continue;
        }
        for (ii, instr) in block.instrs.iter().enumerate() {
            let Some(r) = instr.dst else { continue };
            let only_def_here = block
                .instrs
                .iter()
                .enumerate()
                .all(|(j, o)| j == ii || o.dst != Some(r));
            let read_by_other = block
                .instrs
                .iter()
                .any(|o| o.dst != Some(r) && o.srcs.contains(&r));
            let earlier_def = prog.blocks[..bi]
                .iter()
                .filter(|b| b.executes())
                .any(|b| b.instrs.iter().any(|o| o.dst == Some(r)));
            let later_def = prog.blocks[bi + 1..]
                .iter()
                .filter(|b| b.executes())
                .any(|b| b.instrs.iter().any(|o| o.dst == Some(r)));
            if only_def_here && read_by_other && !earlier_def && later_def {
                sites.push((bi, ii, r));
            }
        }
    }
    sites
}

#[test]
fn deleting_a_def_is_detected_as_v110() {
    let mut facts = gtx_ld_facts();
    assert_clean(&facts, "GTX 980");

    let sites = v110_sites(&facts.program);
    let (bi, ii, reg) = sites[lcg_pick(sites.len())];
    facts.program.blocks[bi].instrs.remove(ii);

    let dev = devices::by_name("GTX 980").unwrap();
    let report = lint_dataflow(&dev, &facts);
    let hit = report
        .with_code("V110-READ-BEFORE-WRITE")
        .any(|d| d.severity == Severity::Error && d.message.contains(&format!("r{reg}")));
    assert!(
        hit,
        "deleting the def of r{reg} at block {bi} instr {ii} must raise a V110 error: {report:?}"
    );
}

#[test]
fn orphaning_a_write_is_detected_as_v111() {
    let mut facts = gtx_ld_facts();
    assert_clean(&facts, "GTX 980");

    // Redirect one arithmetic write to a fresh register nothing reads.
    let fresh = facts.program.reg_count() as Reg;
    let sites: Vec<(usize, usize)> = facts
        .program
        .blocks
        .iter()
        .enumerate()
        .filter(|(_, b)| b.executes())
        .flat_map(|(bi, b)| {
            b.instrs
                .iter()
                .enumerate()
                .filter(|(_, i)| i.dst.is_some())
                .map(move |(ii, _)| (bi, ii))
        })
        .collect();
    let (bi, ii) = sites[lcg_pick(sites.len())];
    facts.program.blocks[bi].instrs[ii].dst = Some(fresh);

    let dev = devices::by_name("GTX 980").unwrap();
    let report = lint_dataflow(&dev, &facts);
    let hit = report
        .with_code("V111-DEAD-WRITE")
        .any(|d| d.severity == Severity::Warning && d.message.contains(&format!("r{fresh}")));
    assert!(
        hit,
        "orphaning the write at block {bi} instr {ii} onto r{fresh} must raise a V111 \
         dead-write warning: {report:?}"
    );
}

#[test]
fn inflating_live_ranges_is_detected_as_v112() {
    // Vega 64's LD plan allocates more registers than one thread gets at
    // the configured occupancy — the gap only stays benign while the *live*
    // pressure fits. Stretch every register's live range to program end and
    // the pressure must escalate to a warning.
    let dev = devices::by_name("Vega 64").unwrap();
    let shape = ProblemShape {
        m: 64,
        n: 4096,
        k_words: 256,
    };
    let cfg = config_for(&dev, Algorithm::LinkageDisequilibrium, shape);
    let op = compare_op(Algorithm::LinkageDisequilibrium, MixtureStrategy::Direct);
    let plan = KernelPlan::new(&dev, &cfg, op, shape.m, shape.n, shape.k_words);
    let mut facts = plan.facts(&dev, shape.k_words);
    assert_clean(&facts, "Vega 64");

    let reg_count = facts.program.reg_count();
    let avail = dev.regs_per_thread_at_occupancy(facts.groups_per_core) as usize;
    assert!(
        reg_count > avail,
        "precondition: the TC100 LD plan ({reg_count} regs) must over-allocate the \
         {avail} registers available at {} groups",
        facts.groups_per_core
    );

    // One appended store reading every register keeps them all live to the
    // end of the program.
    let all: Vec<Reg> = (0..reg_count as Reg).collect();
    let last = facts.program.blocks.len() - 1;
    facts.program.blocks[last]
        .instrs
        .push(snp_gpu_sim::isa::Instr::store_global(&all));

    let report = lint_dataflow(&dev, &facts);
    let hit = report
        .with_code("V112-LIVE-PRESSURE")
        .any(|d| d.severity == Severity::Warning);
    assert!(
        hit,
        "inflating every live range past the {avail} available registers must raise a \
         V112 pressure warning: {report:?}"
    );
}
