//! Roofline analysis and analytical-model drift detection.
//!
//! The simulator attaches a hardware-counter record
//! ([`KernelProfile`](snp_gpu_sim::KernelProfile)) to every kernel launch;
//! this module turns those raw counters into the two derived reports the
//! paper's evaluation methodology implies:
//!
//! * **Roofline** (§VI): each algorithm × device cell is placed on the
//!   device's roofline — arithmetic intensity in word-ops per byte against
//!   the compute peak (Eqs. 4–7, the dotted lines of Fig. 5) and the
//!   effective DRAM bandwidth — and classified compute- or memory-bound.
//! * **Model drift**: four independently produced times for the same
//!   launch are reconciled — the Eq. 4–7 *analytical* prediction from
//!   `gpu-model`, the *macro-engine* estimate (static program structure),
//!   the *critical-path* prediction from `snp-verify`'s V113 dataflow
//!   analysis (latency-weighted dependence chains, DESIGN.md §14), and the
//!   *detailed-engine* measurement (cycle-stepped simulation).
//!   Pairs diverging beyond their tolerance ([`ANALYTIC_DRIFT_TOLERANCE`],
//!   [`ENGINE_DRIFT_TOLERANCE`], [`CRITPATH_DRIFT_TOLERANCE`]) are flagged;
//!   CI fails on any flagged cell, so the models cannot silently drift
//!   apart as the codebase grows.
//!
//! Counter definitions, the roofline construction, and the tolerance
//! rationale are documented in DESIGN.md §11.

use snp_gpu_model::config::{Algorithm, ProblemShape};
use snp_gpu_model::peak::{effective_peak_for_cores, matrix_unit_peak, peak_for_cores};
use snp_gpu_model::DeviceSpec;
use snp_gpu_sim::{program_counters, simulate_core};

use crate::autoconf::{compare_op, word_op_kind};
use crate::engine::{EngineError, EngineOptions, ExecMode, GpuEngine};
use crate::kernel::{group_geometry, tile_program, KernelPlan};

/// Process-wide profiler metrics (in the `snp-trace` registry).
pub mod metrics {
    use snp_trace::{LazyCounter, LazyHistogram};

    /// Algorithm × device cells profiled.
    pub static CELLS: LazyCounter = LazyCounter::new("sim.profile.cells");
    /// Cells whose three-way drift exceeded the tolerance.
    pub static DRIFT_VIOLATIONS: LazyCounter = LazyCounter::new("sim.profile.drift_violations");
    /// Per-chunk kernel durations across engine runs, in virtual ns.
    pub static KERNEL_CHUNK_NS: LazyHistogram = LazyHistogram::new("sim.profile.kernel_chunk_ns");
}

/// Maximum tolerated relative divergence between the Eq. 4–7 analytical
/// prediction and either engine, as `|a − b| / max(a, b)`.
///
/// Rationale (DESIGN.md §11): the analytical leg prices only the
/// bottleneck arithmetic at peak issue rate, while the engines additionally
/// charge loads, address bookkeeping and standalone NOTs — the same gap the
/// paper's Fig. 5 shows between achieved throughput and the dotted
/// analytical roofs. Measured on the 3 × 3 algorithm × device matrix the
/// divergence is 0.5–40% (worst: GTX 980 LD, whose small register tile
/// amortizes loads least); 0.45 flags any further regression without
/// flagging the known structural gap.
pub const ANALYTIC_DRIFT_TOLERANCE: f64 = 0.45;

/// Maximum tolerated relative divergence between the macro-engine estimate
/// and the detailed-engine measurement of the same launch.
///
/// These two model the same instruction stream, so they must agree tightly:
/// measured divergence across the matrix is ≤ 0.05% (the macro engine's
/// drain-latency approximation). 2% catches any real modeling drift.
pub const ENGINE_DRIFT_TOLERANCE: f64 = 0.02;

/// Maximum tolerated relative divergence between `snp-verify`'s static
/// critical-path prediction (V113) and the detailed-engine measurement.
///
/// The critical-path leg models the same per-block `max(issue, chain)`
/// structure as the macro engine but weights dependence edges with the full
/// completion latency (bank-conflict replays included) and carries chains
/// across trips and blocks; it omits the engines' drain/arbitration detail.
/// Measured across the 12-cell matrix the divergence is under 2%; 5%
/// catches real drift without flagging the structural approximation.
pub const CRITPATH_DRIFT_TOLERANCE: f64 = 0.05;

/// Cycle budget for the detailed-engine drift leg. One tile job at the
/// profiling shapes runs well under a million cycles; the budget only
/// guards against runaway programs.
const DETAILED_BUDGET: u64 = 500_000_000;

/// Busy-vs-wall utilization of one functional-unit pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct FuUtilization {
    /// Pipeline name (`popc`, `alu`, `valu`, …).
    pub pipeline: String,
    /// Issue cycles the kernel places on this pipeline per *cluster* per
    /// tile job (static count × resident groups per cluster).
    pub busy_cycles: u64,
    /// Busy cycles from the detailed engine's cycle-stepped run, summed
    /// over one core's clusters — the measured counterpart
    /// (≈ `busy_cycles × n_clusters`, since clusters run in lockstep).
    pub detailed_busy_cycles: u64,
    /// `busy_cycles / wall_cycles` of one tile job; the bottleneck
    /// pipeline sits near 1.0 on compute-bound cells.
    pub utilization: f64,
}

/// Achieved occupancy in resident thread groups per core.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Occupancy {
    /// Groups the configuration makes resident per core.
    pub groups_per_core: u32,
    /// The latency-hiding target the device model prescribes
    /// (`chosen_occupancy_groups`).
    pub target_groups: u32,
    /// `groups_per_core / target_groups`.
    pub achieved: f64,
}

/// Achieved vs peak global-memory bandwidth over the cell's kernels.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BandwidthReport {
    /// Bytes the launches were charged for.
    pub bytes_moved: u64,
    /// Bytes per second over the summed kernel wall time.
    pub achieved_bytes_s: f64,
    /// The device's effective DRAM peak.
    pub peak_bytes_s: f64,
    /// `achieved / peak`.
    pub fraction: f64,
}

/// Which roof bounds a cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RooflineBound {
    /// Arithmetic intensity right of the ridge: compute peak binds.
    Compute,
    /// Left of the ridge: DRAM bandwidth binds.
    Memory,
}

impl RooflineBound {
    /// Stable lower-case label (`"compute"` / `"memory"`).
    pub fn label(&self) -> &'static str {
        match self {
            RooflineBound::Compute => "compute",
            RooflineBound::Memory => "memory",
        }
    }
}

/// The cell's position on the device roofline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Roofline {
    /// Word-ops per byte of global traffic.
    pub arithmetic_intensity: f64,
    /// The ridge point `compute_peak / bandwidth_peak`, in word-ops/byte —
    /// for a matrix-unit plan this is the matrix-unit ridge.
    pub ridge: f64,
    /// The compute peak pricing the plan, word-ops/s: the Eq. 4–7 scalar
    /// peak for scalar plans, the matrix-unit peak for MMA plans (both at
    /// the active core count).
    pub compute_peak_word_ops_s: f64,
    /// Effective DRAM bandwidth, bytes/s.
    pub memory_peak_bytes_s: f64,
    /// The second, higher compute ridge contributed by the device's 1-bit
    /// matrix unit, word-ops/byte at the active core count. `None` on
    /// devices without a matrix unit; on devices with one it is present for
    /// scalar and MMA plans alike (the roofline has both roofs either way).
    pub matrix_unit_ridge: Option<f64>,
    /// The binding roof.
    pub bound: RooflineBound,
}

/// Relative divergence `|a − b| / max(a, b)` (0 when both are 0).
pub fn relative_drift(a: f64, b: f64) -> f64 {
    let m = a.max(b);
    if m <= 0.0 {
        0.0
    } else {
        (a - b).abs() / m
    }
}

/// Three-way reconciliation of one cell's kernel time, launch overhead
/// excluded from every leg so the comparison is between the *models*, not
/// the fixed launch constant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftReport {
    /// Eq. 4–7 analytical prediction: word-ops at the peak rate of the
    /// active cores, floored by the bandwidth bound.
    pub analytic_ns: f64,
    /// Macro-engine estimate from static program structure.
    pub macro_ns: f64,
    /// `snp-verify` V113 static critical-path prediction (latency-weighted
    /// dependence chains vs per-pipe issue, per block).
    pub critpath_ns: f64,
    /// Detailed-engine measurement (cycle-stepped tile job × jobs).
    pub detailed_ns: f64,
    /// `relative_drift(analytic, macro)`, judged against
    /// [`ANALYTIC_DRIFT_TOLERANCE`].
    pub analytic_vs_macro: f64,
    /// `relative_drift(macro, detailed)`, judged against
    /// [`ENGINE_DRIFT_TOLERANCE`].
    pub macro_vs_detailed: f64,
    /// `relative_drift(analytic, detailed)`, judged against
    /// [`ANALYTIC_DRIFT_TOLERANCE`].
    pub analytic_vs_detailed: f64,
    /// `relative_drift(critpath, detailed)`, judged against
    /// [`CRITPATH_DRIFT_TOLERANCE`].
    pub critpath_vs_detailed: f64,
    /// Tolerance applied to the analytic-vs-engine pairs.
    pub analytic_tolerance: f64,
    /// Tolerance applied to the macro-vs-detailed pair.
    pub engine_tolerance: f64,
    /// Tolerance applied to the critpath-vs-detailed pair.
    pub critpath_tolerance: f64,
}

impl DriftReport {
    fn new(analytic_ns: f64, macro_ns: f64, critpath_ns: f64, detailed_ns: f64) -> DriftReport {
        DriftReport {
            analytic_ns,
            macro_ns,
            critpath_ns,
            detailed_ns,
            analytic_vs_macro: relative_drift(analytic_ns, macro_ns),
            macro_vs_detailed: relative_drift(macro_ns, detailed_ns),
            analytic_vs_detailed: relative_drift(analytic_ns, detailed_ns),
            critpath_vs_detailed: relative_drift(critpath_ns, detailed_ns),
            analytic_tolerance: ANALYTIC_DRIFT_TOLERANCE,
            engine_tolerance: ENGINE_DRIFT_TOLERANCE,
            critpath_tolerance: CRITPATH_DRIFT_TOLERANCE,
        }
    }

    /// The worst pairwise divergence.
    pub fn max_drift(&self) -> f64 {
        self.analytic_vs_macro
            .max(self.macro_vs_detailed)
            .max(self.analytic_vs_detailed)
            .max(self.critpath_vs_detailed)
    }

    /// Whether every pair agrees within its tolerance.
    pub fn within_tolerance(&self) -> bool {
        self.analytic_vs_macro <= self.analytic_tolerance
            && self.analytic_vs_detailed <= self.analytic_tolerance
            && self.macro_vs_detailed <= self.engine_tolerance
            && self.critpath_vs_detailed <= self.critpath_tolerance
    }
}

/// The full profiler report for one algorithm × device cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellProfile {
    /// Device name.
    pub device: String,
    /// Algorithm profiled.
    pub algorithm: Algorithm,
    /// Problem shape the cell ran.
    pub shape: ProblemShape,
    /// Kernel launches the engine issued.
    pub passes: usize,
    /// Summed kernel wall time from event profiling, ns.
    pub kernel_ns: u64,
    /// Dynamic instructions per thread group per tile job, by class
    /// (first-appearance order).
    pub instrs_by_class: Vec<(String, u64)>,
    /// Per-pipeline busy/utilization counters.
    pub fu: Vec<FuUtilization>,
    /// Shared-memory bank-conflict replays per group per tile job (the SNP
    /// kernel is conflict-free by construction, so a non-zero value is a
    /// regression signal).
    pub bank_conflict_replays: u64,
    /// Wall cycles of one tile job on one core (detailed engine).
    pub job_cycles: u64,
    /// Occupancy achieved vs the latency-hiding target.
    pub occupancy: Occupancy,
    /// Achieved vs peak bandwidth.
    pub bandwidth: BandwidthReport,
    /// Position on the device roofline.
    pub roofline: Roofline,
    /// Three-way model reconciliation.
    pub drift: DriftReport,
}

/// Profiles one algorithm × device cell at `shape`: runs the full engine
/// pipeline timing-only with per-launch profiling on, re-derives the static
/// counters from the tile program, runs the detailed engine on one tile
/// job, and reconciles the three model legs.
pub fn profile_cell(
    dev: &DeviceSpec,
    algorithm: Algorithm,
    shape: ProblemShape,
) -> Result<CellProfile, EngineError> {
    let opts = EngineOptions {
        mode: ExecMode::TimingOnly,
        profile: true,
        ..Default::default()
    };
    let run = GpuEngine::new(dev.clone())
        .with_options(opts)
        .run_shape(shape, algorithm)?;
    let launches = run.kernel_profiles.as_deref().unwrap_or(&[]);

    let op = compare_op(algorithm, opts.mixture);
    let kind = word_op_kind(op);
    let cfg = run.config;
    let geo = group_geometry(dev, &cfg);
    let prog = tile_program(dev, &cfg, op, shape.k_words);
    let counters = program_counters(dev, &prog);

    // One whole-shape launch plan: the representative the drift legs and
    // the roofline are computed against (per-pass chunking only splits the
    // same work across launches).
    let plan = KernelPlan::new(dev, &cfg, op, shape.m, shape.n, shape.k_words);
    let per_job_cycles = plan.core_cycles / plan.jobs_per_core as f64;

    // Detailed leg: cycle-step one tile job at the configured occupancy.
    let det = simulate_core(dev, &prog, geo.groups_per_core, DETAILED_BUDGET)
        .map_err(|_| EngineError::Device(snp_gpu_sim::SimError::DetailedBudget))?;

    let fu: Vec<FuUtilization> = dev
        .pipelines
        .iter()
        .enumerate()
        .map(|(p, spec)| {
            let busy = counters.issue_cycles_per_pipeline[p] * cfg.groups_per_cluster as u64;
            FuUtilization {
                pipeline: spec.name.clone(),
                busy_cycles: busy,
                detailed_busy_cycles: det.pipeline_busy.get(p).copied().unwrap_or(0),
                utilization: busy as f64 / per_job_cycles.max(1.0),
            }
        })
        .collect();

    let target_groups = dev.chosen_occupancy_groups();
    let occupancy = Occupancy {
        groups_per_core: geo.groups_per_core,
        target_groups,
        achieved: geo.groups_per_core as f64 / target_groups.max(1) as f64,
    };

    let peak_bw = dev.memory.effective_bandwidth_bytes_s();
    let bytes_moved: u64 = launches.iter().map(|p| p.traffic.total()).sum();
    let kernel_s = run.timing.kernel_ns.max(1) as f64 * 1e-9;
    let achieved_bw = bytes_moved as f64 / kernel_s;
    let bandwidth = BandwidthReport {
        bytes_moved,
        achieved_bytes_s: achieved_bw,
        peak_bytes_s: peak_bw,
        fraction: achieved_bw / peak_bw,
    };

    // MMA plans are priced (and classified) against the matrix-unit peak;
    // scalar plans keep the Eq. 4–7 scalar roof even on matrix-unit devices.
    let compute_peak = if plan.lowering.uses_matrix_unit() {
        effective_peak_for_cores(dev, kind, plan.active_cores).word_ops_per_sec
    } else {
        peak_for_cores(dev, kind, plan.active_cores).word_ops_per_sec
    };
    let intensity = plan.word_ops as f64 / plan.traffic.total().max(1) as f64;
    let ridge = compute_peak / peak_bw;
    let matrix_unit_ridge = matrix_unit_peak(dev, kind).map(|p| {
        let cores = plan.active_cores.min(dev.n_cores) as f64;
        p.word_ops_per_sec_per_core * cores / peak_bw
    });
    let roofline = Roofline {
        arithmetic_intensity: intensity,
        ridge,
        compute_peak_word_ops_s: compute_peak,
        memory_peak_bytes_s: peak_bw,
        matrix_unit_ridge,
        bound: if intensity < ridge {
            RooflineBound::Memory
        } else {
            RooflineBound::Compute
        },
    };

    // Drift legs. Every leg takes `max(its compute estimate, the shared
    // bandwidth floor)` and excludes the launch constant, so disagreement
    // is purely model disagreement.
    let t = plan.time(dev);
    let memory_ns = t.memory_ns;
    let analytic_ns = (plan.word_ops as f64 / compute_peak * 1e9).max(memory_ns);
    let macro_ns = t.compute_ns.max(memory_ns);
    let det_compute_ns =
        dev.cycles_to_ns(det.cycles as f64 * plan.jobs_per_core as f64) / t.scaling_efficiency;
    let detailed_ns = det_compute_ns.max(memory_ns);
    // Critical-path leg: snp-verify's V113 per-block max(issue, chain)
    // prediction at the configured occupancy, scaled exactly like the
    // detailed leg so the comparison isolates the static model.
    let cp = snp_verify::critical_path(dev, &prog);
    let cp_cycles = cp.predicted_core_cycles(dev.n_clusters, geo.groups_per_core);
    let critpath_ns = (dev.cycles_to_ns(cp_cycles * plan.jobs_per_core as f64)
        / t.scaling_efficiency)
        .max(memory_ns);
    let drift = DriftReport::new(analytic_ns, macro_ns, critpath_ns, detailed_ns);

    metrics::CELLS.add(1);
    if !drift.within_tolerance() {
        metrics::DRIFT_VIOLATIONS.add(1);
    }

    Ok(CellProfile {
        device: dev.name.clone(),
        algorithm,
        shape,
        passes: run.passes,
        kernel_ns: run.timing.kernel_ns,
        instrs_by_class: counters
            .instrs_by_class
            .iter()
            .map(|&(c, n)| (c.to_string(), n))
            .collect(),
        fu,
        bank_conflict_replays: counters.bank_conflict_replays,
        job_cycles: det.cycles,
        occupancy,
        bandwidth,
        roofline,
        drift,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use snp_gpu_model::devices;

    fn shape() -> ProblemShape {
        ProblemShape {
            m: 2048,
            n: 2048,
            k_words: 256,
        }
    }

    #[test]
    fn all_cells_within_tolerance_and_compute_bound() {
        for dev in devices::all_gpus() {
            for alg in [
                Algorithm::LinkageDisequilibrium,
                Algorithm::IdentitySearch,
                Algorithm::MixtureAnalysis,
            ] {
                let cell = profile_cell(&dev, alg, shape()).unwrap();
                assert!(
                    cell.drift.within_tolerance(),
                    "{} / {}: max drift {:.3} (analytic {:.0} macro {:.0} detailed {:.0})",
                    dev.name,
                    alg.name(),
                    cell.drift.max_drift(),
                    cell.drift.analytic_ns,
                    cell.drift.macro_ns,
                    cell.drift.detailed_ns,
                );
                // Roofline classification is consistent with the measured
                // legs: a compute-bound cell's engine time is set by its
                // compute estimate, not the bandwidth floor.
                if cell.roofline.bound == RooflineBound::Compute {
                    assert!(
                        cell.drift.macro_ns >= cell.drift.analytic_ns * 0.99,
                        "{} / {}",
                        dev.name,
                        alg.name()
                    );
                }
                assert_eq!(cell.bank_conflict_replays, 0);
                assert!(cell.occupancy.groups_per_core > 0);
                assert!(cell.bandwidth.fraction > 0.0 && cell.bandwidth.fraction < 1.0);
            }
        }
    }

    #[test]
    fn bottleneck_pipeline_is_nearly_saturated() {
        // The whole point of the paper's configuration model: the chosen
        // config keeps the bottleneck FU busy. The bottleneck pipeline's
        // utilization must dominate and approach 1.
        let dev = devices::gtx_980();
        let cell = profile_cell(&dev, Algorithm::LinkageDisequilibrium, shape()).unwrap();
        let popc = cell.fu.iter().find(|f| f.pipeline == "popc").unwrap();
        assert!(
            popc.utilization > 0.85 && popc.utilization <= 1.0 + 1e-9,
            "popc utilization {:.3}",
            popc.utilization
        );
        // The detailed engine agrees the pipeline was busy.
        assert!(popc.detailed_busy_cycles > 0);
    }

    #[test]
    fn relative_drift_is_symmetric_and_bounded() {
        assert_eq!(relative_drift(0.0, 0.0), 0.0);
        assert_eq!(relative_drift(5.0, 5.0), 0.0);
        let d = relative_drift(80.0, 100.0);
        assert!((d - 0.2).abs() < 1e-12);
        assert_eq!(relative_drift(80.0, 100.0), relative_drift(100.0, 80.0));
        assert!(relative_drift(1.0, 1e9) < 1.0);
    }
}
