//! Multi-GPU execution — the paper's §VII direction: "our framework can be
//! extended to handle even larger problem sizes … on multi-GPU systems such
//! as the DGX-2 … the increased number of functional units (especially the
//! population count instruction) and the collective memory on the GPUs would
//! facilitate the storage of even larger datasets".
//!
//! The database (`n`) dimension is sharded across devices proportionally to
//! each device's sustained kernel rate, every shard runs the unmodified
//! single-device pipeline concurrently (device clocks are independent; the
//! host packs per-shard streams in parallel with device work exactly as in
//! the single-GPU case), and `γ` shards are concatenated. Sharding `n`
//! requires no inter-device communication beyond the ordinary host
//! transfers — each output column block depends on one shard only — which is
//! why it is the natural first multi-GPU decomposition (the paper's
//! "distributed-memory computing" concern arises only when `k` is split).

use snp_bitmat::{BitMatrix, CountMatrix};
use snp_cpu::CpuEngine;
use snp_faults::{FaultKind, FaultPlan};
use snp_gpu_model::config::Algorithm;
use snp_gpu_model::peak::peak;
use snp_gpu_model::DeviceSpec;

use snp_trace::{TimeDomain, Tracer};

use crate::autoconf::{compare_op, word_op_kind};
use crate::engine::{EngineError, EngineOptions, GpuEngine, RunReport, Timing};
use crate::recovery::metrics;

/// A multi-device engine: one [`GpuEngine`] per shard.
#[derive(Debug, Clone)]
pub struct MultiGpuEngine {
    devices: Vec<DeviceSpec>,
    options: EngineOptions,
    /// Optional per-device fault plan (index-aligned with `devices`);
    /// shorter vectors leave trailing devices fault-free.
    device_faults: Vec<Option<FaultPlan>>,
    tracer: Tracer,
}

/// Report of a sharded run.
#[derive(Debug, Clone)]
pub struct MultiRunReport {
    /// Concatenated `γ` (None in timing-only mode).
    pub gamma: Option<CountMatrix>,
    /// Per-device reports, in device order.
    pub per_device: Vec<RunReport>,
    /// Database rows assigned to each device.
    pub shard_rows: Vec<usize>,
    /// End-to-end time of the slowest device — the wall clock of the
    /// concurrent execution.
    pub end_to_end_ns: u64,
    /// Total word-ops across shards.
    pub word_ops: u128,
    /// Devices that were permanently lost mid-run (their shards were
    /// re-sharded onto survivors or finished on the CPU).
    pub lost_devices: Vec<usize>,
    /// Database rows that had to fail over off a lost device.
    pub failover_rows: usize,
}

impl MultiRunReport {
    /// Aggregate kernel throughput across all devices (word-ops per second
    /// of concurrent kernel execution, bounded by the slowest shard).
    pub fn aggregate_word_ops_per_sec(&self) -> f64 {
        self.word_ops as f64 / (self.end_to_end_ns.max(1) as f64 * 1e-9)
    }
}

impl MultiGpuEngine {
    /// Builds an engine over `devices` (at least one).
    pub fn new(devices: Vec<DeviceSpec>) -> Self {
        assert!(!devices.is_empty(), "need at least one device");
        MultiGpuEngine {
            devices,
            options: EngineOptions::default(),
            device_faults: Vec::new(),
            tracer: Tracer::disabled(),
        }
    }

    /// Overrides the per-shard engine options.
    pub fn with_options(mut self, options: EngineOptions) -> Self {
        self.options = options;
        self
    }

    /// Records every shard's spans — and the failover scheduler's own loss
    /// and re-shard spans — onto `tracer`. When the handle carries a
    /// [`snp_trace::QueryCtx`], all of them are attributed to that query.
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// Arms per-device fault plans (index-aligned with the device list; a
    /// shorter vector leaves the remaining devices fault-free). A device
    /// whose plan triggers permanent loss has its shard re-sharded onto the
    /// surviving devices; if every device is lost the run falls back to the
    /// CPU engine (when the recovery policy allows it).
    pub fn with_device_faults(mut self, plans: Vec<Option<FaultPlan>>) -> Self {
        self.device_faults = plans;
        self
    }

    /// The devices in use.
    pub fn devices(&self) -> &[DeviceSpec] {
        &self.devices
    }

    /// Splits `n` database rows across the devices proportionally to their
    /// sustained kernel rate for `algorithm` (a faster card gets a larger
    /// shard so all shards finish together). Every shard is non-empty while
    /// rows remain; granularity is one row.
    pub fn shard_rows(&self, n: usize, algorithm: Algorithm) -> Vec<usize> {
        let rates: Vec<f64> = self
            .devices
            .iter()
            .map(|d| {
                let kind = algorithm.word_op(false);
                peak(d, kind).word_ops_per_sec * d.memory.core_scaling_efficiency(d.n_cores)
            })
            .collect();
        let total: f64 = rates.iter().sum();
        let mut shards: Vec<usize> = rates
            .iter()
            .map(|r| (n as f64 * r / total) as usize)
            .collect();
        // Distribute the rounding remainder to the fastest devices.
        let assigned: usize = shards.iter().sum();
        let mut remainder = n - assigned;
        let mut order: Vec<usize> = (0..shards.len()).collect();
        order.sort_by(|&a, &b| rates[b].partial_cmp(&rates[a]).unwrap());
        let mut i = 0usize;
        while remainder > 0 {
            shards[order[i % order.len()]] += 1;
            remainder -= 1;
            i += 1;
        }
        shards
    }

    /// An empty per-device report used for zero-row and lost shards so
    /// `per_device` indices always line up with the device list.
    fn placeholder_report(
        &self,
        dev: &DeviceSpec,
        a: &BitMatrix<u64>,
        algorithm: Algorithm,
    ) -> RunReport {
        RunReport {
            gamma: None,
            timing: Timing::default(),
            word_ops: 0,
            passes: 0,
            config: crate::autoconf::config_for(
                dev,
                algorithm,
                snp_gpu_model::config::ProblemShape {
                    m: a.rows(),
                    n: 1,
                    k_words: 2 * a.words_per_row(),
                },
            ),
            kernel_word_ops_per_sec: 0.0,
            verify_report: None,
            recovery: None,
            kernel_profiles: None,
        }
    }

    /// Runs one shard `b[lo..lo+rows)` on device `dev`, optionally with a
    /// fault plan armed. Loss must surface here (never CPU-fallback inside
    /// the shard) so the multi-engine can fail over to other devices first.
    #[allow(clippy::too_many_arguments)]
    fn run_shard(
        &self,
        dev: &DeviceSpec,
        faults: Option<&FaultPlan>,
        a: &BitMatrix<u64>,
        b: &BitMatrix<u64>,
        lo: usize,
        rows: usize,
        algorithm: Algorithm,
    ) -> Result<RunReport, EngineError> {
        // Timing-only shards need only the shape, not a copy of the rows.
        let shard = match self.options.mode {
            crate::engine::ExecMode::Full => b.row_slice(lo, lo + rows),
            crate::engine::ExecMode::TimingOnly => {
                BitMatrix::zeros_padded(rows, b.cols(), b.words_per_row())
            }
        };
        let mut opts = self.options;
        if faults.is_some() {
            opts.recovery.cpu_fallback = false;
        }
        let mut engine = GpuEngine::new(dev.clone())
            .with_options(opts)
            .with_tracer(self.tracer.clone());
        if let Some(plan) = faults {
            engine = engine.with_fault_plan(plan.clone());
        }
        engine.compare(a, &shard, algorithm)
    }

    /// Runs `algorithm` on `a × bᵀ`, sharding `b` across the devices. A
    /// device whose fault plan declares permanent loss mid-shard has its
    /// rows re-sharded proportionally onto the surviving devices; if no
    /// device survives, the remaining rows run on the CPU engine (full mode
    /// with `recovery.cpu_fallback` enabled) or the loss surfaces as a
    /// typed error.
    pub fn compare(
        &self,
        a: &BitMatrix<u64>,
        b: &BitMatrix<u64>,
        algorithm: Algorithm,
    ) -> Result<MultiRunReport, EngineError> {
        let shard_rows = self.shard_rows(b.rows(), algorithm);
        let mut per_device = Vec::with_capacity(self.devices.len());
        let mut gamma = match self.options.mode {
            crate::engine::ExecMode::Full => Some(CountMatrix::zeros(a.rows(), b.rows())),
            crate::engine::ExecMode::TimingOnly => None,
        };
        let mut lo = 0usize;
        let mut end_to_end = 0u64;
        let mut word_ops = 0u128;
        let mut lost_devices: Vec<usize> = Vec::new();
        let mut orphaned: Vec<(usize, usize)> = Vec::new(); // (lo, rows)
        let mut lost_err: Option<EngineError> = None;
        for (di, (dev, &rows)) in self.devices.iter().zip(&shard_rows).enumerate() {
            if rows == 0 {
                per_device.push(self.placeholder_report(dev, a, algorithm));
                continue;
            }
            let faults = self.device_faults.get(di).and_then(|p| p.as_ref());
            match self.run_shard(dev, faults, a, b, lo, rows, algorithm) {
                Ok(run) => {
                    if let (Some(g), Some(shard_g)) = (gamma.as_mut(), run.gamma.as_ref()) {
                        for r in 0..a.rows() {
                            g.row_mut(r)[lo..lo + rows].copy_from_slice(shard_g.row(r));
                        }
                    }
                    end_to_end = end_to_end.max(run.timing.end_to_end_ns);
                    word_ops += run.word_ops;
                    per_device.push(run);
                }
                Err(e)
                    if e.device_fault()
                        .is_some_and(|f| f.kind == FaultKind::DeviceLoss) =>
                {
                    lost_devices.push(di);
                    orphaned.push((lo, rows));
                    lost_err = Some(e);
                    per_device.push(self.placeholder_report(dev, a, algorithm));
                }
                Err(e) => return Err(e),
            }
            lo += rows;
        }

        // Failover: re-shard every orphaned range onto the survivors
        // (fault-free — a lost device's plan governed its own stream only).
        let failover_rows: usize = orphaned.iter().map(|&(_, r)| r).sum();
        if failover_rows > 0 {
            metrics::FAILOVER_ROWS.add(failover_rows as u64);
            let sched_track = self
                .tracer
                .is_enabled()
                .then(|| self.tracer.track("multi · failover", TimeDomain::Virtual));
            if let Some(track) = sched_track {
                for &di in &lost_devices {
                    self.tracer.span_with(
                        track,
                        "fault",
                        format!("device lost: {}", self.devices[di].name),
                        end_to_end,
                        end_to_end,
                        vec![("device", self.devices[di].name.as_str().into())],
                    );
                }
            }
            let survivors: Vec<usize> = (0..self.devices.len())
                .filter(|i| !lost_devices.contains(i))
                .collect();
            if survivors.is_empty() {
                // Every device is gone: the CPU engine is the last resort.
                let full = self.options.mode == crate::engine::ExecMode::Full;
                if !(self.options.recovery.cpu_fallback && full) {
                    return Err(lost_err.expect("loss recorded with its error"));
                }
                let cpu = CpuEngine::new();
                let op = compare_op(algorithm, self.options.mixture);
                let g = gamma.as_mut().expect("full mode");
                for &(olo, orows) in &orphaned {
                    metrics::CPU_FALLBACK_CHUNKS.add(1);
                    let sub = cpu.gamma(a, &b.row_slice(olo, olo + orows), op);
                    for r in 0..a.rows() {
                        g.row_mut(r)[olo..olo + orows].copy_from_slice(sub.row(r));
                    }
                }
                if let Some(track) = sched_track {
                    self.tracer.span_with(
                        track,
                        "fallback",
                        "cpu fallback (all devices lost)",
                        end_to_end,
                        end_to_end,
                        vec![("rows", failover_rows.into())],
                    );
                }
            } else {
                let sub_engine = MultiGpuEngine::new(
                    survivors.iter().map(|&i| self.devices[i].clone()).collect(),
                )
                .with_options(self.options);
                for &(olo, orows) in &orphaned {
                    let splits = sub_engine.shard_rows(orows, algorithm);
                    let mut slo = olo;
                    for (si, &srows) in splits.iter().enumerate() {
                        if srows == 0 {
                            continue;
                        }
                        let dev = &self.devices[survivors[si]];
                        let run = self.run_shard(dev, None, a, b, slo, srows, algorithm)?;
                        if let (Some(g), Some(shard_g)) = (gamma.as_mut(), run.gamma.as_ref()) {
                            for r in 0..a.rows() {
                                g.row_mut(r)[slo..slo + srows].copy_from_slice(shard_g.row(r));
                            }
                        }
                        // Failover work is serialized after the first wave.
                        let rerun_start = end_to_end;
                        end_to_end = end_to_end.saturating_add(run.timing.end_to_end_ns);
                        if let Some(track) = sched_track {
                            self.tracer.span_with(
                                track,
                                "failover",
                                format!("re-shard {srows} rows -> {}", dev.name),
                                rerun_start,
                                end_to_end,
                                vec![("rows", srows.into()), ("device", dev.name.as_str().into())],
                            );
                        }
                        word_ops += run.word_ops;
                        slo += srows;
                    }
                }
            }
        }
        let _ = word_op_kind; // module-level linkage for doc references
        Ok(MultiRunReport {
            gamma,
            per_device,
            shard_rows,
            end_to_end_ns: end_to_end,
            word_ops,
            lost_devices,
            failover_rows,
        })
    }

    /// FastID identity search across the device group.
    pub fn identity_search(
        &self,
        queries: &BitMatrix<u64>,
        database: &BitMatrix<u64>,
    ) -> Result<MultiRunReport, EngineError> {
        self.compare(queries, database, Algorithm::IdentitySearch)
    }
}

/// A DGX-2-like system: sixteen Volta-class devices (the paper names the
/// DGX-2 explicitly as the §VII target platform). The per-device model is
/// the Titan V entry; interconnect differences are outside the model, since
/// `n`-sharding never communicates between devices.
pub fn dgx2_like() -> Vec<DeviceSpec> {
    (0..16)
        .map(|i| {
            let mut d = snp_gpu_model::devices::titan_v();
            d.name = format!("Titan V #{i}");
            d
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ExecMode;
    use crate::MixtureStrategy;
    use snp_bitmat::reference_gamma;
    use snp_bitmat::CompareOp;
    use snp_gpu_model::devices;

    fn matrix(rows: usize, cols: usize, salt: usize) -> BitMatrix<u64> {
        BitMatrix::from_fn(rows, cols, |r, c| (r * 13 + c * 7 + salt) % 5 < 2)
    }

    fn timing_only() -> EngineOptions {
        EngineOptions {
            mode: ExecMode::TimingOnly,
            double_buffer: true,
            mixture: MixtureStrategy::Direct,
            ..Default::default()
        }
    }

    #[test]
    fn sharded_results_match_single_device() {
        let a = matrix(24, 600, 1);
        let b = matrix(300, 600, 2);
        let single = GpuEngine::new(devices::titan_v())
            .identity_search(&a, &b)
            .unwrap();
        let multi = MultiGpuEngine::new(vec![devices::titan_v(), devices::titan_v()])
            .identity_search(&a, &b)
            .unwrap();
        assert_eq!(
            multi
                .gamma
                .unwrap()
                .first_mismatch(single.gamma.as_ref().unwrap()),
            None
        );
        assert_eq!(
            multi.shard_rows,
            vec![150, 150],
            "equal devices share equally"
        );
    }

    #[test]
    fn heterogeneous_devices_shard_proportionally() {
        let eng = MultiGpuEngine::new(vec![devices::gtx_980(), devices::titan_v()]);
        let shards = eng.shard_rows(10_000, Algorithm::IdentitySearch);
        assert_eq!(shards.iter().sum::<usize>(), 10_000);
        // Titan V sustains ~2.9x the GTX 980's effective rate.
        let ratio = shards[1] as f64 / shards[0] as f64;
        assert!((2.0..4.0).contains(&ratio), "shard ratio {ratio}");
    }

    #[test]
    fn heterogeneous_results_are_still_exact() {
        let a = matrix(16, 500, 3);
        let b = matrix(420, 500, 4);
        let multi = MultiGpuEngine::new(devices::all_gpus())
            .identity_search(&a, &b)
            .unwrap();
        let want = reference_gamma(&a, &b, CompareOp::Xor);
        assert_eq!(multi.gamma.unwrap().first_mismatch(&want), None);
        assert_eq!(multi.per_device.len(), devices::all_gpus().len());
    }

    #[test]
    fn dgx2_scales_fastid_throughput() {
        let queries = BitMatrix::<u64>::zeros(32, 1024);
        let database = BitMatrix::<u64>::zeros(2_097_152, 1024);
        let one = MultiGpuEngine::new(vec![devices::titan_v()])
            .with_options(timing_only())
            .identity_search(&queries, &database)
            .unwrap();
        let sixteen = MultiGpuEngine::new(dgx2_like())
            .with_options(timing_only())
            .identity_search(&queries, &database)
            .unwrap();
        assert!(
            sixteen.end_to_end_ns < one.end_to_end_ns,
            "16 devices must beat 1: {} vs {}",
            sixteen.end_to_end_ns,
            one.end_to_end_ns
        );
        // End-to-end gains are bounded by the unsharded runtime-init cost
        // (every device still pays its ~150 ms), but device-side work —
        // kernels and transfers — must scale nearly linearly.
        let single_busy =
            one.per_device[0].timing.kernel_ns + one.per_device[0].timing.transfer_in_ns;
        let max_shard_busy = sixteen
            .per_device
            .iter()
            .map(|r| r.timing.kernel_ns + r.timing.transfer_in_ns)
            .max()
            .unwrap();
        let device_speedup = single_busy as f64 / max_shard_busy as f64;
        assert!(
            device_speedup > 12.0,
            "device-side work should shard ~16x, got {device_speedup:.1}x"
        );
    }

    #[test]
    fn tiny_databases_leave_slow_devices_idle_but_correct() {
        let a = matrix(8, 200, 5);
        let b = matrix(3, 200, 6); // fewer rows than devices x proportionality
        let multi = MultiGpuEngine::new(devices::all_gpus())
            .identity_search(&a, &b)
            .unwrap();
        assert_eq!(multi.shard_rows.iter().sum::<usize>(), 3);
        let want = reference_gamma(&a, &b, CompareOp::Xor);
        assert_eq!(multi.gamma.unwrap().first_mismatch(&want), None);
    }

    #[test]
    #[should_panic(expected = "at least one device")]
    fn empty_device_list_rejected() {
        let _ = MultiGpuEngine::new(vec![]);
    }
}
