//! Streaming top-k identity search.
//!
//! Fig. 8's end-to-end time is dominated by reading the full `γ` matrix
//! back to the host (32 × 20.97 M × 4 B ≈ 2.7 GB) — but a forensic search
//! only needs the best few candidates per query. This module adds the
//! natural production refinement: after each comparison pass, a small
//! device-side *reduction kernel* scans the pass's `γ` chunk and keeps the
//! `k` lowest difference counts per query, so only `k` (index, score) pairs
//! per query per pass cross the PCIe link. The comparison kernel, pass
//! planner, and double buffering are unchanged — this is a drop-in
//! alternative readback strategy, and an ablation quantifies what it saves.

use snp_bitmat::{BitMatrix, CompareOp};
use snp_gpu_model::config::{Algorithm, ProblemShape};
use snp_gpu_model::InstrClass;
use snp_gpu_sim::host::{EventId, Gpu, KernelCost};
use snp_gpu_sim::macro_engine::Traffic;

use crate::autoconf::config_for;
use crate::engine::{device_words, EngineError, ExecMode, GpuEngine, Timing};
use crate::kernel::{execute_gamma, KernelPlan};
use crate::tiling::plan_passes;

/// One retained candidate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Match {
    /// Database row index.
    pub profile: usize,
    /// Difference count (`γ`); lower is better.
    pub differences: u32,
}

/// Result of a streaming top-k search.
#[derive(Debug, Clone)]
pub struct TopKReport {
    /// Per query: the best `k` candidates, ascending by difference count
    /// (ties broken by profile index). `None` in timing-only mode.
    pub matches: Option<Vec<Vec<Match>>>,
    /// Timing breakdown (same semantics as [`crate::Timing`]).
    pub timing: Timing,
    /// Kernel launches (comparison + reduction).
    pub passes: usize,
    /// Bytes the full-γ readback would have moved.
    pub full_readback_bytes: u64,
    /// Bytes the top-k readback actually moved.
    pub topk_readback_bytes: u64,
}

/// Merges `candidates` into the per-query top-k lists.
fn merge_topk(best: &mut Vec<Match>, candidates: impl IntoIterator<Item = Match>, k: usize) {
    best.extend(candidates);
    best.sort_by_key(|m| (m.differences, m.profile));
    best.truncate(k);
}

/// Host-side reference: top-k from a full γ row (used by tests and by the
/// functional reduction).
pub fn topk_of_row(row: &[u32], base_index: usize, k: usize) -> Vec<Match> {
    let mut v: Vec<Match> = row
        .iter()
        .enumerate()
        .map(|(j, &d)| Match {
            profile: base_index + j,
            differences: d,
        })
        .collect();
    v.sort_by_key(|m| (m.differences, m.profile));
    v.truncate(k);
    v
}

impl GpuEngine {
    /// FastID identity search returning only the best `k` database matches
    /// per query. Identical candidate sets to a full
    /// [`identity_search`](Self::identity_search) followed by host-side
    /// selection (tested), at a fraction of the readback traffic.
    pub fn identity_search_topk(
        &self,
        queries: &BitMatrix<u64>,
        database: &BitMatrix<u64>,
        k: usize,
    ) -> Result<TopKReport, EngineError> {
        assert!(k >= 1, "k must be at least 1");
        assert_eq!(
            queries.words_per_row(),
            database.words_per_row(),
            "packed width mismatch"
        );
        let full = self.options().mode == ExecMode::Full;
        let op = CompareOp::Xor;
        let k_words = 2 * queries.words_per_row();
        let (m, n) = (queries.rows(), database.rows());
        let cfg = config_for(
            self.spec(),
            Algorithm::IdentitySearch,
            ProblemShape { m, n, k_words },
        );
        let plan = plan_passes(
            self.spec(),
            &cfg,
            m,
            n,
            k_words,
            self.options().double_buffer,
        )?;

        let gpu = Gpu::with_tracer(self.spec().clone(), self.tracer().clone());
        let tracer = self.tracer();
        let run_track = tracer.track("engine", snp_trace::TimeDomain::Virtual);
        let run_span = tracer.begin_span(run_track, "run", "run: streaming top-k", 0);
        let init_ns = gpu.now_ns();
        let q_xfer = gpu.create_queue_labeled("transfer");
        let q_comp = gpu.create_queue_labeled("compute");
        let copies = if plan.double_buffered { 2 } else { 1 };

        let mk = |words: usize| -> Result<_, EngineError> {
            Ok(if full {
                gpu.create_buffer(words)?
            } else {
                gpu.create_virtual_buffer(words)?
            })
        };
        let a_buf = mk(plan.a_buffer_words().max(1))?;
        let b_bufs: Vec<_> = (0..copies)
            .map(|_| mk(plan.b_buffer_words().max(1)))
            .collect::<Result<_, _>>()?;
        let c_bufs: Vec<_> = (0..copies)
            .map(|_| mk(plan.c_buffer_words().max(1)))
            .collect::<Result<_, _>>()?;
        // Per-slot top-k staging buffer: m x k (index, score) pairs.
        let t_bufs: Vec<_> = (0..copies)
            .map(|_| mk((m * k * 2).max(1)))
            .collect::<Result<_, _>>()?;

        let mut matches: Option<Vec<Vec<Match>>> = full.then(|| vec![Vec::new(); m]);
        let mut pack_ns = 0u64;
        let mut kernel_events: Vec<EventId> = Vec::new();
        let mut in_events: Vec<EventId> = Vec::new();
        let mut out_events: Vec<EventId> = Vec::new();
        let mut last_use: Vec<Option<EventId>> = vec![None; copies];
        let mut topk_bytes = 0u64;

        // Upload all queries once.
        let a_bytes = (m * k_words * 4) as u64;
        pack_ns += self.spec().transfer.pack_ns(a_bytes);
        gpu.host_pack(a_bytes);
        let ev_a = if full {
            let data = device_words(queries, 0, m);
            gpu.enqueue_write(q_xfer, a_buf, 0, &data, &[])?
        } else {
            gpu.enqueue_virtual_transfer(q_xfer, a_bytes, &[])?
        };
        in_events.push(ev_a);

        for (i, nc) in plan.n_chunks.iter().enumerate() {
            let slot = i % copies;
            let b_bytes = (nc.len() * k_words * 4) as u64;
            pack_ns += self.spec().transfer.pack_ns(b_bytes);
            gpu.host_pack(b_bytes);
            let mut deps = Vec::new();
            if let Some(ev) = last_use[slot] {
                deps.push(ev);
            }
            let ev_b = if full {
                let data = device_words(database, nc.lo, nc.hi);
                gpu.enqueue_write(q_xfer, b_bufs[slot], 0, &data, &deps)?
            } else {
                gpu.enqueue_virtual_transfer(q_xfer, b_bytes, &deps)?
            };
            in_events.push(ev_b);

            // Comparison kernel (unchanged).
            let kplan = KernelPlan::new(self.spec(), &cfg, op, m, nc.len(), k_words);
            let kdeps = [ev_a, ev_b];
            let ev_k = if full {
                let (m_len, n_len) = (m, nc.len());
                gpu.enqueue_kernel(
                    q_comp,
                    &kplan.cost(),
                    &[a_buf, b_bufs[slot]],
                    c_bufs[slot],
                    &kdeps,
                    |reads, out| {
                        execute_gamma(op, reads[0], reads[1], out, m_len, n_len, k_words);
                    },
                )?
            } else {
                gpu.enqueue_kernel_timed(q_comp, &kplan.cost(), &kdeps)?
            };
            kernel_events.push(ev_k);

            // Reduction kernel: streams the γ chunk once from global memory
            // (bandwidth-bound) and emits m x k winners. The comparison work
            // per element is a compare+select on the ALU pipe.
            let gamma_bytes = (m * nc.len() * 4) as u64;
            let reduce_cost = reduction_cost(self.spec(), m, nc.len(), gamma_bytes);
            let (base, n_len_r) = (nc.lo, nc.len());
            let ev_r = if full {
                gpu.enqueue_kernel(
                    q_comp,
                    &reduce_cost,
                    &[c_bufs[slot]],
                    t_bufs[slot],
                    &[ev_k],
                    move |reads, out| {
                        let gamma = reads[0];
                        for q in 0..m {
                            let row = &gamma[q * n_len_r..(q + 1) * n_len_r];
                            let top = topk_of_row(row, base, k);
                            for (slot_idx, mt) in top.iter().enumerate() {
                                out[(q * k + slot_idx) * 2] = mt.profile as u32;
                                out[(q * k + slot_idx) * 2 + 1] = mt.differences;
                            }
                            // Pad unused slots with sentinel (u32::MAX).
                            for s in top.len()..k {
                                out[(q * k + s) * 2] = u32::MAX;
                                out[(q * k + s) * 2 + 1] = u32::MAX;
                            }
                        }
                    },
                )?
            } else {
                gpu.enqueue_kernel_timed(q_comp, &reduce_cost, &[ev_k])?
            };
            kernel_events.push(ev_r);
            last_use[slot] = Some(ev_r);

            // Read back only the winners.
            let t_bytes = (m * k * 8) as u64;
            topk_bytes += t_bytes;
            let ev_out = if full {
                let mut out = vec![0u32; m * k * 2];
                let ev = gpu.enqueue_read(q_xfer, t_bufs[slot], 0, &mut out, &[ev_r], false)?;
                let lists = matches.as_mut().expect("full mode");
                for (q, list) in lists.iter_mut().enumerate() {
                    let cands = (0..k).filter_map(|s| {
                        let idx = out[(q * k + s) * 2];
                        let d = out[(q * k + s) * 2 + 1];
                        (idx != u32::MAX).then_some(Match {
                            profile: idx as usize,
                            differences: d,
                        })
                    });
                    merge_topk(list, cands, k);
                }
                ev
            } else {
                gpu.enqueue_virtual_transfer(q_xfer, t_bytes, &[ev_r])?
            };
            out_events.push(ev_out);
        }
        gpu.finish_all();
        let end_to_end_ns = gpu.now_ns();
        if tracer.is_enabled() {
            tracer.end_span_with(
                run_span,
                end_to_end_ns,
                vec![
                    ("passes", (kernel_events.len() as u64).into()),
                    ("topk_readback_bytes", topk_bytes.into()),
                    ("device", self.spec().name.as_str().into()),
                    ("double_buffered", u64::from(plan.double_buffered).into()),
                ],
            );
        }

        let sum = |evs: &[EventId]| -> u64 {
            evs.iter()
                .map(|&e| gpu.event_profile(e).map(|p| p.duration_ns()).unwrap_or(0))
                .sum()
        };
        Ok(TopKReport {
            matches,
            timing: Timing {
                init_ns,
                pack_ns,
                kernel_ns: sum(&kernel_events),
                transfer_in_ns: sum(&in_events),
                transfer_out_ns: sum(&out_events),
                end_to_end_ns,
            },
            passes: kernel_events.len(),
            full_readback_bytes: (m * n * 4) as u64,
            topk_readback_bytes: topk_bytes,
        })
    }
}

/// Timing model of the reduction: one streaming read of the γ chunk bounded
/// by DRAM bandwidth, plus a compare-select per element on the integer pipe.
fn reduction_cost(
    dev: &snp_gpu_model::DeviceSpec,
    m: usize,
    n: usize,
    gamma_bytes: u64,
) -> KernelCost {
    let elements = (m * n) as f64;
    let lanes = dev.n_fn(InstrClass::IntAdd).unwrap_or(16) as f64 * dev.n_clusters as f64;
    // Two ALU ops (compare + conditional move) per element across all cores.
    let core_cycles = 2.0 * elements / (lanes * dev.n_cores as f64);
    KernelCost::Analytic {
        core_cycles,
        active_cores: dev.n_cores,
        traffic: Traffic {
            read_bytes: gamma_bytes,
            write_bytes: (m * 64) as u64,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineOptions;
    use crate::MixtureStrategy;
    use snp_gpu_model::devices;

    fn matrix(rows: usize, cols: usize, salt: usize) -> BitMatrix<u64> {
        // Non-separable hash: no two rows share a bit pattern.
        BitMatrix::from_fn(rows, cols, |r, c| {
            let h = (r * 1_000_003 + c + salt * 7_777_777).wrapping_mul(0x9E37_79B9);
            (h >> 13).is_multiple_of(4)
        })
    }

    #[test]
    fn topk_matches_full_search_selection() {
        let q = matrix(6, 512, 1);
        let db = matrix(700, 512, 2);
        for dev in devices::all_gpus() {
            let engine = GpuEngine::new(dev.clone());
            let full = engine.identity_search(&q, &db).unwrap().gamma.unwrap();
            let topk = engine.identity_search_topk(&q, &db, 5).unwrap();
            let lists = topk.matches.unwrap();
            for (qi, list) in lists.iter().enumerate() {
                let want = topk_of_row(full.row(qi), 0, 5);
                assert_eq!(list, &want, "{} query {qi}", dev.name);
            }
        }
    }

    #[test]
    fn topk_correct_across_chunked_passes() {
        let mut dev = devices::titan_v();
        // Keep the name (and hence the Table II preset with n_r = 1024) but
        // shrink memory so the 1500-row database needs several B chunks
        // while one 1024-row tile still fits.
        dev.max_alloc_bytes = 100_000;
        dev.global_mem_bytes = 1_000_000;
        let q = matrix(4, 600, 3);
        let db = matrix(1500, 600, 4);
        let engine = GpuEngine::new(dev);
        let report = engine.identity_search_topk(&q, &db, 3).unwrap();
        assert!(report.passes > 2, "expected chunked passes");
        let full = GpuEngine::new(devices::titan_v())
            .identity_search(&q, &db)
            .unwrap()
            .gamma
            .unwrap();
        let lists = report.matches.unwrap();
        for (qi, list) in lists.iter().enumerate() {
            assert_eq!(list, &topk_of_row(full.row(qi), 0, 3), "query {qi}");
        }
    }

    #[test]
    fn planted_query_is_rank_one() {
        let db = matrix(400, 384, 5);
        let q = db.row_slice(123, 124);
        let engine = GpuEngine::new(devices::vega_64());
        let report = engine.identity_search_topk(&q, &db, 3).unwrap();
        let top = &report.matches.unwrap()[0];
        assert_eq!(
            top[0],
            Match {
                profile: 123,
                differences: 0
            }
        );
        assert!(top[1].differences > 0);
    }

    #[test]
    fn readback_savings_reported_and_time_improves_at_scale() {
        let opts = EngineOptions {
            mode: ExecMode::TimingOnly,
            double_buffer: true,
            mixture: MixtureStrategy::Direct,
            ..Default::default()
        };
        let q = BitMatrix::<u64>::zeros(32, 1024);
        let db = BitMatrix::<u64>::zeros(20_971_520, 1024);
        let dev = devices::titan_v();
        let engine = GpuEngine::new(dev.clone()).with_options(opts);
        let topk = engine.identity_search_topk(&q, &db, 10).unwrap();
        let full = engine.identity_search(&q, &db).unwrap();
        assert!(topk.topk_readback_bytes < topk.full_readback_bytes / 1000);
        assert!(
            topk.timing.end_to_end_ns < full.timing.end_to_end_ns,
            "top-k must beat the 2.7 GB γ readback: {} vs {}",
            topk.timing.end_to_end_ns,
            full.timing.end_to_end_ns
        );
    }

    #[test]
    fn k_larger_than_database_returns_everything() {
        let q = matrix(2, 128, 6);
        let db = matrix(5, 128, 7);
        let report = GpuEngine::new(devices::gtx_980())
            .identity_search_topk(&q, &db, 50)
            .unwrap();
        let lists = report.matches.unwrap();
        assert_eq!(lists[0].len(), 5, "only 5 profiles exist");
    }

    #[test]
    #[should_panic(expected = "k must be")]
    fn zero_k_rejected() {
        let q = matrix(1, 64, 8);
        let _ = GpuEngine::new(devices::gtx_980()).identity_search_topk(&q, &q, 0);
    }
}
