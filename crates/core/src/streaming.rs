//! Streaming top-k identity search.
//!
//! Fig. 8's end-to-end time is dominated by reading the full `γ` matrix
//! back to the host (32 × 20.97 M × 4 B ≈ 2.7 GB) — but a forensic search
//! only needs the best few candidates per query. This module adds the
//! natural production refinement: after each comparison pass, a small
//! device-side *reduction kernel* scans the pass's `γ` chunk and keeps the
//! `k` lowest difference counts per query, so only `k` (index, score) pairs
//! per query per pass cross the PCIe link. The comparison kernel, pass
//! planner, and double buffering are unchanged — this is a drop-in
//! alternative readback strategy, and an ablation quantifies what it saves.

use snp_bitmat::{BitMatrix, CompareOp};
use snp_cpu::CpuEngine;
use snp_faults::{checksum_words, DeviceFault, FaultKind, FaultOp, FaultPlan};
use snp_gpu_model::config::{Algorithm, ProblemShape};
use snp_gpu_model::InstrClass;
use snp_gpu_sim::host::{EventId, Gpu, KernelCost, SimError};
use snp_gpu_sim::macro_engine::Traffic;

use crate::autoconf::{config_for, word_op_kind};
use crate::cpu_model::CpuModel;
use crate::engine::{device_words, EngineError, ExecMode, GpuEngine, Timing};
use crate::kernel::{execute_gamma, KernelPlan};
use crate::recovery::{metrics, QueueHealth, RecoverySummary};
use crate::tiling::plan_passes;

/// One retained candidate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Match {
    /// Database row index.
    pub profile: usize,
    /// Difference count (`γ`); lower is better.
    pub differences: u32,
}

/// Result of a streaming top-k search.
#[derive(Debug, Clone)]
pub struct TopKReport {
    /// Per query: the best `k` candidates, ascending by difference count
    /// (ties broken by profile index). `None` in timing-only mode.
    pub matches: Option<Vec<Vec<Match>>>,
    /// Timing breakdown (same semantics as [`crate::Timing`]).
    pub timing: Timing,
    /// Kernel launches (comparison + reduction).
    pub passes: usize,
    /// Bytes the full-γ readback would have moved.
    pub full_readback_bytes: u64,
    /// Bytes the top-k readback actually moved.
    pub topk_readback_bytes: u64,
    /// What the recovery layer did (None on the fault-free fast path).
    pub recovery: Option<RecoverySummary>,
}

/// Merges `candidates` into the per-query top-k lists.
fn merge_topk(best: &mut Vec<Match>, candidates: impl IntoIterator<Item = Match>, k: usize) {
    best.extend(candidates);
    best.sort_by_key(|m| (m.differences, m.profile));
    best.truncate(k);
}

/// Host-side reference: top-k from a full γ row (used by tests and by the
/// functional reduction).
pub fn topk_of_row(row: &[u32], base_index: usize, k: usize) -> Vec<Match> {
    let mut v: Vec<Match> = row
        .iter()
        .enumerate()
        .map(|(j, &d)| Match {
            profile: base_index + j,
            differences: d,
        })
        .collect();
    v.sort_by_key(|m| (m.differences, m.profile));
    v.truncate(k);
    v
}

impl GpuEngine {
    /// FastID identity search returning only the best `k` database matches
    /// per query. Identical candidate sets to a full
    /// [`identity_search`](Self::identity_search) followed by host-side
    /// selection (tested), at a fraction of the readback traffic.
    pub fn identity_search_topk(
        &self,
        queries: &BitMatrix<u64>,
        database: &BitMatrix<u64>,
        k: usize,
    ) -> Result<TopKReport, EngineError> {
        assert!(k >= 1, "k must be at least 1");
        assert_eq!(
            queries.words_per_row(),
            database.words_per_row(),
            "packed width mismatch"
        );
        if let Some(fault_plan) = self.fault_plan() {
            return self.identity_search_topk_recovering(queries, database, k, fault_plan.clone());
        }
        let full = self.options().mode == ExecMode::Full;
        let op = CompareOp::Xor;
        let k_words = 2 * queries.words_per_row();
        let (m, n) = (queries.rows(), database.rows());
        let cfg = config_for(
            self.spec(),
            Algorithm::IdentitySearch,
            ProblemShape { m, n, k_words },
        );
        let plan = plan_passes(
            self.spec(),
            &cfg,
            m,
            n,
            k_words,
            self.options().double_buffer,
        )?;

        let gpu = Gpu::with_tracer(self.spec().clone(), self.tracer().clone());
        gpu.set_cost_scale(self.options().cost_scale);
        let tracer = self.tracer();
        let run_track = tracer.track("engine", snp_trace::TimeDomain::Virtual);
        let run_span = tracer.begin_span(run_track, "run", "run: streaming top-k", 0);
        let init_ns = gpu.now_ns();
        let q_xfer = gpu.create_queue_labeled("transfer");
        let q_comp = gpu.create_queue_labeled("compute");
        let copies = if plan.double_buffered { 2 } else { 1 };

        let mk = |words: usize| -> Result<_, EngineError> {
            Ok(if full {
                gpu.create_buffer(words)?
            } else {
                gpu.create_virtual_buffer(words)?
            })
        };
        let a_buf = mk(plan.a_buffer_words().max(1))?;
        let b_bufs: Vec<_> = (0..copies)
            .map(|_| mk(plan.b_buffer_words().max(1)))
            .collect::<Result<_, _>>()?;
        let c_bufs: Vec<_> = (0..copies)
            .map(|_| mk(plan.c_buffer_words().max(1)))
            .collect::<Result<_, _>>()?;
        // Per-slot top-k staging buffer: m x k (index, score) pairs.
        let t_bufs: Vec<_> = (0..copies)
            .map(|_| mk((m * k * 2).max(1)))
            .collect::<Result<_, _>>()?;

        let mut matches: Option<Vec<Vec<Match>>> = full.then(|| vec![Vec::new(); m]);
        let mut pack_ns = 0u64;
        let mut kernel_events: Vec<EventId> = Vec::new();
        let mut in_events: Vec<EventId> = Vec::new();
        let mut out_events: Vec<EventId> = Vec::new();
        let mut last_use: Vec<Option<EventId>> = vec![None; copies];
        let mut topk_bytes = 0u64;

        // Upload all queries once.
        let a_bytes = (m * k_words * 4) as u64;
        pack_ns += self.spec().transfer.pack_ns(a_bytes);
        gpu.host_pack(a_bytes);
        let ev_a = if full {
            let data = device_words(queries, 0, m);
            gpu.enqueue_write(q_xfer, a_buf, 0, &data, &[])?
        } else {
            gpu.enqueue_virtual_transfer(q_xfer, a_bytes, &[])?
        };
        in_events.push(ev_a);

        for (i, nc) in plan.n_chunks.iter().enumerate() {
            let slot = i % copies;
            let b_bytes = (nc.len() * k_words * 4) as u64;
            pack_ns += self.spec().transfer.pack_ns(b_bytes);
            gpu.host_pack(b_bytes);
            let mut deps = Vec::new();
            if let Some(ev) = last_use[slot] {
                deps.push(ev);
            }
            let ev_b = if full {
                let data = device_words(database, nc.lo, nc.hi);
                gpu.enqueue_write(q_xfer, b_bufs[slot], 0, &data, &deps)?
            } else {
                gpu.enqueue_virtual_transfer(q_xfer, b_bytes, &deps)?
            };
            in_events.push(ev_b);

            // Comparison kernel (unchanged).
            let kplan = KernelPlan::new(self.spec(), &cfg, op, m, nc.len(), k_words);
            let kdeps = [ev_a, ev_b];
            let ev_k = if full {
                let (m_len, n_len) = (m, nc.len());
                gpu.enqueue_kernel(
                    q_comp,
                    &kplan.cost(),
                    &[a_buf, b_bufs[slot]],
                    c_bufs[slot],
                    &kdeps,
                    |reads, out| {
                        execute_gamma(op, reads[0], reads[1], out, m_len, n_len, k_words);
                    },
                )?
            } else {
                gpu.enqueue_kernel_timed(q_comp, &kplan.cost(), &kdeps)?
            };
            kernel_events.push(ev_k);

            // Reduction kernel: streams the γ chunk once from global memory
            // (bandwidth-bound) and emits m x k winners. The comparison work
            // per element is a compare+select on the ALU pipe.
            let gamma_bytes = (m * nc.len() * 4) as u64;
            let reduce_cost = reduction_cost(self.spec(), m, nc.len(), gamma_bytes);
            let (base, n_len_r) = (nc.lo, nc.len());
            let ev_r = if full {
                gpu.enqueue_kernel(
                    q_comp,
                    &reduce_cost,
                    &[c_bufs[slot]],
                    t_bufs[slot],
                    &[ev_k],
                    move |reads, out| {
                        let gamma = reads[0];
                        for q in 0..m {
                            let row = &gamma[q * n_len_r..(q + 1) * n_len_r];
                            let top = topk_of_row(row, base, k);
                            for (slot_idx, mt) in top.iter().enumerate() {
                                out[(q * k + slot_idx) * 2] = mt.profile as u32;
                                out[(q * k + slot_idx) * 2 + 1] = mt.differences;
                            }
                            // Pad unused slots with sentinel (u32::MAX).
                            for s in top.len()..k {
                                out[(q * k + s) * 2] = u32::MAX;
                                out[(q * k + s) * 2 + 1] = u32::MAX;
                            }
                        }
                    },
                )?
            } else {
                gpu.enqueue_kernel_timed(q_comp, &reduce_cost, &[ev_k])?
            };
            kernel_events.push(ev_r);
            last_use[slot] = Some(ev_r);

            // Read back only the winners.
            let t_bytes = (m * k * 8) as u64;
            topk_bytes += t_bytes;
            let ev_out = if full {
                let mut out = vec![0u32; m * k * 2];
                let ev = gpu.enqueue_read(q_xfer, t_bufs[slot], 0, &mut out, &[ev_r], false)?;
                let lists = matches.as_mut().expect("full mode");
                for (q, list) in lists.iter_mut().enumerate() {
                    let cands = (0..k).filter_map(|s| {
                        let idx = out[(q * k + s) * 2];
                        let d = out[(q * k + s) * 2 + 1];
                        (idx != u32::MAX).then_some(Match {
                            profile: idx as usize,
                            differences: d,
                        })
                    });
                    merge_topk(list, cands, k);
                }
                ev
            } else {
                gpu.enqueue_virtual_transfer(q_xfer, t_bytes, &[ev_r])?
            };
            out_events.push(ev_out);
        }
        gpu.finish_all();
        let end_to_end_ns = gpu.now_ns();
        if tracer.is_enabled() {
            tracer.end_span_with(
                run_span,
                end_to_end_ns,
                vec![
                    ("passes", (kernel_events.len() as u64).into()),
                    ("topk_readback_bytes", topk_bytes.into()),
                    ("device", self.spec().name.as_str().into()),
                    ("double_buffered", u64::from(plan.double_buffered).into()),
                ],
            );
        }

        let sum = |evs: &[EventId]| -> u64 {
            evs.iter()
                .map(|&e| gpu.event_profile(e).map(|p| p.duration_ns()).unwrap_or(0))
                .sum()
        };
        Ok(TopKReport {
            matches,
            timing: Timing {
                init_ns,
                pack_ns,
                kernel_ns: crate::engine::record_kernel_chunks(&gpu, &kernel_events),
                transfer_in_ns: sum(&in_events),
                transfer_out_ns: sum(&out_events),
                recovery_ns: 0,
                end_to_end_ns,
            },
            passes: kernel_events.len(),
            full_readback_bytes: (m * n * 4) as u64,
            topk_readback_bytes: topk_bytes,
            recovery: None,
        })
    }

    /// The fault-tolerant streaming search used when a fault plan is armed:
    /// chunk-sequential with bounded retry, checksum-verified winner
    /// readbacks, per-chunk checkpointing of the merged top-k lists, and
    /// CPU fallback for the database chunks after the last checkpoint on
    /// permanent device loss (DESIGN.md §10). Requires [`ExecMode::Full`].
    #[allow(clippy::too_many_lines)]
    fn identity_search_topk_recovering(
        &self,
        queries: &BitMatrix<u64>,
        database: &BitMatrix<u64>,
        k: usize,
        faults: FaultPlan,
    ) -> Result<TopKReport, EngineError> {
        let policy = self.options().recovery;
        let op = CompareOp::Xor;
        let k_words = 2 * queries.words_per_row();
        let (m, n) = (queries.rows(), database.rows());
        let cfg = config_for(
            self.spec(),
            Algorithm::IdentitySearch,
            ProblemShape { m, n, k_words },
        );
        let plan = plan_passes(self.spec(), &cfg, m, n, k_words, false)?;

        let gpu = Gpu::with_tracer(self.spec().clone(), self.tracer().clone());
        gpu.set_cost_scale(self.options().cost_scale);
        gpu.set_fault_plan(faults);
        let init_ns = gpu.now_ns();
        let mut q_xfer = gpu.create_queue_labeled("transfer");
        let mut q_comp = gpu.create_queue_labeled("compute");
        let mut health_xfer = QueueHealth::default();
        let mut health_comp = QueueHealth::default();

        let a_buf = gpu.create_buffer(plan.a_buffer_words().max(1))?;
        let b_buf = gpu.create_buffer(plan.b_buffer_words().max(1))?;
        let c_buf = gpu.create_buffer(plan.c_buffer_words().max(1))?;
        let t_buf = gpu.create_buffer((m * k * 2).max(1))?;

        let mut matches: Vec<Vec<Match>> = vec![Vec::new(); m];
        let mut pack_ns = 0u64;
        let mut kernel_events: Vec<EventId> = Vec::new();
        let mut in_events: Vec<EventId> = Vec::new();
        let mut out_events: Vec<EventId> = Vec::new();
        let mut topk_bytes = 0u64;
        let mut summary = RecoverySummary {
            total_chunks: plan.n_chunks.len(),
            ..Default::default()
        };
        let mut lost_at: Option<usize> = None;
        let mut lost_err: Option<EngineError> = None;

        macro_rules! try_or_lose {
            ($lbl:lifetime, $ci:expr, $res:expr) => {
                match $res {
                    Ok(v) => v,
                    Err(e) => {
                        if e.device_fault()
                            .is_some_and(|f| f.kind == FaultKind::DeviceLoss)
                        {
                            lost_at = Some($ci);
                            lost_err = Some(e);
                            break $lbl;
                        }
                        return Err(e);
                    }
                }
            };
        }

        let mut ev_a: Option<EventId> = None;
        'chunks: for (ci, nc) in plan.n_chunks.iter().enumerate() {
            // Queries upload once, before the first chunk (retried here so a
            // loss during upload still checkpoints as "resumed from 0").
            if ev_a.is_none() {
                let a_bytes = (m * k_words * 4) as u64;
                pack_ns += self.spec().transfer.pack_ns(a_bytes);
                gpu.host_pack(a_bytes);
                let data = device_words(queries, 0, m);
                let ev = try_or_lose!(
                    'chunks,
                    ci,
                    Self::attempt_with_retry(
                        &gpu,
                        &policy,
                        &mut summary,
                        &mut health_xfer,
                        &mut q_xfer,
                        "transfer",
                        |q| gpu.enqueue_write(q, a_buf, 0, &data, &[]),
                    )
                );
                in_events.push(ev);
                ev_a = Some(ev);
            }
            let ev_a = ev_a.expect("queries uploaded");

            let b_bytes = (nc.len() * k_words * 4) as u64;
            pack_ns += self.spec().transfer.pack_ns(b_bytes);
            gpu.host_pack(b_bytes);
            let data = device_words(database, nc.lo, nc.hi);
            let bdeps: Vec<EventId> = kernel_events.last().copied().into_iter().collect();
            let ev_b = try_or_lose!(
                'chunks,
                ci,
                Self::attempt_with_retry(
                    &gpu,
                    &policy,
                    &mut summary,
                    &mut health_xfer,
                    &mut q_xfer,
                    "transfer",
                    |q| gpu.enqueue_write(q, b_buf, 0, &data, &bdeps),
                )
            );
            in_events.push(ev_b);

            let kplan = KernelPlan::new(self.spec(), &cfg, op, m, nc.len(), k_words);
            let kdeps = [ev_a, ev_b];
            let (m_len, n_len) = (m, nc.len());
            let ev_k = try_or_lose!(
                'chunks,
                ci,
                Self::attempt_with_retry(
                    &gpu,
                    &policy,
                    &mut summary,
                    &mut health_comp,
                    &mut q_comp,
                    "compute",
                    |q| gpu.enqueue_kernel(
                        q,
                        &kplan.cost(),
                        &[a_buf, b_buf],
                        c_buf,
                        &kdeps,
                        |reads, out| {
                            execute_gamma(op, reads[0], reads[1], out, m_len, n_len, k_words);
                        },
                    ),
                )
            );
            kernel_events.push(ev_k);

            let gamma_bytes = (m * nc.len() * 4) as u64;
            let reduce_cost = reduction_cost(self.spec(), m, nc.len(), gamma_bytes);
            let (base, n_len_r) = (nc.lo, nc.len());
            let ev_r = try_or_lose!(
                'chunks,
                ci,
                Self::attempt_with_retry(
                    &gpu,
                    &policy,
                    &mut summary,
                    &mut health_comp,
                    &mut q_comp,
                    "compute",
                    |q| gpu.enqueue_kernel(
                        q,
                        &reduce_cost,
                        &[c_buf],
                        t_buf,
                        &[ev_k],
                        move |reads, out| {
                            let gamma = reads[0];
                            for qi in 0..m {
                                let row = &gamma[qi * n_len_r..(qi + 1) * n_len_r];
                                let top = topk_of_row(row, base, k);
                                for (slot_idx, mt) in top.iter().enumerate() {
                                    out[(qi * k + slot_idx) * 2] = mt.profile as u32;
                                    out[(qi * k + slot_idx) * 2 + 1] = mt.differences;
                                }
                                for s in top.len()..k {
                                    out[(qi * k + s) * 2] = u32::MAX;
                                    out[(qi * k + s) * 2 + 1] = u32::MAX;
                                }
                            }
                        },
                    ),
                )
            );
            kernel_events.push(ev_r);

            // Winner readback, checksum-verified and re-read on mismatch.
            let t_bytes = (m * k * 8) as u64;
            topk_bytes += t_bytes;
            let mut out = vec![0u32; m * k * 2];
            let mut verify_attempts = 0u32;
            loop {
                let ev_out = try_or_lose!(
                    'chunks,
                    ci,
                    Self::attempt_with_retry(
                        &gpu,
                        &policy,
                        &mut summary,
                        &mut health_xfer,
                        &mut q_xfer,
                        "transfer",
                        |q| gpu.enqueue_read(q, t_buf, 0, &mut out, &[ev_r], true),
                    )
                );
                out_events.push(ev_out);
                if !policy.checksums {
                    break;
                }
                let (dev_sum, ev_s) = try_or_lose!(
                    'chunks,
                    ci,
                    Self::attempt_with_retry(
                        &gpu,
                        &policy,
                        &mut summary,
                        &mut health_xfer,
                        &mut q_xfer,
                        "transfer",
                        |q| gpu.enqueue_checksum_read(q, t_buf, 0, m * k * 2, &[ev_r]),
                    )
                );
                out_events.push(ev_s);
                if dev_sum == checksum_words(&out) {
                    break;
                }
                summary.corruption_detected += 1;
                metrics::CORRUPTION_DETECTED.add(1);
                verify_attempts += 1;
                if verify_attempts > policy.max_retries {
                    return Err(EngineError::Device(SimError::DeviceFault(DeviceFault {
                        kind: FaultKind::ReadCorruption,
                        op: FaultOp::Read,
                        command_index: gpu.command_log().commands.len() as u64,
                    })));
                }
            }
            for (qi, list) in matches.iter_mut().enumerate() {
                let cands = (0..k).filter_map(|s| {
                    let idx = out[(qi * k + s) * 2];
                    let d = out[(qi * k + s) * 2 + 1];
                    (idx != u32::MAX).then_some(Match {
                        profile: idx as usize,
                        differences: d,
                    })
                });
                merge_topk(list, cands, k);
            }
            summary.verified_chunks += 1;
            metrics::CHECKPOINT_CHUNKS.add(1);
        }

        // Device loss: finish the remaining database chunks on the CPU,
        // merging into the checkpointed top-k lists.
        let mut fallback_ns_total = 0u64;
        if let Some(ci) = lost_at {
            summary.device_lost = true;
            summary.resumed_from_chunk = Some(ci);
            metrics::DEVICE_LOSS.add(1);
            if gpu.tracer().is_enabled() {
                gpu.tracer().span_with(
                    gpu.host_track(),
                    "fault",
                    "device lost",
                    gpu.now_ns(),
                    gpu.now_ns(),
                    vec![("resume_chunk", ci.into())],
                );
            }
            if !policy.cpu_fallback {
                return Err(lost_err.expect("loss recorded with its error"));
            }
            let cpu = CpuEngine::new();
            let model = CpuModel::ivy_bridge_workstation();
            let kind = word_op_kind(op);
            let mut fallback_ns = 0f64;
            for nc in &plan.n_chunks[ci..] {
                let sub = cpu.gamma(queries, &database.row_slice(nc.lo, nc.hi), op);
                for (qi, list) in matches.iter_mut().enumerate() {
                    merge_topk(list, topk_of_row(sub.row(qi), nc.lo, k), k);
                }
                fallback_ns += model.time_ns(kind, m, nc.len(), queries.words_per_row());
                summary.cpu_fallback_chunks += 1;
                metrics::CPU_FALLBACK_CHUNKS.add(1);
            }
            fallback_ns_total = fallback_ns.ceil() as u64;
            let fb_start = gpu.now_ns();
            gpu.advance_host_ns(fallback_ns_total);
            if gpu.tracer().is_enabled() {
                gpu.tracer().span_with(
                    gpu.host_track(),
                    "fallback",
                    "cpu fallback",
                    fb_start,
                    fb_start + fallback_ns_total,
                    vec![("chunks", summary.cpu_fallback_chunks.into())],
                );
            }
        }
        gpu.finish_all();
        summary.injected = gpu.fault_stats();
        summary.stalls_absorbed = summary.injected.queue_stalls;

        let sum = |evs: &[EventId]| -> u64 {
            evs.iter()
                .map(|&e| gpu.event_profile(e).map(|p| p.duration_ns()).unwrap_or(0))
                .sum()
        };
        let timing = Timing {
            init_ns,
            pack_ns,
            kernel_ns: crate::engine::record_kernel_chunks(&gpu, &kernel_events),
            transfer_in_ns: sum(&in_events),
            transfer_out_ns: sum(&out_events),
            recovery_ns: summary.backoff_ns + fallback_ns_total,
            end_to_end_ns: gpu.now_ns(),
        };
        // Recovered streams must still verify clean.
        if self.options().verify {
            let report = snp_verify::verify_command_log(&gpu.command_log());
            if report.has_errors() {
                return Err(EngineError::Device(SimError::Hazard(
                    report.render_text("streaming command stream"),
                )));
            }
        }
        Ok(TopKReport {
            matches: Some(matches),
            timing,
            passes: kernel_events.len(),
            full_readback_bytes: (m * n * 4) as u64,
            topk_readback_bytes: topk_bytes,
            recovery: Some(summary),
        })
    }
}

/// Timing model of the reduction: one streaming read of the γ chunk bounded
/// by DRAM bandwidth, plus a compare-select per element on the integer pipe.
fn reduction_cost(
    dev: &snp_gpu_model::DeviceSpec,
    m: usize,
    n: usize,
    gamma_bytes: u64,
) -> KernelCost {
    let elements = (m * n) as f64;
    let lanes = dev.n_fn(InstrClass::IntAdd).unwrap_or(16) as f64 * dev.n_clusters as f64;
    // Two ALU ops (compare + conditional move) per element across all cores.
    let core_cycles = 2.0 * elements / (lanes * dev.n_cores as f64);
    KernelCost::Analytic {
        core_cycles,
        active_cores: dev.n_cores,
        traffic: Traffic {
            read_bytes: gamma_bytes,
            write_bytes: (m * 64) as u64,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineOptions;
    use crate::MixtureStrategy;
    use snp_gpu_model::devices;

    fn matrix(rows: usize, cols: usize, salt: usize) -> BitMatrix<u64> {
        // Non-separable hash: no two rows share a bit pattern.
        BitMatrix::from_fn(rows, cols, |r, c| {
            let h = (r * 1_000_003 + c + salt * 7_777_777).wrapping_mul(0x9E37_79B9);
            (h >> 13).is_multiple_of(4)
        })
    }

    #[test]
    fn topk_matches_full_search_selection() {
        let q = matrix(6, 512, 1);
        let db = matrix(700, 512, 2);
        for dev in devices::all_gpus() {
            let engine = GpuEngine::new(dev.clone());
            let full = engine.identity_search(&q, &db).unwrap().gamma.unwrap();
            let topk = engine.identity_search_topk(&q, &db, 5).unwrap();
            let lists = topk.matches.unwrap();
            for (qi, list) in lists.iter().enumerate() {
                let want = topk_of_row(full.row(qi), 0, 5);
                assert_eq!(list, &want, "{} query {qi}", dev.name);
            }
        }
    }

    #[test]
    fn topk_correct_across_chunked_passes() {
        let mut dev = devices::titan_v();
        // Keep the name (and hence the Table II preset with n_r = 1024) but
        // shrink memory so the 1500-row database needs several B chunks
        // while one 1024-row tile still fits.
        dev.max_alloc_bytes = 100_000;
        dev.global_mem_bytes = 1_000_000;
        let q = matrix(4, 600, 3);
        let db = matrix(1500, 600, 4);
        let engine = GpuEngine::new(dev);
        let report = engine.identity_search_topk(&q, &db, 3).unwrap();
        assert!(report.passes > 2, "expected chunked passes");
        let full = GpuEngine::new(devices::titan_v())
            .identity_search(&q, &db)
            .unwrap()
            .gamma
            .unwrap();
        let lists = report.matches.unwrap();
        for (qi, list) in lists.iter().enumerate() {
            assert_eq!(list, &topk_of_row(full.row(qi), 0, 3), "query {qi}");
        }
    }

    #[test]
    fn planted_query_is_rank_one() {
        let db = matrix(400, 384, 5);
        let q = db.row_slice(123, 124);
        let engine = GpuEngine::new(devices::vega_64());
        let report = engine.identity_search_topk(&q, &db, 3).unwrap();
        let top = &report.matches.unwrap()[0];
        assert_eq!(
            top[0],
            Match {
                profile: 123,
                differences: 0
            }
        );
        assert!(top[1].differences > 0);
    }

    #[test]
    fn readback_savings_reported_and_time_improves_at_scale() {
        let opts = EngineOptions {
            mode: ExecMode::TimingOnly,
            double_buffer: true,
            mixture: MixtureStrategy::Direct,
            ..Default::default()
        };
        let q = BitMatrix::<u64>::zeros(32, 1024);
        let db = BitMatrix::<u64>::zeros(20_971_520, 1024);
        let dev = devices::titan_v();
        let engine = GpuEngine::new(dev.clone()).with_options(opts);
        let topk = engine.identity_search_topk(&q, &db, 10).unwrap();
        let full = engine.identity_search(&q, &db).unwrap();
        assert!(topk.topk_readback_bytes < topk.full_readback_bytes / 1000);
        assert!(
            topk.timing.end_to_end_ns < full.timing.end_to_end_ns,
            "top-k must beat the 2.7 GB γ readback: {} vs {}",
            topk.timing.end_to_end_ns,
            full.timing.end_to_end_ns
        );
    }

    #[test]
    fn k_larger_than_database_returns_everything() {
        let q = matrix(2, 128, 6);
        let db = matrix(5, 128, 7);
        let report = GpuEngine::new(devices::gtx_980())
            .identity_search_topk(&q, &db, 50)
            .unwrap();
        let lists = report.matches.unwrap();
        assert_eq!(lists[0].len(), 5, "only 5 profiles exist");
    }

    #[test]
    #[should_panic(expected = "k must be")]
    fn zero_k_rejected() {
        let q = matrix(1, 64, 8);
        let _ = GpuEngine::new(devices::gtx_980()).identity_search_topk(&q, &q, 0);
    }
}
