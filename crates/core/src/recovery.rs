//! Recovery policy and accounting for fault-tolerant engine runs.
//!
//! The engine's normal pipeline (engine.rs, streaming.rs) assumes a healthy
//! device. When a [`FaultPlan`](snp_faults::FaultPlan) is armed on the
//! engine, runs route through a *recovering* variant built from the pieces
//! in this module (DESIGN.md §10):
//!
//! * bounded per-chunk **retry** with exponential virtual-time backoff;
//! * chunk-granular **checkpointing** — a chunk whose readback checksum
//!   verified is never recomputed, so device loss resumes from the last
//!   verified chunk, not from chunk zero;
//! * per-queue **circuit breaking** — a queue that keeps failing is
//!   quarantined and replaced;
//! * **CPU fallback** — on permanent device loss the remaining chunks run
//!   on the BLIS-style CPU engine and the run completes degraded.
//!
//! Every action is counted both in the returned [`RecoverySummary`] and on
//! process-wide `engine.recovery.*` metrics (snp-trace), and the summary
//! reconciles against the fault plan's injection stats — the invariant the
//! property tests in `tests/fault_recovery_properties.rs` pin down: no
//! injected fault goes unaccounted, and none is silently absorbed into
//! wrong results.

use snp_faults::FaultStats;
use snp_trace::{LazyCounter, LazyHistogram};

/// Process-wide recovery counters (snp-trace `LazyCounter`s: one relaxed
/// atomic add when touched, nothing otherwise).
pub mod metrics {
    use super::{LazyCounter, LazyHistogram};

    /// Commands retried after a transient fault.
    pub static RETRIES: LazyCounter = LazyCounter::new("engine.recovery.retries");
    /// Virtual nanoseconds spent in retry backoff.
    pub static BACKOFF_NS: LazyCounter = LazyCounter::new("engine.recovery.backoff_ns");
    /// Distribution of individual retry backoff delays (the total above is
    /// this histogram's sum) — exposes whether exponential backoff actually
    /// escalated or every fault cleared on the first retry.
    pub static BACKOFF_DELAY_NS: LazyHistogram =
        LazyHistogram::new("engine.recovery.backoff_delay_ns");
    /// Corrupted readbacks caught by checksum comparison.
    pub static CORRUPTION_DETECTED: LazyCounter =
        LazyCounter::new("engine.recovery.corruption_detected");
    /// Chunks whose results were checkpointed (checksum-verified).
    pub static CHECKPOINT_CHUNKS: LazyCounter =
        LazyCounter::new("engine.recovery.checkpoint_chunks");
    /// Chunks completed on the CPU after device loss.
    pub static CPU_FALLBACK_CHUNKS: LazyCounter =
        LazyCounter::new("engine.recovery.cpu_fallback_chunks");
    /// Permanent device losses observed.
    pub static DEVICE_LOSS: LazyCounter = LazyCounter::new("engine.recovery.device_loss");
    /// Queues quarantined by the circuit breaker.
    pub static QUEUE_QUARANTINED: LazyCounter =
        LazyCounter::new("engine.recovery.queue_quarantined");
    /// Rows re-sharded onto surviving devices by multi-device failover.
    pub static FAILOVER_ROWS: LazyCounter = LazyCounter::new("engine.recovery.failover_rows");
}

/// Tunables for the recovery layer. `Copy`, embedded in `EngineOptions`,
/// and inert unless a fault plan is armed on the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryPolicy {
    /// Retries per command before the fault is surfaced (total attempts =
    /// `max_retries + 1`).
    pub max_retries: u32,
    /// Base backoff charged to the host clock before retry `i`
    /// (doubling each attempt: `backoff_ns << i`, capped at 20 doublings).
    pub backoff_ns: u64,
    /// Consecutive failures on one queue before the circuit breaker
    /// quarantines it and enqueues on a fresh replacement queue.
    pub quarantine_after: u32,
    /// Verify every functional readback against a device-side checksum and
    /// re-read on mismatch (the only defense against silent corruption).
    pub checksums: bool,
    /// Fall back to the CPU engine for remaining chunks on permanent
    /// device loss (otherwise loss surfaces as a typed error).
    pub cpu_fallback: bool,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            max_retries: 3,
            backoff_ns: 10_000,
            quarantine_after: 3,
            checksums: true,
            cpu_fallback: true,
        }
    }
}

impl RecoveryPolicy {
    /// Backoff before retry attempt `attempt` (0-based): exponential,
    /// overflow-safe.
    pub fn backoff_for(&self, attempt: u32) -> u64 {
        self.backoff_ns.saturating_mul(1u64 << attempt.min(20))
    }
}

/// What the recovery layer did during one run. Attached to run reports as
/// `Option<RecoverySummary>` — `None` means the run never armed a fault
/// plan and took the zero-overhead fast path.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoverySummary {
    /// Commands retried after transient faults (timeouts + launch fails).
    pub retries: u64,
    /// Retries caused by transfer timeouts.
    pub retries_timeout: u64,
    /// Retries caused by kernel launch failures.
    pub retries_launch: u64,
    /// Corrupted readbacks detected by checksum and re-read.
    pub corruption_detected: u64,
    /// Virtual nanoseconds the host spent backing off before retries.
    pub backoff_ns: u64,
    /// Queue stalls absorbed into the timeline (no action needed).
    pub stalls_absorbed: u64,
    /// Chunks whose results were checksum-verified and checkpointed.
    pub verified_chunks: usize,
    /// Total chunks in the run (GPU + fallback).
    pub total_chunks: usize,
    /// Queues quarantined by the circuit breaker.
    pub quarantined_queues: u64,
    /// Whether the device was permanently lost mid-run.
    pub device_lost: bool,
    /// On device loss: the first chunk index that had to be re-run
    /// (everything before it was checkpointed). `None` when no loss.
    pub resumed_from_chunk: Option<usize>,
    /// Chunks completed on the CPU engine after device loss.
    pub cpu_fallback_chunks: usize,
    /// Faults the armed plan actually injected, for reconciliation.
    pub injected: FaultStats,
}

impl RecoverySummary {
    /// Whether the run completed in degraded mode (device lost, finished
    /// on the CPU) rather than fully on the device.
    pub fn degraded(&self) -> bool {
        self.device_lost && self.cpu_fallback_chunks > 0
    }

    /// One-line human rendering for CLI reports.
    pub fn render_line(&self) -> String {
        format!(
            "recovery: {} retries ({} timeout, {} launch), {} corruptions detected, \
             {} stalls absorbed, {}/{} chunks verified, {} quarantined queue(s){}",
            self.retries,
            self.retries_timeout,
            self.retries_launch,
            self.corruption_detected,
            self.stalls_absorbed,
            self.verified_chunks,
            self.total_chunks,
            self.quarantined_queues,
            if self.device_lost {
                format!(
                    ", DEVICE LOST (resumed from chunk {}, {} chunk(s) on CPU)",
                    self.resumed_from_chunk.unwrap_or(0),
                    self.cpu_fallback_chunks
                )
            } else {
                String::new()
            }
        )
    }
}

/// Per-queue consecutive-failure tracker — the circuit breaker. A success
/// resets the count; `quarantine_after` consecutive failures trip it.
#[derive(Debug, Clone, Default)]
pub struct QueueHealth {
    consecutive_failures: u32,
    quarantined: bool,
}

impl QueueHealth {
    /// Records a successful command.
    pub fn ok(&mut self) {
        self.consecutive_failures = 0;
    }

    /// Records a failed command; returns `true` if this failure trips the
    /// breaker (the caller should quarantine and replace the queue).
    pub fn fail(&mut self, policy: &RecoveryPolicy) -> bool {
        self.consecutive_failures += 1;
        if !self.quarantined && self.consecutive_failures >= policy.quarantine_after {
            self.quarantined = true;
            return true;
        }
        false
    }

    /// Whether the breaker has tripped.
    pub fn is_quarantined(&self) -> bool {
        self.quarantined
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_and_saturates() {
        let p = RecoveryPolicy {
            backoff_ns: 100,
            ..Default::default()
        };
        assert_eq!(p.backoff_for(0), 100);
        assert_eq!(p.backoff_for(1), 200);
        assert_eq!(p.backoff_for(3), 800);
        // Deep attempts cap the shift instead of overflowing.
        assert_eq!(p.backoff_for(63), 100 * (1 << 20));
        let huge = RecoveryPolicy {
            backoff_ns: u64::MAX / 2,
            ..Default::default()
        };
        assert_eq!(huge.backoff_for(10), u64::MAX);
    }

    #[test]
    fn circuit_breaker_trips_once_after_threshold() {
        let p = RecoveryPolicy {
            quarantine_after: 3,
            ..Default::default()
        };
        let mut h = QueueHealth::default();
        assert!(!h.fail(&p));
        assert!(!h.fail(&p));
        h.ok(); // success resets the streak
        assert!(!h.fail(&p));
        assert!(!h.fail(&p));
        assert!(h.fail(&p), "third consecutive failure trips");
        assert!(h.is_quarantined());
        assert!(!h.fail(&p), "a tripped breaker does not re-trip");
    }

    #[test]
    fn summary_degraded_and_render() {
        let mut s = RecoverySummary::default();
        assert!(!s.degraded());
        s.device_lost = true;
        assert!(!s.degraded(), "loss without fallback is not degraded");
        s.cpu_fallback_chunks = 2;
        s.resumed_from_chunk = Some(5);
        assert!(s.degraded());
        let line = s.render_line();
        assert!(
            line.contains("DEVICE LOST") && line.contains("chunk 5"),
            "{line}"
        );
    }
}
