//! Pass planning for devices whose global memory cannot hold the problem.
//!
//! "For GPUs that do not support matrices of the size required by the
//! database or resulting output matrix (e.g. the GTX 980), the problem must
//! be broken down into smaller tile sizes. This can be done naturally due to
//! the tiling approach taken in our framework." (paper §VI-E-2.)
//!
//! The planner splits the output into `m × n` passes such that, with double
//! buffering (two B buffers, two C staging buffers), every buffer respects
//! `CL_DEVICE_MAX_MEM_ALLOC_SIZE` and the working set respects total global
//! memory. Chunk boundaries align to the blocking factors so no pass ends in
//! a partial register tile unless the matrix itself does.

use snp_gpu_model::{DeviceSpec, KernelConfig};

/// A half-open row range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Chunk {
    /// First row.
    pub lo: usize,
    /// One past the last row.
    pub hi: usize,
}

impl Chunk {
    /// Rows in the chunk.
    pub fn len(&self) -> usize {
        self.hi - self.lo
    }

    /// Whether the chunk is empty.
    pub fn is_empty(&self) -> bool {
        self.lo >= self.hi
    }
}

/// A complete pass plan: the cross product of `m_chunks × n_chunks`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TilePlan {
    /// Chunks of the A (query/SNP) rows.
    pub m_chunks: Vec<Chunk>,
    /// Chunks of the B (database) rows.
    pub n_chunks: Vec<Chunk>,
    /// Shared dimension in device words.
    pub k_words: usize,
    /// Whether B/C use two buffers each (double buffering).
    pub double_buffered: bool,
}

impl TilePlan {
    /// Number of passes (kernel launches).
    pub fn passes(&self) -> usize {
        self.m_chunks.len() * self.n_chunks.len()
    }

    /// Largest A-chunk buffer size in words.
    pub fn a_buffer_words(&self) -> usize {
        self.m_chunks.iter().map(|c| c.len()).max().unwrap_or(0) * self.k_words
    }

    /// Largest B-chunk buffer size in words.
    pub fn b_buffer_words(&self) -> usize {
        self.n_chunks.iter().map(|c| c.len()).max().unwrap_or(0) * self.k_words
    }

    /// Largest C-chunk buffer size in words.
    pub fn c_buffer_words(&self) -> usize {
        let m = self.m_chunks.iter().map(|c| c.len()).max().unwrap_or(0);
        let n = self.n_chunks.iter().map(|c| c.len()).max().unwrap_or(0);
        m * n
    }

    /// Total device bytes the plan's working set occupies.
    pub fn working_set_bytes(&self) -> u64 {
        let copies = if self.double_buffered { 2 } else { 1 };
        ((self.a_buffer_words() + copies * (self.b_buffer_words() + self.c_buffer_words())) as u64)
            * 4
    }
}

/// Errors from pass planning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// Even a single blocking tile cannot fit the device limits.
    Unsatisfiable {
        /// Human-readable reason.
        reason: String,
    },
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::Unsatisfiable { reason } => write!(f, "cannot plan passes: {reason}"),
        }
    }
}

impl std::error::Error for PlanError {}

fn chunks_of(total: usize, chunk: usize) -> Vec<Chunk> {
    (0..total)
        .step_by(chunk.max(1))
        .map(|lo| Chunk {
            lo,
            hi: (lo + chunk).min(total),
        })
        .collect()
}

/// Plans passes for an `m × n × k_words` problem on `dev` under `cfg`.
///
/// Strategy: keep all of A resident if possible (splitting `m` only when the
/// A or C allocations demand it), then choose the largest `n` chunk —
/// aligned to `n_r` — whose B and C buffers satisfy both the per-allocation
/// cap and, together with A and the double-buffer copies, total memory.
pub fn plan_passes(
    dev: &DeviceSpec,
    cfg: &KernelConfig,
    m: usize,
    n: usize,
    k_words: usize,
    double_buffered: bool,
) -> Result<TilePlan, PlanError> {
    assert!(m > 0 && n > 0 && k_words > 0, "problem must be non-empty");
    let max_alloc_words = (dev.max_alloc_bytes / 4) as usize;
    let total_words = (dev.global_mem_bytes / 4) as usize;
    let copies = if double_buffered { 2 } else { 1 };

    // Smallest viable chunks: one blocking tile each.
    let m_min = cfg.m_c.min(m);
    let n_min = cfg.n_r.min(n);
    if m_min * k_words > max_alloc_words {
        return Err(PlanError::Unsatisfiable {
            reason: format!(
                "a single {}-row A tile of {} words exceeds the max allocation",
                m_min,
                m_min * k_words
            ),
        });
    }
    if n_min * k_words > max_alloc_words || m_min * n_min > max_alloc_words {
        return Err(PlanError::Unsatisfiable {
            reason: "a single B or C tile exceeds the max allocation".to_string(),
        });
    }
    let min_total = m_min * k_words + copies * (n_min * k_words + m_min * n_min);
    if min_total > total_words {
        return Err(PlanError::Unsatisfiable {
            reason: format!("minimum working set of {min_total} words exceeds global memory"),
        });
    }

    // Choose the m chunk: as much of A as the allocation cap allows (C rows
    // also bound it once n_chunk is fixed, so iterate coarsely).
    let mut m_chunk = m.min((max_alloc_words / k_words).max(m_min));
    m_chunk = align_chunk(m_chunk, cfg.m_c, m);
    loop {
        // Largest n chunk under the caps for this m chunk.
        let by_alloc_b = max_alloc_words / k_words;
        let by_alloc_c = max_alloc_words / m_chunk;
        let a_words = m_chunk * k_words;
        let budget = total_words.saturating_sub(a_words) / copies;
        // n*(k + m_chunk) <= budget
        let by_total = budget / (k_words + m_chunk);
        let n_chunk = n.min(by_alloc_b.min(by_alloc_c).min(by_total));
        if n_chunk >= n_min {
            let n_chunk = align_chunk(n_chunk, cfg.n_r, n);
            return Ok(TilePlan {
                m_chunks: chunks_of(m, m_chunk),
                n_chunks: chunks_of(n, n_chunk),
                k_words,
                double_buffered,
            });
        }
        // Shrink m and retry.
        if m_chunk <= m_min {
            return Err(PlanError::Unsatisfiable {
                reason: "no feasible chunking found".to_string(),
            });
        }
        m_chunk = align_chunk(m_chunk / 2, cfg.m_c, m).max(m_min);
    }
}

/// Rounds `chunk` down to a multiple of `unit` (but never below one unit or
/// above `total`).
fn align_chunk(chunk: usize, unit: usize, total: usize) -> usize {
    if chunk >= total {
        return total;
    }
    ((chunk / unit.max(1)).max(1) * unit.max(1)).min(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use snp_gpu_model::devices;
    use snp_gpu_model::presets::preset_for;
    use snp_gpu_model::Algorithm;

    fn fastid_cfg(dev: &DeviceSpec) -> KernelConfig {
        preset_for(dev, Algorithm::IdentitySearch).unwrap()
    }

    #[test]
    fn small_problems_fit_one_pass() {
        let dev = devices::titan_v();
        let cfg = preset_for(&dev, Algorithm::LinkageDisequilibrium).unwrap();
        let plan = plan_passes(&dev, &cfg, 10_000, 10_000, 320, true).unwrap();
        assert_eq!(plan.passes(), 1);
        assert!(plan.working_set_bytes() <= dev.global_mem_bytes);
    }

    #[test]
    fn ndis_scale_database_is_split_on_gtx980() {
        // 32 queries x 20.97 M profiles x 32 words: C alone is 2.7 GB but the
        // GTX 980 max allocation is 0.983 GiB, so the database must be chunked.
        let dev = devices::gtx_980();
        let cfg = fastid_cfg(&dev);
        let plan = plan_passes(&dev, &cfg, 32, 20_971_520, 32, true).unwrap();
        assert_eq!(plan.m_chunks.len(), 1);
        assert!(plan.n_chunks.len() > 1, "database must be chunked");
        assert!(plan.working_set_bytes() <= dev.global_mem_bytes);
        assert!((plan.b_buffer_words() as u64) * 4 <= dev.max_alloc_bytes);
        assert!((plan.c_buffer_words() as u64) * 4 <= dev.max_alloc_bytes);
        // Chunks cover the database exactly, without overlap.
        let covered: usize = plan.n_chunks.iter().map(Chunk::len).sum();
        assert_eq!(covered, 20_971_520);
        for w in plan.n_chunks.windows(2) {
            assert_eq!(w[0].hi, w[1].lo);
        }
    }

    #[test]
    fn titan_v_fits_larger_chunks_than_gtx() {
        let gtx = devices::gtx_980();
        let titan = devices::titan_v();
        let pg = plan_passes(&gtx, &fastid_cfg(&gtx), 32, 20_971_520, 32, true).unwrap();
        let pt = plan_passes(&titan, &fastid_cfg(&titan), 32, 20_971_520, 32, true).unwrap();
        assert!(
            pt.n_chunks.len() < pg.n_chunks.len(),
            "more memory, fewer passes"
        );
    }

    #[test]
    fn n_chunks_align_to_n_r() {
        let dev = devices::gtx_980();
        let cfg = fastid_cfg(&dev);
        let plan = plan_passes(&dev, &cfg, 32, 5_000_000, 32, true).unwrap();
        for c in &plan.n_chunks[..plan.n_chunks.len() - 1] {
            assert_eq!(c.len() % cfg.n_r, 0, "interior chunks align to n_r");
        }
    }

    #[test]
    fn double_buffering_costs_memory() {
        let dev = devices::gtx_980();
        let cfg = fastid_cfg(&dev);
        let single = plan_passes(&dev, &cfg, 32, 20_971_520, 32, false).unwrap();
        let double = plan_passes(&dev, &cfg, 32, 20_971_520, 32, true).unwrap();
        assert!(
            double.n_chunks.len() >= single.n_chunks.len(),
            "double buffering halves the chunk budget"
        );
    }

    #[test]
    fn unsatisfiable_when_one_tile_exceeds_alloc() {
        let dev = devices::gtx_980();
        let cfg = fastid_cfg(&dev);
        // k so large that one 32-row A tile exceeds the max allocation.
        let k = (dev.max_alloc_bytes / 4 / 32 + 1) as usize;
        let err = plan_passes(&dev, &cfg, 32, 1024, k, true).unwrap_err();
        assert!(matches!(err, PlanError::Unsatisfiable { .. }));
        assert!(err.to_string().contains("cannot plan"));
    }

    #[test]
    fn chunk_arithmetic() {
        let cs = chunks_of(10, 4);
        assert_eq!(cs.len(), 3);
        assert_eq!((cs[2].lo, cs[2].hi, cs[2].len()), (8, 10, 2));
        assert!(!cs[0].is_empty());
        assert_eq!(align_chunk(100, 32, 1000), 96);
        assert_eq!(align_chunk(100, 32, 50), 50);
        assert_eq!(align_chunk(10, 32, 1000), 32);
    }
}
