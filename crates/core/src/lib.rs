//! # snp-core — the portable GPU framework for SNP comparisons
//!
//! This crate is the paper's primary contribution, rebuilt in Rust against
//! the simulated model GPU: a single parameterized kernel (the third BLIS
//! loop and its content — A tile staged in shared memory, B streamed from
//! global, a register tile of `γ` accumulators), specialized per device by
//! exactly four configuration values `m_c, m_r, k_c, n_r` plus a core grid,
//! all derivable from hardware features via the §V-A analytical model.
//!
//! * [`autoconf`] — configuration selection (Table II presets or Eqs. 4–7);
//! * [`kernel`] — the parameterized kernel: timing program + functional
//!   executor + launch planning;
//! * [`tiling`] — pass planning under global-memory/allocation limits
//!   (§VI-E-2);
//! * [`engine`] — end-to-end orchestration with double buffering (§VI-A-1);
//! * [`cpu_model`] — the modeled Xeon E5-2620 v2 reference of Fig. 6.
//!
//! ```
//! use snp_core::{GpuEngine, Algorithm};
//! use snp_bitmat::{BitMatrix, CompareOp, reference_gamma};
//! use snp_gpu_model::devices;
//!
//! let panel = BitMatrix::<u64>::from_fn(48, 640, |r, c| (r * 31 + c * 7) % 5 == 0);
//! let engine = GpuEngine::new(devices::titan_v());
//! let run = engine.ld_self(&panel).unwrap();
//! let want = reference_gamma(&panel, &panel, CompareOp::And);
//! assert_eq!(run.gamma.unwrap().first_mismatch(&want), None);
//! assert!(run.timing.end_to_end_ns > 0);
//! ```

#![warn(missing_docs)]

pub mod autoconf;
pub mod cpu_model;
pub mod engine;
pub mod kernel;
pub mod multi;
pub mod profile;
pub mod recovery;
pub mod streaming;
pub mod tiling;

pub use autoconf::{compare_op, config_for, word_op_kind, MixtureStrategy};
pub use cpu_model::CpuModel;
pub use engine::{
    device_words, device_words_into, EngineError, EngineOptions, ExecMode, GpuEngine, RunReport,
    Timing,
};
pub use kernel::{
    execute_gamma, execute_gamma_mma, group_geometry, lowering_for, tile_program, tile_program_mma,
    tile_program_scalar, tile_program_with, GroupGeometry, KernelPlan, Lowering,
};
pub use multi::{dgx2_like, MultiGpuEngine, MultiRunReport};
pub use profile::{
    profile_cell, relative_drift, BandwidthReport, CellProfile, DriftReport, FuUtilization,
    Occupancy, Roofline, RooflineBound, ANALYTIC_DRIFT_TOLERANCE, CRITPATH_DRIFT_TOLERANCE,
    ENGINE_DRIFT_TOLERANCE,
};
pub use recovery::{QueueHealth, RecoveryPolicy, RecoverySummary};
pub use snp_faults::{DeviceFault, FaultKind, FaultPlan, FaultProfile, FaultStats};
pub use snp_gpu_model::config::Algorithm;
pub use snp_gpu_sim::host::CostScale;
pub use streaming::{topk_of_row, Match, TopKReport};
pub use tiling::{plan_passes, Chunk, PlanError, TilePlan};
