//! The modeled CPU reference for end-to-end comparisons.
//!
//! Fig. 6's CPU line is not re-measured by the paper — it is "taken from
//! \[11\]", i.e. the Xeon E5-2620 v2 workstation running the BLIS-based LD
//! implementation at 80–90 % of its theoretical popcount peak. We model it
//! the same way: time = word-ops ÷ (peak × efficiency). The *runnable* CPU
//! engine (`snp-cpu`) exists separately and is benchmarked with Criterion on
//! the host machine; this model exists so GPU-vs-CPU comparisons use the
//! paper's machine, not ours.

use snp_gpu_model::peak::peak;
use snp_gpu_model::{devices, DeviceSpec, WordOpKind};

/// An analytically modeled CPU.
#[derive(Debug, Clone)]
pub struct CpuModel {
    spec: DeviceSpec,
    efficiency: f64,
}

impl CpuModel {
    /// The paper's reference workstation at the mid-point of the 80–90 %
    /// efficiency range \[11\] reports.
    pub fn ivy_bridge_workstation() -> Self {
        CpuModel {
            spec: devices::xeon_e5_2620_v2(),
            efficiency: 0.85,
        }
    }

    /// A model from an arbitrary spec and efficiency in `(0, 1]`.
    pub fn new(spec: DeviceSpec, efficiency: f64) -> Self {
        assert!(
            efficiency > 0.0 && efficiency <= 1.0,
            "efficiency {efficiency} outside (0, 1]"
        );
        CpuModel { spec, efficiency }
    }

    /// The underlying device spec.
    pub fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    /// Sustained word-op rate (native CPU words) in ops/second.
    pub fn sustained_word_ops_per_sec(&self, kind: WordOpKind) -> f64 {
        peak(&self.spec, kind).word_ops_per_sec * self.efficiency
    }

    /// Modeled execution time for `m × n` comparisons over `k_words_native`
    /// CPU words (64-bit on the reference machine), in nanoseconds. The data
    /// is host-resident, so no transfer or initialization cost applies.
    pub fn time_ns(&self, kind: WordOpKind, m: usize, n: usize, k_words_native: usize) -> f64 {
        let ops = m as f64 * n as f64 * k_words_native as f64;
        ops / self.sustained_word_ops_per_sec(kind) * 1e9
    }

    /// Convenience: modeled time for an operand with `bit_cols` sites.
    pub fn time_ns_for_bits(&self, kind: WordOpKind, m: usize, n: usize, bit_cols: usize) -> f64 {
        let k = bit_cols.div_ceil(self.spec.word_bits as usize);
        self.time_ns(kind, m, n, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_machine_rate() {
        let m = CpuModel::ivy_bridge_workstation();
        // 25.2 G word64-ops/s x 0.85 = 21.42 G/s.
        let r = m.sustained_word_ops_per_sec(WordOpKind::And);
        assert!((r / 1e9 - 21.42).abs() < 0.01, "got {}", r / 1e9);
    }

    #[test]
    fn time_scales_linearly() {
        let m = CpuModel::ivy_bridge_workstation();
        let t1 = m.time_ns(WordOpKind::And, 10_000, 10_000, 100);
        let t2 = m.time_ns(WordOpKind::And, 10_000, 10_000, 200);
        assert!((t2 / t1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn bit_columns_round_up_to_words() {
        let m = CpuModel::ivy_bridge_workstation();
        let a = m.time_ns_for_bits(WordOpKind::And, 10, 10, 65);
        let b = m.time_ns(WordOpKind::And, 10, 10, 2);
        assert_eq!(a, b);
    }

    #[test]
    fn ten_k_snp_sanity() {
        // 10k x 10k SNPs over 10k samples (157 u64 words): ~0.73 s — the
        // order of magnitude of [11]'s reported times.
        let m = CpuModel::ivy_bridge_workstation();
        let t_s = m.time_ns_for_bits(WordOpKind::And, 10_000, 10_000, 10_000) * 1e-9;
        assert!(t_s > 0.4 && t_s < 1.5, "got {t_s}");
    }

    #[test]
    #[should_panic(expected = "efficiency")]
    fn bad_efficiency_rejected() {
        let _ = CpuModel::new(devices::xeon_e5_2620_v2(), 1.5);
    }
}
