//! Configuration selection: the "configuration header" of the framework.
//!
//! The paper configures its parameterized OpenCL kernel through a header of
//! C macros holding `m_c, m_r, k_c, n_r` plus the core grid (§V). Here the
//! same role is played by [`KernelConfig`]: users either take a Table II
//! preset for the evaluated devices or let the analytical model (Eqs. 4–7)
//! derive values for a new device from its hardware features alone.

use snp_bitmat::CompareOp;
use snp_gpu_model::config::{derive_config, Algorithm, KernelConfig, McRule, ProblemShape};
use snp_gpu_model::presets::preset_for;
use snp_gpu_model::{DeviceSpec, WordOpKind};

/// How the engine executes mixture analysis (paper §II-C, §VI-E-1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MixtureStrategy {
    /// Emit the AND-NOT comparison directly. One fused logic issue on
    /// NVIDIA; an extra NOT on the shared Vega VALU pipe (Fig. 9).
    Direct,
    /// Pre-negate the database on the host so the kernel runs plain AND —
    /// "mixture analysis reduces down to the same computation as linkage
    /// disequilibrium".
    PreNegate,
}

/// Chooses the kernel configuration for a device/algorithm/problem triple:
/// the Table II preset when the device is one of the paper's three, else the
/// analytical derivation. The returned configuration is always validated
/// against the device.
pub fn config_for(dev: &DeviceSpec, algorithm: Algorithm, shape: ProblemShape) -> KernelConfig {
    let mut cfg =
        preset_for(dev, algorithm).unwrap_or_else(|| derive_config(dev, shape, McRule::Banks));
    // The preset grids assume problems large enough to occupy every core;
    // shrink the grid when the problem offers fewer tiles.
    let tiles_m = shape.m.div_ceil(cfg.m_c).max(1) as u32;
    let tiles_n = shape.n.div_ceil(cfg.n_r).max(1) as u32;
    cfg.grid_m = cfg.grid_m.min(tiles_m);
    cfg.grid_n = cfg.grid_n.min(tiles_n);
    let viol = cfg.violations(dev);
    assert!(
        viol.is_empty(),
        "{}: invalid configuration {cfg:?}: {viol:?}",
        dev.name
    );
    cfg
}

/// The word-level operator for an algorithm under a mixture strategy.
pub fn compare_op(algorithm: Algorithm, mixture: MixtureStrategy) -> CompareOp {
    match algorithm {
        Algorithm::LinkageDisequilibrium => CompareOp::And,
        Algorithm::IdentitySearch => CompareOp::Xor,
        Algorithm::MixtureAnalysis => match mixture {
            MixtureStrategy::Direct => CompareOp::AndNot,
            MixtureStrategy::PreNegate => CompareOp::And,
        },
    }
}

/// Maps a [`CompareOp`] onto the timing-model operator flavor.
pub fn word_op_kind(op: CompareOp) -> WordOpKind {
    match op {
        CompareOp::And => WordOpKind::And,
        CompareOp::Xor => WordOpKind::Xor,
        CompareOp::AndNot => WordOpKind::AndNot,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snp_gpu_model::devices;

    fn big_ld() -> ProblemShape {
        ProblemShape {
            m: 10_000,
            n: 10_000,
            k_words: 320,
        }
    }

    #[test]
    fn evaluated_devices_get_table2_presets() {
        let dev = devices::titan_v();
        let cfg = config_for(&dev, Algorithm::LinkageDisequilibrium, big_ld());
        assert_eq!(
            (cfg.n_r, cfg.k_c, cfg.grid_m, cfg.grid_n),
            (1024, 383, 80, 1)
        );
    }

    #[test]
    fn small_problems_shrink_the_grid() {
        let dev = devices::titan_v();
        let tiny = ProblemShape {
            m: 64,
            n: 2048,
            k_words: 32,
        };
        let cfg = config_for(&dev, Algorithm::IdentitySearch, tiny);
        assert_eq!(cfg.grid_m, 1);
        assert_eq!(cfg.grid_n, 2); // only 2 n_r tiles available
    }

    #[test]
    fn unknown_device_uses_analytical_model() {
        let mut dev = devices::gtx_980();
        dev.name = "GTX 1070".to_string(); // not in Table II
        let cfg = config_for(&dev, Algorithm::LinkageDisequilibrium, big_ld());
        assert!(cfg.violations(&dev).is_empty());
        assert_eq!(cfg.m_r, dev.n_vec as usize);
        assert_eq!(cfg.k_c, 383);
    }

    #[test]
    fn compare_op_selection() {
        use Algorithm::*;
        assert_eq!(
            compare_op(LinkageDisequilibrium, MixtureStrategy::Direct),
            CompareOp::And
        );
        assert_eq!(
            compare_op(IdentitySearch, MixtureStrategy::PreNegate),
            CompareOp::Xor
        );
        assert_eq!(
            compare_op(MixtureAnalysis, MixtureStrategy::Direct),
            CompareOp::AndNot
        );
        assert_eq!(
            compare_op(MixtureAnalysis, MixtureStrategy::PreNegate),
            CompareOp::And
        );
    }

    #[test]
    fn word_op_kind_roundtrip() {
        assert_eq!(word_op_kind(CompareOp::And), WordOpKind::And);
        assert_eq!(word_op_kind(CompareOp::Xor), WordOpKind::Xor);
        assert_eq!(word_op_kind(CompareOp::AndNot), WordOpKind::AndNot);
    }
}
