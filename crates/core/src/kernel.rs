//! The parameterized GPU kernel.
//!
//! This module is the Rust analogue of the paper's single OpenCL kernel
//! specialized by a configuration header (§V): it implements the *third BLIS
//! loop and its content* on the model GPU — load a slab of the A tile into
//! shared memory, stream B from global memory, accumulate an
//! `m_c × n_r` tile of `γ` in registers, writing results once at the end.
//!
//! Two artifacts are produced from one description:
//!
//! * a timing [`Program`] (per thread group, per tile job) consumed by the
//!   simulator's engines — this is where the Eqs. 4–7 parameters become
//!   instruction counts, and where fused-AND-NOT vs explicit-NOT vs
//!   pre-negation change the instruction mix (Fig. 9);
//! * a functional executor ([`execute_gamma`]) computing bit-exact results
//!   on the device's `u32` buffers, validated against the scalar reference.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use rayon::prelude::*;
use snp_bitmat::CompareOp;
use snp_gpu_model::{DeviceSpec, InstrClass, KernelConfig, MatrixUnitSpec};
use snp_gpu_sim::host::KernelCost;
use snp_gpu_sim::macro_engine::{
    device_fingerprint, estimate_core_cycles, kernel_time, memoized_core_cycles, KernelTime,
    Traffic,
};
use snp_gpu_sim::{Block, Instr, Program, Reg};

/// Per-thread-group geometry derived from a configuration (DESIGN.md §3;
/// the quantities of paper §V-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupGeometry {
    /// Resident thread groups per core (`N_cl × groups_per_cluster`).
    pub groups_per_core: u32,
    /// Output columns each thread accumulates (`v` = `n_r / (L · N_T)`).
    pub cols_per_thread: usize,
    /// Output rows each group covers across its sub-tiles.
    pub rows_per_group: usize,
    /// Total `γ` values held in each thread's registers
    /// (`m_c · n_r / (groups · N_T)`).
    pub outputs_per_thread: usize,
    /// Vectorized B loads per thread per k-step.
    pub b_loads: usize,
    /// Vectorized A (shared) loads per thread per k-step.
    pub a_loads: usize,
}

/// Derives the group geometry, panicking on configurations the device
/// cannot host (these are also caught by `KernelConfig::violations`).
pub fn group_geometry(dev: &DeviceSpec, cfg: &KernelConfig) -> GroupGeometry {
    let groups_per_core = cfg.groups_per_cluster * dev.n_clusters;
    assert!(
        groups_per_core <= dev.max_thread_groups * dev.n_clusters,
        "{} groups exceed the device limit",
        groups_per_core
    );
    let nt = dev.n_t as usize;
    let cols_per_group = cfg.n_r / cfg.groups_per_cluster as usize;
    assert!(
        cols_per_group.is_multiple_of(nt),
        "group columns {cols_per_group} must be a multiple of N_T {nt}"
    );
    let cols_per_thread = cols_per_group / nt;
    let outputs_per_thread = cfg.m_c * cfg.n_r / (groups_per_core as usize * nt);
    assert!(
        outputs_per_thread >= 1 && outputs_per_thread.is_multiple_of(cols_per_thread),
        "tile {}x{} does not distribute over {groups_per_core} groups of {nt} threads",
        cfg.m_c,
        cfg.n_r
    );
    let rows_per_group = outputs_per_thread / cols_per_thread;
    let nv = dev.n_vec as usize;
    GroupGeometry {
        groups_per_core,
        cols_per_thread,
        rows_per_group,
        outputs_per_thread,
        b_loads: cols_per_thread.div_ceil(nv),
        a_loads: rows_per_group.div_ceil(nv),
    }
}

/// How a tile program lowers the popcount inner product onto the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Lowering {
    /// The scalar logic/popc/add triple per packed word — every device
    /// executes this form; it is also the correctness oracle.
    Scalar,
    /// 1-bit matrix-unit fragments (`InstrClass::Mma`): one instruction
    /// retires an `frag_m × frag_n × frag_k_bits` AND+POPC / XOR+POPC tile.
    Mma,
}

impl Lowering {
    /// True when the lowering issues matrix-unit instructions.
    pub fn uses_matrix_unit(self) -> bool {
        self == Lowering::Mma
    }
}

/// Picks the lowering for a device × configuration pair: the matrix unit
/// whenever the device declares one *and* the group's output tile aligns to
/// its fragment shape; the scalar path otherwise. Fragment-k alignment is
/// not required — the builder zero-pads the final k-step, which is exact for
/// all three operators (padded words contribute no population count).
pub fn lowering_for(dev: &DeviceSpec, cfg: &KernelConfig) -> Lowering {
    let Some(mu) = dev.matrix_unit else {
        return Lowering::Scalar;
    };
    let geo = group_geometry(dev, cfg);
    let cols_per_group = geo.cols_per_thread * dev.n_t as usize;
    let aligned = geo.rows_per_group.is_multiple_of(mu.frag_m as usize)
        && cols_per_group.is_multiple_of(mu.frag_n as usize);
    if aligned {
        Lowering::Mma
    } else {
        Lowering::Scalar
    }
}

/// Builds the timing program one thread group executes for one
/// `m_c × n_r` tile job spanning the full shared dimension of `k_words`
/// (internally sliced into `k_c`-word A slabs, with registers carrying the
/// accumulators across slabs). Dispatches to the matrix-unit form when
/// [`lowering_for`] selects it, the scalar form otherwise.
pub fn tile_program(
    dev: &DeviceSpec,
    cfg: &KernelConfig,
    op: CompareOp,
    k_words: usize,
) -> Program {
    tile_program_with(dev, cfg, op, k_words, lowering_for(dev, cfg))
}

/// [`tile_program`] with the lowering pinned by the caller (the recovery
/// path forces [`Lowering::Scalar`] even on matrix-unit devices).
pub fn tile_program_with(
    dev: &DeviceSpec,
    cfg: &KernelConfig,
    op: CompareOp,
    k_words: usize,
    lowering: Lowering,
) -> Program {
    match lowering {
        Lowering::Scalar => tile_program_scalar(dev, cfg, op, k_words),
        Lowering::Mma => tile_program_mma(dev, cfg, op, k_words),
    }
}

/// The scalar-popcount tile program (the paper's §V kernel verbatim): one
/// logic/popc/add triple per packed word per output.
pub fn tile_program_scalar(
    dev: &DeviceSpec,
    cfg: &KernelConfig,
    op: CompareOp,
    k_words: usize,
) -> Program {
    let geo = group_geometry(dev, cfg);
    // Register map: [accumulators][temps][a vectors][b vectors][scalar]
    let n_out = geo.outputs_per_thread;
    let acc0: Reg = 0;
    let tmp0: Reg = n_out as Reg;
    let a0: Reg = (2 * n_out) as Reg;
    let b0: Reg = a0 + geo.a_loads as Reg;
    let scalar_reg: Reg = b0 + geo.b_loads as Reg;

    // One k-step body: vectorized B loads, vectorized A shared loads, then
    // the combine/popcount/accumulate triples (plus a NOT per use on devices
    // without fusion), plus loop bookkeeping.
    let mut body: Vec<Instr> = Vec::new();
    for l in 0..geo.b_loads {
        body.push(Instr::load_global(b0 + l as Reg, &[]));
    }
    for l in 0..geo.a_loads {
        // Conflict-free by construction: m_c = N_b aligns A rows to banks.
        body.push(Instr::load_shared(a0 + l as Reg, &[], 1));
    }
    let nv = dev.n_vec as usize;
    for r in 0..geo.rows_per_group {
        let areg = a0 + (r / nv) as Reg;
        for j in 0..geo.cols_per_thread {
            let breg = b0 + (j / nv) as Reg;
            let out = r * geo.cols_per_thread + j;
            let tmp = tmp0 + out as Reg;
            let acc = acc0 + out as Reg;
            match op {
                CompareOp::And | CompareOp::Xor => {
                    body.push(Instr::arith(InstrClass::Logic, tmp, &[areg, breg]));
                }
                CompareOp::AndNot => {
                    if dev.fused_andnot {
                        // LOP3-style single issue.
                        body.push(Instr::arith(InstrClass::Logic, tmp, &[areg, breg]));
                    } else {
                        body.push(Instr::arith(InstrClass::Not, tmp, &[breg]));
                        body.push(Instr::arith(InstrClass::Logic, tmp, &[areg, tmp]));
                    }
                }
            }
            body.push(Instr::arith(InstrClass::Popc, tmp, &[tmp]));
            body.push(Instr::arith(InstrClass::IntAdd, acc, &[acc, tmp]));
        }
    }
    // Loop bookkeeping: induction update + address increment.
    body.push(Instr::arith(InstrClass::Scalar, scalar_reg, &[scalar_reg]));
    body.push(Instr::arith(
        InstrClass::Scalar,
        scalar_reg + 1,
        &[scalar_reg + 1],
    ));

    // Prologue per slab: stage the A slab from global into shared memory.
    let slab_words = cfg.k_c.min(k_words.max(1));
    let stage_loads = (cfg.m_c * slab_words)
        .div_ceil(geo.groups_per_core as usize * dev.n_t as usize * nv)
        .max(1);
    let mut prologue: Vec<Instr> = Vec::with_capacity(stage_loads * 2);
    let stage0: Reg = scalar_reg + 2;
    for s in 0..stage_loads {
        prologue.push(Instr::load_global(stage0 + s as Reg, &[]));
        prologue.push(Instr::store_shared(&[stage0 + s as Reg], 1));
    }

    // Epilogue: write the register tile to global C.
    let stores = n_out.div_ceil(nv);
    let mut epilogue: Vec<Instr> = Vec::with_capacity(stores);
    for s in 0..stores {
        let first = (s * nv).min(n_out - 1) as Reg;
        epilogue.push(Instr::store_global(&[acc0 + first]));
    }

    let mut blocks = Vec::new();
    let mut remaining = k_words;
    while remaining > 0 {
        let slab = cfg.k_c.min(remaining);
        blocks.push(Block::once(prologue.clone()));
        blocks.push(Block::looped(slab as u32, body.clone()));
        remaining -= slab;
    }
    blocks.push(Block::once(epilogue));
    Program::new(blocks)
}

/// The matrix-unit tile program: the group's `rows_per_group × cols_per_group`
/// output tile is carved into `frag_m × frag_n` fragments, and the k loop
/// advances `frag_k_words` packed words per trip, each fragment consuming one
/// `mma` issue (AND+POPC or XOR+POPC with 32-bit accumulation). Loads stage
/// the same A slab and stream the same B panel as the scalar form — only the
/// arithmetic inner loop changes. The final k-step is zero-padded to the
/// fragment depth, which is exact for every operator (`popc(op(x, 0))`
/// contributes nothing for AND/XOR, and padded A words are 0 for AND-NOT).
pub fn tile_program_mma(
    dev: &DeviceSpec,
    cfg: &KernelConfig,
    op: CompareOp,
    k_words: usize,
) -> Program {
    let mu = dev
        .matrix_unit
        .expect("MMA lowering requires a device matrix unit");
    let geo = group_geometry(dev, cfg);
    let nt = dev.n_t as usize;
    let nv = dev.n_vec as usize;
    let cols_per_group = geo.cols_per_thread * nt;
    let fkw = mu.frag_k_words(dev.word_bits).max(1) as usize;
    assert!(
        geo.rows_per_group.is_multiple_of(mu.frag_m as usize)
            && cols_per_group.is_multiple_of(mu.frag_n as usize),
        "group tile {}x{cols_per_group} does not align to {}x{} fragments",
        geo.rows_per_group,
        mu.frag_m,
        mu.frag_n
    );
    let frag_rows = geo.rows_per_group / mu.frag_m as usize;
    let frag_cols = cols_per_group / mu.frag_n as usize;
    let n_frags = frag_rows * frag_cols;

    // Per-thread loads per fragment k-step: the group cooperatively fetches
    // `cols_per_group × frag_k_words` B words and `rows_per_group ×
    // frag_k_words` A words, spread over N_T threads and vector width N_vec.
    let b_loads = (cols_per_group * fkw).div_ceil(nt * nv).max(1);
    let a_loads = (geo.rows_per_group * fkw).div_ceil(nt * nv).max(1);

    // Register map: [fragment accumulators][a fragments][b fragments][scalar].
    let acc0: Reg = 0;
    let a0: Reg = n_frags as Reg;
    let b0: Reg = a0 + a_loads as Reg;
    let scalar_reg: Reg = b0 + b_loads as Reg;

    let mut body: Vec<Instr> = Vec::new();
    for l in 0..b_loads {
        body.push(Instr::load_global(b0 + l as Reg, &[]));
    }
    for l in 0..a_loads {
        // Conflict-free: fragment rows stay bank-aligned like the scalar form.
        body.push(Instr::load_shared(a0 + l as Reg, &[], 1));
    }
    if op == CompareOp::AndNot && !dev.fused_andnot {
        // Without a fused form the B fragment is negated once per load —
        // off the matrix pipe, charged to the NOT pipeline.
        for l in 0..b_loads {
            body.push(Instr::arith(
                InstrClass::Not,
                b0 + l as Reg,
                &[b0 + l as Reg],
            ));
        }
    }
    for f in 0..n_frags {
        let fr = f / frag_cols;
        let fc = f % frag_cols;
        let areg = a0 + (fr * a_loads / frag_rows) as Reg;
        let breg = b0 + (fc * b_loads / frag_cols) as Reg;
        let acc = acc0 + f as Reg;
        // Loop-carried accumulation: the fragment op reads and writes its
        // own accumulator, so fragments are independent of each other.
        body.push(Instr::arith(InstrClass::Mma, acc, &[areg, breg, acc]));
    }
    body.push(Instr::arith(InstrClass::Scalar, scalar_reg, &[scalar_reg]));
    body.push(Instr::arith(
        InstrClass::Scalar,
        scalar_reg + 1,
        &[scalar_reg + 1],
    ));

    // Prologue per slab: identical A staging to the scalar form.
    let slab_words = cfg.k_c.min(k_words.max(1));
    let stage_loads = (cfg.m_c * slab_words)
        .div_ceil(geo.groups_per_core as usize * nt * nv)
        .max(1);
    let mut prologue: Vec<Instr> = Vec::with_capacity(stage_loads * 2);
    let stage0: Reg = scalar_reg + 2;
    for s in 0..stage_loads {
        prologue.push(Instr::load_global(stage0 + s as Reg, &[]));
        prologue.push(Instr::store_shared(&[stage0 + s as Reg], 1));
    }

    // Epilogue: the same per-thread output volume as the scalar form, read
    // out of the fragment accumulators.
    let stores = geo.outputs_per_thread.div_ceil(nv);
    let mut epilogue: Vec<Instr> = Vec::with_capacity(stores);
    for s in 0..stores {
        epilogue.push(Instr::store_global(&[acc0 + (s % n_frags) as Reg]));
    }

    let mut blocks = Vec::new();
    let mut remaining = k_words;
    while remaining > 0 {
        let slab = cfg.k_c.min(remaining);
        blocks.push(Block::once(prologue.clone()));
        blocks.push(Block::looped(slab.div_ceil(fkw) as u32, body.clone()));
        remaining -= slab;
    }
    blocks.push(Block::once(epilogue));
    Program::new(blocks)
}

/// Cache key for the per-job cycle estimate of a tile program.
///
/// [`tile_program`] and the group geometry are pure functions of
/// `(dev, cfg, op, k_words)`, so this key is computable *without* building
/// the program — on a cache hit [`KernelPlan::new`] skips both program
/// construction and the analytic estimate. That is the hot path of
/// configuration sweeps and multi-pass launches, where thousands of plans
/// share a handful of distinct tile programs.
fn plan_timing_key(
    dev: &DeviceSpec,
    cfg: &KernelConfig,
    op: CompareOp,
    k_words: usize,
    lowering: Lowering,
) -> u64 {
    let mut h = DefaultHasher::new();
    "snp-core::kernel::plan".hash(&mut h);
    device_fingerprint(dev).hash(&mut h);
    // KernelConfig cannot derive Hash workspace-wide; its fields are ints.
    (cfg.m_c, cfg.m_r, cfg.k_c, cfg.n_r).hash(&mut h);
    (cfg.grid_m, cfg.grid_n, cfg.groups_per_cluster).hash(&mut h);
    (op, k_words, lowering).hash(&mut h);
    h.finish()
}

/// A fully planned kernel launch for one pass of `m_pass × n_pass` outputs
/// over `k_words` shared words.
#[derive(Debug, Clone)]
pub struct KernelPlan {
    /// The configuration in force.
    pub config: KernelConfig,
    /// The word operator.
    pub op: CompareOp,
    /// Tile jobs each core executes.
    pub jobs_per_core: u64,
    /// Cores with work.
    pub active_cores: u32,
    /// Estimated cycles per core.
    pub core_cycles: f64,
    /// Global traffic of the pass.
    pub traffic: Traffic,
    /// Logical word-ops of the pass (throughput denominator).
    pub word_ops: u128,
    /// Resident thread groups per core.
    pub groups_per_core: u32,
    /// How the inner product was lowered (matrix unit vs scalar popcount).
    pub lowering: Lowering,
}

impl KernelPlan {
    /// Plans a pass: distributes `tiles_m × tiles_n` tile jobs over the
    /// configured core grid and estimates per-core cycles from the tile
    /// program via the macro engine.
    pub fn new(
        dev: &DeviceSpec,
        cfg: &KernelConfig,
        op: CompareOp,
        m_pass: usize,
        n_pass: usize,
        k_words: usize,
    ) -> KernelPlan {
        Self::with_lowering(
            dev,
            cfg,
            op,
            m_pass,
            n_pass,
            k_words,
            lowering_for(dev, cfg),
        )
    }

    /// [`KernelPlan::new`] with the lowering pinned by the caller. The
    /// recovery path uses this to force the scalar-popcount plan on
    /// matrix-unit devices after a matrix-path fault.
    pub fn with_lowering(
        dev: &DeviceSpec,
        cfg: &KernelConfig,
        op: CompareOp,
        m_pass: usize,
        n_pass: usize,
        k_words: usize,
        lowering: Lowering,
    ) -> KernelPlan {
        assert!(
            m_pass > 0 && n_pass > 0 && k_words > 0,
            "pass must be non-empty"
        );
        let geo = group_geometry(dev, cfg);
        let tiles_m = m_pass.div_ceil(cfg.m_c) as u64;
        let tiles_n = n_pass.div_ceil(cfg.n_r) as u64;
        let grid_m = (cfg.grid_m as u64).min(tiles_m).max(1);
        let grid_n = (cfg.grid_n as u64).min(tiles_n).max(1);
        let jobs_per_core = tiles_m.div_ceil(grid_m) * tiles_n.div_ceil(grid_n);
        let per_job =
            memoized_core_cycles(plan_timing_key(dev, cfg, op, k_words, lowering), || {
                let program = tile_program_with(dev, cfg, op, k_words, lowering);
                estimate_core_cycles(dev, &program, geo.groups_per_core)
            });
        let kw = k_words as u64;
        let traffic = Traffic {
            read_bytes: tiles_m * tiles_n * (cfg.m_c as u64 + cfg.n_r as u64) * kw * 4,
            write_bytes: (m_pass as u64) * (n_pass as u64) * 4,
        };
        KernelPlan {
            config: *cfg,
            op,
            jobs_per_core,
            active_cores: (grid_m * grid_n) as u32,
            core_cycles: per_job * jobs_per_core as f64,
            traffic,
            word_ops: m_pass as u128 * n_pass as u128 * k_words as u128,
            groups_per_core: geo.groups_per_core,
            lowering,
        }
    }

    /// The host-API cost descriptor for this plan.
    pub fn cost(&self) -> KernelCost {
        KernelCost::Analytic {
            core_cycles: self.core_cycles,
            active_cores: self.active_cores,
            traffic: self.traffic,
        }
    }

    /// The modeled kernel wall time on `dev`.
    pub fn time(&self, dev: &DeviceSpec) -> KernelTime {
        kernel_time(dev, self.core_cycles, self.active_cores, self.traffic)
    }

    /// Achieved throughput in word-ops per second for a given kernel time.
    pub fn achieved_word_ops_per_sec(&self, total_ns: f64) -> f64 {
        self.word_ops as f64 / (total_ns * 1e-9)
    }

    /// The flat fact sheet the `snp-verify` kernel linter consumes:
    /// regenerates the tile program and pairs it with the plan's declared
    /// cost and word-op totals.
    pub fn facts(&self, dev: &DeviceSpec, k_words: usize) -> snp_verify::PlanFacts {
        snp_verify::PlanFacts {
            program: tile_program_with(dev, &self.config, self.op, k_words, self.lowering),
            groups_per_core: self.groups_per_core,
            core_cycles: self.core_cycles,
            active_cores: self.active_cores,
            word_ops: self.word_ops as f64,
            op_kind: match self.op {
                CompareOp::And => snp_gpu_model::WordOpKind::And,
                CompareOp::Xor => snp_gpu_model::WordOpKind::Xor,
                CompareOp::AndNot => snp_gpu_model::WordOpKind::AndNot,
            },
            uses_matrix_unit: self.lowering.uses_matrix_unit(),
        }
    }
}

/// Functional execution of one pass on device word buffers: computes
/// `c[i·n + j] = Σ_k popc(op(a[i·k_words + k], b[j·k_words + k]))` for the
/// `m × n` output block, in parallel over rows. Overwrites `c`.
pub fn execute_gamma(
    op: CompareOp,
    a: &[u32],
    b: &[u32],
    c: &mut [u32],
    m: usize,
    n: usize,
    k_words: usize,
) {
    assert!(
        a.len() >= m * k_words,
        "A buffer too small: {} < {}",
        a.len(),
        m * k_words
    );
    assert!(
        b.len() >= n * k_words,
        "B buffer too small: {} < {}",
        b.len(),
        n * k_words
    );
    assert!(
        c.len() >= m * n,
        "C buffer too small: {} < {}",
        c.len(),
        m * n
    );
    c[..m * n]
        .par_chunks_mut(n.max(1))
        .enumerate()
        .for_each(|(i, row)| {
            let ar = &a[i * k_words..(i + 1) * k_words];
            for (j, out) in row.iter_mut().enumerate() {
                let br = &b[j * k_words..(j + 1) * k_words];
                *out = dot_u32(op, ar, br);
            }
        });
}

/// Functional execution of one pass in the matrix unit's evaluation order:
/// the output is carved into `frag_m × frag_n` fragments and the shared
/// dimension advances `frag_k_words` at a time, accumulating each fragment's
/// 32-bit counters exactly as the `mma` instruction would. Popcount sums are
/// associative and commutative over `u32`, so the result is bit-identical to
/// [`execute_gamma`] — that equivalence is the MMA plan's correctness oracle.
/// Ragged edges (outputs or k not multiples of the fragment shape) are
/// handled as zero-padded partial fragments. Overwrites `c`.
#[allow(clippy::too_many_arguments)] // mirrors `execute_gamma`'s signature plus the fragment spec
pub fn execute_gamma_mma(
    frag: &MatrixUnitSpec,
    op: CompareOp,
    a: &[u32],
    b: &[u32],
    c: &mut [u32],
    m: usize,
    n: usize,
    k_words: usize,
) {
    assert!(a.len() >= m * k_words, "A buffer too small");
    assert!(b.len() >= n * k_words, "B buffer too small");
    assert!(c.len() >= m * n, "C buffer too small");
    let fm = (frag.frag_m as usize).max(1);
    let fn_ = (frag.frag_n as usize).max(1);
    let fk = ((frag.frag_k_bits / 32) as usize).max(1);
    c[..m * n]
        .par_chunks_mut((n * fm).max(1))
        .enumerate()
        .for_each(|(band, cband)| {
            let i0 = band * fm;
            let rows = cband.len() / n.max(1);
            cband.fill(0);
            for k0 in (0..k_words).step_by(fk) {
                let k_end = (k0 + fk).min(k_words);
                for j0 in (0..n).step_by(fn_) {
                    let j_end = (j0 + fn_).min(n);
                    // One fragment op: an outer-product popcount accumulate
                    // over the fragment's k-depth.
                    for i in 0..rows {
                        let ar = &a[(i0 + i) * k_words..(i0 + i) * k_words + k_end];
                        for j in j0..j_end {
                            let br = &b[j * k_words..j * k_words + k_end];
                            let mut t = 0u32;
                            for k in k0..k_end {
                                t += op.combine(ar[k], br[k]).count_ones();
                            }
                            cband[i * n + j] += t;
                        }
                    }
                }
            }
        });
}

/// Popcount dot product over `u32` words, internally pairing words into
/// `u64` popcounts (bitwise ops distribute over concatenation).
#[inline]
fn dot_u32(op: CompareOp, a: &[u32], b: &[u32]) -> u32 {
    let mut acc = 0u32;
    let mut ia = a.chunks_exact(2);
    let mut ib = b.chunks_exact(2);
    for (ca, cb) in (&mut ia).zip(&mut ib) {
        let wa = ca[0] as u64 | (ca[1] as u64) << 32;
        let wb = cb[0] as u64 | (cb[1] as u64) << 32;
        acc += op.combine(wa, wb).count_ones();
    }
    for (&wa, &wb) in ia.remainder().iter().zip(ib.remainder()) {
        acc += op.combine(wa, wb).count_ones();
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::autoconf::config_for;
    use snp_bitmat::{reference_gamma, BitMatrix};
    use snp_gpu_model::config::{Algorithm, ProblemShape};
    use snp_gpu_model::peak::peak;
    use snp_gpu_model::{devices, WordOpKind};

    fn ld_cfg(dev: &DeviceSpec) -> KernelConfig {
        config_for(
            dev,
            Algorithm::LinkageDisequilibrium,
            ProblemShape {
                m: 10_000,
                n: 10_000,
                k_words: 1000,
            },
        )
    }

    #[test]
    fn geometry_matches_hand_calculation() {
        // GTX 980 LD: groups 24, v = 384/(6*32) = 2, outputs 16, R = 8.
        let dev = devices::gtx_980();
        let geo = group_geometry(&dev, &ld_cfg(&dev));
        assert_eq!(geo.groups_per_core, 24);
        assert_eq!(geo.cols_per_thread, 2);
        assert_eq!(geo.outputs_per_thread, 16);
        assert_eq!(geo.rows_per_group, 8);
        assert_eq!(geo.b_loads, 1);
        assert_eq!(geo.a_loads, 2);
        // Titan V: groups 16, v = 1024/(4*32) = 8, outputs 64, R = 8.
        let t = devices::titan_v();
        let geo = group_geometry(&t, &ld_cfg(&t));
        assert_eq!(
            (
                geo.groups_per_core,
                geo.cols_per_thread,
                geo.outputs_per_thread
            ),
            (16, 8, 64)
        );
        // Vega: groups 16, v = 1024/(4*64) = 4, outputs 32.
        let v = devices::vega_64();
        let geo = group_geometry(&v, &ld_cfg(&v));
        assert_eq!(
            (
                geo.groups_per_core,
                geo.cols_per_thread,
                geo.outputs_per_thread
            ),
            (16, 4, 32)
        );
    }

    #[test]
    fn tile_program_structure() {
        let dev = devices::gtx_980();
        let cfg = ld_cfg(&dev);
        let prog = tile_program(&dev, &cfg, CompareOp::And, 800);
        // 800 words -> slabs of 383, 383, 34: three (prologue, body) pairs + epilogue.
        assert_eq!(prog.blocks.len(), 7);
        assert_eq!(prog.blocks[1].trips, 383);
        assert_eq!(prog.blocks[5].trips, 34);
        // Body instruction mix for AND: 1 B load + 2 A loads + 16*(logic,popc,add) + 2 scalar.
        let body = &prog.blocks[1].instrs;
        let count = |c: InstrClass| body.iter().filter(|i| i.class == c).count();
        assert_eq!(count(InstrClass::LoadGlobal), 1);
        assert_eq!(count(InstrClass::LoadShared), 2);
        assert_eq!(count(InstrClass::Logic), 16);
        assert_eq!(count(InstrClass::Popc), 16);
        assert_eq!(count(InstrClass::IntAdd), 16);
        assert_eq!(count(InstrClass::Scalar), 2);
        assert_eq!(count(InstrClass::Not), 0);
    }

    #[test]
    fn andnot_adds_nots_only_without_fusion() {
        let k = 100;
        let gtx = devices::gtx_980();
        let p_and = tile_program(&gtx, &ld_cfg(&gtx), CompareOp::And, k);
        let p_an = tile_program(&gtx, &ld_cfg(&gtx), CompareOp::AndNot, k);
        assert_eq!(
            p_and.dynamic_instrs(),
            p_an.dynamic_instrs(),
            "fused AND-NOT is free"
        );
        let vega = devices::vega_64();
        let v_and = tile_program(&vega, &ld_cfg(&vega), CompareOp::And, k);
        let v_an = tile_program(&vega, &ld_cfg(&vega), CompareOp::AndNot, k);
        assert!(
            v_an.dynamic_instrs() > v_and.dynamic_instrs(),
            "explicit NOT costs issues"
        );
    }

    #[test]
    fn single_core_tile_approaches_peak() {
        // The per-tile cycle estimate should put the kernel near the
        // device's theoretical peak (this is Fig. 5's mechanism before
        // multi-core scaling effects).
        for dev in [devices::gtx_980(), devices::titan_v(), devices::vega_64()] {
            let cfg = ld_cfg(&dev);
            let k = 2 * cfg.k_c; // two full slabs
            let plan = KernelPlan::new(&dev, &cfg, CompareOp::And, cfg.m_c, cfg.n_r, k);
            assert_eq!(plan.jobs_per_core, 1);
            assert_eq!(plan.active_cores, 1);
            let word_ops = (cfg.m_c * cfg.n_r * k) as f64;
            let rate = word_ops / plan.core_cycles; // word-ops per cycle per core
            let peak_rate =
                peak(&dev, WordOpKind::And).word_ops_per_cycle_per_cluster * dev.n_clusters as f64;
            let frac = rate / peak_rate;
            assert!(
                frac > 0.85 && frac <= 1.0,
                "{}: single-tile efficiency {frac:.3} (rate {rate:.1} vs peak {peak_rate:.1})",
                dev.name
            );
        }
    }

    #[test]
    fn plan_distributes_jobs_over_grid() {
        let dev = devices::titan_v();
        let cfg = ld_cfg(&dev); // grid 80x1
        let plan = KernelPlan::new(&dev, &cfg, CompareOp::And, 12_800, 4096, 383);
        // tiles_m = 400, tiles_n = 4; jobs = ceil(400/80) * 4 = 20.
        assert_eq!(plan.active_cores, 80);
        assert_eq!(plan.jobs_per_core, 20);
        assert!(plan.traffic.write_bytes == 12_800 * 4096 * 4);
    }

    #[test]
    fn plan_shrinks_grid_for_small_problems() {
        let dev = devices::titan_v();
        let cfg = ld_cfg(&dev);
        let plan = KernelPlan::new(&dev, &cfg, CompareOp::And, 32, 1024, 64);
        assert_eq!(plan.active_cores, 1); // 1 m-tile, 1 n-tile
        assert_eq!(plan.jobs_per_core, 1);
    }

    #[test]
    fn execute_gamma_matches_reference() {
        let a64 = BitMatrix::<u64>::from_fn(13, 300, |r, c| (r * 7 + c * 3) % 5 == 0);
        let b64 = BitMatrix::<u64>::from_fn(9, 300, |r, c| (r * 11 + c) % 4 == 0);
        let a32: BitMatrix<u32> = a64.convert();
        let b32: BitMatrix<u32> = b64.convert();
        let k = a32.words_per_row();
        for op in CompareOp::ALL {
            let mut c = vec![0u32; 13 * 9];
            execute_gamma(op, a32.words(), b32.words(), &mut c, 13, 9, k);
            let want = reference_gamma(&a64, &b64, op);
            for i in 0..13 {
                for j in 0..9 {
                    assert_eq!(c[i * 9 + j], want.get(i, j), "op {op} at ({i},{j})");
                }
            }
        }
    }

    #[test]
    fn dot_u32_odd_lengths() {
        // Exercise the chunks_exact remainder path.
        let a = [u32::MAX, 0, 0b1011];
        let b = [u32::MAX, u32::MAX, 0b0110];
        assert_eq!(dot_u32(CompareOp::And, &a, &b), 32 + 1);
        assert_eq!(dot_u32(CompareOp::Xor, &a, &b), 32 + 3);
    }

    #[test]
    fn plan_timing_is_memoized_and_matches_oracle() {
        use snp_gpu_sim::macro_engine::timing_cache_stats;
        let dev = devices::gtx_980();
        let cfg = ld_cfg(&dev);
        let k = 977; // unique to this test so the priming call is a miss
        let p1 = KernelPlan::new(&dev, &cfg, CompareOp::Xor, 999, 777, k);
        let before = timing_cache_stats();
        // Different pass shape, same tile program: answered from the cache.
        let p2 = KernelPlan::new(&dev, &cfg, CompareOp::Xor, 4321, 55, k);
        let after = timing_cache_stats();
        assert!(
            after.hits > before.hits,
            "expected a cache hit: {before:?} -> {after:?}"
        );
        // The memoized per-job estimate equals the unmemoized oracle.
        let program = tile_program(&dev, &cfg, CompareOp::Xor, k);
        let per_job = estimate_core_cycles(&dev, &program, p1.groups_per_core);
        assert_eq!(p1.core_cycles, per_job * p1.jobs_per_core as f64);
        assert_eq!(p2.core_cycles, per_job * p2.jobs_per_core as f64);
    }

    #[test]
    #[should_panic(expected = "pass must be non-empty")]
    fn empty_pass_rejected() {
        let dev = devices::gtx_980();
        let cfg = ld_cfg(&dev);
        let _ = KernelPlan::new(&dev, &cfg, CompareOp::And, 0, 10, 10);
    }

    #[test]
    fn lowering_picks_mma_only_on_aligned_matrix_unit_tiles() {
        let t = devices::tc100();
        let cfg = ld_cfg(&t);
        assert_eq!(lowering_for(&t, &cfg), Lowering::Mma);
        // Devices without a matrix unit always lower to scalar popcount.
        for dev in [devices::gtx_980(), devices::titan_v(), devices::vega_64()] {
            assert_eq!(lowering_for(&dev, &ld_cfg(&dev)), Lowering::Scalar);
        }
        // A register tile whose rows per group fall below frag_m falls back.
        let mut bad = cfg;
        bad.m_c = 4; // rows_per_group = 1 < frag_m = 8
        assert_eq!(lowering_for(&t, &bad), Lowering::Scalar);
    }

    #[test]
    fn mma_tile_program_structure() {
        // TC100 LD: cols/group 512, rows/group 8, frag_k_words 4. Per k-trip:
        // 16 B-fragment loads, 1 A-fragment load, (8/8)*(512/8) = 64 mma, 2 scalar.
        let dev = devices::tc100();
        let cfg = ld_cfg(&dev);
        let prog = tile_program(&dev, &cfg, CompareOp::And, 800);
        // Slabs of 383, 383, 34 words step by 4-word fragments: 96, 96, 9 trips.
        assert_eq!(prog.blocks.len(), 7);
        assert_eq!(prog.blocks[1].trips, 96);
        assert_eq!(prog.blocks[5].trips, 9);
        let body = &prog.blocks[1].instrs;
        let count = |c: InstrClass| body.iter().filter(|i| i.class == c).count();
        assert_eq!(count(InstrClass::LoadGlobal), 16);
        assert_eq!(count(InstrClass::LoadShared), 1);
        assert_eq!(count(InstrClass::Mma), 64);
        assert_eq!(count(InstrClass::Scalar), 2);
        // The scalar inner-product classes are gone from the inner loop.
        assert_eq!(count(InstrClass::Logic), 0);
        assert_eq!(count(InstrClass::Popc), 0);
        assert_eq!(count(InstrClass::IntAdd), 0);
        // Fused AND-NOT needs no explicit NOT on TC100.
        let an = tile_program(&dev, &cfg, CompareOp::AndNot, 800);
        assert_eq!(an.dynamic_instrs(), prog.dynamic_instrs());
    }

    #[test]
    fn single_core_mma_tile_approaches_matrix_unit_peak() {
        use snp_gpu_model::peak::matrix_unit_peak;
        let dev = devices::tc100();
        let cfg = ld_cfg(&dev);
        let k = 2 * cfg.k_c;
        let plan = KernelPlan::new(&dev, &cfg, CompareOp::And, cfg.m_c, cfg.n_r, k);
        assert_eq!(plan.lowering, Lowering::Mma);
        assert_eq!((plan.jobs_per_core, plan.active_cores), (1, 1));
        let word_ops = (cfg.m_c * cfg.n_r * k) as f64;
        let rate = word_ops / plan.core_cycles;
        let peak_rate = matrix_unit_peak(&dev, WordOpKind::And)
            .unwrap()
            .word_ops_per_cycle_per_cluster
            * dev.n_clusters as f64;
        let frac = rate / peak_rate;
        assert!(
            frac > 0.85 && frac <= 1.0,
            "TC100 mma single-tile efficiency {frac:.3} (rate {rate:.1} vs peak {peak_rate:.1})"
        );
    }

    #[test]
    fn mma_plan_is_faster_than_the_scalar_oracle_plan() {
        let dev = devices::tc100();
        let cfg = ld_cfg(&dev);
        let mma = KernelPlan::new(&dev, &cfg, CompareOp::Xor, cfg.m_c, cfg.n_r, 766);
        let scalar = KernelPlan::with_lowering(
            &dev,
            &cfg,
            CompareOp::Xor,
            cfg.m_c,
            cfg.n_r,
            766,
            Lowering::Scalar,
        );
        assert_eq!(scalar.lowering, Lowering::Scalar);
        assert!(
            mma.core_cycles * 3.0 < scalar.core_cycles,
            "mma {} vs scalar {} cycles",
            mma.core_cycles,
            scalar.core_cycles
        );
    }

    #[test]
    fn execute_gamma_mma_matches_scalar_executor() {
        let frag = devices::tc100().matrix_unit.unwrap();
        // Ragged shapes: m, n not multiples of the fragment, k not of frag_k_words.
        for (m, n, k) in [(13, 9, 10), (8, 8, 4), (17, 23, 7), (1, 1, 1)] {
            let a: Vec<u32> = (0..m * k)
                .map(|i| (i as u32).wrapping_mul(2654435769))
                .collect();
            let b: Vec<u32> = (0..n * k)
                .map(|i| (i as u32).wrapping_mul(40503) ^ 0xA5A5)
                .collect();
            for op in CompareOp::ALL {
                let mut want = vec![0u32; m * n];
                let mut got = vec![0u32; m * n];
                execute_gamma(op, &a, &b, &mut want, m, n, k);
                execute_gamma_mma(&frag, op, &a, &b, &mut got, m, n, k);
                assert_eq!(got, want, "op {op} shape {m}x{n}x{k}");
            }
        }
    }
}
