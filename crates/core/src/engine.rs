//! The end-to-end engine: host orchestration of the portable framework.
//!
//! Implements the paper's measured pipeline (§VI-A-1): open the device (the
//! OpenCL initialization cost lands on the host clock), pack the bit
//! matrices into transfer buffers, upload, launch the configured kernel
//! over the pass plan, and read results back — with double buffering so
//! data transfer and host packing overlap computation.
//!
//! Two execution modes:
//!
//! * [`ExecMode::Full`] — buffers hold real words, kernels compute bit-exact
//!   `γ` (validated against the scalar reference), timing is modeled;
//! * [`ExecMode::TimingOnly`] — identical command stream and timing, but
//!   virtual buffers and no functional work, enabling NDIS-scale sweeps
//!   (Fig. 8) without gigabytes of host RAM.

use snp_bitmat::{BitMatrix, CompareOp, CountMatrix};
use snp_cpu::CpuEngine;
use snp_faults::{checksum_words, DeviceFault, FaultKind, FaultOp, FaultPlan};
use snp_gpu_model::config::{Algorithm, ProblemShape};
use snp_gpu_model::{DeviceSpec, KernelConfig};
use snp_gpu_sim::host::{BufferId, CostScale, EventId, Gpu, QueueId, SimError};
use snp_gpu_sim::{timing_cache_stats, KernelProfile};
use snp_trace::{TimeDomain, Tracer};

use crate::autoconf::{compare_op, config_for, word_op_kind, MixtureStrategy};
use crate::cpu_model::CpuModel;
use crate::kernel::{execute_gamma, execute_gamma_mma, KernelPlan, Lowering};
use crate::recovery::{metrics, QueueHealth, RecoveryPolicy, RecoverySummary};
use crate::tiling::{plan_passes, PlanError, TilePlan};

/// Whether kernels execute functionally or timing-only.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Compute real results (and model time).
    Full,
    /// Model time only; `gamma` is absent from the report.
    TimingOnly,
}

/// Engine options.
#[derive(Debug, Clone, Copy)]
pub struct EngineOptions {
    /// Execution mode.
    pub mode: ExecMode,
    /// Overlap transfers with compute using paired buffers (§VI-A-1).
    pub double_buffer: bool,
    /// Mixture-analysis strategy (§II-C / Fig. 9).
    pub mixture: MixtureStrategy,
    /// Run the `snp-verify` race detector on the finished command stream
    /// and fail the run on any ordering hazard. Defaults to on in debug
    /// builds, off in release builds.
    pub verify: bool,
    /// Retry/checkpoint/fallback tunables. Inert unless a
    /// [`FaultPlan`](snp_faults::FaultPlan) is armed on the engine via
    /// [`GpuEngine::with_fault_plan`] — the fault-free fast path never
    /// consults them.
    pub recovery: RecoveryPolicy,
    /// Collect per-launch hardware-counter profiles
    /// ([`RunReport::kernel_profiles`]). Off by default: profiles are
    /// cheap to gather (the simulator computes the counters anyway) but
    /// cloning them into the report is pure overhead for callers that only
    /// want timing or results.
    pub profile: bool,
    /// Virtual-cost scale armed on every device the engine opens, for
    /// Coz-style what-if replay (`snpgpu whatif`). The default identity
    /// leaves all timing bit-exact.
    pub cost_scale: CostScale,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            mode: ExecMode::Full,
            double_buffer: true,
            mixture: MixtureStrategy::Direct,
            verify: cfg!(debug_assertions),
            recovery: RecoveryPolicy::default(),
            profile: false,
            cost_scale: CostScale::default(),
        }
    }
}

/// Wall-time breakdown of a run, all in virtual nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Timing {
    /// One-time runtime initialization (charged at device open).
    pub init_ns: u64,
    /// Host-side packing (overlappable with device work).
    pub pack_ns: u64,
    /// Sum of kernel execution durations (event profiling).
    pub kernel_ns: u64,
    /// Sum of host→device transfer durations.
    pub transfer_in_ns: u64,
    /// Sum of device→host transfer durations.
    pub transfer_out_ns: u64,
    /// Virtual time spent on recovery actions: retry backoff and
    /// CPU-fallback compute after device loss. Zero on the fault-free
    /// fast path.
    pub recovery_ns: u64,
    /// Host clock when everything finished — the paper's end-to-end time
    /// (inclusive of initialization and all overlap effects).
    pub end_to_end_ns: u64,
}

impl Timing {
    /// Virtual time spent after initialization.
    pub fn busy_ns(&self) -> u64 {
        self.end_to_end_ns.saturating_sub(self.init_ns)
    }

    /// Reconciles the phase sums against the end-to-end time.
    ///
    /// The engine's command stream runs over three serialized resources —
    /// the host (packing), the link (one transfer at a time), and the
    /// compute engine (one kernel at a time) — so the phase totals must
    /// bracket the end-to-end measurement:
    ///
    /// * each resource's busy time fits inside the post-init window
    ///   (per-resource lower bounds on `end_to_end`), and
    /// * every instant of the post-init window is attributable to at least
    ///   one busy resource along the critical path, so the phase *sum*
    ///   bounds `end_to_end` from above.
    ///
    /// Returns a description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        let busy = self.busy_ns();
        if self.end_to_end_ns < self.init_ns {
            return Err(format!(
                "end_to_end {} < init {}",
                self.end_to_end_ns, self.init_ns
            ));
        }
        if self.kernel_ns > busy {
            return Err(format!(
                "kernel time {} exceeds post-init window {busy}",
                self.kernel_ns
            ));
        }
        let link = self.transfer_in_ns + self.transfer_out_ns;
        if link > busy {
            return Err(format!(
                "transfer time {link} exceeds post-init window {busy}"
            ));
        }
        if self.pack_ns > busy {
            return Err(format!(
                "pack time {} exceeds post-init window {busy}",
                self.pack_ns
            ));
        }
        if self.recovery_ns > busy {
            return Err(format!(
                "recovery time {} exceeds post-init window {busy}",
                self.recovery_ns
            ));
        }
        let union = self.pack_ns + self.kernel_ns + link + self.recovery_ns;
        if busy > union {
            return Err(format!(
                "post-init window {busy} exceeds the sum of phase times {union}: \
                 some interval is attributed to no resource"
            ));
        }
        Ok(())
    }
}

/// Result of one engine run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// The `γ` matrix (None in timing-only mode).
    pub gamma: Option<CountMatrix>,
    /// Timing breakdown.
    pub timing: Timing,
    /// Logical word-ops computed.
    pub word_ops: u128,
    /// Kernel launches issued.
    pub passes: usize,
    /// The configuration used.
    pub config: KernelConfig,
    /// Word-op throughput over kernel time only (the Fig. 5 quantity).
    pub kernel_word_ops_per_sec: f64,
    /// Command-stream verification findings (when
    /// [`EngineOptions::verify`] is on; always hazard-free, since hazards
    /// abort the run).
    pub verify_report: Option<snp_verify::Report>,
    /// What the recovery layer did (None on the fault-free fast path).
    /// [`RecoverySummary::degraded`] distinguishes a run that finished on
    /// the CPU after device loss from one that recovered fully on-device.
    pub recovery: Option<RecoverySummary>,
    /// Hardware-counter profile of every kernel launch, in issue order
    /// (only when [`EngineOptions::profile`] is set).
    pub kernel_profiles: Option<Vec<KernelProfile>>,
}

/// Errors from an engine run.
#[derive(Debug)]
#[non_exhaustive]
pub enum EngineError {
    /// Pass planning failed.
    Plan(PlanError),
    /// The simulated device rejected a command.
    Device(snp_gpu_sim::SimError),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Plan(e) => write!(f, "planning: {e}"),
            EngineError::Device(e) => write!(f, "device: {e}"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Plan(e) => Some(e),
            EngineError::Device(e) => Some(e),
        }
    }
}

impl From<PlanError> for EngineError {
    fn from(e: PlanError) -> Self {
        EngineError::Plan(e)
    }
}

impl From<snp_gpu_sim::SimError> for EngineError {
    fn from(e: snp_gpu_sim::SimError) -> Self {
        EngineError::Device(e)
    }
}

impl EngineError {
    /// The injected device fault at the root of this error, if any —
    /// the end of the `source()` chain.
    pub fn device_fault(&self) -> Option<&snp_faults::DeviceFault> {
        match self {
            EngineError::Device(SimError::DeviceFault(f)) => Some(f),
            _ => None,
        }
    }

    /// Whether this error is a command-stream ordering hazard from the
    /// race detector.
    pub fn is_hazard(&self) -> bool {
        matches!(self, EngineError::Device(SimError::Hazard(_)))
    }
}

/// Converts host rows `lo..hi` of a 64-bit-packed matrix into the device's
/// little-endian 32-bit word stream (two device words per host word).
pub fn device_words(m: &BitMatrix<u64>, lo: usize, hi: usize) -> Vec<u32> {
    let mut out = Vec::new();
    device_words_into(m, lo, hi, &mut out);
    out
}

/// [`device_words`] into a caller-owned staging buffer: `out` is cleared and
/// refilled, so its allocation is reused across tile iterations instead of
/// being freed and re-grown once per pass (the simulated writes copy the
/// staging data synchronously, so reuse is safe under double buffering).
pub fn device_words_into(m: &BitMatrix<u64>, lo: usize, hi: usize, out: &mut Vec<u32>) {
    let wpr = m.words_per_row();
    out.clear();
    out.reserve((hi - lo) * wpr * 2);
    for r in lo..hi {
        for &w in m.row(r) {
            out.push(w as u32);
            out.push((w >> 32) as u32);
        }
    }
}

/// Profiles each kernel event, feeds its duration into the
/// `sim.profile.kernel_chunk_ns` histogram, and returns the summed kernel
/// time — the per-chunk distribution behind the [`Timing::kernel_ns`] total.
pub(crate) fn record_kernel_chunks(gpu: &Gpu, kernel_events: &[EventId]) -> u64 {
    let mut total = 0u64;
    for &e in kernel_events {
        let d = gpu.event_profile(e).map(|p| p.duration_ns()).unwrap_or(0);
        crate::profile::metrics::KERNEL_CHUNK_NS.record(d);
        total += d;
    }
    total
}

/// Collects the per-launch hardware-counter profiles of `kernel_events`
/// when profiling is enabled (`None` otherwise, costing nothing).
fn collect_kernel_profiles(
    enabled: bool,
    gpu: &Gpu,
    kernel_events: &[EventId],
) -> Option<Vec<KernelProfile>> {
    enabled.then(|| {
        kernel_events
            .iter()
            .filter_map(|&e| gpu.kernel_profile(e))
            .collect()
    })
}

/// The portable SNP-comparison engine over a simulated device.
#[derive(Debug, Clone)]
pub struct GpuEngine {
    spec: DeviceSpec,
    options: EngineOptions,
    tracer: Tracer,
    faults: Option<FaultPlan>,
}

impl GpuEngine {
    /// An engine with default options (full execution, double buffering).
    pub fn new(spec: DeviceSpec) -> Self {
        GpuEngine {
            spec,
            options: EngineOptions::default(),
            tracer: Tracer::disabled(),
            faults: None,
        }
    }

    /// Overrides the options.
    pub fn with_options(mut self, options: EngineOptions) -> Self {
        self.options = options;
        self
    }

    /// Arms deterministic fault injection: every run consults a fresh clone
    /// of `plan` (so repeated runs replay identical fault sequences) and
    /// routes through the recovering pipeline — sequential, checksum-
    /// verified, chunk-checkpointed (DESIGN.md §10). Without a plan, runs
    /// take the pipelined fast path and no recovery machinery executes.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// The armed fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.faults.as_ref()
    }

    /// Records every run on `tracer`: a run-level span plus the per-command
    /// device timeline (see [`Gpu::with_tracer`]) and timing-cache counter
    /// samples. The default is a disabled tracer, which costs nothing.
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// The tracer runs record into.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The device this engine targets.
    pub fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    /// The options in effect.
    pub fn options(&self) -> &EngineOptions {
        &self.options
    }

    /// Linkage disequilibrium: AND self-comparison (Eq. 1).
    pub fn ld_self(&self, panel: &BitMatrix<u64>) -> Result<RunReport, EngineError> {
        self.compare(panel, panel, Algorithm::LinkageDisequilibrium)
    }

    /// FastID identity search (Eq. 2).
    pub fn identity_search(
        &self,
        queries: &BitMatrix<u64>,
        database: &BitMatrix<u64>,
    ) -> Result<RunReport, EngineError> {
        self.compare(queries, database, Algorithm::IdentitySearch)
    }

    /// FastID mixture analysis (Eq. 3), honoring the configured
    /// [`MixtureStrategy`].
    pub fn mixture_analysis(
        &self,
        references: &BitMatrix<u64>,
        mixtures: &BitMatrix<u64>,
    ) -> Result<RunReport, EngineError> {
        self.compare(references, mixtures, Algorithm::MixtureAnalysis)
    }

    /// Runs `algorithm` on `a × bᵀ` end to end.
    pub fn compare(
        &self,
        a: &BitMatrix<u64>,
        b: &BitMatrix<u64>,
        algorithm: Algorithm,
    ) -> Result<RunReport, EngineError> {
        assert_eq!(
            a.words_per_row(),
            b.words_per_row(),
            "operands disagree on packed width"
        );
        let op = compare_op(algorithm, self.options.mixture);
        // Pre-negation happens "in advance" on the stored database
        // (paper §II-C), so it is not charged to the run.
        let b_owned;
        let b_eff: &BitMatrix<u64> = if algorithm == Algorithm::MixtureAnalysis
            && self.options.mixture == MixtureStrategy::PreNegate
        {
            b_owned = b.negated();
            &b_owned
        } else {
            b
        };
        let k_words = 2 * a.words_per_row();
        let (m, n) = (a.rows(), b_eff.rows());
        let shape = ProblemShape { m, n, k_words };
        let cfg = config_for(&self.spec, algorithm, shape);
        let plan = plan_passes(&self.spec, &cfg, m, n, k_words, self.options.double_buffer)?;
        self.run_plan(a, b_eff, op, &cfg, &plan, algorithm)
    }

    fn run_plan(
        &self,
        a: &BitMatrix<u64>,
        b: &BitMatrix<u64>,
        op: CompareOp,
        cfg: &KernelConfig,
        plan: &TilePlan,
        algorithm: Algorithm,
    ) -> Result<RunReport, EngineError> {
        if let Some(fault_plan) = &self.faults {
            return self.run_plan_recovering(a, b, op, cfg, plan, algorithm, fault_plan.clone());
        }
        let full = self.options.mode == ExecMode::Full;
        let gpu = Gpu::with_tracer(self.spec.clone(), self.tracer.clone());
        gpu.set_cost_scale(self.options.cost_scale);
        let init_ns = gpu.now_ns();
        let run_track = self.tracer.track("engine", TimeDomain::Virtual);
        let run_span =
            self.tracer
                .begin_span(run_track, "run", format!("run: {}", algorithm.name()), 0);
        let cache_before = timing_cache_stats();
        let q_xfer = gpu.create_queue_labeled("transfer");
        let q_comp = gpu.create_queue_labeled("compute");
        let copies = if plan.double_buffered { 2 } else { 1 };
        let k = plan.k_words;

        let mk_buf = |words: usize| -> Result<BufferId, EngineError> {
            Ok(if full {
                gpu.create_buffer(words)?
            } else {
                gpu.create_virtual_buffer(words)?
            })
        };
        let a_buf = mk_buf(plan.a_buffer_words().max(1))?;
        let b_bufs: Vec<BufferId> = (0..copies)
            .map(|_| mk_buf(plan.b_buffer_words().max(1)))
            .collect::<Result<_, _>>()?;
        let c_bufs: Vec<BufferId> = (0..copies)
            .map(|_| mk_buf(plan.c_buffer_words().max(1)))
            .collect::<Result<_, _>>()?;

        let mut gamma = if full {
            Some(CountMatrix::zeros(a.rows(), b.rows()))
        } else {
            None
        };
        // Pooled host-side staging: one allocation per stream (A words,
        // B words, γ readback), reused across every tile iteration rather
        // than allocated per pass. Multi-pass runs issue hundreds of
        // chunk transfers; without pooling each one pays a fresh
        // allocate/free of up to `max_alloc_bytes`.
        let mut a_stage: Vec<u32> = Vec::new();
        let mut b_stage: Vec<u32> = Vec::new();
        let mut c_stage: Vec<u32> = Vec::new();
        let mut pack_ns = 0u64;
        let mut kernel_events: Vec<EventId> = Vec::new();
        let mut in_events: Vec<EventId> = Vec::new();
        let mut out_events: Vec<EventId> = Vec::new();
        let mut last_kernel_on_slot: Vec<Option<EventId>> = vec![None; copies];
        let mut last_read_on_slot: Vec<Option<EventId>> = vec![None; copies];
        let mut word_ops: u128 = 0;
        let mut kernel_cycles_ns = 0f64;

        // Stages and enqueues the B chunk at index `i`. Borrows it needs
        // mutably are threaded as parameters so calls interleave with the
        // rest of the loop body.
        let stage_and_write_b = |i: usize,
                                 b_stage: &mut Vec<u32>,
                                 pack_ns: &mut u64,
                                 last_kernel_on_slot: &[Option<EventId>]|
         -> Result<EventId, EngineError> {
            let nc = &plan.n_chunks[i];
            let slot = i % copies;
            let b_bytes = (nc.len() * k * 4) as u64;
            *pack_ns += self.spec.transfer.pack_ns(b_bytes);
            gpu.host_pack(b_bytes);
            // The B buffer may still feed an in-flight kernel.
            let mut deps: Vec<EventId> = Vec::new();
            if let Some(ev) = last_kernel_on_slot[slot] {
                deps.push(ev);
            }
            Ok(if full {
                device_words_into(b, nc.lo, nc.hi, b_stage);
                gpu.enqueue_write(q_xfer, b_bufs[slot], 0, b_stage, &deps)?
            } else {
                gpu.enqueue_virtual_write(q_xfer, b_bufs[slot], 0, nc.len() * k, &deps)?
            })
        };

        for mc in &plan.m_chunks {
            // Stage the A chunk.
            let a_bytes = (mc.len() * k * 4) as u64;
            pack_ns += self.spec.transfer.pack_ns(a_bytes);
            gpu.host_pack(a_bytes);
            let ev_a = if full {
                device_words_into(a, mc.lo, mc.hi, &mut a_stage);
                gpu.enqueue_write(q_xfer, a_buf, 0, &a_stage, &[])?
            } else {
                gpu.enqueue_virtual_write(q_xfer, a_buf, 0, mc.len() * k, &[])?
            };
            in_events.push(ev_a);
            if plan.n_chunks.is_empty() {
                continue;
            }

            // Software-pipelined B uploads: chunk i+1 is packed and enqueued
            // *before* chunk i's readback, so with paired slots its only
            // dependency is the kernel of i−1 and the upload overlaps the
            // kernel of i on the link/compute resources (§VI-A-1's double
            // buffering). With a single slot the dependency chain collapses
            // back to fully serial timing. Functionally the early write is
            // safe in both cases: kernels execute at enqueue, so chunk i has
            // already consumed its input words.
            let mut ev_b_pending =
                stage_and_write_b(0, &mut b_stage, &mut pack_ns, &last_kernel_on_slot)?;
            for (i, nc) in plan.n_chunks.iter().enumerate() {
                let slot = i % copies;
                let ev_b = ev_b_pending;
                in_events.push(ev_b);

                let kplan = KernelPlan::new(&self.spec, cfg, op, mc.len(), nc.len(), k);
                word_ops += kplan.word_ops;
                kernel_cycles_ns += kplan.time(&self.spec).total_ns;
                let mut kdeps = vec![ev_a, ev_b];
                if let Some(ev) = last_read_on_slot[slot] {
                    // The C staging buffer must drain before being rewritten.
                    kdeps.push(ev);
                }
                let ev_k = if full {
                    let (m_len, n_len) = (mc.len(), nc.len());
                    // The functional executor follows the plan's lowering:
                    // matrix-unit fragment order on devices that have one,
                    // the scalar row order otherwise (results are identical).
                    let frag = match (kplan.lowering, self.spec.matrix_unit) {
                        (Lowering::Mma, Some(mu)) => Some(mu),
                        _ => None,
                    };
                    gpu.enqueue_kernel(
                        q_comp,
                        &kplan.cost(),
                        &[a_buf, b_bufs[slot]],
                        c_bufs[slot],
                        &kdeps,
                        |reads, out| match frag {
                            Some(mu) => {
                                execute_gamma_mma(&mu, op, reads[0], reads[1], out, m_len, n_len, k)
                            }
                            None => execute_gamma(op, reads[0], reads[1], out, m_len, n_len, k),
                        },
                    )?
                } else {
                    gpu.enqueue_kernel_timed_on(
                        q_comp,
                        &kplan.cost(),
                        &[a_buf, b_bufs[slot]],
                        c_bufs[slot],
                        &kdeps,
                    )?
                };
                kernel_events.push(ev_k);
                last_kernel_on_slot[slot] = Some(ev_k);

                // Prefetch the next B chunk while this kernel occupies the
                // compute engine.
                if i + 1 < plan.n_chunks.len() {
                    ev_b_pending =
                        stage_and_write_b(i + 1, &mut b_stage, &mut pack_ns, &last_kernel_on_slot)?;
                }

                // Read the C chunk back.
                let ev_r = if full {
                    c_stage.resize(mc.len() * nc.len(), 0);
                    let ev =
                        gpu.enqueue_read(q_xfer, c_bufs[slot], 0, &mut c_stage, &[ev_k], false)?;
                    let g = gamma.as_mut().expect("full mode");
                    for (ri, row) in c_stage.chunks_exact(nc.len()).enumerate() {
                        g.row_mut(mc.lo + ri)[nc.lo..nc.hi].copy_from_slice(row);
                    }
                    ev
                } else {
                    gpu.enqueue_virtual_read(q_xfer, c_bufs[slot], 0, mc.len() * nc.len(), &[ev_k])?
                };
                out_events.push(ev_r);
                last_read_on_slot[slot] = Some(ev_r);
            }
        }
        gpu.finish_all();

        let sum = |evs: &[EventId]| -> u64 {
            evs.iter()
                .map(|&e| gpu.event_profile(e).map(|p| p.duration_ns()).unwrap_or(0))
                .sum()
        };
        let kernel_ns = record_kernel_chunks(&gpu, &kernel_events);
        let timing = Timing {
            init_ns,
            pack_ns,
            kernel_ns,
            transfer_in_ns: sum(&in_events),
            transfer_out_ns: sum(&out_events),
            recovery_ns: 0,
            end_to_end_ns: gpu.now_ns(),
        };
        debug_assert!(
            timing.validate().is_ok(),
            "timing reconciliation failed: {} ({timing:?})",
            timing.validate().unwrap_err()
        );
        // Static verification of the finished command stream. The `sum`
        // calls above profiled every event, so events consumed only for
        // timing do not show up as dead. Hazards (missing ordering edges)
        // abort the run; warnings and infos ride along on the report.
        let verify_report = if self.options.verify {
            let report = snp_verify::verify_command_log(&gpu.command_log());
            if report.has_errors() {
                return Err(EngineError::Device(snp_gpu_sim::SimError::Hazard(
                    report.render_text("command stream"),
                )));
            }
            Some(report)
        } else {
            None
        };
        if self.tracer.is_enabled() {
            self.tracer.end_span_with(
                run_span,
                timing.end_to_end_ns,
                vec![
                    ("passes", kernel_events.len().into()),
                    ("word_ops", (word_ops as u64).into()),
                    ("device", self.spec.name.as_str().into()),
                    ("double_buffered", u64::from(plan.double_buffered).into()),
                ],
            );
            let cache_after = timing_cache_stats();
            for (name, before, after) in [
                ("sim.timing_cache.hits", cache_before.hits, cache_after.hits),
                (
                    "sim.timing_cache.misses",
                    cache_before.misses,
                    cache_after.misses,
                ),
            ] {
                self.tracer.counter(run_track, name, init_ns, before as f64);
                self.tracer
                    .counter(run_track, name, timing.end_to_end_ns, after as f64);
            }
            // Per-chunk kernel durations as a Chrome counter track: the
            // timeline shows each chunk's cost at the instant it retired.
            for &e in &kernel_events {
                if let Ok(p) = gpu.event_profile(e) {
                    self.tracer.counter(
                        run_track,
                        "sim.profile.kernel_chunk_ns",
                        p.end_ns,
                        p.duration_ns() as f64,
                    );
                }
            }
        }
        let kernel_profiles = collect_kernel_profiles(self.options.profile, &gpu, &kernel_events);
        let _ = kernel_cycles_ns; // retained for future per-pass reporting
        Ok(RunReport {
            gamma,
            timing,
            word_ops,
            passes: kernel_events.len(),
            config: *cfg,
            kernel_word_ops_per_sec: word_ops as f64 / (kernel_ns.max(1) as f64 * 1e-9),
            verify_report,
            recovery: None,
            kernel_profiles,
        })
    }

    /// One enqueue under the bounded-retry policy: transient faults
    /// (transfer timeout, kernel launch failure) are retried with
    /// exponential virtual-time backoff charged to the host clock; repeated
    /// failures trip the per-queue circuit breaker, which quarantines the
    /// queue and enqueues on a fresh replacement. Non-transient errors
    /// (device loss, hazards, planning bugs) surface immediately.
    pub(crate) fn attempt_with_retry<T>(
        gpu: &Gpu,
        policy: &RecoveryPolicy,
        summary: &mut RecoverySummary,
        health: &mut QueueHealth,
        queue: &mut QueueId,
        queue_label: &str,
        mut f: impl FnMut(QueueId) -> Result<T, SimError>,
    ) -> Result<T, EngineError> {
        let mut attempt = 0u32;
        loop {
            match f(*queue) {
                Ok(v) => {
                    health.ok();
                    return Ok(v);
                }
                Err(SimError::DeviceFault(fault)) if fault.kind.is_transient() => {
                    if health.fail(policy) {
                        summary.quarantined_queues += 1;
                        metrics::QUEUE_QUARANTINED.add(1);
                        *queue = gpu.create_queue_labeled(queue_label);
                        *health = QueueHealth::default();
                    }
                    if attempt >= policy.max_retries {
                        return Err(EngineError::Device(SimError::DeviceFault(fault)));
                    }
                    let back = policy.backoff_for(attempt);
                    let back_start = gpu.now_ns();
                    gpu.advance_host_ns(back);
                    if gpu.tracer().is_enabled() {
                        // On the device's host track so the backoff gap is
                        // visible inline — and, when the engine tracer
                        // carries a QueryCtx, attributed to its query.
                        gpu.tracer().span_with(
                            gpu.host_track(),
                            "retry",
                            format!("retry {}: {:?}", attempt + 1, fault.kind),
                            back_start,
                            back_start + back,
                            vec![
                                ("attempt", (attempt + 1).into()),
                                ("backoff_ns", back.into()),
                                ("queue", queue_label.into()),
                            ],
                        );
                    }
                    summary.backoff_ns += back;
                    metrics::BACKOFF_NS.add(back);
                    metrics::BACKOFF_DELAY_NS.record(back);
                    summary.retries += 1;
                    metrics::RETRIES.add(1);
                    match fault.kind {
                        FaultKind::TransferTimeout => summary.retries_timeout += 1,
                        _ => summary.retries_launch += 1,
                    }
                    attempt += 1;
                }
                Err(e) => return Err(EngineError::Device(e)),
            }
        }
    }

    /// The fault-tolerant pipeline used when a fault plan is armed
    /// (DESIGN.md §10). Trades the fast path's software pipelining for
    /// chunk-sequential execution with bounded retry, checksum-verified
    /// readback, chunk checkpointing, queue circuit breaking, and — on
    /// permanent device loss in [`ExecMode::Full`] — CPU fallback for the
    /// chunks after the last checkpoint.
    #[allow(clippy::too_many_arguments)]
    fn run_plan_recovering(
        &self,
        a: &BitMatrix<u64>,
        b: &BitMatrix<u64>,
        op: CompareOp,
        cfg: &KernelConfig,
        plan: &TilePlan,
        algorithm: Algorithm,
        faults: FaultPlan,
    ) -> Result<RunReport, EngineError> {
        let full = self.options.mode == ExecMode::Full;
        let policy = self.options.recovery;
        let drop_b_dep = faults.profile().drop_kernel_b_dep;
        let gpu = Gpu::with_tracer(self.spec.clone(), self.tracer.clone());
        gpu.set_cost_scale(self.options.cost_scale);
        gpu.set_fault_plan(faults);
        let init_ns = gpu.now_ns();
        let run_track = self.tracer.track("engine", TimeDomain::Virtual);
        let run_span = self.tracer.begin_span(
            run_track,
            "run",
            format!("run (recovering): {}", algorithm.name()),
            0,
        );
        let mut q_xfer = gpu.create_queue_labeled("transfer");
        let mut q_comp = gpu.create_queue_labeled("compute");
        let mut health_xfer = QueueHealth::default();
        let mut health_comp = QueueHealth::default();
        let k = plan.k_words;

        let mk_buf = |words: usize| -> Result<BufferId, EngineError> {
            Ok(if full {
                gpu.create_buffer(words)?
            } else {
                gpu.create_virtual_buffer(words)?
            })
        };
        let a_buf = mk_buf(plan.a_buffer_words().max(1))?;
        let b_buf = mk_buf(plan.b_buffer_words().max(1))?;
        let c_buf = mk_buf(plan.c_buffer_words().max(1))?;

        let mut gamma = if full {
            Some(CountMatrix::zeros(a.rows(), b.rows()))
        } else {
            None
        };
        let mut a_stage: Vec<u32> = Vec::new();
        let mut b_stage: Vec<u32> = Vec::new();
        let mut c_stage: Vec<u32> = Vec::new();
        let mut pack_ns = 0u64;
        let mut kernel_events: Vec<EventId> = Vec::new();
        let mut in_events: Vec<EventId> = Vec::new();
        let mut out_events: Vec<EventId> = Vec::new();
        let mut word_ops: u128 = 0;
        let mut summary = RecoverySummary::default();

        // The checkpoint structure: chunks in m-major order, each verified
        // and scattered into `gamma` before the next begins, so the resume
        // point after a loss is simply the first incomplete index.
        let chunks: Vec<(usize, usize)> = (0..plan.m_chunks.len())
            .flat_map(|mi| (0..plan.n_chunks.len()).map(move |ni| (mi, ni)))
            .collect();
        summary.total_chunks = chunks.len();

        let mut last_m_uploaded: Option<usize> = None;
        let mut ev_a: Option<EventId> = None;
        let mut last_kernel: Option<EventId> = None;
        let mut lost_at: Option<usize> = None;
        let mut lost_err: Option<EngineError> = None;

        // Any step that fails with DeviceLoss abandons the device loop
        // (keeping the checkpointed prefix); any other error aborts.
        macro_rules! try_or_lose {
            ($lbl:lifetime, $ci:expr, $res:expr) => {
                match $res {
                    Ok(v) => v,
                    Err(e) => {
                        if e.device_fault()
                            .is_some_and(|f| f.kind == FaultKind::DeviceLoss)
                        {
                            lost_at = Some($ci);
                            lost_err = Some(e);
                            break $lbl;
                        }
                        return Err(e);
                    }
                }
            };
        }

        'chunks: for (ci, &(mi, ni)) in chunks.iter().enumerate() {
            let mc = &plan.m_chunks[mi];
            let nc = &plan.n_chunks[ni];

            // A upload, once per m-chunk. The previous kernel may still be
            // reading the buffer, so the write waits on it.
            if last_m_uploaded != Some(mi) {
                let a_bytes = (mc.len() * k * 4) as u64;
                pack_ns += self.spec.transfer.pack_ns(a_bytes);
                gpu.host_pack(a_bytes);
                if full {
                    device_words_into(a, mc.lo, mc.hi, &mut a_stage);
                }
                let adeps: Vec<EventId> = last_kernel.into_iter().collect();
                let ev = try_or_lose!(
                    'chunks,
                    ci,
                    Self::attempt_with_retry(
                        &gpu,
                        &policy,
                        &mut summary,
                        &mut health_xfer,
                        &mut q_xfer,
                        "transfer",
                        |q| if full {
                            gpu.enqueue_write(q, a_buf, 0, &a_stage, &adeps)
                        } else {
                            gpu.enqueue_virtual_write(q, a_buf, 0, mc.len() * k, &adeps)
                        },
                    )
                );
                in_events.push(ev);
                ev_a = Some(ev);
                last_m_uploaded = Some(mi);
            }

            // B upload.
            let b_bytes = (nc.len() * k * 4) as u64;
            pack_ns += self.spec.transfer.pack_ns(b_bytes);
            gpu.host_pack(b_bytes);
            if full {
                device_words_into(b, nc.lo, nc.hi, &mut b_stage);
            }
            let bdeps: Vec<EventId> = last_kernel.into_iter().collect();
            let ev_b = try_or_lose!(
                'chunks,
                ci,
                Self::attempt_with_retry(
                    &gpu,
                    &policy,
                    &mut summary,
                    &mut health_xfer,
                    &mut q_xfer,
                    "transfer",
                    |q| if full {
                        gpu.enqueue_write(q, b_buf, 0, &b_stage, &bdeps)
                    } else {
                        gpu.enqueue_virtual_write(q, b_buf, 0, nc.len() * k, &bdeps)
                    },
                )
            );
            in_events.push(ev_b);

            // Kernel. The recovery path always runs the scalar-popcount
            // plan: when the matrix-unit path faults mid-run, re-executed
            // chunks must not depend on the faulting unit, and the scalar
            // program is the bit-exact oracle on every device.
            let kplan = KernelPlan::with_lowering(
                &self.spec,
                cfg,
                op,
                mc.len(),
                nc.len(),
                k,
                Lowering::Scalar,
            );
            let mut kdeps = vec![ev_a.expect("A chunk uploaded before its kernels")];
            if !drop_b_dep {
                kdeps.push(ev_b);
            }
            let (m_len, n_len) = (mc.len(), nc.len());
            let ev_k = try_or_lose!(
                'chunks,
                ci,
                Self::attempt_with_retry(
                    &gpu,
                    &policy,
                    &mut summary,
                    &mut health_comp,
                    &mut q_comp,
                    "compute",
                    |q| if full {
                        gpu.enqueue_kernel(
                            q,
                            &kplan.cost(),
                            &[a_buf, b_buf],
                            c_buf,
                            &kdeps,
                            |reads, out| {
                                execute_gamma(op, reads[0], reads[1], out, m_len, n_len, k);
                            },
                        )
                    } else {
                        gpu.enqueue_kernel_timed_on(q, &kplan.cost(), &[a_buf, b_buf], c_buf, &kdeps)
                    },
                )
            );
            word_ops += kplan.word_ops;
            kernel_events.push(ev_k);
            last_kernel = Some(ev_k);

            // Readback, checksum-verified in Full mode: the device-side
            // checksum sees the uncorrupted buffer, so a mismatch against
            // the received words pinpoints link corruption and the chunk is
            // simply re-read. This is the only defense against the
            // *silent* fault class.
            let want_words = mc.len() * nc.len();
            if full {
                c_stage.resize(want_words, 0);
                let mut verify_attempts = 0u32;
                loop {
                    let ev_r = try_or_lose!(
                        'chunks,
                        ci,
                        Self::attempt_with_retry(
                            &gpu,
                            &policy,
                            &mut summary,
                            &mut health_xfer,
                            &mut q_xfer,
                            "transfer",
                            |q| gpu.enqueue_read(q, c_buf, 0, &mut c_stage, &[ev_k], true),
                        )
                    );
                    out_events.push(ev_r);
                    if !policy.checksums {
                        break;
                    }
                    let (dev_sum, ev_s) = try_or_lose!(
                        'chunks,
                        ci,
                        Self::attempt_with_retry(
                            &gpu,
                            &policy,
                            &mut summary,
                            &mut health_xfer,
                            &mut q_xfer,
                            "transfer",
                            |q| gpu.enqueue_checksum_read(q, c_buf, 0, want_words, &[ev_k]),
                        )
                    );
                    out_events.push(ev_s);
                    if dev_sum == checksum_words(&c_stage) {
                        break;
                    }
                    summary.corruption_detected += 1;
                    metrics::CORRUPTION_DETECTED.add(1);
                    verify_attempts += 1;
                    if verify_attempts > policy.max_retries {
                        return Err(EngineError::Device(SimError::DeviceFault(DeviceFault {
                            kind: FaultKind::ReadCorruption,
                            op: FaultOp::Read,
                            command_index: gpu.command_log().commands.len() as u64,
                        })));
                    }
                }
                let g = gamma.as_mut().expect("full mode");
                for (ri, row) in c_stage.chunks_exact(nc.len()).enumerate() {
                    g.row_mut(mc.lo + ri)[nc.lo..nc.hi].copy_from_slice(row);
                }
            } else {
                let ev_r = try_or_lose!(
                    'chunks,
                    ci,
                    Self::attempt_with_retry(
                        &gpu,
                        &policy,
                        &mut summary,
                        &mut health_xfer,
                        &mut q_xfer,
                        "transfer",
                        |q| gpu.enqueue_virtual_read(q, c_buf, 0, want_words, &[ev_k]),
                    )
                );
                out_events.push(ev_r);
            }
            summary.verified_chunks += 1;
            metrics::CHECKPOINT_CHUNKS.add(1);
        }

        // Permanent device loss: resume from the last checkpoint on the
        // CPU engine (Full mode with fallback enabled), or surface the
        // typed fault. The checkpointed prefix is never recomputed.
        let mut fallback_ns_total = 0u64;
        if let Some(ci) = lost_at {
            summary.device_lost = true;
            summary.resumed_from_chunk = Some(ci);
            metrics::DEVICE_LOSS.add(1);
            if gpu.tracer().is_enabled() {
                gpu.tracer().span_with(
                    gpu.host_track(),
                    "fault",
                    "device lost",
                    gpu.now_ns(),
                    gpu.now_ns(),
                    vec![("resume_chunk", ci.into())],
                );
            }
            if !(policy.cpu_fallback && full) {
                return Err(lost_err.expect("loss recorded with its error"));
            }
            let cpu = CpuEngine::new();
            let model = CpuModel::ivy_bridge_workstation();
            let kind = word_op_kind(op);
            let g = gamma.as_mut().expect("full mode");
            let mut fallback_ns = 0f64;
            for &(mi, ni) in &chunks[ci..] {
                let mc = &plan.m_chunks[mi];
                let nc = &plan.n_chunks[ni];
                let sub = cpu.gamma(&a.row_slice(mc.lo, mc.hi), &b.row_slice(nc.lo, nc.hi), op);
                for r in 0..mc.len() {
                    g.row_mut(mc.lo + r)[nc.lo..nc.hi].copy_from_slice(&sub.row(r)[..nc.len()]);
                }
                fallback_ns += model.time_ns(kind, mc.len(), nc.len(), a.words_per_row());
                summary.cpu_fallback_chunks += 1;
                metrics::CPU_FALLBACK_CHUNKS.add(1);
            }
            fallback_ns_total = fallback_ns.ceil() as u64;
            let fb_start = gpu.now_ns();
            gpu.advance_host_ns(fallback_ns_total);
            if gpu.tracer().is_enabled() {
                gpu.tracer().span_with(
                    gpu.host_track(),
                    "fallback",
                    "cpu fallback",
                    fb_start,
                    fb_start + fallback_ns_total,
                    vec![("chunks", summary.cpu_fallback_chunks.into())],
                );
            }
        }
        gpu.finish_all();
        summary.injected = gpu.fault_stats();
        summary.stalls_absorbed = summary.injected.queue_stalls;

        let sum = |evs: &[EventId]| -> u64 {
            evs.iter()
                .map(|&e| gpu.event_profile(e).map(|p| p.duration_ns()).unwrap_or(0))
                .sum()
        };
        let kernel_ns = record_kernel_chunks(&gpu, &kernel_events);
        let timing = Timing {
            init_ns,
            pack_ns,
            kernel_ns,
            transfer_in_ns: sum(&in_events),
            transfer_out_ns: sum(&out_events),
            recovery_ns: summary.backoff_ns + fallback_ns_total,
            end_to_end_ns: gpu.now_ns(),
        };
        debug_assert!(
            timing.validate().is_ok(),
            "timing reconciliation failed: {} ({timing:?})",
            timing.validate().unwrap_err()
        );
        // Recovered and partial streams must still verify clean: retries
        // and re-reads may not introduce ordering hazards.
        let verify_report = if self.options.verify {
            let report = snp_verify::verify_command_log(&gpu.command_log());
            if report.has_errors() {
                return Err(EngineError::Device(snp_gpu_sim::SimError::Hazard(
                    report.render_text("command stream"),
                )));
            }
            Some(report)
        } else {
            None
        };
        if self.tracer.is_enabled() {
            self.tracer.end_span_with(
                run_span,
                timing.end_to_end_ns,
                vec![
                    ("passes", kernel_events.len().into()),
                    ("retries", summary.retries.into()),
                    ("corruption_detected", summary.corruption_detected.into()),
                    ("device_lost", u64::from(summary.device_lost).into()),
                    ("device", self.spec.name.as_str().into()),
                ],
            );
        }
        let kernel_profiles = collect_kernel_profiles(self.options.profile, &gpu, &kernel_events);
        Ok(RunReport {
            gamma,
            timing,
            word_ops,
            passes: kernel_events.len(),
            config: *cfg,
            kernel_word_ops_per_sec: word_ops as f64 / (kernel_ns.max(1) as f64 * 1e-9),
            verify_report,
            recovery: Some(summary),
            kernel_profiles,
        })
    }

    /// Runs the full command stream for `shape` in timing-only mode without
    /// materializing operands — the entry point for linting and sweeping
    /// database-scale problems whose bit matrices would not fit host RAM.
    pub fn run_shape(
        &self,
        shape: ProblemShape,
        algorithm: Algorithm,
    ) -> Result<RunReport, EngineError> {
        let mut eng = self.clone();
        eng.options.mode = ExecMode::TimingOnly;
        let op = compare_op(algorithm, eng.options.mixture);
        let cfg = config_for(&eng.spec, algorithm, shape);
        let plan = plan_passes(
            &eng.spec,
            &cfg,
            shape.m,
            shape.n,
            shape.k_words,
            eng.options.double_buffer,
        )?;
        // Timing-only never touches operand words, so empty placeholders
        // stand in for the matrices.
        let empty = BitMatrix::zeros(0, 0);
        eng.run_plan(&empty, &empty, op, &cfg, &plan, algorithm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snp_bitmat::reference_gamma;
    use snp_gpu_model::devices;

    fn matrix(rows: usize, cols: usize, salt: usize) -> BitMatrix<u64> {
        BitMatrix::from_fn(rows, cols, |r, c| {
            (r.wrapping_mul(0x9E37_79B9) ^ c.wrapping_mul(salt + 0x85EB_CA6B)) % 7 < 3
        })
    }

    #[test]
    fn device_words_preserve_bits() {
        let m = matrix(3, 130, 1);
        let dw = device_words(&m, 0, 3);
        assert_eq!(dw.len(), 3 * m.words_per_row() * 2);
        let m32: BitMatrix<u32> = m.convert();
        // Compare logical bits via the converted matrix: word w of row r is
        // dw[r*2*wpr + w] for the first min words.
        for r in 0..3 {
            for w in 0..m32.words_per_row() {
                assert_eq!(dw[r * 2 * m.words_per_row() + w], m32.row(r)[w]);
            }
        }
    }

    #[test]
    fn device_words_into_reuses_allocation() {
        let m = matrix(8, 500, 12);
        let mut stage = Vec::new();
        device_words_into(&m, 0, 8, &mut stage);
        assert_eq!(stage, device_words(&m, 0, 8));
        let cap = stage.capacity();
        // Smaller refill must reuse the grown allocation.
        device_words_into(&m, 2, 5, &mut stage);
        assert_eq!(stage, device_words(&m, 2, 5));
        assert_eq!(stage.capacity(), cap, "staging buffer must not reallocate");
    }

    #[test]
    fn full_run_matches_reference_all_algorithms() {
        let a = matrix(70, 500, 1);
        let b = matrix(130, 500, 2);
        let want_and = reference_gamma(&a, &b, CompareOp::And);
        let want_xor = reference_gamma(&a, &b, CompareOp::Xor);
        let want_andnot = reference_gamma(&a, &b, CompareOp::AndNot);
        for dev in [devices::gtx_980(), devices::titan_v(), devices::vega_64()] {
            let eng = GpuEngine::new(dev.clone());
            let ld = eng
                .compare(&a, &b, Algorithm::LinkageDisequilibrium)
                .unwrap();
            assert_eq!(
                ld.gamma.unwrap().first_mismatch(&want_and),
                None,
                "{} LD",
                dev.name
            );
            let id = eng.identity_search(&a, &b).unwrap();
            assert_eq!(
                id.gamma.unwrap().first_mismatch(&want_xor),
                None,
                "{} ID",
                dev.name
            );
            let mix = eng.mixture_analysis(&a, &b).unwrap();
            assert_eq!(
                mix.gamma.unwrap().first_mismatch(&want_andnot),
                None,
                "{} MIX",
                dev.name
            );
        }
    }

    #[test]
    fn prenegation_strategy_gives_identical_results() {
        let refs = matrix(40, 256, 3);
        let mixes = matrix(24, 256, 4);
        let dev = devices::vega_64();
        let direct = GpuEngine::new(dev.clone())
            .with_options(EngineOptions {
                mixture: MixtureStrategy::Direct,
                ..Default::default()
            })
            .mixture_analysis(&refs, &mixes)
            .unwrap();
        let pre = GpuEngine::new(dev)
            .with_options(EngineOptions {
                mixture: MixtureStrategy::PreNegate,
                ..Default::default()
            })
            .mixture_analysis(&refs, &mixes)
            .unwrap();
        assert_eq!(
            direct
                .gamma
                .unwrap()
                .first_mismatch(pre.gamma.as_ref().unwrap()),
            None
        );
    }

    #[test]
    fn timing_only_matches_full_timing() {
        let a = matrix(64, 2048, 5);
        let b = matrix(256, 2048, 6);
        let dev = devices::gtx_980();
        let full = GpuEngine::new(dev.clone()).identity_search(&a, &b).unwrap();
        let timed = GpuEngine::new(dev)
            .with_options(EngineOptions {
                mode: ExecMode::TimingOnly,
                ..Default::default()
            })
            .identity_search(&a, &b)
            .unwrap();
        assert!(timed.gamma.is_none());
        assert_eq!(full.timing.end_to_end_ns, timed.timing.end_to_end_ns);
        assert_eq!(full.timing.kernel_ns, timed.timing.kernel_ns);
        assert_eq!(full.passes, timed.passes);
    }

    #[test]
    fn end_to_end_includes_init_and_exceeds_kernel() {
        let a = matrix(40, 1024, 7);
        let dev = devices::titan_v();
        let r = GpuEngine::new(dev.clone()).ld_self(&a).unwrap();
        assert_eq!(r.timing.init_ns, dev.transfer.runtime_init_ns);
        assert!(r.timing.end_to_end_ns >= r.timing.init_ns + r.timing.kernel_ns);
        assert!(r.word_ops > 0 && r.kernel_word_ops_per_sec > 0.0);
    }

    #[test]
    fn multi_pass_problems_assemble_correctly() {
        // Force chunking with a fake tiny-memory device.
        let mut dev = devices::gtx_980();
        dev.name = "GTX tiny".into(); // avoid Table II presets
        dev.max_alloc_bytes = 1 << 17; // 128 KiB
        dev.global_mem_bytes = 1 << 20;
        let a = matrix(48, 700, 8);
        let b = matrix(900, 700, 9);
        let eng = GpuEngine::new(dev);
        let r = eng.identity_search(&a, &b).unwrap();
        assert!(
            r.passes > 1,
            "expected chunked execution, got {} passes",
            r.passes
        );
        let want = reference_gamma(&a, &b, CompareOp::Xor);
        assert_eq!(r.gamma.unwrap().first_mismatch(&want), None);
    }

    #[test]
    fn timing_reconciles_phase_sums_with_end_to_end() {
        // Real runs across shapes and modes must satisfy every invariant of
        // Timing::validate: per-resource busy times fit in the post-init
        // window, and the window is covered by the union of phases.
        let a = matrix(64, 2048, 21);
        let b = matrix(512, 2048, 22);
        for dev in [devices::gtx_980(), devices::titan_v()] {
            for double_buffer in [false, true] {
                let r = GpuEngine::new(dev.clone())
                    .with_options(EngineOptions {
                        mode: ExecMode::TimingOnly,
                        double_buffer,
                        ..Default::default()
                    })
                    .identity_search(&a, &b)
                    .unwrap();
                r.timing.validate().unwrap_or_else(|e| {
                    panic!("{} (db={double_buffer}): {e}", dev.name);
                });
                assert!(r.timing.busy_ns() > 0);
            }
        }
    }

    #[test]
    fn timing_validate_rejects_inconsistent_totals() {
        let good = Timing {
            init_ns: 100,
            pack_ns: 10,
            kernel_ns: 50,
            transfer_in_ns: 20,
            transfer_out_ns: 10,
            recovery_ns: 0,
            end_to_end_ns: 180,
        };
        good.validate().unwrap();
        // Recovery time participates in the union bound: idle backoff is
        // attributable time.
        let mut recovered = good;
        recovered.end_to_end_ns = 220;
        assert!(recovered.validate().is_err(), "40ns unattributed");
        recovered.recovery_ns = 40;
        recovered.validate().unwrap();
        // Kernel time cannot exceed the post-init window.
        let mut bad = good;
        bad.kernel_ns = 1_000;
        assert!(bad.validate().is_err());
        // Transfers share one link: their sum cannot exceed the window.
        bad = good;
        bad.transfer_in_ns = 60;
        bad.transfer_out_ns = 60;
        assert!(bad.validate().is_err());
        // The window cannot exceed the union of all phases.
        bad = good;
        bad.end_to_end_ns = 10_000;
        assert!(bad.validate().is_err());
        // End before init is nonsense.
        bad = good;
        bad.end_to_end_ns = 50;
        assert!(bad.validate().is_err());
    }

    #[test]
    fn run_shape_matches_materialized_timing_only_run() {
        let a = matrix(64, 2048, 5);
        let b = matrix(256, 2048, 6);
        let dev = devices::gtx_980();
        let opts = EngineOptions {
            mode: ExecMode::TimingOnly,
            ..Default::default()
        };
        let timed = GpuEngine::new(dev.clone())
            .with_options(opts)
            .identity_search(&a, &b)
            .unwrap();
        let shape = ProblemShape {
            m: a.rows(),
            n: b.rows(),
            k_words: 2 * a.words_per_row(),
        };
        let shaped = GpuEngine::new(dev)
            .with_options(opts)
            .run_shape(shape, Algorithm::IdentitySearch)
            .unwrap();
        assert_eq!(shaped.timing.end_to_end_ns, timed.timing.end_to_end_ns);
        assert_eq!(shaped.passes, timed.passes);
        assert!(shaped.gamma.is_none());
    }

    #[test]
    fn verifier_passes_clean_stream_and_catches_seeded_hazard() {
        // Same tiny-memory shape as double_buffer_improves_end_to_end: one
        // m-chunk, several n-chunks, double-buffered across two B slots.
        let mut dev = devices::gtx_980();
        dev.name = "GTX tiny".into(); // avoid Table II presets
        dev.max_alloc_bytes = 1 << 17;
        dev.global_mem_bytes = 1 << 20;
        let a = matrix(8, 320, 10);
        let b = matrix(12288, 320, 11);
        let opts = EngineOptions {
            mode: ExecMode::TimingOnly,
            verify: true,
            ..Default::default()
        };
        let clean = GpuEngine::new(dev.clone())
            .with_options(opts)
            .identity_search(&a, &b)
            .unwrap();
        let report = clean.verify_report.expect("verification ran");
        assert!(!report.has_errors());
        assert!(
            report.count(snp_verify::Severity::Warning) == 0,
            "{}",
            report.render_text("clean stream")
        );

        // Mutation: drop the B-upload edge from each kernel's wait list,
        // seeded through the fault plan's engine-fault entry. The upload
        // lands on the transfer queue, the kernel on the compute queue;
        // without the event there is NO path ordering them.
        let err = GpuEngine::new(dev)
            .with_options(opts)
            .with_fault_plan(FaultPlan::new(
                0,
                snp_faults::FaultProfile {
                    drop_kernel_b_dep: true,
                    ..snp_faults::FaultProfile::none()
                },
            ))
            .identity_search(&a, &b)
            .unwrap_err();
        match err {
            EngineError::Device(snp_gpu_sim::SimError::Hazard(report)) => {
                assert!(report.contains("V001-RAW"), "unexpected report: {report}");
            }
            other => panic!("expected a hazard, got: {other}"),
        }
    }

    #[test]
    fn double_buffer_improves_end_to_end() {
        // A tiny-memory device forces many n-chunks (one m-chunk, four
        // n-chunks for this shape), so the pipelined B uploads have kernels
        // to hide behind.
        let mut dev = devices::gtx_980();
        dev.name = "GTX tiny".into(); // avoid Table II presets
        dev.max_alloc_bytes = 1 << 17;
        dev.global_mem_bytes = 1 << 20;
        let a = matrix(8, 320, 10);
        let b = matrix(12288, 320, 11);
        let with = GpuEngine::new(dev.clone())
            .with_options(EngineOptions {
                mode: ExecMode::TimingOnly,
                double_buffer: true,
                ..Default::default()
            })
            .identity_search(&a, &b)
            .unwrap();
        let without = GpuEngine::new(dev)
            .with_options(EngineOptions {
                mode: ExecMode::TimingOnly,
                double_buffer: false,
                ..Default::default()
            })
            .identity_search(&a, &b)
            .unwrap();
        assert!(
            with.timing.end_to_end_ns < without.timing.end_to_end_ns,
            "pipelined B uploads must overlap compute: {} vs {}",
            with.timing.end_to_end_ns,
            without.timing.end_to_end_ns
        );
    }
}
