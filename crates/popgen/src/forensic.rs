//! Forensic workloads: FastID identity search and mixture analysis.
//!
//! These generators produce NDIS-scale synthetic reference databases (the
//! paper sizes its Fig. 8 experiment after the FBI NDIS database, >20 M
//! profiles), query sets with known ground truth (planted matches plus
//! genotyping noise), and DNA mixtures formed as the union of contributor
//! profiles (a site shows the minor allele if any contributor carries it).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use snp_bitmat::BitMatrix;

use crate::freq::FrequencySpectrum;

/// Configuration of a synthetic forensic reference database.
#[derive(Debug, Clone, PartialEq)]
pub struct DatabaseConfig {
    /// Number of reference profiles (rows).
    pub profiles: usize,
    /// Number of SNP sites per profile (bit columns).
    pub snps: usize,
    /// MAF spectrum of the panel. Forensic panels are ascertained for
    /// informativeness, so the default is Beta-shaped around intermediate
    /// frequencies.
    pub spectrum: FrequencySpectrum,
}

impl Default for DatabaseConfig {
    fn default() -> Self {
        DatabaseConfig {
            profiles: 4096,
            snps: 512,
            spectrum: FrequencySpectrum::Beta {
                alpha: 2.0,
                beta: 3.0,
            },
        }
    }
}

/// A generated database plus the per-site MAFs that produced it.
#[derive(Debug, Clone)]
pub struct Database {
    /// `profiles × snps` packed matrix.
    pub profiles: BitMatrix<u64>,
    /// The minor-allele frequency of each site.
    pub site_maf: Vec<f64>,
}

/// Generates a reference database deterministically from `seed`.
///
/// Profiles are sampled independently per site from the panel MAFs — the
/// standard random-mating model for unrelated individuals.
pub fn generate_database(cfg: &DatabaseConfig, seed: u64) -> Database {
    assert!(cfg.profiles > 0 && cfg.snps > 0);
    let mut rng = StdRng::seed_from_u64(seed);
    let site_maf = cfg.spectrum.sample_n(&mut rng, cfg.snps);
    let mut profiles = BitMatrix::zeros(cfg.profiles, cfg.snps);
    for r in 0..cfg.profiles {
        for (c, &maf) in site_maf.iter().enumerate() {
            if rng.random_bool(maf) {
                profiles.set(r, c, true);
            }
        }
    }
    Database { profiles, site_maf }
}

/// A query set with ground truth for identity search.
#[derive(Debug, Clone)]
pub struct QuerySet {
    /// `queries × snps` packed matrix.
    pub queries: BitMatrix<u64>,
    /// For each query: `Some(db_row)` if it was planted as a (noisy) copy of
    /// a database profile, `None` if it is a random non-member.
    pub truth: Vec<Option<usize>>,
}

/// Builds `total` queries against `db`: the first `planted` are copies of
/// uniformly chosen database rows with each site flipped with probability
/// `noise` (genotyping error), the rest are fresh random profiles drawn from
/// the same site MAFs (true non-members).
pub fn generate_queries(
    db: &Database,
    total: usize,
    planted: usize,
    noise: f64,
    seed: u64,
) -> QuerySet {
    assert!(
        planted <= total,
        "cannot plant {planted} of {total} queries"
    );
    assert!((0.0..=0.5).contains(&noise));
    let mut rng = StdRng::seed_from_u64(seed);
    let snps = db.profiles.cols();
    let mut queries = BitMatrix::zeros(total, snps);
    let mut truth = Vec::with_capacity(total);
    for q in 0..total {
        if q < planted {
            let src = rng.random_range(0..db.profiles.rows());
            truth.push(Some(src));
            for c in 0..snps {
                let mut bit = db.profiles.get(src, c);
                if noise > 0.0 && rng.random_bool(noise) {
                    bit = !bit;
                }
                if bit {
                    queries.set(q, c, true);
                }
            }
        } else {
            truth.push(None);
            for (c, &maf) in db.site_maf.iter().enumerate() {
                if rng.random_bool(maf) {
                    queries.set(q, c, true);
                }
            }
        }
    }
    QuerySet { queries, truth }
}

/// A DNA mixture with known contributors.
#[derive(Debug, Clone)]
pub struct Mixture {
    /// The mixture profile: the bitwise OR of the contributors' profiles —
    /// a site exhibits the minor allele if any contributor carries it.
    pub profile: Vec<bool>,
    /// Database rows of the contributors.
    pub contributors: Vec<usize>,
}

/// Forms `count` mixtures, each the union of `contributors_per_mixture`
/// distinct database profiles. Returns the mixtures and, packed, the
/// `count × snps` mixture matrix (rows = mixtures) ready for comparison.
pub fn generate_mixtures(
    db: &Database,
    count: usize,
    contributors_per_mixture: usize,
    seed: u64,
) -> (Vec<Mixture>, BitMatrix<u64>) {
    assert!(contributors_per_mixture >= 1);
    assert!(
        contributors_per_mixture <= db.profiles.rows(),
        "not enough database profiles for {contributors_per_mixture} contributors"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let snps = db.profiles.cols();
    let mut matrix = BitMatrix::zeros(count, snps);
    let mut mixtures = Vec::with_capacity(count);
    for i in 0..count {
        let mut contributors = Vec::with_capacity(contributors_per_mixture);
        while contributors.len() < contributors_per_mixture {
            let c = rng.random_range(0..db.profiles.rows());
            if !contributors.contains(&c) {
                contributors.push(c);
            }
        }
        let mut profile = vec![false; snps];
        for &c in &contributors {
            for (s, p) in profile.iter_mut().enumerate() {
                *p |= db.profiles.get(c, s);
            }
        }
        for (s, &p) in profile.iter().enumerate() {
            if p {
                matrix.set(i, s, true);
            }
        }
        mixtures.push(Mixture {
            profile,
            contributors,
        });
    }
    (mixtures, matrix)
}

#[cfg(test)]
mod tests {
    use super::*;
    use snp_bitmat::{reference_gamma, CompareOp};

    fn small_db() -> Database {
        generate_database(
            &DatabaseConfig {
                profiles: 200,
                snps: 256,
                ..Default::default()
            },
            77,
        )
    }

    #[test]
    fn database_shape_and_determinism() {
        let a = small_db();
        let b = small_db();
        assert_eq!(a.profiles, b.profiles);
        assert_eq!(a.profiles.rows(), 200);
        assert_eq!(a.profiles.cols(), 256);
        assert_eq!(a.site_maf.len(), 256);
        assert!(a.profiles.padding_is_zero());
    }

    #[test]
    fn database_density_tracks_mean_maf() {
        let db = generate_database(
            &DatabaseConfig {
                profiles: 500,
                snps: 400,
                spectrum: FrequencySpectrum::Fixed(0.25),
            },
            3,
        );
        assert!((db.profiles.density() - 0.25).abs() < 0.01);
    }

    #[test]
    fn noiseless_planted_query_matches_exactly() {
        let db = small_db();
        let qs = generate_queries(&db, 8, 8, 0.0, 5);
        let gamma = reference_gamma(&qs.queries, &db.profiles, CompareOp::Xor);
        for (q, truth) in qs.truth.iter().enumerate() {
            let t = truth.expect("all planted");
            assert_eq!(
                gamma.get(q, t),
                0,
                "planted query must have zero differences"
            );
            assert_eq!(gamma.argmin_in_row(q), Some(t));
        }
    }

    #[test]
    fn noisy_planted_query_is_still_nearest() {
        let db = small_db();
        let qs = generate_queries(&db, 6, 6, 0.02, 6);
        let gamma = reference_gamma(&qs.queries, &db.profiles, CompareOp::Xor);
        let mut total_differences = 0;
        for (q, truth) in qs.truth.iter().enumerate() {
            let t = truth.unwrap();
            let best = gamma.argmin_in_row(q).unwrap();
            assert_eq!(best, t, "2% noise should not change the nearest profile");
            total_differences += gamma.get(q, t);
        }
        // Any single query can escape flips (p ≈ 0.98^256 per query), so only
        // the aggregate is a safe assertion.
        assert!(
            total_differences > 0,
            "noise should introduce some differences"
        );
    }

    #[test]
    fn nonmember_queries_have_no_zero_match() {
        let db = small_db();
        let qs = generate_queries(&db, 10, 0, 0.0, 8);
        let gamma = reference_gamma(&qs.queries, &db.profiles, CompareOp::Xor);
        let zero_matches = (0..10)
            .flat_map(|q| (0..db.profiles.rows()).map(move |j| (q, j)))
            .filter(|&(q, j)| gamma.get(q, j) == 0)
            .count();
        assert_eq!(
            zero_matches, 0,
            "random 256-SNP profiles should never collide"
        );
    }

    #[test]
    fn mixture_is_union_of_contributors() {
        let db = small_db();
        let (mixtures, matrix) = generate_mixtures(&db, 4, 3, 9);
        assert_eq!(matrix.rows(), 4);
        for (i, mix) in mixtures.iter().enumerate() {
            assert_eq!(mix.contributors.len(), 3);
            for s in 0..db.profiles.cols() {
                let expected = mix.contributors.iter().any(|&c| db.profiles.get(c, s));
                assert_eq!(matrix.get(i, s), expected);
                assert_eq!(mix.profile[s], expected);
            }
        }
    }

    #[test]
    fn contributors_have_zero_andnot_against_their_mixture() {
        // γ = popc(r & !m) == 0 iff every allele of r appears in m — true
        // for real contributors (paper §II-C).
        let db = small_db();
        let (mixtures, matrix) = generate_mixtures(&db, 3, 2, 10);
        let gamma = reference_gamma(&db.profiles, &matrix, CompareOp::AndNot);
        for (i, mix) in mixtures.iter().enumerate() {
            for &c in &mix.contributors {
                assert_eq!(gamma.get(c, i), 0, "contributor {c} of mixture {i}");
            }
        }
        // Non-contributors should usually have positive scores.
        let positives = (0..db.profiles.rows())
            .filter(|r| !mixtures[0].contributors.contains(r))
            .filter(|&r| gamma.get(r, 0) > 0)
            .count();
        assert!(
            positives > 150,
            "most non-contributors must be excluded, got {positives}"
        );
    }

    #[test]
    #[should_panic(expected = "cannot plant")]
    fn too_many_planted_panics() {
        let db = small_db();
        let _ = generate_queries(&db, 2, 3, 0.0, 1);
    }
}
