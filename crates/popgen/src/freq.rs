//! Minor-allele frequency (MAF) spectra.
//!
//! SNP panels are characterized by the distribution of minor-allele
//! frequencies across sites. The generators here provide the spectra used
//! by the workload builders: a neutral (`∝ 1/x`) site-frequency spectrum,
//! a Beta-shaped ascertained-panel spectrum (forensic marker panels are
//! chosen for intermediate frequencies), and degenerate fixed/uniform
//! spectra for controlled benchmarks.

use rand::{Rng, RngExt};

/// A distribution over per-site minor-allele frequencies in `(0, 0.5]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FrequencySpectrum {
    /// Every site has the same MAF.
    Fixed(f64),
    /// Uniform on `[lo, hi]`.
    Uniform {
        /// Lower bound (exclusive of 0).
        lo: f64,
        /// Upper bound (≤ 0.5).
        hi: f64,
    },
    /// Neutral site-frequency spectrum: density `∝ 1/x` on `[lo, 0.5]`.
    /// Most sites are rare — the regime that motivates the paper's sparse
    /// future work (§VII).
    Neutral {
        /// Lower truncation of the spectrum (e.g. `1/(2N)` for sample size N).
        lo: f64,
    },
    /// `Beta(α, β)` rescaled onto `(0, 0.5]` — models ascertained panels
    /// (e.g. forensic SNP sets selected for high heterozygosity).
    Beta {
        /// Alpha shape parameter.
        alpha: f64,
        /// Beta shape parameter.
        beta: f64,
    },
}

impl FrequencySpectrum {
    /// Draws one MAF from the spectrum.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match *self {
            FrequencySpectrum::Fixed(p) => {
                assert!(p > 0.0 && p <= 0.5, "fixed MAF {p} outside (0, 0.5]");
                p
            }
            FrequencySpectrum::Uniform { lo, hi } => {
                assert!(
                    lo > 0.0 && hi <= 0.5 && lo <= hi,
                    "bad uniform range [{lo}, {hi}]"
                );
                rng.random_range(lo..=hi)
            }
            FrequencySpectrum::Neutral { lo } => {
                assert!(lo > 0.0 && lo < 0.5, "bad neutral truncation {lo}");
                // Inverse-CDF sampling of density 1/x on [lo, 0.5]:
                // F(x) = ln(x/lo) / ln(0.5/lo).
                let u: f64 = rng.random();
                lo * (0.5f64 / lo).powf(u)
            }
            FrequencySpectrum::Beta { alpha, beta } => {
                assert!(alpha > 0.0 && beta > 0.0);
                0.5 * sample_beta(rng, alpha, beta).clamp(1e-6, 1.0)
            }
        }
    }

    /// Draws `n` MAFs.
    pub fn sample_n<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }

    /// The spectrum's mean MAF, estimated analytically where closed-form
    /// and by construction otherwise. Used by tests and by the sparse
    /// crossover analysis.
    pub fn mean(&self) -> f64 {
        match *self {
            FrequencySpectrum::Fixed(p) => p,
            FrequencySpectrum::Uniform { lo, hi } => (lo + hi) / 2.0,
            FrequencySpectrum::Neutral { lo } => {
                // E[X] for density c/x on [lo, 0.5] = (0.5 - lo) / ln(0.5/lo).
                (0.5 - lo) / (0.5f64 / lo).ln()
            }
            FrequencySpectrum::Beta { alpha, beta } => 0.5 * alpha / (alpha + beta),
        }
    }
}

/// Samples `Beta(α, β)` via two Gamma draws (Marsaglia–Tsang squeeze for
/// shape ≥ 1, boosted for shape < 1). Avoids an extra dependency.
fn sample_beta<R: Rng + ?Sized>(rng: &mut R, alpha: f64, beta: f64) -> f64 {
    let x = sample_gamma(rng, alpha);
    let y = sample_gamma(rng, beta);
    x / (x + y)
}

fn sample_gamma<R: Rng + ?Sized>(rng: &mut R, shape: f64) -> f64 {
    if shape < 1.0 {
        // Boost: Gamma(a) = Gamma(a + 1) * U^{1/a}.
        let u: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
        return sample_gamma(rng, shape + 1.0) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        // Standard normal via Box–Muller.
        let u1: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
        let u2: f64 = rng.random();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let v = (1.0 + c * z).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
        if u.ln() < 0.5 * z * z + d - d * v + d * v.ln() {
            return d * v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn fixed_returns_constant() {
        let mut r = rng();
        let s = FrequencySpectrum::Fixed(0.2);
        for _ in 0..10 {
            assert_eq!(s.sample(&mut r), 0.2);
        }
    }

    #[test]
    fn uniform_stays_in_range() {
        let mut r = rng();
        let s = FrequencySpectrum::Uniform { lo: 0.1, hi: 0.4 };
        for _ in 0..1000 {
            let p = s.sample(&mut r);
            assert!((0.1..=0.4).contains(&p));
        }
    }

    #[test]
    fn neutral_is_rare_skewed() {
        let mut r = rng();
        let s = FrequencySpectrum::Neutral { lo: 0.001 };
        let draws = s.sample_n(&mut r, 20_000);
        assert!(draws.iter().all(|&p| (0.001..=0.5).contains(&p)));
        let below_01: usize = draws.iter().filter(|&&p| p < 0.1).count();
        assert!(
            below_01 as f64 / draws.len() as f64 > 0.6,
            "neutral spectrum should be dominated by rare alleles"
        );
        let emp_mean = draws.iter().sum::<f64>() / draws.len() as f64;
        assert!(
            (emp_mean - s.mean()).abs() < 0.01,
            "empirical {emp_mean} vs analytic {}",
            s.mean()
        );
    }

    #[test]
    fn beta_mean_matches_analytic() {
        let mut r = rng();
        let s = FrequencySpectrum::Beta {
            alpha: 2.0,
            beta: 2.0,
        };
        let draws = s.sample_n(&mut r, 20_000);
        assert!(draws.iter().all(|&p| (0.0..=0.5).contains(&p)));
        let emp = draws.iter().sum::<f64>() / draws.len() as f64;
        assert!(
            (emp - 0.25).abs() < 0.01,
            "Beta(2,2)/2 mean should be 0.25, got {emp}"
        );
    }

    #[test]
    fn uniform_mean() {
        let s = FrequencySpectrum::Uniform { lo: 0.2, hi: 0.4 };
        assert!((s.mean() - 0.3).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn fixed_out_of_range_panics() {
        let mut r = rng();
        let _ = FrequencySpectrum::Fixed(0.7).sample(&mut r);
    }

    #[test]
    fn deterministic_under_seed() {
        let s = FrequencySpectrum::Neutral { lo: 0.01 };
        let a = s.sample_n(&mut StdRng::seed_from_u64(7), 50);
        let b = s.sample_n(&mut StdRng::seed_from_u64(7), 50);
        assert_eq!(a, b);
    }
}
