//! Haplotype-block detection from LD output.
//!
//! The standard downstream use of an all-pairs LD computation: partition
//! consecutive SNPs into blocks of strong linkage. The detector here is a
//! greedy contiguous partition — extend the current block while the mean r²
//! between the candidate SNP and the block's recent members stays above a
//! threshold — which is exactly recoverable on the synthetic block panels
//! of [`crate::population`], giving an end-to-end accuracy test for the
//! whole LD pipeline.

use snp_bitmat::CountMatrix;

use crate::ld_stats::ld_pair;

/// A detected block: SNP indices `start..end` (half-open).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Block {
    /// First SNP of the block.
    pub start: usize,
    /// One past the last SNP.
    pub end: usize,
}

impl Block {
    /// SNPs in the block.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True for an empty range.
    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }
}

/// Detector configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockDetector {
    /// Minimum mean r² against the recent block members to extend a block.
    pub r2_threshold: f64,
    /// How many trailing members of the current block the candidate is
    /// compared against (robustness to single noisy SNPs).
    pub lookback: usize,
}

impl Default for BlockDetector {
    fn default() -> Self {
        BlockDetector {
            r2_threshold: 0.4,
            lookback: 3,
        }
    }
}

impl BlockDetector {
    /// Partitions `0..snps` into blocks using the self-comparison counts
    /// `gamma` (AND-popcount of the panel against itself) over `samples`
    /// haplotypes. Every SNP belongs to exactly one block; blocks are
    /// contiguous and ordered.
    pub fn detect(&self, gamma: &CountMatrix, samples: usize) -> Vec<Block> {
        assert_eq!(gamma.rows(), gamma.cols(), "need a self-comparison matrix");
        assert!(samples > 0);
        assert!(self.lookback >= 1, "lookback must be at least 1");
        let snps = gamma.rows();
        let mut blocks = Vec::new();
        if snps == 0 {
            return blocks;
        }
        let mut start = 0usize;
        for s in 1..snps {
            let lo = s.saturating_sub(self.lookback).max(start);
            let mut sum = 0.0;
            let mut n = 0usize;
            for t in lo..s {
                sum += ld_pair(gamma, samples, t, s).r2;
                n += 1;
            }
            let mean = if n == 0 { 1.0 } else { sum / n as f64 };
            if mean < self.r2_threshold {
                blocks.push(Block { start, end: s });
                start = s;
            }
        }
        blocks.push(Block { start, end: snps });
        blocks
    }
}

/// Mean within-block r² over adjacent pairs, for reporting block quality.
pub fn mean_adjacent_r2(gamma: &CountMatrix, samples: usize, block: Block) -> f64 {
    if block.len() < 2 {
        return 1.0;
    }
    let mut sum = 0.0;
    for s in block.start..block.end - 1 {
        sum += ld_pair(gamma, samples, s, s + 1).r2;
    }
    sum / (block.len() - 1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::population::{generate_panel, PanelConfig};
    use crate::FrequencySpectrum;
    use snp_bitmat::{reference_gamma_self, CompareOp};

    fn panel_gamma(
        snps: usize,
        block_len: usize,
        flip: f64,
        seed: u64,
    ) -> (CountMatrix, Vec<usize>, usize) {
        let samples = 3000;
        let p = generate_panel(
            &PanelConfig {
                snps,
                samples,
                spectrum: FrequencySpectrum::Fixed(0.35),
                block_len,
                within_block_flip: flip,
            },
            seed,
        );
        (
            reference_gamma_self(&p.matrix, CompareOp::And),
            p.block_of,
            samples,
        )
    }

    #[test]
    fn recovers_planted_block_boundaries() {
        let (gamma, truth, samples) = panel_gamma(96, 12, 0.01, 5);
        let blocks = BlockDetector::default().detect(&gamma, samples);
        // Planted: boundaries at multiples of 12.
        let detected: Vec<usize> = blocks.iter().map(|b| b.start).collect();
        let planted: Vec<usize> = (0..96).step_by(12).collect();
        assert_eq!(detected, planted, "blocks {blocks:?} vs truth {truth:?}");
    }

    #[test]
    fn partition_is_contiguous_and_total() {
        let (gamma, _, samples) = panel_gamma(70, 9, 0.05, 6);
        let blocks = BlockDetector::default().detect(&gamma, samples);
        assert_eq!(blocks[0].start, 0);
        assert_eq!(blocks.last().unwrap().end, 70);
        for w in blocks.windows(2) {
            assert_eq!(w[0].end, w[1].start, "no gaps or overlaps");
        }
        assert!(blocks.iter().all(|b| !b.is_empty()));
    }

    #[test]
    fn within_block_quality_exceeds_threshold() {
        let (gamma, _, samples) = panel_gamma(60, 10, 0.02, 7);
        let det = BlockDetector::default();
        for b in det.detect(&gamma, samples) {
            if b.len() >= 3 {
                assert!(
                    mean_adjacent_r2(&gamma, samples, b) > det.r2_threshold,
                    "block {b:?} too weak"
                );
            }
        }
    }

    #[test]
    fn independent_snps_become_singleton_blocks() {
        let (gamma, _, samples) = panel_gamma(40, 1, 0.0, 8);
        let blocks = BlockDetector::default().detect(&gamma, samples);
        let singletons = blocks.iter().filter(|b| b.len() == 1).count();
        assert!(
            singletons as f64 > 0.8 * blocks.len() as f64,
            "independent SNPs should not merge: {blocks:?}"
        );
    }

    #[test]
    fn degenerate_inputs() {
        let det = BlockDetector::default();
        let empty = CountMatrix::zeros(0, 0);
        assert!(det.detect(&empty, 10).is_empty());
        let one = CountMatrix::from_vec(1, 1, vec![50]);
        let blocks = det.detect(&one, 100);
        assert_eq!(blocks, vec![Block { start: 0, end: 1 }]);
        assert_eq!(mean_adjacent_r2(&one, 100, blocks[0]), 1.0);
    }

    #[test]
    fn lookback_bridges_single_noisy_snps() {
        // With lookback 3 a single weak SNP inside a strong block does not
        // split it; with lookback 1 it does.
        let (gamma, _, samples) = panel_gamma(48, 16, 0.08, 11);
        let strict = BlockDetector {
            r2_threshold: 0.4,
            lookback: 1,
        }
        .detect(&gamma, samples);
        let robust = BlockDetector {
            r2_threshold: 0.4,
            lookback: 3,
        }
        .detect(&gamma, samples);
        assert!(
            robust.len() <= strict.len(),
            "lookback should only merge: {} vs {}",
            robust.len(),
            strict.len()
        );
    }
}
