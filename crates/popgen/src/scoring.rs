//! Forensic score interpretation: from raw `γ` counts to decisions.
//!
//! FastID's output is a difference count per (query, profile) pair; turning
//! it into an identification requires a statistical model (paper §II-B:
//! "the number of set bits in the result is an indication of the likelihood
//! that an input comes from the suspect"). This module provides the
//! standard log-likelihood-ratio treatment:
//!
//! * under H₁ (same source), each site mismatches independently with the
//!   genotyping error rate `e`;
//! * under H₂ (different, unrelated source), site `i` mismatches with
//!   probability `2 q_i (1 − q_i)` where `q_i` is the frequency of the
//!   *encoded bit* being set (for the dominant encoding, the carrier
//!   frequency of the minor allele);
//!
//! both counts are sums of independent Bernoullis, approximated by normals
//! (the panel sizes of interest are hundreds to thousands of sites).

/// Identity-search scorer for a fixed panel.
#[derive(Debug, Clone)]
pub struct IdentityScorer {
    /// Per-site probability that the encoded bit is set in a random
    /// profile.
    bit_freq: Vec<f64>,
    /// Per-site genotyping/transcription error rate.
    error_rate: f64,
    // Cached moments.
    h2_mean: f64,
    h2_var: f64,
}

impl IdentityScorer {
    /// Builds a scorer from per-site set-bit frequencies and an error rate.
    pub fn new(bit_freq: Vec<f64>, error_rate: f64) -> Self {
        assert!(!bit_freq.is_empty(), "panel must have sites");
        assert!(
            (0.0..0.5).contains(&error_rate),
            "error rate {error_rate} outside [0, 0.5)"
        );
        for (i, &q) in bit_freq.iter().enumerate() {
            assert!((0.0..=1.0).contains(&q), "site {i}: bad frequency {q}");
        }
        let (mut mean, mut var) = (0.0f64, 0.0f64);
        for &q in &bit_freq {
            let p = 2.0 * q * (1.0 - q);
            mean += p;
            var += p * (1.0 - p);
        }
        IdentityScorer {
            bit_freq,
            error_rate,
            h2_mean: mean,
            h2_var: var,
        }
    }

    /// Builds the scorer from minor-allele frequencies under the dominant
    /// encoding (bit = carries minor allele): carrier frequency
    /// `q = 1 − (1 − maf)²` per HWE.
    pub fn from_maf(maf: &[f64], error_rate: f64) -> Self {
        let bit_freq = maf.iter().map(|&p| 1.0 - (1.0 - p) * (1.0 - p)).collect();
        Self::new(bit_freq, error_rate)
    }

    /// Number of panel sites.
    pub fn sites(&self) -> usize {
        self.bit_freq.len()
    }

    /// Expected differences between two *unrelated* profiles.
    pub fn expected_unrelated_differences(&self) -> f64 {
        self.h2_mean
    }

    /// Expected differences between two samples of the *same* source.
    pub fn expected_same_source_differences(&self) -> f64 {
        // Each site flips independently in either observation.
        let e = self.error_rate;
        let flip = 2.0 * e * (1.0 - e);
        flip * self.sites() as f64
    }

    /// Natural-log likelihood ratio of H₁ (same source) vs H₂ (unrelated)
    /// for an observed difference count, under normal approximations of
    /// both mismatch distributions.
    pub fn log_lr(&self, differences: u32) -> f64 {
        let d = differences as f64;
        let n = self.sites() as f64;
        let e = self.error_rate;
        let p1 = 2.0 * e * (1.0 - e);
        let (m1, v1) = (p1 * n, (p1 * (1.0 - p1) * n).max(0.25));
        let (m2, v2) = (self.h2_mean, self.h2_var.max(0.25));
        let log_norm = |x: f64, m: f64, v: f64| -0.5 * ((x - m) * (x - m) / v + v.ln());
        log_norm(d, m1, v1) - log_norm(d, m2, v2)
    }

    /// A decision threshold on the difference count: the midpoint (in
    /// standard-deviation units) between the two hypotheses' means —
    /// differences at or below it favor identity.
    pub fn decision_threshold(&self) -> u32 {
        let m1 = self.expected_same_source_differences();
        let s1 = (m1.max(0.25)).sqrt();
        let m2 = self.h2_mean;
        let s2 = self.h2_var.max(0.25).sqrt();
        // Equal-z crossing between the two normals.
        let t = (m1 * s2 + m2 * s1) / (s1 + s2);
        t.floor() as u32
    }
}

/// Mixture-inclusion statistics.
///
/// A non-contributor `r` is *coincidentally included* in a mixture `m` when
/// every minor allele of `r` also appears in `m` (`γ = popc(r & ¬m) = 0`).
/// With per-site carrier frequencies `q_i` (profile) and `g_i` (mixture),
/// that happens with probability `Π_i (1 − q_i (1 − g_i))` — which decays
/// geometrically with the panel size, the paper's implicit argument for
/// large SNP panels in mixture analysis.
pub fn coincidental_inclusion_probability(
    profile_bit_freq: &[f64],
    mixture_bit_freq: &[f64],
) -> f64 {
    assert_eq!(
        profile_bit_freq.len(),
        mixture_bit_freq.len(),
        "panel size mismatch"
    );
    profile_bit_freq
        .iter()
        .zip(mixture_bit_freq)
        .map(|(&q, &g)| 1.0 - q * (1.0 - g))
        .product()
}

/// Carrier frequency of a `k`-person mixture at a site with profile carrier
/// frequency `q`: the union of `k` independent carriers.
pub fn mixture_bit_freq(q: f64, contributors: usize) -> f64 {
    1.0 - (1.0 - q).powi(contributors as i32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forensic::{generate_database, generate_queries, DatabaseConfig};
    use crate::FrequencySpectrum;
    use snp_bitmat::{reference_gamma, CompareOp};

    fn scorer_for(db: &crate::Database, e: f64) -> IdentityScorer {
        // The generators draw bits directly at the site MAF (haploid-style
        // profiles), so the bit frequency *is* the site MAF.
        IdentityScorer::new(db.site_maf.clone(), e)
    }

    #[test]
    fn planted_queries_score_positive_nonmembers_negative() {
        let db = generate_database(
            &DatabaseConfig {
                profiles: 300,
                snps: 512,
                ..Default::default()
            },
            5,
        );
        let qs = generate_queries(&db, 12, 6, 0.01, 6);
        let gamma = reference_gamma(&qs.queries, &db.profiles, CompareOp::Xor);
        let scorer = scorer_for(&db, 0.01);
        for (q, truth) in qs.truth.iter().enumerate() {
            match truth {
                Some(t) => {
                    let lr = scorer.log_lr(gamma.get(q, *t));
                    assert!(lr > 20.0, "planted query {q}: log LR {lr} too weak");
                }
                None => {
                    let best = gamma.argmin_in_row(q).unwrap();
                    let lr = scorer.log_lr(gamma.get(q, best));
                    assert!(lr < -20.0, "non-member {q}: log LR {lr} should be damning");
                }
            }
        }
    }

    #[test]
    fn expected_unrelated_differences_match_empirical() {
        let db = generate_database(
            &DatabaseConfig {
                profiles: 400,
                snps: 600,
                spectrum: FrequencySpectrum::Uniform { lo: 0.1, hi: 0.5 },
            },
            9,
        );
        let scorer = scorer_for(&db, 0.01);
        let gamma = reference_gamma(&db.profiles, &db.profiles, CompareOp::Xor);
        let mut sum = 0.0;
        let mut n = 0usize;
        for i in 0..100 {
            for j in (i + 1)..100 {
                sum += gamma.get(i, j) as f64;
                n += 1;
            }
        }
        let emp = sum / n as f64;
        let expect = scorer.expected_unrelated_differences();
        assert!(
            (emp - expect).abs() / expect < 0.05,
            "empirical {emp:.1} vs model {expect:.1}"
        );
    }

    #[test]
    fn threshold_separates_hypotheses() {
        let scorer = IdentityScorer::from_maf(&vec![0.3; 800], 0.01);
        let t = scorer.decision_threshold();
        let same = scorer.expected_same_source_differences();
        let diff = scorer.expected_unrelated_differences();
        assert!(
            same < t as f64 && (t as f64) < diff,
            "{same} < {t} < {diff}"
        );
        assert!(scorer.log_lr(same.round() as u32) > 0.0);
        assert!(scorer.log_lr(diff.round() as u32) < 0.0);
    }

    #[test]
    fn log_lr_is_monotone_decreasing_in_differences() {
        let scorer = IdentityScorer::from_maf(&vec![0.25; 500], 0.02);
        let mut prev = f64::INFINITY;
        for d in (0..300).step_by(20) {
            let lr = scorer.log_lr(d);
            assert!(lr < prev, "log LR must fall as differences grow");
            prev = lr;
        }
    }

    #[test]
    fn inclusion_probability_decays_with_panel_size() {
        let q = 0.3;
        let g3 = mixture_bit_freq(q, 3);
        assert!((g3 - (1.0 - 0.7f64.powi(3))).abs() < 1e-12);
        let p128 = coincidental_inclusion_probability(&vec![q; 128], &vec![g3; 128]);
        let p512 = coincidental_inclusion_probability(&vec![q; 512], &vec![g3; 512]);
        assert!(p512 < p128);
        assert!((p512 / p128
            - (p128 / coincidental_inclusion_probability(&[q; 0], &[])).powf(0.0))
        .is_finite());
        // Geometric decay: p(4n) == p(n)^4 for identical sites.
        let p_n = coincidental_inclusion_probability(&vec![q; 100], &vec![g3; 100]);
        let p_4n = coincidental_inclusion_probability(&vec![q; 400], &vec![g3; 400]);
        assert!((p_4n - p_n.powi(4)).abs() < 1e-12);
    }

    #[test]
    fn inclusion_probability_matches_empirical_rate() {
        use crate::forensic::generate_mixtures;
        let db = generate_database(
            &DatabaseConfig {
                profiles: 2_000,
                snps: 64, // small panel => measurable inclusion rate
                spectrum: FrequencySpectrum::Fixed(0.3),
            },
            13,
        );
        // Many mixtures: the inclusion probability of a single mixture is
        // highly dispersed (it is 0.7^z for z = the mixture's zero-site
        // count), so the empirical mean needs averaging across mixtures.
        let (mixtures, matrix) = generate_mixtures(&db, 40, 3, 14);
        let gamma = reference_gamma(&db.profiles, &matrix, CompareOp::AndNot);
        let mut included = 0usize;
        let mut tested = 0usize;
        for (mi, mix) in mixtures.iter().enumerate() {
            for r in 0..db.profiles.rows() {
                if mix.contributors.contains(&r) {
                    continue;
                }
                tested += 1;
                if gamma.get(r, mi) == 0 {
                    included += 1;
                }
            }
        }
        let emp = included as f64 / tested as f64;
        let g = mixture_bit_freq(0.3, 3);
        let model = coincidental_inclusion_probability(&vec![0.3; 64], &vec![g; 64]);
        // Both are small probabilities; agree within the sampling noise of
        // 40 mixtures (≈ 31 % relative sd).
        assert!(
            emp > model / 2.5 && emp < model * 2.5,
            "empirical {emp:.5} vs model {model:.5}"
        );
    }

    #[test]
    #[should_panic(expected = "error rate")]
    fn bad_error_rate_rejected() {
        let _ = IdentityScorer::from_maf(&[0.3], 0.7);
    }
}
