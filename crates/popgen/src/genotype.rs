//! Diploid genotypes and their binary encodings.
//!
//! Real SNP data arrives as diploid genotype calls (0, 1 or 2 copies of the
//! alternate allele, possibly missing). The comparison engines consume
//! *binary* matrices — "major alleles are encoded as 0s while minor alleles
//! (mutations) are captured as 1s" (paper §III, Fig. 2) — so this module
//! provides the encoding step: minor-allele determination (the alternate
//! allele is not always the minor one), missing-data policy, and the three
//! standard binarizations (dominant presence, recessive homozygote,
//! haplotype expansion).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use snp_bitmat::BitMatrix;

/// One diploid genotype call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Genotype {
    /// Homozygous reference (0 alternate alleles).
    HomRef,
    /// Heterozygous (1 alternate allele).
    Het,
    /// Homozygous alternate (2 alternate alleles).
    HomAlt,
    /// No call.
    Missing,
}

impl Genotype {
    /// Number of alternate alleles, or `None` when missing.
    pub fn alt_count(self) -> Option<u8> {
        match self {
            Genotype::HomRef => Some(0),
            Genotype::Het => Some(1),
            Genotype::HomAlt => Some(2),
            Genotype::Missing => None,
        }
    }

    /// Parses the conventional 0/1/2 dosage encoding (`.` or anything else
    /// maps to missing via [`None`]).
    pub fn from_dosage(d: u8) -> Option<Genotype> {
        match d {
            0 => Some(Genotype::HomRef),
            1 => Some(Genotype::Het),
            2 => Some(Genotype::HomAlt),
            _ => None,
        }
    }
}

/// How missing calls are binarized.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MissingPolicy {
    /// Treat a missing call as homozygous major (contributes no minor
    /// alleles) — the conservative default, and count-neutral for AND /
    /// AND-NOT comparisons.
    AsMajor,
    /// Treat a missing call as carrying the minor allele.
    AsMinor,
}

/// A samples × sites diploid genotype matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GenotypeMatrix {
    samples: usize,
    sites: usize,
    // Row-major alt-allele dosage; 255 = missing.
    data: Vec<u8>,
}

const MISSING: u8 = 255;

impl GenotypeMatrix {
    /// Builds from a closure over (sample, site).
    pub fn from_fn(
        samples: usize,
        sites: usize,
        mut f: impl FnMut(usize, usize) -> Genotype,
    ) -> Self {
        let mut data = Vec::with_capacity(samples * sites);
        for s in 0..samples {
            for v in 0..sites {
                data.push(match f(s, v) {
                    Genotype::Missing => MISSING,
                    g => g.alt_count().unwrap(),
                });
            }
        }
        GenotypeMatrix {
            samples,
            sites,
            data,
        }
    }

    /// Number of samples (rows).
    pub fn samples(&self) -> usize {
        self.samples
    }

    /// Number of SNP sites (columns).
    pub fn sites(&self) -> usize {
        self.sites
    }

    /// The genotype at (sample, site).
    pub fn get(&self, sample: usize, site: usize) -> Genotype {
        assert!(
            sample < self.samples && site < self.sites,
            "index out of bounds"
        );
        match self.data[sample * self.sites + site] {
            0 => Genotype::HomRef,
            1 => Genotype::Het,
            2 => Genotype::HomAlt,
            _ => Genotype::Missing,
        }
    }

    /// Fraction of non-missing calls at `site`.
    pub fn call_rate(&self, site: usize) -> f64 {
        let called = (0..self.samples)
            .filter(|&s| self.data[s * self.sites + site] != MISSING)
            .count();
        if self.samples == 0 {
            0.0
        } else {
            called as f64 / self.samples as f64
        }
    }

    /// Alternate-allele frequency at `site` among called genotypes
    /// (`None` if every call is missing).
    pub fn alt_frequency(&self, site: usize) -> Option<f64> {
        let mut alt = 0u64;
        let mut called = 0u64;
        for s in 0..self.samples {
            let d = self.data[s * self.sites + site];
            if d != MISSING {
                alt += d as u64;
                called += 1;
            }
        }
        if called == 0 {
            None
        } else {
            Some(alt as f64 / (2 * called) as f64)
        }
    }

    /// Per-site flag: is the *alternate* allele the minor one? (`false`
    /// means the reference allele is rarer and becomes the encoded "minor"
    /// allele — paper Fig. 2 encodes minor-allele presence, not alt-allele
    /// presence). Sites with no calls default to `true`.
    pub fn alt_is_minor(&self) -> Vec<bool> {
        (0..self.sites)
            .map(|v| self.alt_frequency(v).is_none_or(|f| f <= 0.5))
            .collect()
    }

    /// Dominant binarization: bit = sample carries ≥ 1 *minor* allele.
    /// This is the encoding the comparison algorithms consume (Fig. 2).
    pub fn to_presence_bits(&self, policy: MissingPolicy) -> BitMatrix<u64> {
        let minor_is_alt = self.alt_is_minor();
        BitMatrix::from_fn(self.samples, self.sites, |s, v| {
            match self.get(s, v).alt_count() {
                None => policy == MissingPolicy::AsMinor,
                Some(alt) => {
                    let minor_copies = if minor_is_alt[v] { alt } else { 2 - alt };
                    minor_copies >= 1
                }
            }
        })
    }

    /// Recessive binarization: bit = sample is homozygous for the minor
    /// allele.
    pub fn to_recessive_bits(&self, policy: MissingPolicy) -> BitMatrix<u64> {
        let minor_is_alt = self.alt_is_minor();
        BitMatrix::from_fn(self.samples, self.sites, |s, v| {
            match self.get(s, v).alt_count() {
                None => policy == MissingPolicy::AsMinor,
                Some(alt) => {
                    let minor_copies = if minor_is_alt[v] { alt } else { 2 - alt };
                    minor_copies == 2
                }
            }
        })
    }

    /// Haplotype expansion: each sample becomes two rows; a heterozygote
    /// sets the minor bit on exactly one of them. (Phase is not modeled —
    /// the first haplotype carries the het minor allele — which leaves all
    /// per-site allele counts exact.)
    pub fn to_haplotype_bits(&self, policy: MissingPolicy) -> BitMatrix<u64> {
        let minor_is_alt = self.alt_is_minor();
        BitMatrix::from_fn(self.samples * 2, self.sites, |row, v| {
            let (s, hap) = (row / 2, row % 2);
            match self.get(s, v).alt_count() {
                None => policy == MissingPolicy::AsMinor,
                Some(alt) => {
                    let minor_copies = if minor_is_alt[v] { alt } else { 2 - alt };
                    match minor_copies {
                        0 => false,
                        1 => hap == 0,
                        _ => true,
                    }
                }
            }
        })
    }
}

/// Generates diploid genotypes under Hardy–Weinberg equilibrium from
/// per-site alternate-allele frequencies, with a uniform missing rate.
pub fn generate_hwe(
    samples: usize,
    alt_freq: &[f64],
    missing_rate: f64,
    seed: u64,
) -> GenotypeMatrix {
    assert!((0.0..1.0).contains(&missing_rate));
    for (i, &p) in alt_freq.iter().enumerate() {
        assert!((0.0..=1.0).contains(&p), "site {i}: bad frequency {p}");
    }
    let mut rng = StdRng::seed_from_u64(seed);
    GenotypeMatrix::from_fn(samples, alt_freq.len(), |_, v| {
        if missing_rate > 0.0 && rng.random_bool(missing_rate) {
            return Genotype::Missing;
        }
        let p = alt_freq[v];
        let u: f64 = rng.random();
        // HWE: P(HomAlt) = p², P(Het) = 2p(1-p), P(HomRef) = (1-p)².
        if u < p * p {
            Genotype::HomAlt
        } else if u < p * p + 2.0 * p * (1.0 - p) {
            Genotype::Het
        } else {
            Genotype::HomRef
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> GenotypeMatrix {
        // 3 samples x 4 sites.
        let calls = [
            [
                Genotype::HomRef,
                Genotype::Het,
                Genotype::HomAlt,
                Genotype::Missing,
            ],
            [
                Genotype::Het,
                Genotype::HomAlt,
                Genotype::HomAlt,
                Genotype::HomRef,
            ],
            [
                Genotype::HomRef,
                Genotype::HomAlt,
                Genotype::HomAlt,
                Genotype::Het,
            ],
        ];
        GenotypeMatrix::from_fn(3, 4, |s, v| calls[s][v])
    }

    #[test]
    fn accessors_and_frequencies() {
        let g = tiny();
        assert_eq!(g.samples(), 3);
        assert_eq!(g.sites(), 4);
        assert_eq!(g.get(0, 3), Genotype::Missing);
        assert_eq!(g.get(1, 1), Genotype::HomAlt);
        // Site 0: dosages 0,1,0 over 3 samples -> alt freq 1/6.
        assert!((g.alt_frequency(0).unwrap() - 1.0 / 6.0).abs() < 1e-12);
        // Site 3: dosages missing,0,1 over 2 called -> 1/4; call rate 2/3.
        assert!((g.alt_frequency(3).unwrap() - 0.25).abs() < 1e-12);
        assert!((g.call_rate(3) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(g.call_rate(0), 1.0);
    }

    #[test]
    fn minor_allele_flips_when_alt_is_common() {
        let g = tiny();
        let flags = g.alt_is_minor();
        assert!(flags[0], "site 0: alt rare");
        // Site 2: all HomAlt -> alt freq 1.0 -> REF is the minor allele.
        assert!(!flags[2]);
    }

    #[test]
    fn dominant_encoding_counts_minor_presence() {
        let g = tiny();
        let bits = g.to_presence_bits(MissingPolicy::AsMajor);
        assert_eq!(bits.rows(), 3);
        // Site 0 (alt minor): Het sample 1 only.
        assert!(!bits.get(0, 0) && bits.get(1, 0) && !bits.get(2, 0));
        // Site 2 (REF minor, everyone HomAlt = 0 minor copies): all zero.
        assert!(!bits.get(0, 2) && !bits.get(1, 2) && !bits.get(2, 2));
        // Missing as major: sample 0 site 3 cleared.
        assert!(!bits.get(0, 3));
        let bits_minor = g.to_presence_bits(MissingPolicy::AsMinor);
        assert!(bits_minor.get(0, 3));
    }

    #[test]
    fn recessive_encoding_requires_two_copies() {
        let g = tiny();
        let bits = g.to_recessive_bits(MissingPolicy::AsMajor);
        // Site 1 (alt freq 5/6 -> REF minor): HomAlt = 0 REF copies -> false;
        // Het = 1 -> false; so nothing set at site 1.
        assert!(!bits.get(1, 1) && !bits.get(0, 1));
        // Site 0: only a Het; recessive needs 2 copies.
        assert!(!bits.get(1, 0));
    }

    #[test]
    fn haplotype_expansion_preserves_allele_counts() {
        let g = tiny();
        let hap = g.to_haplotype_bits(MissingPolicy::AsMajor);
        assert_eq!(hap.rows(), 6);
        let minor_is_alt = g.alt_is_minor();
        for (v, &alt_minor) in minor_is_alt.iter().enumerate() {
            let hap_count: u32 = (0..6).map(|r| hap.get(r, v) as u32).sum();
            let expect: u32 = (0..3)
                .filter_map(|s| g.get(s, v).alt_count())
                .map(|alt| {
                    if alt_minor {
                        alt as u32
                    } else {
                        2 - alt as u32
                    }
                })
                .sum();
            assert_eq!(hap_count, expect, "site {v}");
        }
    }

    #[test]
    fn hwe_generator_matches_expected_frequencies() {
        let freqs = vec![0.1, 0.3, 0.5];
        let g = generate_hwe(20_000, &freqs, 0.0, 33);
        for (v, &p) in freqs.iter().enumerate() {
            let got = g.alt_frequency(v).unwrap();
            assert!((got - p).abs() < 0.01, "site {v}: {got} vs {p}");
            // Het fraction ≈ 2p(1-p).
            let hets = (0..20_000)
                .filter(|&s| g.get(s, v) == Genotype::Het)
                .count();
            let expect = 2.0 * p * (1.0 - p);
            assert!((hets as f64 / 20_000.0 - expect).abs() < 0.02);
        }
    }

    #[test]
    fn hwe_missing_rate_respected() {
        let g = generate_hwe(5_000, &[0.2, 0.4], 0.1, 7);
        for v in 0..2 {
            assert!((g.call_rate(v) - 0.9).abs() < 0.02);
        }
        assert_eq!(generate_hwe(10, &[0.2], 0.0, 1).call_rate(0), 1.0);
    }

    #[test]
    fn dosage_parsing() {
        assert_eq!(Genotype::from_dosage(0), Some(Genotype::HomRef));
        assert_eq!(Genotype::from_dosage(2), Some(Genotype::HomAlt));
        assert_eq!(Genotype::from_dosage(3), None);
        assert_eq!(Genotype::Missing.alt_count(), None);
    }

    #[test]
    fn encodings_feed_the_comparison_stack() {
        // The encoded matrix goes straight into a popcount comparison.
        use snp_bitmat::{reference_gamma_self, CompareOp};
        let g = generate_hwe(64, &vec![0.25; 128], 0.02, 9);
        let bits = g.to_presence_bits(MissingPolicy::AsMajor);
        let gamma = reference_gamma_self(&bits, CompareOp::And);
        assert_eq!(gamma.rows(), 64);
        // Diagonal equals each sample's minor-allele site count.
        for s in 0..64 {
            let ones: u32 = bits.row(s).iter().map(|w| w.count_ones()).sum();
            assert_eq!(gamma.get(s, s), ones);
        }
    }
}
