//! Population panels for linkage-disequilibrium studies.
//!
//! LD inputs are matrices with one row per SNP site and one bit column per
//! haplotype sample (paper Fig. 2, following \[11\]). The generator supports
//! block-structured correlation: consecutive SNPs inside an LD block are
//! produced by copying the previous SNP's sample vector and flipping each
//! bit with a small recombination/mutation probability, which yields the
//! non-random association the statistic is designed to detect. Block
//! boundaries re-draw an independent SNP, so cross-block LD is near zero.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use snp_bitmat::BitMatrix;

use crate::freq::FrequencySpectrum;

/// Configuration of a synthetic LD panel.
#[derive(Debug, Clone, PartialEq)]
pub struct PanelConfig {
    /// Number of SNP sites (matrix rows).
    pub snps: usize,
    /// Number of haplotype samples (matrix bit columns).
    pub samples: usize,
    /// MAF spectrum for independent (block-head) sites.
    pub spectrum: FrequencySpectrum,
    /// Expected LD-block length in SNPs; `1` disables correlation.
    pub block_len: usize,
    /// Per-sample flip probability when extending a block (controls decay
    /// of r² with distance inside a block).
    pub within_block_flip: f64,
}

impl Default for PanelConfig {
    fn default() -> Self {
        PanelConfig {
            snps: 1024,
            samples: 512,
            spectrum: FrequencySpectrum::Uniform { lo: 0.05, hi: 0.5 },
            block_len: 16,
            within_block_flip: 0.05,
        }
    }
}

/// A generated LD panel: the packed SNP × sample matrix plus ground truth.
#[derive(Debug, Clone)]
pub struct Panel {
    /// `snps × samples` bit matrix; row = SNP, bit = sample.
    pub matrix: BitMatrix<u64>,
    /// Index of the block each SNP belongs to (for validating that LD decays
    /// across block boundaries).
    pub block_of: Vec<usize>,
}

/// Generates a panel deterministically from `seed`.
pub fn generate_panel(cfg: &PanelConfig, seed: u64) -> Panel {
    assert!(cfg.snps > 0 && cfg.samples > 0, "panel must be non-empty");
    assert!(cfg.block_len >= 1, "block_len must be >= 1");
    assert!((0.0..=0.5).contains(&cfg.within_block_flip));
    let mut rng = StdRng::seed_from_u64(seed);
    let mut matrix = BitMatrix::zeros(cfg.snps, cfg.samples);
    let mut block_of = vec![0usize; cfg.snps];
    let mut block = 0usize;
    let mut in_block = 0usize;
    let mut prev: Vec<bool> = vec![false; cfg.samples];
    #[allow(clippy::needless_range_loop)] // s indexes both the matrix and block_of
    for s in 0..cfg.snps {
        let fresh = s == 0 || in_block >= cfg.block_len;
        if fresh {
            if s != 0 {
                block += 1;
            }
            in_block = 0;
            let maf = cfg.spectrum.sample(&mut rng);
            for (j, p) in prev.iter_mut().enumerate() {
                *p = rng.random_bool(maf);
                if *p {
                    matrix.set(s, j, true);
                }
            }
        } else {
            for (j, p) in prev.iter_mut().enumerate() {
                if rng.random_bool(cfg.within_block_flip) {
                    *p = !*p;
                }
                if *p {
                    matrix.set(s, j, true);
                }
            }
        }
        block_of[s] = block;
        in_block += 1;
    }
    Panel { matrix, block_of }
}

/// Generates an *uncorrelated* panel (every SNP independent) — the
/// configuration used for raw throughput benchmarks where statistical
/// structure is irrelevant.
pub fn generate_independent(snps: usize, samples: usize, maf: f64, seed: u64) -> BitMatrix<u64> {
    let cfg = PanelConfig {
        snps,
        samples,
        spectrum: FrequencySpectrum::Fixed(maf),
        block_len: 1,
        within_block_flip: 0.0,
    };
    generate_panel(&cfg, seed).matrix
}

/// Fast generator of a dense random bit matrix with exact word-level
/// randomness (density ≈ 0.5) — the cheapest way to build benchmark-sized
/// inputs. Rows × cols, padding kept zero.
pub fn random_dense(rows: usize, cols: usize, seed: u64) -> BitMatrix<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let wpr = BitMatrix::<u64>::words_for_cols(cols);
    let full_words = cols / 64;
    let rem = (cols % 64) as u32;
    let mut data = vec![0u64; rows * wpr];
    for r in 0..rows {
        let base = r * wpr;
        for w in 0..full_words {
            data[base + w] = rng.random();
        }
        if rem != 0 {
            data[base + full_words] = rng.random::<u64>() & ((1u64 << rem) - 1);
        }
    }
    BitMatrix::from_words(rows, cols, wpr, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use snp_bitmat::{reference_gamma_self, CompareOp};

    #[test]
    fn panel_shape_and_padding() {
        let cfg = PanelConfig {
            snps: 100,
            samples: 130,
            ..Default::default()
        };
        let p = generate_panel(&cfg, 1);
        assert_eq!(p.matrix.rows(), 100);
        assert_eq!(p.matrix.cols(), 130);
        assert!(p.matrix.padding_is_zero());
        assert_eq!(p.block_of.len(), 100);
    }

    #[test]
    fn deterministic_under_seed() {
        let cfg = PanelConfig::default();
        let a = generate_panel(&cfg, 9).matrix;
        let b = generate_panel(&cfg, 9).matrix;
        assert_eq!(a, b);
        let c = generate_panel(&cfg, 10).matrix;
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn blocks_have_expected_length() {
        let cfg = PanelConfig {
            snps: 64,
            block_len: 8,
            ..Default::default()
        };
        let p = generate_panel(&cfg, 3);
        assert_eq!(p.block_of[0], 0);
        assert_eq!(p.block_of[7], 0);
        assert_eq!(p.block_of[8], 1);
        assert_eq!(p.block_of[63], 7);
    }

    #[test]
    fn within_block_correlation_exceeds_between_block() {
        let cfg = PanelConfig {
            snps: 200,
            samples: 2000,
            spectrum: FrequencySpectrum::Fixed(0.3),
            block_len: 10,
            within_block_flip: 0.02,
        };
        let p = generate_panel(&cfg, 5);
        let gamma = reference_gamma_self(&p.matrix, CompareOp::And);
        let n = cfg.samples as f64;
        // Average |D| for adjacent pairs inside vs across blocks.
        let mut within = (0.0, 0usize);
        let mut across = (0.0, 0usize);
        for s in 0..cfg.snps - 1 {
            let pa = gamma.get(s, s) as f64 / n;
            let pb = gamma.get(s + 1, s + 1) as f64 / n;
            let pab = gamma.get(s, s + 1) as f64 / n;
            let d = (pab - pa * pb).abs();
            if p.block_of[s] == p.block_of[s + 1] {
                within.0 += d;
                within.1 += 1;
            } else {
                across.0 += d;
                across.1 += 1;
            }
        }
        let within_mean = within.0 / within.1 as f64;
        let across_mean = across.0 / across.1 as f64;
        assert!(
            within_mean > 4.0 * across_mean,
            "within-block LD {within_mean} should dominate across-block {across_mean}"
        );
    }

    #[test]
    fn independent_density_tracks_maf() {
        let m = generate_independent(50, 2000, 0.2, 11);
        assert!((m.density() - 0.2).abs() < 0.01, "density {}", m.density());
    }

    #[test]
    fn random_dense_density_is_half_and_padding_clean() {
        let m = random_dense(64, 1000, 13);
        assert!((m.density() - 0.5).abs() < 0.01, "density {}", m.density());
        assert!(m.padding_is_zero());
        // Non-multiple-of-64 column count exercises the mask path.
        let m2 = random_dense(8, 65, 13);
        assert!(m2.padding_is_zero());
    }

    #[test]
    fn random_dense_deterministic() {
        assert_eq!(random_dense(10, 100, 42), random_dense(10, 100, 42));
    }
}
