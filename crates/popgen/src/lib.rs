//! # snp-popgen — synthetic workloads and genetics statistics
//!
//! The paper's experiments run on simulated SNP datasets (Fig. 6) and on
//! NDIS-scale forensic databases (Fig. 8). This crate generates those
//! inputs deterministically and computes the population-genetics statistics
//! the comparisons feed:
//!
//! * [`freq`] — minor-allele-frequency spectra (neutral, Beta-ascertained,
//!   uniform, fixed);
//! * [`population`] — LD panels with block correlation structure, plus fast
//!   dense generators for raw-throughput benchmarks;
//! * [`forensic`] — reference databases, query sets with planted ground
//!   truth, and DNA mixtures built as contributor unions;
//! * [`ld_stats`] — `D`, `D'`, `r²` from popcount-GEMM outputs;
//! * [`io`] — a minimal 0/1 text format for the examples.
//!
//! ```
//! use snp_popgen::forensic::{generate_database, generate_queries, DatabaseConfig};
//! use snp_bitmat::{reference_gamma, CompareOp};
//!
//! let db = generate_database(&DatabaseConfig { profiles: 64, snps: 128, ..Default::default() }, 1);
//! let qs = generate_queries(&db, 4, 4, 0.0, 2);
//! let gamma = reference_gamma(&qs.queries, &db.profiles, CompareOp::Xor);
//! for (q, truth) in qs.truth.iter().enumerate() {
//!     assert_eq!(gamma.get(q, truth.unwrap()), 0); // exact identity match
//! }
//! ```

#![warn(missing_docs)]

pub mod blocks;
pub mod forensic;
pub mod freq;
pub mod genotype;
pub mod io;
pub mod kinship;
pub mod ld_stats;
pub mod population;
pub mod scoring;

pub use blocks::{mean_adjacent_r2, Block, BlockDetector};
pub use forensic::{Database, DatabaseConfig, Mixture, QuerySet};
pub use freq::FrequencySpectrum;
pub use genotype::{generate_hwe, Genotype, GenotypeMatrix, MissingPolicy};
pub use kinship::{
    classify_pairs, generate_family, ibs, FamilyStudy, KinshipClassifier, Relationship,
};
pub use ld_stats::{ld_pair, r2_matrix, LdPair};
pub use population::{generate_independent, generate_panel, random_dense, Panel, PanelConfig};
pub use scoring::{coincidental_inclusion_probability, mixture_bit_freq, IdentityScorer};
