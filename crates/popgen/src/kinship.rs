//! Kinship from SNP comparisons.
//!
//! The forensic motivation the paper cites (\[4\], KinLinks) goes beyond
//! exact identity: relatives share segments, so their profiles are *closer*
//! than unrelated pairs without matching exactly. The XOR difference count
//! the FastID kernel already produces is exactly the identity-by-state
//! statistic needed: `IBS = 1 − γ_xor / sites`. This module provides a
//! pedigree-aware generator (children inherit each site from a random
//! parent) and IBS-based relationship classification, giving the comparison
//! engines a third forensic application with testable ground truth.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use snp_bitmat::{BitMatrix, CountMatrix};

/// Identity-by-state similarity from an XOR difference count over `sites`.
pub fn ibs(xor_differences: u32, sites: usize) -> f64 {
    assert!(sites > 0, "need at least one site");
    1.0 - xor_differences as f64 / sites as f64
}

/// Relationship classes distinguishable from haploid presence profiles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Relationship {
    /// Same source (or identical twins): IBS ≈ 1.
    Identical,
    /// First-degree relatives (parent–child, full siblings).
    FirstDegree,
    /// Unrelated members of the population.
    Unrelated,
}

/// A generated family study: founders, children, and everyone's profiles.
#[derive(Debug, Clone)]
pub struct FamilyStudy {
    /// All profiles: founders first, then children.
    pub profiles: BitMatrix<u64>,
    /// For each child row index: its two parent row indices.
    pub parents: Vec<(usize, usize, usize)>,
    /// Number of founder rows.
    pub founders: usize,
    /// Per-site carrier frequency used for founders.
    pub site_freq: Vec<f64>,
}

/// Generates `founders` unrelated profiles plus `children`, each inheriting
/// every site from one of its two (distinct, random) parents — the haploid
/// analogue of Mendelian transmission for presence/absence encodings.
pub fn generate_family(
    founders: usize,
    children: usize,
    sites: usize,
    carrier_freq: f64,
    seed: u64,
) -> FamilyStudy {
    assert!(founders >= 2, "children need two distinct parents");
    assert!((0.0..=1.0).contains(&carrier_freq));
    let mut rng = StdRng::seed_from_u64(seed);
    let total = founders + children;
    let mut profiles = BitMatrix::zeros(total, sites);
    for r in 0..founders {
        for c in 0..sites {
            if rng.random_bool(carrier_freq) {
                profiles.set(r, c, true);
            }
        }
    }
    let mut parents = Vec::with_capacity(children);
    for child in 0..children {
        let row = founders + child;
        let p1 = rng.random_range(0..founders);
        let mut p2 = rng.random_range(0..founders);
        while p2 == p1 {
            p2 = rng.random_range(0..founders);
        }
        for c in 0..sites {
            let src = if rng.random_bool(0.5) { p1 } else { p2 };
            if profiles.get(src, c) {
                profiles.set(row, c, true);
            }
        }
        parents.push((row, p1, p2));
    }
    FamilyStudy {
        profiles,
        parents,
        founders,
        site_freq: vec![carrier_freq; sites],
    }
}

/// IBS-threshold classifier calibrated from the panel's carrier frequency.
///
/// Expected IBS: identical = 1 − 2e(1−e) ≈ 1; unrelated =
/// 1 − 2q(1−q); parent–child = halfway between (each site matches the tested
/// parent with probability ½ exactly and behaves like unrelated otherwise).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KinshipClassifier {
    /// Mean carrier frequency of the panel.
    pub carrier_freq: f64,
}

impl KinshipClassifier {
    /// Expected IBS of an unrelated pair.
    pub fn expected_unrelated_ibs(&self) -> f64 {
        let q = self.carrier_freq;
        1.0 - 2.0 * q * (1.0 - q)
    }

    /// Expected IBS of a first-degree pair under per-site 50 % inheritance.
    pub fn expected_first_degree_ibs(&self) -> f64 {
        0.5 + 0.5 * self.expected_unrelated_ibs()
    }

    /// Classifies a pair from its IBS, using midpoints between the expected
    /// class values as decision boundaries.
    pub fn classify(&self, ibs_value: f64) -> Relationship {
        let unrel = self.expected_unrelated_ibs();
        let first = self.expected_first_degree_ibs();
        let ident_cut = (1.0 + first) / 2.0;
        let first_cut = (first + unrel) / 2.0;
        if ibs_value >= ident_cut {
            Relationship::Identical
        } else if ibs_value >= first_cut {
            Relationship::FirstDegree
        } else {
            Relationship::Unrelated
        }
    }
}

/// Classifies every pair of rows from an XOR `γ` matrix over `sites`.
pub fn classify_pairs(
    gamma: &CountMatrix,
    sites: usize,
    classifier: &KinshipClassifier,
) -> Vec<(usize, usize, Relationship)> {
    assert_eq!(gamma.rows(), gamma.cols(), "need a self-comparison matrix");
    let mut out = Vec::new();
    for i in 0..gamma.rows() {
        for j in (i + 1)..gamma.cols() {
            let rel = classifier.classify(ibs(gamma.get(i, j), sites));
            out.push((i, j, rel));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use snp_bitmat::{reference_gamma_self, CompareOp};

    const SITES: usize = 2048;
    const Q: f64 = 0.3;

    fn study() -> (FamilyStudy, CountMatrix) {
        let fam = generate_family(10, 8, SITES, Q, 77);
        let gamma = reference_gamma_self(&fam.profiles, CompareOp::Xor);
        (fam, gamma)
    }

    #[test]
    fn ibs_basics() {
        assert_eq!(ibs(0, 100), 1.0);
        assert_eq!(ibs(50, 100), 0.5);
        assert_eq!(ibs(100, 100), 0.0);
    }

    #[test]
    fn children_are_closer_to_parents_than_to_others() {
        let (fam, gamma) = study();
        for &(child, p1, p2) in &fam.parents {
            let d1 = gamma.get(child, p1);
            let d2 = gamma.get(child, p2);
            // Compare against every unrelated founder.
            for f in 0..fam.founders {
                if f == p1 || f == p2 {
                    continue;
                }
                let du = gamma.get(child, f);
                assert!(
                    d1 < du && d2 < du,
                    "child {child}: parent distances {d1}/{d2} vs unrelated {du}"
                );
            }
        }
    }

    #[test]
    fn classifier_recovers_the_pedigree() {
        let (fam, gamma) = study();
        let clf = KinshipClassifier { carrier_freq: Q };
        for &(child, p1, p2) in &fam.parents {
            assert_eq!(
                clf.classify(ibs(gamma.get(child, p1), SITES)),
                Relationship::FirstDegree,
                "child {child} vs parent {p1}"
            );
            assert_eq!(
                clf.classify(ibs(gamma.get(child, p2), SITES)),
                Relationship::FirstDegree
            );
        }
        // Founder pairs are unrelated; self-pairs identical.
        for i in 0..fam.founders {
            assert_eq!(
                clf.classify(ibs(gamma.get(i, i), SITES)),
                Relationship::Identical
            );
            for j in (i + 1)..fam.founders {
                assert_eq!(
                    clf.classify(ibs(gamma.get(i, j), SITES)),
                    Relationship::Unrelated,
                    "founders {i},{j}"
                );
            }
        }
    }

    #[test]
    fn expected_ibs_matches_empirical() {
        let (fam, gamma) = study();
        let clf = KinshipClassifier { carrier_freq: Q };
        // Unrelated founders.
        let mut sum = 0.0;
        let mut n = 0;
        for i in 0..fam.founders {
            for j in (i + 1)..fam.founders {
                sum += ibs(gamma.get(i, j), SITES);
                n += 1;
            }
        }
        let emp = sum / n as f64;
        assert!(
            (emp - clf.expected_unrelated_ibs()).abs() < 0.02,
            "unrelated: {emp} vs {}",
            clf.expected_unrelated_ibs()
        );
        // Parent-child.
        let mut sum = 0.0;
        let mut n = 0;
        for &(child, p1, p2) in &fam.parents {
            sum += ibs(gamma.get(child, p1), SITES) + ibs(gamma.get(child, p2), SITES);
            n += 2;
        }
        let emp = sum / n as f64;
        assert!(
            (emp - clf.expected_first_degree_ibs()).abs() < 0.03,
            "first-degree: {emp} vs {}",
            clf.expected_first_degree_ibs()
        );
    }

    #[test]
    fn classify_pairs_covers_all_pairs() {
        let (fam, gamma) = study();
        let clf = KinshipClassifier { carrier_freq: Q };
        let pairs = classify_pairs(&gamma, SITES, &clf);
        let total = fam.profiles.rows();
        assert_eq!(pairs.len(), total * (total - 1) / 2);
        let first_degree = pairs
            .iter()
            .filter(|&&(_, _, r)| r == Relationship::FirstDegree)
            .count();
        // At least the 16 planted child-parent pairs (siblings may add more).
        assert!(first_degree >= 16, "found {first_degree}");
    }

    #[test]
    fn deterministic_and_validated() {
        assert_eq!(
            generate_family(4, 2, 64, 0.3, 9).profiles,
            generate_family(4, 2, 64, 0.3, 9).profiles
        );
        assert!(std::panic::catch_unwind(|| generate_family(1, 1, 64, 0.3, 9)).is_err());
    }
}
