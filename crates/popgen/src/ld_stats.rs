//! Linkage-disequilibrium statistics from comparison counts.
//!
//! The popcount-GEMM produces raw co-occurrence counts; the statistics of
//! interest derive from them (paper §II-A): for loci A and B with minor
//! allele frequencies `p_A`, `p_B` and joint frequency `p_AB`,
//!
//! * `D = p_AB − p_A·p_B` (the covariance of the allele indicators),
//! * `D' = D / D_max` (Lewontin's normalized D),
//! * `r² = D² / (p_A(1−p_A) p_B(1−p_B))` (the squared correlation).
//!
//! All three need exactly three counts per pair — `γ_AB`, `γ_AA`, `γ_BB` —
//! which is why a single AND-popcount GEMM of the panel against itself
//! suffices to compute LD for every pair.

use snp_bitmat::CountMatrix;

/// LD statistics for one pair of loci.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LdPair {
    /// Joint minor-allele frequency `p_AB`.
    pub p_ab: f64,
    /// Marginal frequency of locus A.
    pub p_a: f64,
    /// Marginal frequency of locus B.
    pub p_b: f64,
    /// Raw disequilibrium coefficient `D`.
    pub d: f64,
    /// Lewontin's `D'` in `[-1, 1]` (0 when either locus is monomorphic).
    pub d_prime: f64,
    /// Squared correlation `r²` in `[0, 1]` (0 when either locus is
    /// monomorphic).
    pub r2: f64,
}

/// Computes the LD statistics for loci `a`, `b` from the self-comparison
/// count matrix `gamma` (AND-popcount of the panel against itself) over
/// `samples` haplotypes.
pub fn ld_pair(gamma: &CountMatrix, samples: usize, a: usize, b: usize) -> LdPair {
    assert!(samples > 0, "need at least one sample");
    let n = samples as f64;
    let p_ab = gamma.get(a, b) as f64 / n;
    let p_a = gamma.get(a, a) as f64 / n;
    let p_b = gamma.get(b, b) as f64 / n;
    let d = p_ab - p_a * p_b;
    let denom_r2 = p_a * (1.0 - p_a) * p_b * (1.0 - p_b);
    let r2 = if denom_r2 > 0.0 {
        d * d / denom_r2
    } else {
        0.0
    };
    let d_max = if d >= 0.0 {
        (p_a * (1.0 - p_b)).min((1.0 - p_a) * p_b)
    } else {
        (p_a * p_b).min((1.0 - p_a) * (1.0 - p_b))
    };
    let d_prime = if d_max > 0.0 { d / d_max } else { 0.0 };
    LdPair {
        p_ab,
        p_a,
        p_b,
        d,
        d_prime,
        r2,
    }
}

/// Computes `r²` for every pair into a dense `snps × snps` matrix of `f64`.
/// Row-major; symmetric by construction.
pub fn r2_matrix(gamma: &CountMatrix, samples: usize) -> Vec<f64> {
    let s = gamma.rows();
    assert_eq!(s, gamma.cols(), "self-comparison matrix must be square");
    let mut out = vec![0.0; s * s];
    for a in 0..s {
        for b in 0..s {
            out[a * s + b] = ld_pair(gamma, samples, a, b).r2;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use snp_bitmat::{reference_gamma_self, BitMatrix, CompareOp};

    fn gamma_of(rows: &[Vec<bool>]) -> (CountMatrix, usize) {
        let m = BitMatrix::<u64>::from_bool_rows(rows);
        (reference_gamma_self(&m, CompareOp::And), m.cols())
    }

    #[test]
    fn perfectly_linked_loci() {
        // Identical allele patterns: D' = 1, r² = 1.
        let pattern = vec![true, true, false, false, true, false, false, false];
        let (g, n) = gamma_of(&[pattern.clone(), pattern]);
        let ld = ld_pair(&g, n, 0, 1);
        assert!((ld.r2 - 1.0).abs() < 1e-12, "r² = {}", ld.r2);
        assert!((ld.d_prime - 1.0).abs() < 1e-12);
        assert!(ld.d > 0.0);
    }

    #[test]
    fn opposite_loci_have_negative_d() {
        let a = vec![true, true, false, false];
        let b = vec![false, false, true, true];
        let (g, n) = gamma_of(&[a, b]);
        let ld = ld_pair(&g, n, 0, 1);
        assert!(ld.d < 0.0);
        assert!(
            (ld.d_prime + 1.0).abs() < 1e-12,
            "complete repulsion: D' = -1"
        );
        assert!((ld.r2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn independent_loci_in_perfect_equilibrium() {
        // p_A = p_B = 1/2, all four haplotypes equally frequent -> D = 0.
        let a = vec![true, true, false, false];
        let b = vec![true, false, true, false];
        let (g, n) = gamma_of(&[a, b]);
        let ld = ld_pair(&g, n, 0, 1);
        assert_eq!(ld.d, 0.0);
        assert_eq!(ld.r2, 0.0);
        assert_eq!(ld.d_prime, 0.0);
    }

    #[test]
    fn monomorphic_locus_yields_zero_statistics() {
        let a = vec![false, false, false, false];
        let b = vec![true, false, true, false];
        let (g, n) = gamma_of(&[a, b]);
        let ld = ld_pair(&g, n, 0, 1);
        assert_eq!(ld.p_a, 0.0);
        assert_eq!(ld.r2, 0.0);
        assert_eq!(ld.d_prime, 0.0);
    }

    #[test]
    fn statistics_are_bounded() {
        use crate::population::{generate_panel, PanelConfig};
        let p = generate_panel(
            &PanelConfig {
                snps: 30,
                samples: 500,
                ..Default::default()
            },
            21,
        );
        let g = reference_gamma_self(&p.matrix, CompareOp::And);
        for a in 0..30 {
            for b in 0..30 {
                let ld = ld_pair(&g, 500, a, b);
                assert!(ld.r2 >= -1e-12 && ld.r2 <= 1.0 + 1e-12, "r²={}", ld.r2);
                assert!(
                    ld.d_prime >= -1.0 - 1e-9 && ld.d_prime <= 1.0 + 1e-9,
                    "D'={}",
                    ld.d_prime
                );
                assert!((-0.25..=0.25).contains(&ld.d), "|D| <= 1/4 always");
            }
        }
    }

    #[test]
    fn r2_matrix_is_symmetric_with_unit_diagonal() {
        use crate::population::{generate_panel, PanelConfig};
        let p = generate_panel(
            &PanelConfig {
                snps: 12,
                samples: 300,
                ..Default::default()
            },
            22,
        );
        let g = reference_gamma_self(&p.matrix, CompareOp::And);
        let r2 = r2_matrix(&g, 300);
        for a in 0..12 {
            // Polymorphic loci correlate perfectly with themselves.
            let pa = g.get(a, a);
            if pa > 0 && (pa as usize) < 300 {
                assert!((r2[a * 12 + a] - 1.0).abs() < 1e-9);
            }
            for b in 0..12 {
                assert!((r2[a * 12 + b] - r2[b * 12 + a]).abs() < 1e-12);
            }
        }
    }
}
