//! Minimal text serialization of SNP matrices.
//!
//! A deliberately simple interchange format for the examples and for
//! inspecting generated workloads: one profile per line, `0`/`1` per site,
//! `#`-prefixed comment lines ignored. (Real deployments would parse
//! VCF/PLINK; the computation only ever sees packed bits, so the format is
//! orthogonal to everything else in the workspace.)

use std::io::{BufRead, Write};

use snp_bitmat::BitMatrix;

/// Errors from parsing the text format.
#[derive(Debug, PartialEq, Eq)]
pub enum ParseError {
    /// A line contained a character other than `0`/`1`.
    BadCharacter {
        /// 1-based line number.
        line: usize,
        /// The offending character.
        ch: char,
    },
    /// A line's length differed from the first line's.
    RaggedRow {
        /// 1-based line number.
        line: usize,
        /// Its length.
        got: usize,
        /// Expected length.
        expected: usize,
    },
    /// Underlying I/O failure.
    Io(String),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::BadCharacter { line, ch } => {
                write!(
                    f,
                    "line {line}: unexpected character {ch:?} (expected '0' or '1')"
                )
            }
            ParseError::RaggedRow {
                line,
                got,
                expected,
            } => {
                write!(
                    f,
                    "line {line}: {got} sites but previous rows had {expected}"
                )
            }
            ParseError::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Writes `m` as text: one `0`/`1` row per line.
pub fn write_matrix<W: Write>(out: &mut W, m: &BitMatrix<u64>) -> std::io::Result<()> {
    let mut line = String::with_capacity(m.cols() + 1);
    for r in 0..m.rows() {
        line.clear();
        for c in 0..m.cols() {
            line.push(if m.get(r, c) { '1' } else { '0' });
        }
        line.push('\n');
        out.write_all(line.as_bytes())?;
    }
    Ok(())
}

/// Parses the text format back into a matrix. Blank and `#` lines are
/// skipped; an empty input produces a `0 × 0` matrix.
pub fn read_matrix<R: BufRead>(input: R) -> Result<BitMatrix<u64>, ParseError> {
    let mut rows: Vec<Vec<bool>> = Vec::new();
    let mut expected = None;
    for (idx, line) in input.lines().enumerate() {
        let line = line.map_err(|e| ParseError::Io(e.to_string()))?;
        let line_no = idx + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut row = Vec::with_capacity(trimmed.len());
        for ch in trimmed.chars() {
            match ch {
                '0' => row.push(false),
                '1' => row.push(true),
                other => {
                    return Err(ParseError::BadCharacter {
                        line: line_no,
                        ch: other,
                    })
                }
            }
        }
        if let Some(e) = expected {
            if row.len() != e {
                return Err(ParseError::RaggedRow {
                    line: line_no,
                    got: row.len(),
                    expected: e,
                });
            }
        } else {
            expected = Some(row.len());
        }
        rows.push(row);
    }
    Ok(BitMatrix::from_bool_rows(&rows))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::population::random_dense;

    #[test]
    fn roundtrip() {
        let m = random_dense(9, 75, 4);
        let mut buf = Vec::new();
        write_matrix(&mut buf, &m).unwrap();
        let back = read_matrix(buf.as_slice()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let text = "# header\n\n101\n# mid\n010\n";
        let m = read_matrix(text.as_bytes()).unwrap();
        assert_eq!(m.rows(), 2);
        assert!(m.get(0, 0) && !m.get(1, 0) && m.get(1, 1));
    }

    #[test]
    fn bad_character_reported_with_line() {
        let err = read_matrix("101\n1x1\n".as_bytes()).unwrap_err();
        assert_eq!(err, ParseError::BadCharacter { line: 2, ch: 'x' });
        assert!(err.to_string().contains("line 2"));
    }

    #[test]
    fn ragged_row_rejected() {
        let err = read_matrix("101\n10\n".as_bytes()).unwrap_err();
        assert_eq!(
            err,
            ParseError::RaggedRow {
                line: 2,
                got: 2,
                expected: 3
            }
        );
    }

    #[test]
    fn empty_input_is_empty_matrix() {
        let m = read_matrix("".as_bytes()).unwrap();
        assert_eq!((m.rows(), m.cols()), (0, 0));
    }
}
