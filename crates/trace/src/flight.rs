//! Bounded flight-recorder ring buffer and trace merging.
//!
//! A [`FlightRecorder`] keeps the last *N* spans and counter samples fed to
//! it (oldest dropped first), so that when a query ends in a typed fault or
//! an SLO breach, a post-mortem bundle covering the recent past can be
//! dumped without the recorder ever holding an unbounded trace. The bundle
//! ([`FlightRecorder::postmortem`]) is a valid Chrome `trace_event`
//! document — it passes [`chrome::validate`](crate::chrome::validate) and
//! loads in Perfetto — with one extra top-level `"flightRecorder"` object
//! carrying the trigger reason and the failing query's context.
//!
//! Feeding the recorder is pull-based: callers [`absorb`]
//! (`FlightRecorder::absorb`) whole [`Trace`] snapshots (e.g. one per
//! query), optionally shifting their timestamps onto a global clock. Tracks
//! are deduplicated by name and domain, so per-query traces recorded on
//! identically-named tracks collapse onto shared lanes. The same remapping
//! is available standalone as [`merge_into`] for building one global
//! timeline out of per-query traces.

use std::collections::VecDeque;
use std::sync::Mutex;

use crate::json;
use crate::metrics::LazyCounter;
use crate::span::{CounterSample, QueryCtx, Trace, TraceEvent, TrackId, TrackInfo};

/// Spans evicted from any flight-recorder ring, process-wide. Exposed on
/// the metrics registry so truncation is visible in `snpgpu metrics`
/// output, not only in postmortem headers.
static DROPPED_SPANS: LazyCounter = LazyCounter::new("trace.flight.dropped_spans");

/// Merges `src` into `dst`, shifting every `src` timestamp forward by
/// `shift_ns`. Tracks are matched by `(name, domain)` — a `src` track with
/// the same name and time domain as an existing `dst` track lands on it;
/// new tracks are appended.
pub fn merge_into(dst: &mut Trace, src: &Trace, shift_ns: u64) {
    let map = remap_tracks(&mut dst.tracks, &src.tracks);
    for ev in &src.events {
        let mut ev = ev.clone();
        ev.track = map[ev.track.index() as usize];
        ev.start_ns += shift_ns;
        ev.end_ns += shift_ns;
        dst.events.push(ev);
    }
    for c in &src.counters {
        let mut c = c.clone();
        c.track = map[c.track.index() as usize];
        c.ts_ns += shift_ns;
        dst.counters.push(c);
    }
}

/// Maps every `src` track onto `dst` (matching by name + domain, appending
/// the rest); returns the per-`src`-index translation table.
fn remap_tracks(dst: &mut Vec<TrackInfo>, src: &[TrackInfo]) -> Vec<TrackId> {
    src.iter()
        .map(|info| {
            let found = dst
                .iter()
                .position(|d| d.name == info.name && d.domain == info.domain);
            let idx = found.unwrap_or_else(|| {
                dst.push(info.clone());
                dst.len() - 1
            });
            TrackId(idx as u32)
        })
        .collect()
}

#[derive(Debug, Default)]
struct FlightState {
    tracks: Vec<TrackInfo>,
    events: VecDeque<TraceEvent>,
    counters: VecDeque<CounterSample>,
    dropped_events: u64,
    dropped_counters: u64,
}

/// The bounded ring buffer. See the module docs.
#[derive(Debug)]
pub struct FlightRecorder {
    capacity: usize,
    state: Mutex<FlightState>,
}

impl FlightRecorder {
    /// A recorder retaining at most `capacity` spans and `capacity` counter
    /// samples (at least one each).
    pub fn new(capacity: usize) -> FlightRecorder {
        FlightRecorder {
            capacity: capacity.max(1),
            state: Mutex::new(FlightState::default()),
        }
    }

    /// The retention capacity (spans and counter samples each).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Feeds every span and counter sample of `trace` into the ring,
    /// shifting timestamps forward by `shift_ns` (use the query's global
    /// start time to place a per-query trace on the stream clock).
    pub fn absorb(&self, trace: &Trace, shift_ns: u64) {
        let mut st = self.state.lock().unwrap();
        let map = remap_tracks(&mut st.tracks, &trace.tracks);
        for ev in &trace.events {
            let mut ev = ev.clone();
            ev.track = map[ev.track.index() as usize];
            ev.start_ns += shift_ns;
            ev.end_ns += shift_ns;
            if st.events.len() == self.capacity {
                st.events.pop_front();
                st.dropped_events += 1;
                DROPPED_SPANS.add(1);
            }
            st.events.push_back(ev);
        }
        for c in &trace.counters {
            let mut c = c.clone();
            c.track = map[c.track.index() as usize];
            c.ts_ns += shift_ns;
            if st.counters.len() == self.capacity {
                st.counters.pop_front();
                st.dropped_counters += 1;
            }
            st.counters.push_back(c);
        }
    }

    /// Spans currently retained.
    pub fn len(&self) -> usize {
        self.state.lock().unwrap().events.len()
    }

    /// Whether nothing has been retained yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `(spans, counter samples)` evicted so far.
    pub fn dropped(&self) -> (u64, u64) {
        let st = self.state.lock().unwrap();
        (st.dropped_events, st.dropped_counters)
    }

    /// The retained window as an ordinary [`Trace`].
    pub fn snapshot(&self) -> Trace {
        let st = self.state.lock().unwrap();
        Trace {
            tracks: st.tracks.clone(),
            events: st.events.iter().cloned().collect(),
            counters: st.counters.iter().cloned().collect(),
        }
    }

    /// Renders the post-mortem bundle: the retained window as Chrome
    /// `trace_event` JSON with a `"flightRecorder"` header naming the
    /// trigger `reason` and, when known, the failing query's context.
    /// The document still validates with [`crate::chrome::validate`].
    pub fn postmortem(&self, reason: &str, ctx: Option<&QueryCtx>) -> String {
        let trace = self.snapshot();
        let (dropped_events, dropped_counters) = self.dropped();
        let mut head = String::from("{\"flightRecorder\":{\"reason\":\"");
        json::escape_into(&mut head, reason);
        head.push('"');
        match ctx {
            Some(ctx) => {
                head.push_str(&format!(",\"query_id\":{},\"tenant\":\"", ctx.query_id));
                json::escape_into(&mut head, &ctx.tenant);
                head.push('"');
            }
            None => head.push_str(",\"query_id\":null,\"tenant\":null"),
        }
        head.push_str(&format!(
            ",\"capacity\":{},\"retained_spans\":{},\"dropped_spans\":{dropped_events},\
             \"dropped_counters\":{dropped_counters}}},",
            self.capacity,
            trace.events.len()
        ));
        let chrome = crate::chrome::export_chrome_trace(&trace);
        // Splice the header into the chrome document's root object.
        head.push_str(chrome.strip_prefix('{').expect("chrome doc is an object"));
        head
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{TimeDomain, Tracer};

    /// Serialises the tests that evict spans: `DROPPED_SPANS` is
    /// process-wide, so exact-count assertions need the drops of one test
    /// at a time.
    static DROP_LOCK: Mutex<()> = Mutex::new(());

    fn query_trace(query_id: u64, spans: usize) -> Trace {
        let t = Tracer::enabled().with_query_ctx(QueryCtx::new(query_id, "tenant-a"));
        let tr = t.track("engine", TimeDomain::Virtual);
        for i in 0..spans {
            let ns = i as u64 * 10;
            t.span(tr, "kernel", format!("k{i}"), ns, ns + 10);
        }
        t.counter(tr, "inflight", 0, 1.0);
        t.snapshot().unwrap()
    }

    #[test]
    fn ring_retains_only_the_last_n_spans() {
        let _guard = DROP_LOCK.lock().unwrap();
        let rec = FlightRecorder::new(4);
        rec.absorb(&query_trace(1, 3), 0);
        rec.absorb(&query_trace(2, 3), 100);
        assert_eq!(rec.len(), 4);
        assert_eq!(rec.dropped(), (2, 0));
        let snap = rec.snapshot();
        assert_eq!(snap.tracks.len(), 1, "same-named tracks are deduplicated");
        // The survivors are the last span of query 1 and all of query 2.
        assert_eq!(snap.events[0].name, "k2");
        assert_eq!(snap.events[0].start_ns, 20);
        assert_eq!(
            snap.events[3].start_ns, 120,
            "shifted onto the stream clock"
        );
    }

    #[test]
    fn postmortem_is_a_valid_chrome_trace_with_the_failing_query_id() {
        let rec = FlightRecorder::new(16);
        rec.absorb(&query_trace(7, 2), 50);
        let ctx = QueryCtx::new(7, "tenant-a");
        let bundle = rec.postmortem("typed fault: DeviceLoss", Some(&ctx));
        let stats = crate::chrome::validate(&bundle).expect("bundle must validate");
        assert_eq!(stats.slices, 2);
        let doc = json::parse(&bundle).unwrap();
        let head = doc.as_obj().unwrap()["flightRecorder"].as_obj().unwrap();
        assert_eq!(head["query_id"].as_num(), Some(7.0));
        assert_eq!(head["reason"].as_str(), Some("typed fault: DeviceLoss"));
        assert_eq!(head["capacity"].as_num(), Some(16.0));
        assert_eq!(head["retained_spans"].as_num(), Some(2.0));
        // Every retained span still carries the query attribution.
        assert!(bundle.contains("\"query_id\":7"));
        assert!(bundle.contains("tenant-a"));
    }

    #[test]
    fn postmortem_without_context_is_still_valid() {
        let rec = FlightRecorder::new(2);
        let bundle = rec.postmortem("slo breach", None);
        crate::chrome::validate(&bundle).expect("empty bundle validates");
        assert!(bundle.contains("\"query_id\":null"));
    }

    #[test]
    fn dropped_spans_counter_matches_the_postmortem_header_under_pressure() {
        let _guard = DROP_LOCK.lock().unwrap();
        DROPPED_SPANS.reset();
        let rec = FlightRecorder::new(3);
        // 4 queries × 5 spans into a 3-slot ring: 17 evictions.
        for q in 0..4 {
            rec.absorb(&query_trace(q, 5), q * 1_000);
        }
        let bundle = rec.postmortem("shed storm", None);
        let doc = json::parse(&bundle).unwrap();
        let head = doc.as_obj().unwrap()["flightRecorder"].as_obj().unwrap();
        assert_eq!(head["capacity"].as_num(), Some(3.0));
        assert_eq!(head["retained_spans"].as_num(), Some(3.0));
        assert_eq!(head["dropped_spans"].as_num(), Some(17.0));
        assert_eq!(rec.dropped().0, 17);
        assert_eq!(
            DROPPED_SPANS.get(),
            17,
            "metrics counter agrees with the header"
        );
    }

    #[test]
    fn merge_into_shifts_and_deduplicates_tracks() {
        let mut dst = query_trace(1, 1);
        let n = dst.events.len();
        merge_into(&mut dst, &query_trace(2, 2), 1_000);
        assert_eq!(dst.tracks.len(), 1);
        assert_eq!(dst.events.len(), n + 2);
        assert_eq!(dst.events[n].start_ns, 1_000);
        assert_eq!(dst.counters.last().unwrap().ts_ns, 1_000);
        // A differently-named track stays separate.
        let t = Tracer::enabled();
        let other = t.track("loadgen", TimeDomain::Virtual);
        t.span(other, "query", "q", 0, 5);
        merge_into(&mut dst, &t.snapshot().unwrap(), 0);
        assert_eq!(dst.tracks.len(), 2);
    }
}
