//! Process-wide counters/gauges registry.
//!
//! Hot paths keep their cost at one atomic add: a [`LazyCounter`] resolves
//! its registry entry once (through a `OnceLock`) and then increments a
//! plain `AtomicU64`. Registration interns by name, so every subsystem that
//! names the same metric shares one cell, and [`snapshot`] renders the whole
//! process state under stable, dot-separated metric names (the scheme is
//! documented in DESIGN.md §8).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};

/// A monotonically increasing counter (resettable for test isolation).
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Resets to zero (test isolation; see [`MetricsRegistry::reset`]).
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A last-value-wins gauge holding an `f64`.
#[derive(Debug, Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Linear sub-buckets per power-of-two octave. Bucket 0 holds the value 0;
/// octave `o = floor(log2 v)` is split into this many equal-width linear
/// sub-buckets, so a quantile estimate overshoots the true value by at most
/// `1/HISTOGRAM_SUBBUCKETS` of the octave width (~12.5%) instead of the
/// full 2x a pure log2 histogram allows.
pub const HISTOGRAM_SUBBUCKETS: usize = 8;

/// Total bucket count: the zero bucket plus 64 octaves of sub-buckets.
pub const HISTOGRAM_BUCKETS: usize = 1 + 64 * HISTOGRAM_SUBBUCKETS;

/// A lock-free log2-plus-linear-bucketed histogram of `u64` samples.
///
/// Each [`record`](Self::record) is exactly two relaxed atomic adds (the
/// bucket and the sum; the total count is derived from the buckets), so hot
/// paths (per-chunk kernel times, recovery backoff delays, per-query
/// latencies) can sample unconditionally. Quantiles are estimated from the
/// bucket boundaries: `quantile` returns the inclusive upper bound of the
/// bucket containing the requested rank.
///
/// Buckets may carry an **exemplar** — the identity of a sample that landed
/// there ([`record_with_exemplar`](Self::record_with_exemplar)) — linking a
/// tail bucket back to the query and trace offset that produced it.
/// Exemplars live off the hot path behind a mutex; callers that never
/// attach them pay nothing.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
    exemplars: Mutex<BTreeMap<usize, Exemplar>>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0u64; HISTOGRAM_BUCKETS].map(AtomicU64::new),
            sum: AtomicU64::new(0),
            exemplars: Mutex::new(BTreeMap::new()),
        }
    }
}

/// The identity of one sample kept alongside its histogram bucket: enough
/// to find the query in records, flight-recorder dumps, and the merged
/// timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Exemplar {
    /// The recorded sample value.
    pub value: u64,
    /// Stream-wide query id of the sample.
    pub query_id: u64,
    /// Tenant label, when the source is tenant-attributed.
    pub tenant: Option<String>,
    /// Stream-clock offset of the query (its start instant, virtual ns) —
    /// where to seek in the trace timeline.
    pub offset_ns: u64,
}

/// Bucket index of a sample: 0 for 0, otherwise the octave `floor(log2 v)`
/// subdivided linearly into [`HISTOGRAM_SUBBUCKETS`].
fn bucket_of(v: u64) -> usize {
    if v == 0 {
        return 0;
    }
    let octave = 63 - v.leading_zeros() as usize;
    let offset = (v - (1u64 << octave)) as u128;
    let sub = ((offset * HISTOGRAM_SUBBUCKETS as u128) >> octave) as usize;
    1 + octave * HISTOGRAM_SUBBUCKETS + sub
}

/// Inclusive upper bound of bucket `i` — the value [`HistogramSnapshot::quantile`]
/// reports when the ranked sample lands in that bucket.
pub fn bucket_upper_bound(i: usize) -> u64 {
    if i == 0 {
        return 0;
    }
    let octave = (i - 1) / HISTOGRAM_SUBBUCKETS;
    let sub = ((i - 1) % HISTOGRAM_SUBBUCKETS) as u128;
    let lo = 1u128 << octave;
    // First value of the next sub-bucket minus one; ceiling division keeps
    // the bound exact in octaves narrower than the sub-bucket count, where
    // some sub-buckets are unreachable.
    let next = lo + ((sub + 1) * lo).div_ceil(HISTOGRAM_SUBBUCKETS as u128);
    (next - 1).min(u64::MAX as u128) as u64
}

impl Histogram {
    /// Records one sample: the lock-free two-atomic-add hot path.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Number of samples recorded (derived from the buckets).
    #[inline]
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Sum of all samples (wrapping at `u64::MAX`).
    #[inline]
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Records one sample and attaches its identity as the exemplar of the
    /// bucket it lands in (last writer wins, like the OpenMetrics
    /// convention of keeping the most recent exemplar per bucket).
    pub fn record_with_exemplar(
        &self,
        v: u64,
        query_id: u64,
        tenant: Option<&str>,
        offset_ns: u64,
    ) {
        self.record(v);
        let exemplar = Exemplar {
            value: v,
            query_id,
            tenant: tenant.map(str::to_string),
            offset_ns,
        };
        self.exemplars
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(bucket_of(v), exemplar);
    }

    /// A consistent-enough copy for rendering (concurrent records may land
    /// in either side of the cut; totals are re-derived from the buckets).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let exemplars: Vec<(usize, Exemplar)> = self
            .exemplars
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|(i, e)| (*i, e.clone()))
            .collect();
        HistogramSnapshot {
            count: buckets.iter().sum(),
            sum: self.sum.load(Ordering::Relaxed),
            buckets,
            exemplars,
        }
    }

    /// Resets all buckets to empty.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.sum.store(0, Ordering::Relaxed);
        self.exemplars
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clear();
    }
}

/// A point-in-time copy of a [`Histogram`].
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Total samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Per-bucket sample counts (see [`HISTOGRAM_BUCKETS`]).
    pub buckets: Vec<u64>,
    /// Per-bucket exemplars, sorted by bucket index (sparse — only buckets
    /// that ever received [`Histogram::record_with_exemplar`]).
    pub exemplars: Vec<(usize, Exemplar)>,
}

impl HistogramSnapshot {
    /// The exemplar attached to bucket `i`, if any.
    pub fn exemplar_for(&self, i: usize) -> Option<&Exemplar> {
        self.exemplars
            .iter()
            .find_map(|(b, e)| (*b == i).then_some(e))
    }

    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper-bound estimate of the `q`-quantile (`0.0..=1.0`): the largest
    /// value representable by the bucket holding the ranked sample.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if n > 0 && seen >= rank {
                return bucket_upper_bound(i);
            }
        }
        u64::MAX
    }
}

enum Metric {
    Counter(&'static Counter),
    Gauge(&'static Gauge),
    Histogram(&'static Histogram),
}

/// A snapshot value of one metric.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Counter reading.
    Counter(u64),
    /// Gauge reading.
    Gauge(f64),
    /// Histogram reading.
    Histogram(HistogramSnapshot),
}

impl MetricValue {
    /// The value as a float (counters widen losslessly up to 2^53;
    /// histograms collapse to their mean).
    pub fn as_f64(&self) -> f64 {
        match self {
            MetricValue::Counter(v) => *v as f64,
            MetricValue::Gauge(v) => *v,
            MetricValue::Histogram(h) => h.mean(),
        }
    }
}

/// The process-wide registry; obtain it with [`registry`].
pub struct MetricsRegistry {
    by_name: Mutex<BTreeMap<&'static str, Metric>>,
}

impl MetricsRegistry {
    // A kind-mismatch panic unwinds while holding the lock, but leaves the
    // map consistent — recover the guard instead of cascading the poison
    // into every later registry user in the process.
    fn lock(&self) -> MutexGuard<'_, BTreeMap<&'static str, Metric>> {
        self.by_name.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The counter registered under `name`, creating it on first use.
    ///
    /// Panics if `name` is already registered as another kind.
    pub fn counter(&self, name: &'static str) -> &'static Counter {
        let mut map = self.lock();
        match map
            .entry(name)
            .or_insert_with(|| Metric::Counter(Box::leak(Box::default())))
        {
            Metric::Counter(c) => c,
            Metric::Gauge(_) => panic!("metric {name:?} is registered as a gauge"),
            Metric::Histogram(_) => panic!("metric {name:?} is registered as a histogram"),
        }
    }

    /// The gauge registered under `name`, creating it on first use.
    ///
    /// Panics if `name` is already registered as another kind.
    pub fn gauge(&self, name: &'static str) -> &'static Gauge {
        let mut map = self.lock();
        match map
            .entry(name)
            .or_insert_with(|| Metric::Gauge(Box::leak(Box::default())))
        {
            Metric::Gauge(g) => g,
            Metric::Counter(_) => panic!("metric {name:?} is registered as a counter"),
            Metric::Histogram(_) => panic!("metric {name:?} is registered as a histogram"),
        }
    }

    /// The histogram registered under `name`, creating it on first use.
    ///
    /// Panics if `name` is already registered as another kind.
    pub fn histogram(&self, name: &'static str) -> &'static Histogram {
        let mut map = self.lock();
        match map
            .entry(name)
            .or_insert_with(|| Metric::Histogram(Box::leak(Box::default())))
        {
            Metric::Histogram(h) => h,
            Metric::Counter(_) => panic!("metric {name:?} is registered as a counter"),
            Metric::Gauge(_) => panic!("metric {name:?} is registered as a gauge"),
        }
    }

    /// All metrics, sorted by name.
    pub fn snapshot(&self) -> Vec<(&'static str, MetricValue)> {
        let map = self.lock();
        map.iter()
            .map(|(name, m)| {
                let v = match m {
                    Metric::Counter(c) => MetricValue::Counter(c.get()),
                    Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                    Metric::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                };
                (*name, v)
            })
            .collect()
    }

    /// Zeroes every counter, gauge, and histogram (names stay registered).
    /// Intended for test isolation; concurrent increments may land before
    /// or after.
    pub fn reset(&self) {
        let map = self.lock();
        for m in map.values() {
            match m {
                Metric::Counter(c) => c.reset(),
                Metric::Gauge(g) => g.set(0.0),
                Metric::Histogram(h) => h.reset(),
            }
        }
    }
}

/// The process-wide metrics registry.
pub fn registry() -> &'static MetricsRegistry {
    static REGISTRY: OnceLock<MetricsRegistry> = OnceLock::new();
    REGISTRY.get_or_init(|| MetricsRegistry {
        by_name: Mutex::new(BTreeMap::new()),
    })
}

/// A counter handle resolvable in `const` context: the registry lookup
/// happens once, on first use, after which [`add`](Self::add) is a single
/// relaxed atomic increment — cheap enough for simulator hot paths.
pub struct LazyCounter {
    name: &'static str,
    cell: OnceLock<&'static Counter>,
}

impl LazyCounter {
    /// Declares a counter by stable metric name.
    pub const fn new(name: &'static str) -> LazyCounter {
        LazyCounter {
            name,
            cell: OnceLock::new(),
        }
    }

    /// The underlying registry counter.
    #[inline]
    pub fn counter(&self) -> &'static Counter {
        self.cell.get_or_init(|| registry().counter(self.name))
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.counter().add(n);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.counter().get()
    }

    /// Resets to zero.
    pub fn reset(&self) {
        self.counter().reset();
    }
}

/// A histogram handle resolvable in `const` context, mirroring
/// [`LazyCounter`]: the registry lookup happens once, after which
/// [`record`](Self::record) touches only the histogram's atomics.
pub struct LazyHistogram {
    name: &'static str,
    cell: OnceLock<&'static Histogram>,
}

impl LazyHistogram {
    /// Declares a histogram by stable metric name.
    pub const fn new(name: &'static str) -> LazyHistogram {
        LazyHistogram {
            name,
            cell: OnceLock::new(),
        }
    }

    /// The underlying registry histogram.
    #[inline]
    pub fn histogram(&self) -> &'static Histogram {
        self.cell.get_or_init(|| registry().histogram(self.name))
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.histogram().record(v);
    }

    /// Records one sample with its exemplar identity.
    pub fn record_with_exemplar(
        &self,
        v: u64,
        query_id: u64,
        tenant: Option<&str>,
        offset_ns: u64,
    ) {
        self.histogram()
            .record_with_exemplar(v, query_id, tenant, offset_ns);
    }

    /// A point-in-time copy.
    pub fn snapshot(&self) -> HistogramSnapshot {
        self.histogram().snapshot()
    }

    /// Resets all buckets to empty.
    pub fn reset(&self) {
        self.histogram().reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_intern_by_name() {
        let a = registry().counter("test.metrics.interned");
        let b = registry().counter("test.metrics.interned");
        a.reset();
        a.add(2);
        b.incr();
        assert_eq!(a.get(), 3);
        assert!(std::ptr::eq(a, b));
    }

    #[test]
    fn gauges_hold_last_value() {
        let g = registry().gauge("test.metrics.gauge");
        g.set(2.5);
        g.set(7.25);
        assert_eq!(g.get(), 7.25);
    }

    #[test]
    fn snapshot_contains_sorted_names() {
        registry().counter("test.metrics.snap.b").reset();
        registry().counter("test.metrics.snap.a").reset();
        let snap = registry().snapshot();
        let names: Vec<&str> = snap.iter().map(|(n, _)| *n).collect();
        let ia = names.iter().position(|n| *n == "test.metrics.snap.a");
        let ib = names.iter().position(|n| *n == "test.metrics.snap.b");
        assert!(ia.unwrap() < ib.unwrap());
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
    }

    #[test]
    fn lazy_counter_reaches_the_registry() {
        static C: LazyCounter = LazyCounter::new("test.metrics.lazy");
        C.reset();
        C.add(5);
        assert_eq!(registry().counter("test.metrics.lazy").get(), 5);
        assert_eq!(C.get(), 5);
    }

    #[test]
    #[should_panic(expected = "registered as a counter")]
    fn kind_mismatch_panics() {
        registry().counter("test.metrics.kind");
        registry().gauge("test.metrics.kind");
    }

    #[test]
    fn metric_value_widens() {
        assert_eq!(MetricValue::Counter(4).as_f64(), 4.0);
        assert_eq!(MetricValue::Gauge(0.5).as_f64(), 0.5);
    }

    #[test]
    fn histogram_buckets_by_octave_and_sub_bucket() {
        let h = Histogram::default();
        h.record(0); // bucket 0
        h.record(1); // octave 0, sub 0
        h.record(2); // octave 1, sub 0
        h.record(3); // octave 1, sub 4 (offset 1 of a 2-wide octave)
        h.record(1024); // octave 10, sub 0
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 1030);
        assert_eq!(s.buckets[0], 1);
        assert_eq!(s.buckets[bucket_of(1)], 1);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 1 + HISTOGRAM_SUBBUCKETS);
        assert_eq!(bucket_of(3), 1 + HISTOGRAM_SUBBUCKETS + 4);
        assert_eq!(bucket_of(1024), 1 + 10 * HISTOGRAM_SUBBUCKETS);
        assert_eq!(s.buckets[bucket_of(3)], 1);
        assert_eq!(s.mean(), 206.0);
    }

    #[test]
    fn histogram_quantiles_are_bucket_upper_bounds() {
        let h = Histogram::default();
        for _ in 0..90 {
            h.record(100); // octave 6 [64, 128), sub 4: [96, 103]
        }
        for _ in 0..10 {
            h.record(100_000); // octave 16, sub 4: [98304, 106495]
        }
        let s = h.snapshot();
        assert_eq!(s.quantile(0.50), 103);
        assert_eq!(s.quantile(0.90), 103);
        assert_eq!(s.quantile(0.95), 106_495);
        assert_eq!(s.quantile(0.99), 106_495);
        assert_eq!(s.quantile(1.0), 106_495);
        // Quantile estimates never undershoot the true quantile, and with
        // linear sub-buckets they overshoot by at most one sub-bucket
        // (1/8 of the octave) — a pure log2 histogram would report 127.
        assert!(s.quantile(0.50) >= 100);
        assert!(s.quantile(0.50) <= 100 + (1 << 6) / HISTOGRAM_SUBBUCKETS as u64);
        assert!(s.quantile(0.95) >= 100_000);
    }

    #[test]
    fn histogram_bucket_bounds_are_tight_for_every_value() {
        // The upper bound of a value's bucket is always >= the value and
        // never overshoots by more than one sub-bucket width.
        let mut v = 1u64;
        while v < u64::MAX / 3 {
            for sample in [v, v + v / 3, v + (v - 1).min(v / 2)] {
                let i = bucket_of(sample);
                let upper = bucket_upper_bound(i);
                assert!(upper >= sample, "bucket {i} upper {upper} < {sample}");
                let octave = 63 - sample.leading_zeros() as u64;
                let sub_width = ((1u64 << octave) / HISTOGRAM_SUBBUCKETS as u64).max(1);
                assert!(
                    upper - sample < sub_width,
                    "bucket {i} upper {upper} overshoots {sample} by >= {sub_width}"
                );
            }
            v = v.wrapping_mul(3).max(v + 1);
        }
        assert_eq!(bucket_of(u64::MAX), HISTOGRAM_BUCKETS - 1);
        assert_eq!(bucket_upper_bound(HISTOGRAM_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn histogram_concurrent_records_reconcile() {
        // Satellite: multi-thread stress — totals derived from the buckets
        // must reconcile exactly after parallel `record` calls (the hot
        // path is two relaxed atomic adds with no count cell to tear).
        static H: LazyHistogram = LazyHistogram::new("test.metrics.stress");
        H.reset();
        const THREADS: u64 = 8;
        const PER_THREAD: u64 = 10_000;
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                scope.spawn(move || {
                    for i in 0..PER_THREAD {
                        // A spread of octaves, deterministic per thread.
                        H.record((t * PER_THREAD + i) % 4096);
                    }
                });
            }
        });
        let s = H.snapshot();
        assert_eq!(s.count, THREADS * PER_THREAD);
        let expect_sum: u64 = (0..THREADS * PER_THREAD).map(|x| x % 4096).sum();
        assert_eq!(s.sum, expect_sum);
        assert_eq!(H.histogram().count(), s.count);
        assert_eq!(s.buckets.iter().sum::<u64>(), s.count);
    }

    #[test]
    fn histogram_exemplars_track_the_last_sample_per_bucket() {
        let h = Histogram::default();
        h.record(50); // plain records never attach exemplars
        h.record_with_exemplar(100, 7, Some("casework"), 1_000);
        h.record_with_exemplar(101, 9, Some("research"), 2_000); // same bucket: wins
        h.record_with_exemplar(100_000, 3, None, 5_000);
        let s = h.snapshot();
        assert_eq!(s.count, 4);
        assert_eq!(s.exemplars.len(), 2, "one exemplar per hit bucket");
        let tail = s.exemplar_for(bucket_of(100_000)).expect("tail exemplar");
        assert_eq!(tail.query_id, 3);
        assert_eq!(tail.tenant, None);
        assert_eq!(tail.offset_ns, 5_000);
        let body = s.exemplar_for(bucket_of(100)).expect("body exemplar");
        assert_eq!(
            (body.query_id, body.value),
            (9, 101),
            "last writer wins within a bucket"
        );
        assert_eq!(s.exemplar_for(bucket_of(50)), None);
        h.reset();
        assert!(h.snapshot().exemplars.is_empty(), "reset drops exemplars");
    }

    #[test]
    fn histogram_empty_and_extremes() {
        let h = Histogram::default();
        assert_eq!(h.snapshot().quantile(0.5), 0);
        assert_eq!(h.snapshot().mean(), 0.0);
        h.record(u64::MAX); // last bucket
        let s = h.snapshot();
        assert_eq!(s.buckets[HISTOGRAM_BUCKETS - 1], 1);
        assert_eq!(s.quantile(0.5), u64::MAX);
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.snapshot().count, 0);
    }

    #[test]
    fn histograms_intern_and_reset_via_registry() {
        static H: LazyHistogram = LazyHistogram::new("test.metrics.histo");
        H.reset();
        H.record(7);
        H.record(9);
        let direct = registry().histogram("test.metrics.histo");
        assert_eq!(direct.count(), 2);
        assert_eq!(direct.sum(), 16);
        let snap = registry().snapshot();
        let (_, v) = snap
            .iter()
            .find(|(n, _)| *n == "test.metrics.histo")
            .unwrap();
        match v {
            MetricValue::Histogram(s) => assert_eq!(s.count, 2),
            other => panic!("expected histogram, got {other:?}"),
        }
        registry().reset();
        assert_eq!(direct.count(), 0);
    }

    #[test]
    #[should_panic(expected = "registered as a histogram")]
    fn histogram_kind_mismatch_panics() {
        registry().histogram("test.metrics.histo_kind");
        registry().counter("test.metrics.histo_kind");
    }
}
