//! Process-wide counters/gauges registry.
//!
//! Hot paths keep their cost at one atomic add: a [`LazyCounter`] resolves
//! its registry entry once (through a `OnceLock`) and then increments a
//! plain `AtomicU64`. Registration interns by name, so every subsystem that
//! names the same metric shares one cell, and [`snapshot`] renders the whole
//! process state under stable, dot-separated metric names (the scheme is
//! documented in DESIGN.md §8).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};

/// A monotonically increasing counter (resettable for test isolation).
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Resets to zero (test isolation; see [`MetricsRegistry::reset`]).
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A last-value-wins gauge holding an `f64`.
#[derive(Debug, Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

enum Metric {
    Counter(&'static Counter),
    Gauge(&'static Gauge),
}

/// A snapshot value of one metric.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Counter reading.
    Counter(u64),
    /// Gauge reading.
    Gauge(f64),
}

impl MetricValue {
    /// The value as a float (counters widen losslessly up to 2^53).
    pub fn as_f64(&self) -> f64 {
        match self {
            MetricValue::Counter(v) => *v as f64,
            MetricValue::Gauge(v) => *v,
        }
    }
}

/// The process-wide registry; obtain it with [`registry`].
pub struct MetricsRegistry {
    by_name: Mutex<BTreeMap<&'static str, Metric>>,
}

impl MetricsRegistry {
    // A kind-mismatch panic unwinds while holding the lock, but leaves the
    // map consistent — recover the guard instead of cascading the poison
    // into every later registry user in the process.
    fn lock(&self) -> MutexGuard<'_, BTreeMap<&'static str, Metric>> {
        self.by_name.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The counter registered under `name`, creating it on first use.
    ///
    /// Panics if `name` is already registered as a gauge.
    pub fn counter(&self, name: &'static str) -> &'static Counter {
        let mut map = self.lock();
        match map
            .entry(name)
            .or_insert_with(|| Metric::Counter(Box::leak(Box::default())))
        {
            Metric::Counter(c) => c,
            Metric::Gauge(_) => panic!("metric {name:?} is registered as a gauge"),
        }
    }

    /// The gauge registered under `name`, creating it on first use.
    ///
    /// Panics if `name` is already registered as a counter.
    pub fn gauge(&self, name: &'static str) -> &'static Gauge {
        let mut map = self.lock();
        match map
            .entry(name)
            .or_insert_with(|| Metric::Gauge(Box::leak(Box::default())))
        {
            Metric::Gauge(g) => g,
            Metric::Counter(_) => panic!("metric {name:?} is registered as a counter"),
        }
    }

    /// All metrics, sorted by name.
    pub fn snapshot(&self) -> Vec<(&'static str, MetricValue)> {
        let map = self.lock();
        map.iter()
            .map(|(name, m)| {
                let v = match m {
                    Metric::Counter(c) => MetricValue::Counter(c.get()),
                    Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                };
                (*name, v)
            })
            .collect()
    }

    /// Zeroes every counter and gauge (names stay registered). Intended for
    /// test isolation; concurrent increments may land before or after.
    pub fn reset(&self) {
        let map = self.lock();
        for m in map.values() {
            match m {
                Metric::Counter(c) => c.reset(),
                Metric::Gauge(g) => g.set(0.0),
            }
        }
    }
}

/// The process-wide metrics registry.
pub fn registry() -> &'static MetricsRegistry {
    static REGISTRY: OnceLock<MetricsRegistry> = OnceLock::new();
    REGISTRY.get_or_init(|| MetricsRegistry {
        by_name: Mutex::new(BTreeMap::new()),
    })
}

/// A counter handle resolvable in `const` context: the registry lookup
/// happens once, on first use, after which [`add`](Self::add) is a single
/// relaxed atomic increment — cheap enough for simulator hot paths.
pub struct LazyCounter {
    name: &'static str,
    cell: OnceLock<&'static Counter>,
}

impl LazyCounter {
    /// Declares a counter by stable metric name.
    pub const fn new(name: &'static str) -> LazyCounter {
        LazyCounter {
            name,
            cell: OnceLock::new(),
        }
    }

    /// The underlying registry counter.
    #[inline]
    pub fn counter(&self) -> &'static Counter {
        self.cell.get_or_init(|| registry().counter(self.name))
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.counter().add(n);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.counter().get()
    }

    /// Resets to zero.
    pub fn reset(&self) {
        self.counter().reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_intern_by_name() {
        let a = registry().counter("test.metrics.interned");
        let b = registry().counter("test.metrics.interned");
        a.reset();
        a.add(2);
        b.incr();
        assert_eq!(a.get(), 3);
        assert!(std::ptr::eq(a, b));
    }

    #[test]
    fn gauges_hold_last_value() {
        let g = registry().gauge("test.metrics.gauge");
        g.set(2.5);
        g.set(7.25);
        assert_eq!(g.get(), 7.25);
    }

    #[test]
    fn snapshot_contains_sorted_names() {
        registry().counter("test.metrics.snap.b").reset();
        registry().counter("test.metrics.snap.a").reset();
        let snap = registry().snapshot();
        let names: Vec<&str> = snap.iter().map(|(n, _)| *n).collect();
        let ia = names.iter().position(|n| *n == "test.metrics.snap.a");
        let ib = names.iter().position(|n| *n == "test.metrics.snap.b");
        assert!(ia.unwrap() < ib.unwrap());
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
    }

    #[test]
    fn lazy_counter_reaches_the_registry() {
        static C: LazyCounter = LazyCounter::new("test.metrics.lazy");
        C.reset();
        C.add(5);
        assert_eq!(registry().counter("test.metrics.lazy").get(), 5);
        assert_eq!(C.get(), 5);
    }

    #[test]
    #[should_panic(expected = "registered as a counter")]
    fn kind_mismatch_panics() {
        registry().counter("test.metrics.kind");
        registry().gauge("test.metrics.kind");
    }

    #[test]
    fn metric_value_widens() {
        assert_eq!(MetricValue::Counter(4).as_f64(), 4.0);
        assert_eq!(MetricValue::Gauge(0.5).as_f64(), 0.5);
    }
}
