//! Chrome `trace_event` JSON export and a schema validator.
//!
//! The exporter emits the stable subset of the Trace Event Format that
//! `chrome://tracing` and Perfetto both accept: a `{"traceEvents": [...]}`
//! container holding `ph:"M"` metadata (process/thread names), `ph:"X"`
//! complete slices, and `ph:"C"` counter samples. Timestamps are
//! microseconds, so nanosecond inputs keep sub-µs precision as fractions.
//!
//! Time domains map to processes: every [`TimeDomain::Virtual`] track is a
//! thread of pid [`VIRTUAL_PID`] and every [`TimeDomain::Wall`] track a
//! thread of pid [`WALL_PID`]. Viewers group threads under their process,
//! so the two clocks render as separate lanes and are never visually
//! compared against each other.

use crate::json::{self, Value};
use crate::span::{ArgValue, TimeDomain, Trace};

/// Chrome-trace pid hosting all virtual-time tracks.
pub const VIRTUAL_PID: u32 = 0;
/// Chrome-trace pid hosting all wall-time tracks.
pub const WALL_PID: u32 = 1;

fn pid_for(domain: TimeDomain) -> u32 {
    match domain {
        TimeDomain::Virtual => VIRTUAL_PID,
        TimeDomain::Wall => WALL_PID,
    }
}

/// Formats nanoseconds as fractional microseconds without float noise.
fn us(ns: u64) -> String {
    let whole = ns / 1_000;
    let frac = ns % 1_000;
    if frac == 0 {
        format!("{whole}")
    } else {
        format!("{whole}.{frac:03}")
    }
}

fn push_str_field(out: &mut String, key: &str, val: &str) {
    out.push('"');
    out.push_str(key);
    out.push_str("\":\"");
    json::escape_into(out, val);
    out.push('"');
}

fn push_args(out: &mut String, args: &[(&'static str, ArgValue)]) {
    out.push_str("\"args\":{");
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        json::escape_into(out, k);
        out.push_str("\":");
        match v {
            ArgValue::U64(n) => out.push_str(&n.to_string()),
            ArgValue::F64(f) if f.is_finite() => out.push_str(&format!("{f}")),
            ArgValue::F64(_) => out.push_str("null"),
            ArgValue::Str(s) => {
                out.push('"');
                json::escape_into(out, s);
                out.push('"');
            }
        }
    }
    out.push('}');
}

/// Renders a [`Trace`] as a Chrome `trace_event` JSON document.
///
/// Slices and counter samples are sorted by timestamp; metadata events come
/// first. Load the result in Perfetto (<https://ui.perfetto.dev>) or
/// `chrome://tracing`.
pub fn export_chrome_trace(trace: &Trace) -> String {
    let mut out = String::with_capacity(256 + trace.events.len() * 96);
    out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n");
    let mut first = true;
    let mut emit = |line: String, out: &mut String| {
        if !std::mem::take(&mut first) {
            out.push_str(",\n");
        }
        out.push_str(&line);
    };

    // Process metadata: one per time domain actually in use.
    let mut domains: Vec<TimeDomain> = trace.tracks.iter().map(|t| t.domain).collect();
    domains.sort_by_key(|d| pid_for(*d));
    domains.dedup();
    for d in &domains {
        let label = match d {
            TimeDomain::Virtual => "virtual time (simulated ns)",
            TimeDomain::Wall => "wall time (host ns)",
        };
        let mut line = String::from("{\"ph\":\"M\",\"name\":\"process_name\",");
        line.push_str(&format!("\"pid\":{},\"tid\":0,", pid_for(*d)));
        line.push_str("\"args\":{");
        push_str_field(&mut line, "name", label);
        line.push_str("}}");
        emit(line, &mut out);
    }

    // Thread metadata: one per track, plus an explicit sort order so tracks
    // render in registration order rather than alphabetically.
    for (idx, track) in trace.tracks.iter().enumerate() {
        let pid = pid_for(track.domain);
        let mut line = String::from("{\"ph\":\"M\",\"name\":\"thread_name\",");
        line.push_str(&format!("\"pid\":{pid},\"tid\":{idx},"));
        line.push_str("\"args\":{");
        push_str_field(&mut line, "name", &track.name);
        line.push_str("}}");
        emit(line, &mut out);
        let mut sort = String::from("{\"ph\":\"M\",\"name\":\"thread_sort_index\",");
        sort.push_str(&format!(
            "\"pid\":{pid},\"tid\":{idx},\"args\":{{\"sort_index\":{idx}}}}}"
        ));
        emit(sort, &mut out);
    }

    // Complete slices, sorted by start time (ties keep recording order).
    let mut order: Vec<usize> = (0..trace.events.len()).collect();
    order.sort_by_key(|&i| trace.events[i].start_ns);
    for i in order {
        let ev = &trace.events[i];
        let track = trace.track(ev.track);
        let pid = pid_for(track.domain);
        let tid = ev.track.index();
        let mut line = String::from("{\"ph\":\"X\",");
        push_str_field(&mut line, "name", &ev.name);
        line.push(',');
        push_str_field(&mut line, "cat", ev.cat);
        line.push_str(&format!(
            ",\"ts\":{},\"dur\":{},\"pid\":{pid},\"tid\":{tid},",
            us(ev.start_ns),
            us(ev.duration_ns())
        ));
        push_args(&mut line, &ev.args);
        line.push('}');
        emit(line, &mut out);
    }

    // Counter samples, sorted by timestamp.
    let mut corder: Vec<usize> = (0..trace.counters.len()).collect();
    corder.sort_by_key(|&i| trace.counters[i].ts_ns);
    for i in corder {
        let c = &trace.counters[i];
        let track = trace.track(c.track);
        let pid = pid_for(track.domain);
        let mut line = String::from("{\"ph\":\"C\",");
        push_str_field(&mut line, "name", &c.name);
        line.push_str(&format!(
            ",\"ts\":{},\"pid\":{pid},\"tid\":{},",
            us(c.ts_ns),
            c.track.index()
        ));
        let v = if c.value.is_finite() { c.value } else { 0.0 };
        line.push_str(&format!("\"args\":{{\"value\":{v}}}}}"));
        emit(line, &mut out);
    }

    out.push_str("\n]}\n");
    out
}

/// Counts from a validated Chrome-trace document.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChromeTraceStats {
    /// `ph:"M"` metadata events.
    pub metadata: usize,
    /// `ph:"X"` complete slices.
    pub slices: usize,
    /// `ph:"C"` counter samples.
    pub counters: usize,
}

fn require_num(obj: &std::collections::BTreeMap<String, Value>, key: &str) -> Result<f64, String> {
    obj.get(key)
        .and_then(Value::as_num)
        .ok_or_else(|| format!("event missing numeric {key:?} field"))
}

fn require_str<'a>(
    obj: &'a std::collections::BTreeMap<String, Value>,
    key: &str,
) -> Result<&'a str, String> {
    obj.get(key)
        .and_then(Value::as_str)
        .ok_or_else(|| format!("event missing string {key:?} field"))
}

/// Validates that `text` is a schema-well-formed Chrome `trace_event`
/// document as produced by [`export_chrome_trace`]: parses as JSON, has a
/// `traceEvents` array, every event carries the fields its phase requires,
/// timestamps are finite and non-negative, and slices on each `(pid, tid)`
/// lane are sorted by start time. Returns per-phase counts on success.
pub fn validate(text: &str) -> Result<ChromeTraceStats, String> {
    let doc = json::parse(text).map_err(|e| e.to_string())?;
    let root = doc.as_obj().ok_or("document root is not an object")?;
    let events = root
        .get("traceEvents")
        .and_then(Value::as_arr)
        .ok_or("missing \"traceEvents\" array")?;

    let mut stats = ChromeTraceStats::default();
    let mut last_ts: std::collections::BTreeMap<(u64, u64), f64> =
        std::collections::BTreeMap::new();

    for (i, ev) in events.iter().enumerate() {
        let obj = ev
            .as_obj()
            .ok_or_else(|| format!("traceEvents[{i}] is not an object"))?;
        let ph = require_str(obj, "ph").map_err(|e| format!("traceEvents[{i}]: {e}"))?;
        let check = |r: Result<f64, String>| r.map_err(|e| format!("traceEvents[{i}]: {e}"));
        match ph {
            "M" => {
                let name =
                    require_str(obj, "name").map_err(|e| format!("traceEvents[{i}]: {e}"))?;
                if !matches!(name, "process_name" | "thread_name" | "thread_sort_index") {
                    return Err(format!("traceEvents[{i}]: unknown metadata {name:?}"));
                }
                obj.get("args")
                    .and_then(Value::as_obj)
                    .ok_or_else(|| format!("traceEvents[{i}]: metadata missing args object"))?;
                stats.metadata += 1;
            }
            "X" => {
                require_str(obj, "name").map_err(|e| format!("traceEvents[{i}]: {e}"))?;
                let ts = check(require_num(obj, "ts"))?;
                let dur = check(require_num(obj, "dur"))?;
                let pid = check(require_num(obj, "pid"))?;
                let tid = check(require_num(obj, "tid"))?;
                if !ts.is_finite() || ts < 0.0 {
                    return Err(format!("traceEvents[{i}]: negative or non-finite ts"));
                }
                if !dur.is_finite() || dur < 0.0 {
                    return Err(format!("traceEvents[{i}]: negative or non-finite dur"));
                }
                let lane = (pid as u64, tid as u64);
                if let Some(prev) = last_ts.get(&lane) {
                    if ts < *prev {
                        return Err(format!(
                            "traceEvents[{i}]: slice ts {ts} out of order on pid {pid} tid {tid}"
                        ));
                    }
                }
                last_ts.insert(lane, ts);
                stats.slices += 1;
            }
            "C" => {
                require_str(obj, "name").map_err(|e| format!("traceEvents[{i}]: {e}"))?;
                let ts = check(require_num(obj, "ts"))?;
                if !ts.is_finite() || ts < 0.0 {
                    return Err(format!("traceEvents[{i}]: negative or non-finite ts"));
                }
                let args = obj
                    .get("args")
                    .and_then(Value::as_obj)
                    .ok_or_else(|| format!("traceEvents[{i}]: counter missing args object"))?;
                if args.is_empty() || !args.values().all(|v| v.as_num().is_some()) {
                    return Err(format!(
                        "traceEvents[{i}]: counter args must be non-empty numeric"
                    ));
                }
                stats.counters += 1;
            }
            other => return Err(format!("traceEvents[{i}]: unsupported phase {other:?}")),
        }
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Tracer;

    fn sample_trace() -> Trace {
        let t = Tracer::enabled();
        let q0 = t.track("queue 0 (transfer)", TimeDomain::Virtual);
        let q1 = t.track("queue 1 (compute)", TimeDomain::Virtual);
        let cpu = t.track("cpu tasks", TimeDomain::Wall);
        t.span_with(
            q0,
            "transfer",
            "write B",
            0,
            1_500,
            vec![("bytes", 4096u64.into())],
        );
        t.span(q1, "kernel", "gamma 64x128", 1_500, 9_000);
        t.span(q0, "transfer", "read C", 9_000, 10_250);
        t.span(cpu, "task", "pack", 100, 900);
        t.counter(q0, "sim.timing_cache.hits", 9_000, 3.0);
        t.snapshot().unwrap()
    }

    #[test]
    fn export_validates_and_counts() {
        let text = export_chrome_trace(&sample_trace());
        let stats = validate(&text).unwrap();
        // 2 process_name + 3 × (thread_name + thread_sort_index)
        assert_eq!(stats.metadata, 8);
        assert_eq!(stats.slices, 4);
        assert_eq!(stats.counters, 1);
    }

    #[test]
    fn export_uses_fractional_microseconds() {
        let text = export_chrome_trace(&sample_trace());
        // read C: start 9_000 ns, 1_250 ns long → ts 9 µs, dur "1.250" µs.
        assert!(text.contains("\"ts\":9,"));
        assert!(text.contains("\"dur\":1.250"));
        // kernel starts at 1_500 ns → fractional "1.500" µs timestamp.
        assert!(text.contains("\"ts\":1.500"));
    }

    #[test]
    fn domains_map_to_distinct_pids() {
        let text = export_chrome_trace(&sample_trace());
        let doc = json::parse(&text).unwrap();
        let events = doc.as_obj().unwrap()["traceEvents"].as_arr().unwrap();
        let pid_of = |name: &str| -> f64 {
            events
                .iter()
                .filter_map(Value::as_obj)
                .find(|o| o.get("name").and_then(Value::as_str) == Some(name))
                .and_then(|o| o.get("pid"))
                .and_then(Value::as_num)
                .unwrap()
        };
        assert_eq!(pid_of("gamma 64x128") as u32, VIRTUAL_PID);
        assert_eq!(pid_of("pack") as u32, WALL_PID);
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        assert!(validate("not json").is_err());
        assert!(validate("{}").is_err());
        assert!(validate(r#"{"traceEvents":[{"ph":"X"}]}"#).is_err());
        assert!(validate(r#"{"traceEvents":[{"ph":"Q","name":"x"}]}"#).is_err());
        assert!(validate(
            r#"{"traceEvents":[{"ph":"X","name":"a","ts":-1,"dur":0,"pid":0,"tid":0,"args":{}}]}"#
        )
        .is_err());
        // Out-of-order slices on one lane.
        assert!(validate(
            r#"{"traceEvents":[
                {"ph":"X","name":"a","ts":5,"dur":1,"pid":0,"tid":0,"args":{}},
                {"ph":"X","name":"b","ts":2,"dur":1,"pid":0,"tid":0,"args":{}}
            ]}"#
        )
        .is_err());
        // Same timestamps on different lanes are fine.
        assert!(validate(
            r#"{"traceEvents":[
                {"ph":"X","name":"a","ts":5,"dur":1,"pid":0,"tid":0,"args":{}},
                {"ph":"X","name":"b","ts":2,"dur":1,"pid":0,"tid":1,"args":{}}
            ]}"#
        )
        .is_ok());
    }

    #[test]
    fn counter_only_trace_exports_and_validates() {
        // A trace with counter samples but no spans (e.g. a metrics-only
        // sampling run) must still export a schema-valid document.
        let t = Tracer::enabled();
        let tr = t.track("metrics", TimeDomain::Virtual);
        t.counter(tr, "load.inflight", 0, 1.0);
        t.counter(tr, "load.inflight", 500, 3.0);
        t.counter(tr, "load.inflight", 1_000, 0.0);
        let text = export_chrome_trace(&t.snapshot().unwrap());
        let stats = validate(&text).unwrap();
        assert_eq!(stats.slices, 0);
        assert_eq!(stats.counters, 3);
        // 1 process_name + thread_name + thread_sort_index for the track.
        assert_eq!(stats.metadata, 3);
        // Counter samples with non-numeric args are rejected.
        assert!(validate(
            r#"{"traceEvents":[{"ph":"C","name":"c","ts":1,"pid":0,"tid":0,"args":{"value":"x"}}]}"#
        )
        .is_err());
        assert!(validate(
            r#"{"traceEvents":[{"ph":"C","name":"c","ts":1,"pid":0,"tid":0,"args":{}}]}"#
        )
        .is_err());
    }

    #[test]
    fn empty_trace_exports_cleanly() {
        let stats = validate(&export_chrome_trace(&Trace::default())).unwrap();
        assert_eq!(stats, ChromeTraceStats::default());
    }
}
