//! A minimal JSON reader used by the Chrome-trace validator.
//!
//! The build environment is offline (no serde), so the validator carries its
//! own ~150-line recursive-descent parser. It accepts standard JSON (RFC
//! 8259): objects, arrays, strings with escapes (including `\uXXXX` and
//! surrogate pairs), numbers, booleans, and null. It is a *reader* only —
//! the exporter writes JSON by hand — and favors clear error messages over
//! speed, which is fine for validating trace artifacts of a few megabytes.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object (sorted by key).
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// The object map, if this is an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// A parse error with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input.
    pub at: usize,
    /// What went wrong.
    pub msg: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete JSON document (trailing whitespace allowed).
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after the document"));
    }
    Ok(v)
}

const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            at: self.pos,
            msg: msg.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected {word:?}")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected character {:?}", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value(depth + 1)?;
            map.insert(key, v);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, ParseError> {
        let s = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let s = std::str::from_utf8(s).map_err(|_| self.err("non-ASCII \\u escape"))?;
        let v = u16::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let ch = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require \uXXXX low half.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 1;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let c =
                                    0x10000 + ((hi as u32 - 0xD800) << 10) + (lo as u32 - 0xDC00);
                                char::from_u32(c).ok_or_else(|| self.err("invalid code point"))?
                            } else {
                                char::from_u32(hi as u32)
                                    .ok_or_else(|| self.err("invalid code point"))?
                            };
                            out.push(ch);
                        }
                        other => return Err(self.err(format!("bad escape \\{}", other as char))),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar (input is a &str, so this is safe
                    // to do bytewise until the next ASCII boundary byte).
                    let start = self.pos;
                    self.pos += 1;
                    while let Some(b) = self.peek() {
                        if b & 0xC0 == 0x80 {
                            self.pos += 1;
                        } else {
                            break;
                        }
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err(format!("invalid number {text:?}")))
    }
}

/// Escapes `s` as the contents of a JSON string (no surrounding quotes).
pub fn escape_into(out: &mut String, s: &str) {
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("false").unwrap(), Value::Bool(false));
        assert_eq!(parse("-12.5e2").unwrap(), Value::Num(-1250.0));
        assert_eq!(parse("\"hi\"").unwrap(), Value::Str("hi".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a":[1,{"b":"c"},[]],"d":{}}"#).unwrap();
        let obj = v.as_obj().unwrap();
        let arr = obj["a"].as_arr().unwrap();
        assert_eq!(arr[0].as_num(), Some(1.0));
        assert_eq!(arr[1].as_obj().unwrap()["b"].as_str(), Some("c"));
        assert_eq!(arr[2].as_arr().unwrap().len(), 0);
    }

    #[test]
    fn parses_escapes_and_unicode() {
        assert_eq!(
            parse(r#""a\n\t\"\\\u0041""#).unwrap(),
            Value::Str("a\n\t\"\\A".into())
        );
        // Surrogate pair for 😀 (U+1F600).
        assert_eq!(parse(r#""\ud83d\ude00""#).unwrap(), Value::Str("😀".into()));
        assert_eq!(parse("\"é→\"").unwrap(), Value::Str("é→".into()));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "tru",
            "\"\\x\"",
            "1 2",
            "\"\u{1}\"",
            "01x",
            r#""\ud83d""#,
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn deep_nesting_bounded() {
        let s = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&s).is_err());
    }

    #[test]
    fn escape_roundtrips_through_parse() {
        let original = "line\nquote\" back\\slash\ttab\u{1}end";
        let mut s = String::from('"');
        escape_into(&mut s, original);
        s.push('"');
        assert_eq!(parse(&s).unwrap(), Value::Str(original.into()));
    }
}
