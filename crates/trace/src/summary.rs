//! Plain-text hierarchical summary of a trace.
//!
//! Spans within one track are nested by time containment (a span whose
//! interval lies inside another's renders as its child), which recovers the
//! logical run → pass → command structure without the recorder having to
//! thread parent ids through every call site. A metrics section rendered by
//! [`render_metrics`] can be appended for a complete run report.

use crate::metrics::{MetricValue, MetricsRegistry};
use crate::span::{TimeDomain, Trace, TraceEvent};
use std::fmt::Write as _;

/// Formats nanoseconds for humans (`1.234 ms`-style).
pub fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} us", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

fn write_span(out: &mut String, ev: &TraceEvent, depth: usize) {
    let indent = "  ".repeat(depth + 1);
    let _ = write!(
        out,
        "{indent}{} [{}] {} .. {}  ({})",
        ev.name,
        ev.cat,
        ev.start_ns,
        ev.end_ns,
        fmt_ns(ev.duration_ns())
    );
    if !ev.args.is_empty() {
        let _ = write!(out, "  {{");
        for (i, (k, v)) in ev.args.iter().enumerate() {
            if i > 0 {
                let _ = write!(out, ", ");
            }
            match v {
                crate::span::ArgValue::U64(n) => {
                    let _ = write!(out, "{k}={n}");
                }
                crate::span::ArgValue::F64(f) => {
                    let _ = write!(out, "{k}={f}");
                }
                crate::span::ArgValue::Str(s) => {
                    let _ = write!(out, "{k}={s}");
                }
            }
        }
        let _ = write!(out, "}}");
    }
    out.push('\n');
}

/// Renders the span tree of every track as indented text.
///
/// Within a track, spans are ordered by `(start asc, end desc)` so a parent
/// sorts before the children it contains; nesting depth is then derived with
/// a containment stack.
pub fn render_summary(trace: &Trace) -> String {
    let mut out = String::new();
    for (idx, info) in trace.tracks.iter().enumerate() {
        let domain = match info.domain {
            TimeDomain::Virtual => "virtual ns",
            TimeDomain::Wall => "wall ns",
        };
        let mut spans: Vec<&TraceEvent> = trace
            .events
            .iter()
            .filter(|e| e.track.index() as usize == idx)
            .collect();
        let _ = writeln!(
            out,
            "track {idx}: {} [{domain}] — {} span(s)",
            info.name,
            spans.len()
        );
        spans.sort_by(|a, b| a.start_ns.cmp(&b.start_ns).then(b.end_ns.cmp(&a.end_ns)));
        // Stack of (end_ns) for currently-open ancestors.
        let mut stack: Vec<u64> = Vec::new();
        for ev in spans {
            while let Some(&end) = stack.last() {
                // A parent must strictly contain the child; equal intervals
                // nest in sort order (first recorded wins the outer slot).
                let past_parent = ev.start_ns >= end && !(ev.start_ns == end && ev.end_ns == end);
                if past_parent || end < ev.end_ns {
                    stack.pop();
                } else {
                    break;
                }
            }
            write_span(&mut out, ev, stack.len());
            stack.push(ev.end_ns);
        }
        // Queue wait per track: simulator command spans carry their
        // enqueue instant as a `queued_ns` arg, and the gap to the span's
        // start is time the command sat in a device queue. Reported
        // explicitly — folding it into a parent's self-time would hide
        // exactly the contention a latency budget needs to name.
        let (mut queue_wait_ns, mut queued_spans) = (0u64, 0usize);
        for ev in trace
            .events
            .iter()
            .filter(|e| e.track.index() as usize == idx)
        {
            if let Some(crate::span::ArgValue::U64(queued)) = ev
                .args
                .iter()
                .find_map(|(k, v)| (*k == "queued_ns").then_some(v))
            {
                queue_wait_ns += ev.start_ns.saturating_sub(*queued);
                queued_spans += 1;
            }
        }
        if queued_spans > 0 {
            let _ = writeln!(
                out,
                "  queue wait: {} across {queued_spans} queued span(s)",
                fmt_ns(queue_wait_ns)
            );
        }
        let samples = trace
            .counters
            .iter()
            .filter(|c| c.track.index() as usize == idx)
            .count();
        if samples > 0 {
            let _ = writeln!(out, "  ({samples} counter sample(s))");
        }
    }
    out
}

/// Renders a registry snapshot as a sorted `name = value` block.
/// Histograms render their count, quantile estimates, and mean.
pub fn render_metrics(registry: &MetricsRegistry) -> String {
    let mut out = String::from("metrics:\n");
    for (name, value) in registry.snapshot() {
        match value {
            MetricValue::Counter(v) => {
                let _ = writeln!(out, "  {name} = {v}");
            }
            MetricValue::Gauge(v) => {
                let _ = writeln!(out, "  {name} = {v}");
            }
            MetricValue::Histogram(h) => {
                let _ = writeln!(
                    out,
                    "  {name} = count={} p50={} p95={} p99={} p999={} mean={:.1}",
                    h.count,
                    h.quantile(0.50),
                    h.quantile(0.95),
                    h.quantile(0.99),
                    h.quantile(0.999),
                    h.mean()
                );
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Tracer;

    #[test]
    fn nesting_follows_time_containment() {
        let t = Tracer::enabled();
        let tr = t.track("engine", TimeDomain::Virtual);
        t.span(tr, "run", "run ld", 0, 100);
        t.span(tr, "kernel", "k0", 10, 40);
        t.span(tr, "transfer", "read C", 40, 60);
        t.span(tr, "run", "run 2", 200, 300);
        let text = render_summary(&t.snapshot().unwrap());
        let lines: Vec<&str> = text.lines().collect();
        let depth_of = |needle: &str| {
            let line = lines.iter().find(|l| l.contains(needle)).unwrap();
            (line.len() - line.trim_start().len()) / 2
        };
        assert_eq!(depth_of("run ld"), 1);
        assert_eq!(depth_of("k0"), 2, "kernel nests inside the run span");
        assert_eq!(depth_of("read C"), 2);
        assert_eq!(depth_of("run 2"), 1, "disjoint span is a sibling");
    }

    #[test]
    fn per_track_queue_wait_is_reported_not_folded_into_self_time() {
        let t = Tracer::enabled();
        let q0 = t.track("queue 0", TimeDomain::Virtual);
        let host = t.track("host", TimeDomain::Virtual);
        // Two commands enqueued at 0 and 10 but starting at 5 and 50:
        // 5 + 40 = 45 ns of queue wait on this track.
        t.span_with(q0, "kernel", "k0", 5, 30, vec![("queued_ns", 0u64.into())]);
        t.span_with(
            q0,
            "transfer",
            "read",
            50,
            80,
            vec![("queued_ns", 10u64.into())],
        );
        // Host spans without a queued_ns arg contribute nothing.
        t.span(host, "pack", "host pack", 0, 4);
        let text = render_summary(&t.snapshot().unwrap());
        let track0 = text
            .lines()
            .skip_while(|l| !l.starts_with("track 0"))
            .take_while(|l| !l.starts_with("track 1"))
            .collect::<Vec<_>>()
            .join("\n");
        assert!(
            track0.contains("queue wait: 45 ns across 2 queued span(s)"),
            "{text}"
        );
        let track1 = text
            .lines()
            .skip_while(|l| !l.starts_with("track 1"))
            .collect::<Vec<_>>()
            .join("\n");
        assert!(!track1.contains("queue wait"), "{text}");
    }

    #[test]
    fn durations_format_readably() {
        assert_eq!(fmt_ns(12), "12 ns");
        assert_eq!(fmt_ns(1_500), "1.500 us");
        assert_eq!(fmt_ns(2_000_000), "2.000 ms");
        assert_eq!(fmt_ns(3_500_000_000), "3.500 s");
    }

    #[test]
    fn metrics_section_lists_sorted_names() {
        let reg = crate::metrics::registry();
        reg.counter("test.summary.z").reset();
        reg.counter("test.summary.a").reset();
        reg.counter("test.summary.a").add(7);
        let text = render_metrics(reg);
        let za = text.find("test.summary.a = 7").unwrap();
        let zz = text.find("test.summary.z = 0").unwrap();
        assert!(za < zz);
    }

    #[test]
    fn metrics_section_renders_histogram_quantiles() {
        let reg = crate::metrics::registry();
        let h = reg.histogram("test.summary.histo");
        h.reset();
        for _ in 0..99 {
            h.record(600); // octave 9 [512, 1024), sub-bucket 1: [576, 639]
        }
        h.record(1_000_000);
        let text = render_metrics(reg);
        let line = text
            .lines()
            .find(|l| l.contains("test.summary.histo"))
            .unwrap();
        // A pure log2 histogram would pin both quantiles at 1023 (the whole
        // octave); linear sub-buckets tighten them to one eighth of it.
        assert!(line.contains("count=100"), "{line}");
        assert!(line.contains("p50=639"), "{line}");
        assert!(line.contains("p99=639"), "{line}");
        assert!(line.contains("p999=1048575"), "{line}");
        assert!(line.contains("mean=10594.0"), "{line}");
    }
}
