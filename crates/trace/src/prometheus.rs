//! Prometheus text-format exposition of a metrics-registry snapshot.
//!
//! [`render_prometheus`] renders the whole registry in the Prometheus
//! text exposition format (version 0.0.4): counters gain the conventional
//! `_total` suffix, gauges render as-is, and histograms expand into
//! cumulative `_bucket{le="…"}` series (one per non-empty bucket, plus the
//! mandatory `+Inf`) with `_sum`/`_count`. Dot-separated registry names are
//! sanitized to the `[a-zA-Z_:][a-zA-Z0-9_:]*` charset Prometheus requires,
//! so `engine.recovery.retries` exposes as `engine_recovery_retries_total`.
//!
//! Registry names may carry labels after a `|`: a name like
//! `load.tenant.latency_ns|tenant=casework` renders as the
//! `load_tenant_latency_ns` family with a `{tenant="casework"}` label set
//! (composed with `le` on histogram buckets). Same-family labeled series
//! are adjacent in the registry's sorted snapshot, so the renderer emits
//! one `# TYPE` line per family, not per series.
//!
//! The renderer takes a snapshot slice rather than the live registry so
//! deterministic snapshots can be golden-file tested; use
//! [`render_registry`] for the live process state.

use std::fmt::Write as _;

use crate::metrics::{bucket_upper_bound, registry, HistogramSnapshot, MetricValue};

/// Sanitizes a dot-separated registry name into a Prometheus metric name.
pub fn sanitize_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, c) in name.chars().enumerate() {
        match c {
            'a'..='z' | 'A'..='Z' | '_' | ':' => out.push(c),
            '0'..='9' if i > 0 => out.push(c),
            '0'..='9' => {
                out.push('_');
                out.push(c);
            }
            _ => out.push('_'),
        }
    }
    out
}

/// Formats a gauge value the way Prometheus expects (`NaN`/`+Inf`/`-Inf`
/// spellings for the non-finite cases).
fn fmt_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

/// Escapes a label value per the exposition format (backslash, quote,
/// newline).
fn escape_label_value(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Splits a registry name into its metric family and label set: everything
/// after the first `|` is a comma-separated `key=value` list (e.g.
/// `load.tenant.latency_ns|tenant=casework`). Tokens without `=` are
/// ignored rather than guessed at.
fn split_labels(name: &str) -> (&str, Vec<(String, String)>) {
    match name.split_once('|') {
        None => (name, Vec::new()),
        Some((base, rest)) => (
            base,
            rest.split(',')
                .filter_map(|kv| kv.split_once('='))
                .map(|(k, v)| (sanitize_name(k), escape_label_value(v)))
                .collect(),
        ),
    }
}

/// Renders a label set as `{k="v",…}`, or nothing when empty.
fn label_str(labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let inner: Vec<String> = labels.iter().map(|(k, v)| format!("{k}=\"{v}\"")).collect();
    format!("{{{}}}", inner.join(","))
}

/// Emits a `# TYPE` header unless it would repeat the one just emitted —
/// labeled series of the same family are adjacent in the sorted snapshot
/// and share a single header.
fn emit_type(out: &mut String, last: &mut String, name: &str, kind: &str) {
    let line = format!("# TYPE {name} {kind}");
    if *last != line {
        let _ = writeln!(out, "{line}");
        *last = line;
    }
}

fn render_histogram(
    out: &mut String,
    last_type: &mut String,
    name: &str,
    labels: &[(String, String)],
    h: &HistogramSnapshot,
) {
    emit_type(out, last_type, name, "histogram");
    // Buckets compose the series labels with `le` (conventionally last).
    let bucket_labels = |le: String| {
        let mut ls = labels.to_vec();
        ls.push(("le".to_string(), le));
        label_str(&ls)
    };
    let mut cumulative = 0u64;
    for (i, &n) in h.buckets.iter().enumerate() {
        if n == 0 {
            continue;
        }
        cumulative += n;
        // OpenMetrics-style exemplar suffix: `# {labels} value timestamp`,
        // here carrying the query identity and its stream-clock offset so a
        // tail bucket links straight to the flight-recorder span.
        let exemplar = match h.exemplar_for(i) {
            None => String::new(),
            Some(e) => {
                let tenant = e
                    .tenant
                    .as_deref()
                    .map(|t| format!(",tenant=\"{}\"", escape_label_value(t)))
                    .unwrap_or_default();
                format!(
                    " # {{query_id=\"{}\"{tenant}}} {} {}",
                    e.query_id, e.value, e.offset_ns
                )
            }
        };
        let _ = writeln!(
            out,
            "{name}_bucket{} {cumulative}{exemplar}",
            bucket_labels(bucket_upper_bound(i).to_string())
        );
    }
    let _ = writeln!(
        out,
        "{name}_bucket{} {}",
        bucket_labels("+Inf".to_string()),
        h.count
    );
    let _ = writeln!(out, "{name}_sum{} {}", label_str(labels), h.sum);
    let _ = writeln!(out, "{name}_count{} {}", label_str(labels), h.count);
}

/// Renders a registry snapshot (as produced by
/// [`MetricsRegistry::snapshot`](crate::metrics::MetricsRegistry::snapshot))
/// in the Prometheus text exposition format.
pub fn render_prometheus(snapshot: &[(&'static str, MetricValue)]) -> String {
    let mut out = String::new();
    let mut last_type = String::new();
    for (raw, value) in snapshot {
        let (base, labels) = split_labels(raw);
        let name = sanitize_name(base);
        match value {
            MetricValue::Counter(v) => {
                emit_type(
                    &mut out,
                    &mut last_type,
                    &format!("{name}_total"),
                    "counter",
                );
                let _ = writeln!(out, "{name}_total{} {v}", label_str(&labels));
            }
            MetricValue::Gauge(v) => {
                emit_type(&mut out, &mut last_type, &name, "gauge");
                let _ = writeln!(out, "{name}{} {}", label_str(&labels), fmt_value(*v));
            }
            MetricValue::Histogram(h) => {
                render_histogram(&mut out, &mut last_type, &name, &labels, h)
            }
        }
    }
    out
}

/// [`render_prometheus`] over the live process-wide registry.
pub fn render_registry() -> String {
    render_prometheus(&registry().snapshot())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Histogram;

    /// A deterministic synthetic snapshot with every metric kind, including
    /// labeled per-tenant series (adjacent in sorted order, as in the real
    /// registry).
    fn golden_snapshot() -> Vec<(&'static str, MetricValue)> {
        let h = Histogram::default();
        for _ in 0..3 {
            h.record(100); // octave 6, sub 4: upper bound 103
        }
        h.record(0);
        // Tail sample with an exemplar: the rendered bucket line links the
        // p99 bucket to query 17 at stream offset 912000.
        h.record_with_exemplar(100_000, 17, Some("casework"), 912_000); // upper bound 106495
        let t = Histogram::default();
        t.record(100);
        vec![
            ("engine.recovery.retries", MetricValue::Counter(42)),
            ("load.inflight", MetricValue::Gauge(2.5)),
            (
                "load.latency_ns.fastid",
                MetricValue::Histogram(h.snapshot()),
            ),
            (
                "load.tenant.latency_ns|tenant=casework",
                MetricValue::Histogram(t.snapshot()),
            ),
            (
                "load.tenant.latency_ns|tenant=research",
                MetricValue::Histogram(t.snapshot()),
            ),
        ]
    }

    #[test]
    fn golden_file_pins_the_exposition_format() {
        let got = render_prometheus(&golden_snapshot());
        if std::env::var_os("UPDATE_GOLDEN").is_some() {
            std::fs::write(
                concat!(env!("CARGO_MANIFEST_DIR"), "/testdata/prometheus.golden"),
                &got,
            )
            .unwrap();
        }
        let want = include_str!("../testdata/prometheus.golden");
        assert_eq!(
            got, want,
            "Prometheus exposition drifted from the golden file \
             (UPDATE_GOLDEN=1 regenerates)"
        );
    }

    #[test]
    fn labeled_series_share_one_type_line_and_compose_le() {
        let got = render_prometheus(&golden_snapshot());
        assert_eq!(
            got.matches("# TYPE load_tenant_latency_ns histogram")
                .count(),
            1,
            "labeled series of one family share a single TYPE line:\n{got}"
        );
        assert!(
            got.contains("load_tenant_latency_ns_bucket{tenant=\"casework\",le=\"103\"} 1"),
            "{got}"
        );
        assert!(
            got.contains("load_tenant_latency_ns_bucket{tenant=\"research\",le=\"+Inf\"} 1"),
            "{got}"
        );
        assert!(got.contains("load_tenant_latency_ns_sum{tenant=\"casework\"} 100"));
        assert!(got.contains("load_tenant_latency_ns_count{tenant=\"research\"} 1"));
    }

    #[test]
    fn label_values_are_escaped_and_bad_tokens_ignored() {
        assert_eq!(escape_label_value("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        let (base, labels) = split_labels("m|tenant=a,junk,k=v");
        assert_eq!(base, "m");
        assert_eq!(
            labels,
            vec![
                ("tenant".to_string(), "a".to_string()),
                ("k".to_string(), "v".to_string())
            ]
        );
        let (plain, none) = split_labels("load.queries");
        assert_eq!(plain, "load.queries");
        assert!(none.is_empty());
    }

    #[test]
    fn names_are_sanitized() {
        assert_eq!(
            sanitize_name("engine.recovery.retries"),
            "engine_recovery_retries"
        );
        assert_eq!(sanitize_name("load.latency-ns/p99"), "load_latency_ns_p99");
        assert_eq!(sanitize_name("9lives"), "_9lives");
        assert_eq!(sanitize_name("ok_name:sub"), "ok_name:sub");
    }

    #[test]
    fn gauge_special_values_spell_like_prometheus() {
        assert_eq!(fmt_value(f64::NAN), "NaN");
        assert_eq!(fmt_value(f64::INFINITY), "+Inf");
        assert_eq!(fmt_value(f64::NEG_INFINITY), "-Inf");
        assert_eq!(fmt_value(0.25), "0.25");
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_end_at_inf() {
        let got = render_prometheus(&golden_snapshot());
        let lines: Vec<&str> = got
            .lines()
            .filter(|l| l.starts_with("load_latency_ns_fastid_bucket"))
            .collect();
        // zero bucket (1), value-100 bucket (cum 4), value-100000 bucket
        // (cum 5), then +Inf pinned at the total count.
        assert_eq!(
            lines,
            vec![
                "load_latency_ns_fastid_bucket{le=\"0\"} 1",
                "load_latency_ns_fastid_bucket{le=\"103\"} 4",
                "load_latency_ns_fastid_bucket{le=\"106495\"} 5 \
                 # {query_id=\"17\",tenant=\"casework\"} 100000 912000",
                "load_latency_ns_fastid_bucket{le=\"+Inf\"} 5",
            ]
        );
        assert!(got.contains("load_latency_ns_fastid_sum 100300\n"));
        assert!(got.contains("load_latency_ns_fastid_count 5\n"));
    }

    #[test]
    fn exemplars_attach_only_to_their_bucket() {
        let h = Histogram::default();
        h.record(10);
        h.record_with_exemplar(5_000, 3, None, 40);
        let got =
            render_prometheus(&[("load.latency_ns.ld", MetricValue::Histogram(h.snapshot()))]);
        // Only the hit bucket carries the suffix; a missing tenant renders
        // without a tenant label.
        assert_eq!(got.matches(" # {").count(), 1, "{got}");
        assert!(got.contains("} 2 # {query_id=\"3\"} 5000 40\n"), "{got}");
        assert!(!got.contains("tenant="), "{got}");
    }

    #[test]
    fn live_registry_renders() {
        registry().counter("test.prom.live").reset();
        registry().counter("test.prom.live").add(3);
        let text = render_registry();
        assert!(text.contains("test_prom_live_total 3"));
    }
}
