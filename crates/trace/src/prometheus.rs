//! Prometheus text-format exposition of a metrics-registry snapshot.
//!
//! [`render_prometheus`] renders the whole registry in the Prometheus
//! text exposition format (version 0.0.4): counters gain the conventional
//! `_total` suffix, gauges render as-is, and histograms expand into
//! cumulative `_bucket{le="…"}` series (one per non-empty bucket, plus the
//! mandatory `+Inf`) with `_sum`/`_count`. Dot-separated registry names are
//! sanitized to the `[a-zA-Z_:][a-zA-Z0-9_:]*` charset Prometheus requires,
//! so `engine.recovery.retries` exposes as `engine_recovery_retries_total`.
//!
//! The renderer takes a snapshot slice rather than the live registry so
//! deterministic snapshots can be golden-file tested; use
//! [`render_registry`] for the live process state.

use std::fmt::Write as _;

use crate::metrics::{bucket_upper_bound, registry, HistogramSnapshot, MetricValue};

/// Sanitizes a dot-separated registry name into a Prometheus metric name.
pub fn sanitize_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, c) in name.chars().enumerate() {
        match c {
            'a'..='z' | 'A'..='Z' | '_' | ':' => out.push(c),
            '0'..='9' if i > 0 => out.push(c),
            '0'..='9' => {
                out.push('_');
                out.push(c);
            }
            _ => out.push('_'),
        }
    }
    out
}

/// Formats a gauge value the way Prometheus expects (`NaN`/`+Inf`/`-Inf`
/// spellings for the non-finite cases).
fn fmt_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

fn render_histogram(out: &mut String, name: &str, h: &HistogramSnapshot) {
    let _ = writeln!(out, "# TYPE {name} histogram");
    let mut cumulative = 0u64;
    for (i, &n) in h.buckets.iter().enumerate() {
        if n == 0 {
            continue;
        }
        cumulative += n;
        let _ = writeln!(
            out,
            "{name}_bucket{{le=\"{}\"}} {cumulative}",
            bucket_upper_bound(i)
        );
    }
    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count);
    let _ = writeln!(out, "{name}_sum {}", h.sum);
    let _ = writeln!(out, "{name}_count {}", h.count);
}

/// Renders a registry snapshot (as produced by
/// [`MetricsRegistry::snapshot`](crate::metrics::MetricsRegistry::snapshot))
/// in the Prometheus text exposition format.
pub fn render_prometheus(snapshot: &[(&'static str, MetricValue)]) -> String {
    let mut out = String::new();
    for (name, value) in snapshot {
        let name = sanitize_name(name);
        match value {
            MetricValue::Counter(v) => {
                let _ = writeln!(out, "# TYPE {name}_total counter");
                let _ = writeln!(out, "{name}_total {v}");
            }
            MetricValue::Gauge(v) => {
                let _ = writeln!(out, "# TYPE {name} gauge");
                let _ = writeln!(out, "{name} {}", fmt_value(*v));
            }
            MetricValue::Histogram(h) => render_histogram(&mut out, &name, h),
        }
    }
    out
}

/// [`render_prometheus`] over the live process-wide registry.
pub fn render_registry() -> String {
    render_prometheus(&registry().snapshot())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Histogram;

    /// A deterministic synthetic snapshot with every metric kind.
    fn golden_snapshot() -> Vec<(&'static str, MetricValue)> {
        let h = Histogram::default();
        for _ in 0..3 {
            h.record(100); // octave 6, sub 4: upper bound 103
        }
        h.record(0);
        h.record(100_000); // octave 16, sub 4: upper bound 106495
        vec![
            ("engine.recovery.retries", MetricValue::Counter(42)),
            ("load.inflight", MetricValue::Gauge(2.5)),
            (
                "load.latency_ns.fastid",
                MetricValue::Histogram(h.snapshot()),
            ),
        ]
    }

    #[test]
    fn golden_file_pins_the_exposition_format() {
        let got = render_prometheus(&golden_snapshot());
        let want = include_str!("../testdata/prometheus.golden");
        assert_eq!(
            got, want,
            "Prometheus exposition drifted from the golden file"
        );
    }

    #[test]
    fn names_are_sanitized() {
        assert_eq!(
            sanitize_name("engine.recovery.retries"),
            "engine_recovery_retries"
        );
        assert_eq!(sanitize_name("load.latency-ns/p99"), "load_latency_ns_p99");
        assert_eq!(sanitize_name("9lives"), "_9lives");
        assert_eq!(sanitize_name("ok_name:sub"), "ok_name:sub");
    }

    #[test]
    fn gauge_special_values_spell_like_prometheus() {
        assert_eq!(fmt_value(f64::NAN), "NaN");
        assert_eq!(fmt_value(f64::INFINITY), "+Inf");
        assert_eq!(fmt_value(f64::NEG_INFINITY), "-Inf");
        assert_eq!(fmt_value(0.25), "0.25");
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_end_at_inf() {
        let got = render_prometheus(&golden_snapshot());
        let lines: Vec<&str> = got
            .lines()
            .filter(|l| l.starts_with("load_latency_ns_fastid_bucket"))
            .collect();
        // zero bucket (1), value-100 bucket (cum 4), value-100000 bucket
        // (cum 5), then +Inf pinned at the total count.
        assert_eq!(
            lines,
            vec![
                "load_latency_ns_fastid_bucket{le=\"0\"} 1",
                "load_latency_ns_fastid_bucket{le=\"103\"} 4",
                "load_latency_ns_fastid_bucket{le=\"106495\"} 5",
                "load_latency_ns_fastid_bucket{le=\"+Inf\"} 5",
            ]
        );
        assert!(got.contains("load_latency_ns_fastid_sum 100300\n"));
        assert!(got.contains("load_latency_ns_fastid_count 5\n"));
    }

    #[test]
    fn live_registry_renders() {
        registry().counter("test.prom.live").reset();
        registry().counter("test.prom.live").add(3);
        let text = render_registry();
        assert!(text.contains("test_prom_live_total 3"));
    }
}
