//! `snp-trace`: dependency-free tracing and metrics for the SNP engine.
//!
//! Two substrates, one crate:
//!
//! * **Spans** — a [`Tracer`] handle records timestamped slices onto named
//!   tracks. Timestamps are plain `u64` nanoseconds, so the simulator's
//!   deterministic virtual clock and the host's wall clock coexist; each
//!   track declares its [`TimeDomain`] and the exporters keep the domains
//!   separated. A disabled tracer (the default everywhere) turns every
//!   recording call into a branch-and-return no-op.
//! * **Metrics** — a process-wide [`registry`](metrics::registry) of named
//!   [`Counter`]s and [`Gauge`]s. Hot paths use [`LazyCounter`] statics so
//!   an increment costs one relaxed atomic add after first touch.
//!
//! Exporters: [`chrome::export_chrome_trace`] writes Chrome `trace_event`
//! JSON (loadable in Perfetto / `chrome://tracing`, with virtual and wall
//! time as separate processes), and [`summary::render_summary`] renders an
//! indented text tree nested by time containment. The matching
//! [`chrome::validate`] checks an emitted document is schema-well-formed —
//! CI runs it against the artifact of a real `snpgpu trace` invocation.
//!
//! The span model, metric naming scheme, and the virtual-ns → trace-track
//! mapping are documented in `DESIGN.md` §8.

#![warn(missing_docs)]

pub mod chrome;
pub mod flight;
pub mod json;
pub mod metrics;
pub mod prometheus;
pub mod span;
pub mod summary;

pub use flight::{merge_into, FlightRecorder};
pub use metrics::{
    bucket_upper_bound, registry, Counter, Exemplar, Gauge, Histogram, HistogramSnapshot,
    LazyCounter, LazyHistogram, MetricValue, MetricsRegistry,
};
pub use prometheus::{render_prometheus, render_registry};
pub use span::{
    ArgValue, CounterSample, QueryCtx, SpanId, TimeDomain, Trace, TraceEvent, Tracer, TrackId,
    TrackInfo,
};
