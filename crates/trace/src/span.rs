//! Spans, tracks, and the [`Tracer`] handle.
//!
//! A [`Tracer`] is a cheaply clonable handle that is either *disabled* (every
//! recording method is a branch-and-return no-op — the zero-cost default) or
//! *enabled*, in which case all clones append into one shared buffer. Spans
//! carry explicit `u64` nanosecond timestamps, so the same machinery records
//! both the simulator's **virtual** clock and the host's **wall** clock;
//! every track declares which [`TimeDomain`] its timestamps live in so the
//! exporters can keep the two from being compared against each other.

use std::borrow::Cow;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Which clock a track's timestamps belong to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TimeDomain {
    /// The simulator's deterministic virtual nanoseconds.
    Virtual,
    /// Real host time, nanoseconds since the tracer's epoch.
    Wall,
}

/// Handle to a registered track (one horizontal lane on the timeline).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TrackId(pub(crate) u32);

impl TrackId {
    /// The raw track index (stable within one [`Trace`]).
    pub fn index(&self) -> u32 {
        self.0
    }
}

/// Handle to an in-flight span opened with [`Tracer::begin_span`].
///
/// The null id (from a disabled tracer) is accepted and ignored by
/// [`Tracer::end_span`], so call sites need no enabled-ness branches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanId(usize);

impl SpanId {
    /// The id handed out by a disabled tracer.
    pub const NULL: SpanId = SpanId(0);
}

/// A typed span/counter argument.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// Unsigned integer.
    U64(u64),
    /// Float.
    F64(f64),
    /// Text.
    Str(String),
}

impl From<u64> for ArgValue {
    fn from(v: u64) -> Self {
        ArgValue::U64(v)
    }
}
impl From<usize> for ArgValue {
    fn from(v: usize) -> Self {
        ArgValue::U64(v as u64)
    }
}
impl From<u32> for ArgValue {
    fn from(v: u32) -> Self {
        ArgValue::U64(v as u64)
    }
}
impl From<f64> for ArgValue {
    fn from(v: f64) -> Self {
        ArgValue::F64(v)
    }
}
impl From<&str> for ArgValue {
    fn from(v: &str) -> Self {
        ArgValue::Str(v.to_string())
    }
}

/// One completed span.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// The track the span lives on.
    pub track: TrackId,
    /// Display name.
    pub name: Cow<'static, str>,
    /// Category (`"kernel"`, `"transfer"`, `"pack"`, `"init"`, `"run"`,
    /// `"task"`, …) — what tests and exporters filter on.
    pub cat: &'static str,
    /// Start timestamp in the track's time domain, nanoseconds.
    pub start_ns: u64,
    /// End timestamp, nanoseconds (`>= start_ns` once closed).
    pub end_ns: u64,
    /// Attached key/value arguments.
    pub args: Vec<(&'static str, ArgValue)>,
}

impl TraceEvent {
    /// Span duration in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }

    /// Whether two spans overlap in time (half-open intervals).
    pub fn overlaps(&self, other: &TraceEvent) -> bool {
        self.start_ns < other.end_ns && other.start_ns < self.end_ns
    }
}

/// One sampled value of a named counter series.
#[derive(Debug, Clone, PartialEq)]
pub struct CounterSample {
    /// The track whose timeline the sample is plotted against.
    pub track: TrackId,
    /// Counter series name (a stable metric name).
    pub name: Cow<'static, str>,
    /// Sample timestamp, nanoseconds in the track's domain.
    pub ts_ns: u64,
    /// Sampled value.
    pub value: f64,
}

/// Query-grained trace context: a query id plus the tenant it belongs to.
///
/// A [`Tracer`] clone can carry a `QueryCtx` (see
/// [`Tracer::with_query_ctx`]); every span recorded through that handle —
/// including spans recorded by subsystems the handle is passed into, such
/// as the simulated device or the recovery layer — is automatically tagged
/// with `query_id`/`tenant` args, so faults, retries, and fallbacks in an
/// exported timeline are attributable to the query that caused them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryCtx {
    /// Stable per-stream query id.
    pub query_id: u64,
    /// Tenant label (multi-tenant attribution).
    pub tenant: Cow<'static, str>,
}

impl QueryCtx {
    /// A context for `query_id` under `tenant`.
    pub fn new(query_id: u64, tenant: impl Into<Cow<'static, str>>) -> QueryCtx {
        QueryCtx {
            query_id,
            tenant: tenant.into(),
        }
    }
}

/// A registered track.
#[derive(Debug, Clone)]
pub struct TrackInfo {
    /// Display name (e.g. `"queue 0 (transfer)"`).
    pub name: String,
    /// Time domain of every timestamp on this track.
    pub domain: TimeDomain,
}

/// An immutable snapshot of everything a tracer collected.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Registered tracks, indexed by [`TrackId::index`].
    pub tracks: Vec<TrackInfo>,
    /// Completed spans, in recording order.
    pub events: Vec<TraceEvent>,
    /// Counter samples, in recording order.
    pub counters: Vec<CounterSample>,
}

impl Trace {
    /// The track info for an id.
    pub fn track(&self, id: TrackId) -> &TrackInfo {
        &self.tracks[id.0 as usize]
    }

    /// Spans of a given category.
    pub fn events_in_cat<'a>(&'a self, cat: &'a str) -> impl Iterator<Item = &'a TraceEvent> {
        self.events.iter().filter(move |e| e.cat == cat)
    }
}

#[derive(Debug, Default)]
struct TraceState {
    tracks: Vec<TrackInfo>,
    events: Vec<TraceEvent>,
    counters: Vec<CounterSample>,
}

#[derive(Debug)]
struct Shared {
    epoch: Instant,
    state: Mutex<TraceState>,
}

/// The recording handle. See the module docs.
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    shared: Option<Arc<Shared>>,
    ctx: Option<Arc<QueryCtx>>,
}

impl Tracer {
    /// A disabled tracer: every method is a no-op (the zero-cost path).
    pub fn disabled() -> Tracer {
        Tracer {
            shared: None,
            ctx: None,
        }
    }

    /// An enabled tracer collecting into a fresh shared buffer.
    pub fn enabled() -> Tracer {
        Tracer {
            shared: Some(Arc::new(Shared {
                epoch: Instant::now(),
                state: Mutex::new(TraceState::default()),
            })),
            ctx: None,
        }
    }

    /// A clone of this handle carrying `ctx`: spans recorded through the
    /// clone (and through any subsystem the clone is handed to) gain
    /// `query_id`/`tenant` args. The underlying buffer is shared, so the
    /// tagged spans land in the same trace as everything else.
    pub fn with_query_ctx(&self, ctx: QueryCtx) -> Tracer {
        Tracer {
            shared: self.shared.clone(),
            ctx: Some(Arc::new(ctx)),
        }
    }

    /// The query context this handle carries, if any.
    pub fn query_ctx(&self) -> Option<&QueryCtx> {
        self.ctx.as_deref()
    }

    /// Appends this handle's query-context args, if any.
    fn tag(&self, args: &mut Vec<(&'static str, ArgValue)>) {
        if let Some(ctx) = &self.ctx {
            args.push(("query_id", ArgValue::U64(ctx.query_id)));
            args.push(("tenant", ArgValue::Str(ctx.tenant.clone().into_owned())));
        }
    }

    /// Whether recording is on. Callers may use this to skip *preparing*
    /// expensive span arguments; the recording methods themselves already
    /// early-return when disabled.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.shared.is_some()
    }

    /// Nanoseconds of wall time since this tracer was created (0 when
    /// disabled). Timestamps for [`TimeDomain::Wall`] tracks.
    pub fn wall_now_ns(&self) -> u64 {
        match &self.shared {
            Some(s) => s.epoch.elapsed().as_nanos() as u64,
            None => 0,
        }
    }

    /// Registers a track; returns a throwaway id when disabled.
    pub fn track(&self, name: impl Into<String>, domain: TimeDomain) -> TrackId {
        match &self.shared {
            None => TrackId(0),
            Some(s) => {
                let mut st = s.state.lock().unwrap();
                st.tracks.push(TrackInfo {
                    name: name.into(),
                    domain,
                });
                TrackId((st.tracks.len() - 1) as u32)
            }
        }
    }

    /// Records a completed span.
    #[inline]
    pub fn span(
        &self,
        track: TrackId,
        cat: &'static str,
        name: impl Into<Cow<'static, str>>,
        start_ns: u64,
        end_ns: u64,
    ) {
        self.span_with(track, cat, name, start_ns, end_ns, Vec::new());
    }

    /// Records a completed span with arguments.
    pub fn span_with(
        &self,
        track: TrackId,
        cat: &'static str,
        name: impl Into<Cow<'static, str>>,
        start_ns: u64,
        end_ns: u64,
        mut args: Vec<(&'static str, ArgValue)>,
    ) {
        let Some(s) = &self.shared else { return };
        self.tag(&mut args);
        let mut st = s.state.lock().unwrap();
        st.events.push(TraceEvent {
            track,
            name: name.into(),
            cat,
            start_ns,
            end_ns: end_ns.max(start_ns),
            args,
        });
    }

    /// Opens a span whose end is not yet known; close with
    /// [`end_span`](Self::end_span). Until closed, the span's end equals its
    /// start.
    pub fn begin_span(
        &self,
        track: TrackId,
        cat: &'static str,
        name: impl Into<Cow<'static, str>>,
        start_ns: u64,
    ) -> SpanId {
        let Some(s) = &self.shared else {
            return SpanId::NULL;
        };
        let mut args = Vec::new();
        self.tag(&mut args);
        let mut st = s.state.lock().unwrap();
        st.events.push(TraceEvent {
            track,
            name: name.into(),
            cat,
            start_ns,
            end_ns: start_ns,
            args,
        });
        SpanId(st.events.len()) // 1-based so NULL stays distinct
    }

    /// Closes a span opened with [`begin_span`](Self::begin_span), optionally
    /// attaching arguments. Ignores [`SpanId::NULL`].
    pub fn end_span(&self, id: SpanId, end_ns: u64) {
        self.end_span_with(id, end_ns, Vec::new());
    }

    /// [`end_span`](Self::end_span) with arguments appended on close.
    pub fn end_span_with(&self, id: SpanId, end_ns: u64, args: Vec<(&'static str, ArgValue)>) {
        let Some(s) = &self.shared else { return };
        if id == SpanId::NULL {
            return;
        }
        let mut st = s.state.lock().unwrap();
        let ev = &mut st.events[id.0 - 1];
        ev.end_ns = end_ns.max(ev.start_ns);
        ev.args.extend(args);
    }

    /// Records one sample of a counter series.
    #[inline]
    pub fn counter(
        &self,
        track: TrackId,
        name: impl Into<Cow<'static, str>>,
        ts_ns: u64,
        value: f64,
    ) {
        let Some(s) = &self.shared else { return };
        let mut st = s.state.lock().unwrap();
        st.counters.push(CounterSample {
            track,
            name: name.into(),
            ts_ns,
            value,
        });
    }

    /// Snapshots everything recorded so far (`None` when disabled).
    pub fn snapshot(&self) -> Option<Trace> {
        let s = self.shared.as_ref()?;
        let st = s.state.lock().unwrap();
        Some(Trace {
            tracks: st.tracks.clone(),
            events: st.events.clone(),
            counters: st.counters.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_is_inert() {
        let t = Tracer::disabled();
        assert!(!t.is_enabled());
        let tr = t.track("x", TimeDomain::Virtual);
        t.span(tr, "kernel", "k", 0, 10);
        let id = t.begin_span(tr, "run", "r", 0);
        assert_eq!(id, SpanId::NULL);
        t.end_span(id, 99);
        t.counter(tr, "c", 0, 1.0);
        assert!(t.snapshot().is_none());
        assert_eq!(t.wall_now_ns(), 0);
    }

    #[test]
    fn spans_and_counters_are_recorded() {
        let t = Tracer::enabled();
        let tr = t.track("host", TimeDomain::Virtual);
        t.span_with(tr, "kernel", "k0", 5, 15, vec![("bytes", 64u64.into())]);
        let run = t.begin_span(tr, "run", "run", 0);
        t.end_span_with(run, 40, vec![("passes", 2u64.into())]);
        t.counter(tr, "hits", 20, 3.0);
        let trace = t.snapshot().unwrap();
        assert_eq!(trace.tracks.len(), 1);
        assert_eq!(trace.events.len(), 2);
        assert_eq!(trace.events[0].duration_ns(), 10);
        assert_eq!(trace.events[1].end_ns, 40);
        assert_eq!(trace.events[1].args, vec![("passes", ArgValue::U64(2))]);
        assert_eq!(trace.counters.len(), 1);
        assert_eq!(trace.track(tr).name, "host");
    }

    #[test]
    fn clones_share_one_buffer() {
        let t = Tracer::enabled();
        let tr = t.track("a", TimeDomain::Wall);
        let t2 = t.clone();
        t2.span(tr, "task", "x", 1, 2);
        assert_eq!(t.snapshot().unwrap().events.len(), 1);
    }

    #[test]
    fn query_ctx_tags_every_span_through_the_handle() {
        let t = Tracer::enabled();
        let tr = t.track("engine", TimeDomain::Virtual);
        let q = t.with_query_ctx(QueryCtx::new(42, "tenant-a"));
        assert_eq!(q.query_ctx().unwrap().query_id, 42);
        assert!(t.query_ctx().is_none(), "ctx rides the clone, not the base");
        q.span(tr, "kernel", "k", 0, 10);
        q.span_with(tr, "run", "r", 0, 20, vec![("passes", 1u64.into())]);
        let open = q.begin_span(tr, "retry", "backoff", 20);
        q.end_span(open, 30);
        t.span(tr, "kernel", "untagged", 30, 40);
        let trace = t.snapshot().unwrap();
        for ev in &trace.events[..3] {
            assert!(
                ev.args.contains(&("query_id", ArgValue::U64(42))),
                "{:?} should carry the query id",
                ev.name
            );
            assert!(ev
                .args
                .contains(&("tenant", ArgValue::Str("tenant-a".into()))));
        }
        assert_eq!(trace.events[1].args[0], ("passes", ArgValue::U64(1)));
        assert!(trace.events[3].args.is_empty(), "base handle stays clean");
    }

    #[test]
    fn end_before_start_is_clamped() {
        let t = Tracer::enabled();
        let tr = t.track("a", TimeDomain::Virtual);
        t.span(tr, "x", "x", 10, 5);
        let e = &t.snapshot().unwrap().events[0];
        assert_eq!((e.start_ns, e.end_ns), (10, 10));
    }

    #[test]
    fn overlap_predicate() {
        let mk = |s, e| TraceEvent {
            track: TrackId(0),
            name: "x".into(),
            cat: "x",
            start_ns: s,
            end_ns: e,
            args: Vec::new(),
        };
        assert!(mk(0, 10).overlaps(&mk(5, 15)));
        assert!(
            !mk(0, 10).overlaps(&mk(10, 20)),
            "half-open: touching is not overlap"
        );
        assert!(!mk(0, 1).overlaps(&mk(2, 3)));
    }
}
