//! Per-launch hardware-counter records.
//!
//! Real profilers (nvprof/rocprof, which the paper's evaluation leaned on)
//! expose what the hardware already counts: instructions issued per class,
//! cycles each functional-unit pipeline was busy, shared-memory replays,
//! bytes moved, resident occupancy. The simulator computes every one of
//! these quantities on the way to a kernel's nanosecond total — this module
//! keeps them, as a [`KernelProfile`] attached to each kernel event by the
//! host API ([`crate::host::Gpu::kernel_profile`]).
//!
//! The macro engine prices a launch from static program structure, so its
//! counters ([`ProgramCounters`]) are exact static sums; the detailed
//! engine's counters come from the cycle-stepped run itself
//! (`DetailedResult::pipeline_busy`). Roofline classification and
//! model-drift reconciliation are *derived* views built on top of these
//! records by `snp-core::profile`.

use snp_gpu_model::{DeviceSpec, InstrClass};

use crate::isa::Program;
use crate::macro_engine::{pipeline_issue_cycles, KernelTime, Traffic};

/// Which engine timed the launch this profile describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProfileEngine {
    /// The analytic macro engine ([`crate::macro_engine`]).
    Analytic,
    /// The cycle-stepped detailed engine ([`crate::detailed`]).
    Detailed,
}

/// Hardware-counter record of one kernel launch, attached to its event.
///
/// Fields that only the detailed engine can measure (dynamic instruction
/// totals, per-pipeline busy cycles) are `None` for analytically-timed
/// launches; callers holding the launch's [`Program`] can recover the
/// static equivalents with [`program_counters`].
#[derive(Debug, Clone, PartialEq)]
pub struct KernelProfile {
    /// Which engine produced the timing.
    pub engine: ProfileEngine,
    /// Cycles one core spent (all active cores do equal work).
    pub core_cycles: f64,
    /// Concurrently active compute cores.
    pub active_cores: u32,
    /// Resident thread groups per core (`None` for analytic launches,
    /// whose cost carries no group count).
    pub groups_per_core: Option<u32>,
    /// Global-memory traffic the launch was charged for.
    pub traffic: Traffic,
    /// The launch's wall-time breakdown (compute vs bandwidth bound,
    /// launch overhead, applied scaling efficiency).
    pub time: KernelTime,
    /// Dynamic instructions executed across all groups of one core
    /// (detailed engine only).
    pub total_instrs: Option<u64>,
    /// Busy cycles per pipeline index, summed over one core's clusters
    /// (detailed engine only).
    pub pipeline_busy: Option<Vec<u64>>,
}

impl KernelProfile {
    /// Achieved global-memory bandwidth over the launch's modeled wall
    /// time, in bytes/s (0 when the launch moved no bytes).
    pub fn achieved_bandwidth_bytes_s(&self) -> f64 {
        if self.time.total_ns <= 0.0 {
            return 0.0;
        }
        self.traffic.total() as f64 / (self.time.total_ns / 1e9)
    }

    /// Achieved bandwidth as a fraction of the device's effective DRAM
    /// peak.
    pub fn bandwidth_fraction(&self, dev: &DeviceSpec) -> f64 {
        self.achieved_bandwidth_bytes_s() / dev.memory.effective_bandwidth_bytes_s()
    }

    /// Whether the bandwidth bound (not compute) set this launch's time.
    pub fn memory_bound(&self) -> bool {
        self.time.memory_ns > self.time.compute_ns
    }
}

/// Static per-launch counters recovered from a kernel's [`Program`] — the
/// macro-engine analogue of what the detailed engine measures. All values
/// are per thread group over the whole program; scale by resident groups
/// for per-core totals.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgramCounters {
    /// Dynamic instructions one group executes.
    pub instrs_per_group: u64,
    /// Dynamic instructions by pipeline class, in first-appearance order.
    pub instrs_by_class: Vec<(InstrClass, u64)>,
    /// Issue cycles one group places on each pipeline (index-aligned with
    /// `dev.pipelines`).
    pub issue_cycles_per_pipeline: Vec<u64>,
    /// Shared-memory bank-conflict replays one group incurs: each `w`-way
    /// conflicting access replays `w - 1` times per trip.
    pub bank_conflict_replays: u64,
}

/// Computes the static counters of `prog` on `dev`.
pub fn program_counters(dev: &DeviceSpec, prog: &Program) -> ProgramCounters {
    let mut replays = 0u64;
    for block in &prog.blocks {
        for instr in &block.instrs {
            if instr.conflict_ways > 1 {
                replays += block.trips as u64 * (instr.conflict_ways as u64 - 1);
            }
        }
    }
    ProgramCounters {
        instrs_per_group: prog.dynamic_instrs(),
        instrs_by_class: prog.dynamic_instrs_by_class(),
        issue_cycles_per_pipeline: pipeline_issue_cycles(dev, prog),
        bank_conflict_replays: replays,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{Block, Instr};
    use snp_gpu_model::devices;

    #[test]
    fn program_counters_sum_classes_and_replays() {
        let dev = devices::gtx_980();
        let prog = Program::new(vec![
            Block::once(vec![Instr::load_global(0, &[])]),
            Block::looped(
                10,
                vec![
                    Instr::load_shared(1, &[0], 4),
                    Instr::arith(InstrClass::Popc, 2, &[1]),
                    Instr::arith(InstrClass::IntAdd, 3, &[2, 3]),
                ],
            ),
        ]);
        let c = program_counters(&dev, &prog);
        assert_eq!(c.instrs_per_group, 1 + 30);
        // 4-way conflict replays 3 extra times per trip, 10 trips.
        assert_eq!(c.bank_conflict_replays, 30);
        let by_class: std::collections::HashMap<_, _> = c.instrs_by_class.iter().copied().collect();
        assert_eq!(by_class[&InstrClass::LoadGlobal], 1);
        assert_eq!(by_class[&InstrClass::LoadShared], 10);
        assert_eq!(by_class[&InstrClass::Popc], 10);
        assert_eq!(by_class[&InstrClass::IntAdd], 10);
        // Issue cycles cover every pipeline slot the classes map to.
        assert_eq!(c.issue_cycles_per_pipeline.len(), dev.pipelines.len());
        let total: u64 = c.issue_cycles_per_pipeline.iter().sum();
        assert!(total > 0);
    }

    #[test]
    fn conflict_free_program_reports_zero_replays() {
        let dev = devices::titan_v();
        let prog = Program::dependent_chain(InstrClass::Popc, 8, 5);
        let c = program_counters(&dev, &prog);
        assert_eq!(c.bank_conflict_replays, 0);
    }
}
