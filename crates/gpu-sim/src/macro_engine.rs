//! The macro (analytic) timing engine.
//!
//! Full-size launches (e.g. 32 queries × 20 M profiles) execute trillions of
//! instructions — far beyond what per-cycle interpretation can cover. The
//! macro engine instead times a kernel from its *static structure*: per
//! block, the issue-cycle load each instruction class places on its pipeline
//! is summed, and the block's cluster-cycles are
//!
//! ```text
//! trips × max( groups_per_cluster × max_p issue_p ,  chain_cycles )
//! ```
//!
//! — the issue-bound / latency-bound maximum of DESIGN.md §3. The detailed
//! engine and this estimate are cross-validated on small programs (see the
//! tests and `tests/engine_agreement.rs`).
//!
//! Kernel wall time then combines compute cycles (scaled by the device's
//! core-scaling efficiency, the knob that reproduces Fig. 7), the
//! DRAM-bandwidth bound on streamed traffic, and the fixed launch overhead.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::{Mutex, OnceLock};

use snp_gpu_model::DeviceSpec;
use snp_trace::LazyCounter;

use crate::isa::{Block, Program};

/// Estimated cycles for one thread group's critical dependence chain through
/// one trip of a block: the longest path of result latencies through the
/// body's registers (intra-trip), plus the loop-carried minimum (the longest
/// single-instruction latency whose destination feeds the next trip).
fn chain_cycles(dev: &DeviceSpec, block: &Block) -> u64 {
    // Longest-path DP over the straight-line body: depth[r] = cycles until
    // register r is available, relative to trip start.
    let n_regs = block
        .instrs
        .iter()
        .flat_map(|i| i.dst.iter().chain(i.srcs.iter()))
        .map(|&r| r as usize + 1)
        .max()
        .unwrap_or(0);
    let mut depth = vec![0u64; n_regs];
    let mut max_depth = 0u64;
    for instr in &block.instrs {
        let start = instr
            .srcs
            .iter()
            .map(|&r| depth[r as usize])
            .max()
            .unwrap_or(0);
        let lat = dev.result_latency(instr.class) as u64;
        let finish = start + lat;
        if let Some(dst) = instr.dst {
            depth[dst as usize] = finish;
        }
        max_depth = max_depth.max(finish);
    }
    max_depth
}

/// Per-pipeline issue cycles one thread group places on each pipeline during
/// one trip of a block.
pub fn issue_cycles_per_trip(dev: &DeviceSpec, block: &Block) -> Vec<u64> {
    let mut issue = vec![0u64; dev.pipelines.len()];
    for instr in &block.instrs {
        let pipe = dev
            .pipeline_index_for(instr.class)
            .unwrap_or_else(|| panic!("{} lacks a pipeline for {}", dev.name, instr.class));
        issue[pipe] += dev.issue_cycles(instr.class) as u64 * instr.conflict_ways as u64;
    }
    issue
}

/// Analytic estimate of the cycles one compute core needs to run `prog` with
/// `groups` resident thread groups (spread over the device's clusters).
pub fn estimate_core_cycles(dev: &DeviceSpec, prog: &Program, groups: u32) -> f64 {
    assert!(groups >= 1);
    let n_clusters = dev.n_clusters.min(groups) as f64;
    // Groups per cluster, averaged (round-robin assignment).
    let gpc = groups as f64 / n_clusters;
    let mut total = 0.0f64;
    for block in &prog.blocks {
        if block.trips == 0 || block.instrs.is_empty() {
            continue;
        }
        let issue = issue_cycles_per_trip(dev, block);
        let issue_max = issue.iter().copied().max().unwrap_or(0) as f64;
        let chain = chain_cycles(dev, block) as f64;
        let per_trip = (gpc * issue_max).max(chain);
        total += block.trips as f64 * per_trip;
    }
    total
}

/// Hit/miss counters of the process-wide tile-timing cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TimingCacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to run the analytic estimate.
    pub misses: u64,
}

static TIMING_CACHE: OnceLock<Mutex<HashMap<u64, f64>>> = OnceLock::new();

/// Stable metric name of tile-timing cache hits in the `snp-trace` registry.
pub const TIMING_CACHE_HITS_METRIC: &str = "sim.timing_cache.hits";
/// Stable metric name of tile-timing cache misses.
pub const TIMING_CACHE_MISSES_METRIC: &str = "sim.timing_cache.misses";

// The counters live in the process-wide snp-trace metrics registry under the
// stable names above; the LazyCounter handles keep the hot path at one
// relaxed atomic add after first touch.
static TIMING_HITS: LazyCounter = LazyCounter::new(TIMING_CACHE_HITS_METRIC);
static TIMING_MISSES: LazyCounter = LazyCounter::new(TIMING_CACHE_MISSES_METRIC);

fn timing_cache() -> &'static Mutex<HashMap<u64, f64>> {
    TIMING_CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Current hit/miss counters of the tile-timing cache (a typed view of the
/// `sim.timing_cache.*` registry metrics).
pub fn timing_cache_stats() -> TimingCacheStats {
    TimingCacheStats {
        hits: TIMING_HITS.get(),
        misses: TIMING_MISSES.get(),
    }
}

/// Empties the tile-timing cache and zeroes its counters (test isolation).
pub fn reset_timing_cache() {
    timing_cache().lock().unwrap().clear();
    TIMING_HITS.reset();
    TIMING_MISSES.reset();
}

static DEVICE_FPRINTS: OnceLock<Mutex<Vec<(DeviceSpec, u64)>>> = OnceLock::new();

/// Fingerprints every timing-relevant field of a device (latency tables,
/// issue widths, cluster counts, …) via its `Debug` rendering — `DeviceSpec`
/// holds `f64` fields and so cannot implement `Hash` directly. Rendering the
/// spec is far more expensive than a structural compare, so fingerprints are
/// cached behind an equality lookup over the handful of distinct devices a
/// process touches.
pub fn device_fingerprint(dev: &DeviceSpec) -> u64 {
    let cache = DEVICE_FPRINTS.get_or_init(|| Mutex::new(Vec::new()));
    let mut known = cache.lock().unwrap();
    if let Some((_, fp)) = known.iter().find(|(d, _)| d == dev) {
        return *fp;
    }
    let mut h = DefaultHasher::new();
    format!("{dev:?}").hash(&mut h);
    let fp = h.finish();
    if known.len() >= 64 {
        // Randomized-hardware sweeps can mint unbounded distinct specs.
        known.clear();
    }
    known.push((dev.clone(), fp));
    fp
}

/// Structural fingerprint of an estimate request: the device, the resident
/// group count, and every block's trip count and instruction stream
/// (class, registers, conflict ways) — exactly the inputs
/// [`estimate_core_cycles`] depends on.
pub fn timing_key(dev: &DeviceSpec, prog: &Program, groups: u32) -> u64 {
    let mut h = DefaultHasher::new();
    device_fingerprint(dev).hash(&mut h);
    groups.hash(&mut h);
    prog.blocks.len().hash(&mut h);
    for block in &prog.blocks {
        block.trips.hash(&mut h);
        block.instrs.len().hash(&mut h);
        for i in &block.instrs {
            i.class.hash(&mut h);
            i.dst.hash(&mut h);
            i.srcs.hash(&mut h);
            i.conflict_ways.hash(&mut h);
        }
    }
    h.finish()
}

/// Looks `key` up in the process-wide timing cache, running `compute` and
/// inserting on miss.
///
/// `compute` must be a pure function of whatever `key` fingerprints — the
/// caller owns that contract. Callers that can derive `key` without
/// materializing a [`Program`] (e.g. a kernel planner keyed on its own
/// configuration) skip program construction entirely on a hit. The lock is
/// not held across `compute`; a concurrent duplicate computation is benign
/// because both producers insert the same value.
pub fn memoized_core_cycles(key: u64, compute: impl FnOnce() -> f64) -> f64 {
    if let Some(&cycles) = timing_cache().lock().unwrap().get(&key) {
        TIMING_HITS.add(1);
        return cycles;
    }
    let cycles = compute();
    TIMING_MISSES.add(1);
    timing_cache().lock().unwrap().insert(key, cycles);
    cycles
}

/// Memoized [`estimate_core_cycles`]: identical results, but repeated
/// estimates of structurally identical programs (the common case in
/// configuration sweeps, where every pass of a launch shares one tile
/// program) are answered from the cache.
pub fn estimate_core_cycles_memo(dev: &DeviceSpec, prog: &Program, groups: u32) -> f64 {
    memoized_core_cycles(timing_key(dev, prog, groups), || {
        estimate_core_cycles(dev, prog, groups)
    })
}

/// Total issue cycles one thread group places on each pipeline across the
/// whole program (every block × its trip count) — the macro-engine leg of
/// the per-pipeline busy counters in [`crate::profile`].
pub fn pipeline_issue_cycles(dev: &DeviceSpec, prog: &Program) -> Vec<u64> {
    let mut totals = vec![0u64; dev.pipelines.len()];
    for block in &prog.blocks {
        for (p, c) in issue_cycles_per_trip(dev, block).into_iter().enumerate() {
            totals[p] += block.trips as u64 * c;
        }
    }
    totals
}

/// Identifies the pipeline that bounds a program's steady state, by total
/// issue cycles (ties broken toward the lower index).
pub fn bottleneck_pipeline(dev: &DeviceSpec, prog: &Program) -> Option<usize> {
    let totals = pipeline_issue_cycles(dev, prog);
    totals
        .iter()
        .enumerate()
        .max_by_key(|&(_, &c)| c)
        .filter(|&(_, &c)| c > 0)
        .map(|(i, _)| i)
}

/// Global-memory traffic of a launch, for the bandwidth bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Traffic {
    /// Bytes read from global memory by the kernel.
    pub read_bytes: u64,
    /// Bytes written to global memory by the kernel.
    pub write_bytes: u64,
}

impl Traffic {
    /// Total bytes moved.
    pub fn total(&self) -> u64 {
        self.read_bytes + self.write_bytes
    }
}

/// Wall-time breakdown of one kernel launch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelTime {
    /// Compute time after applying core-scaling efficiency, in ns.
    pub compute_ns: f64,
    /// DRAM-bandwidth bound on the streamed traffic, in ns.
    pub memory_ns: f64,
    /// Fixed launch overhead, in ns.
    pub launch_ns: f64,
    /// Total modeled duration: `max(compute, memory) + launch`.
    pub total_ns: f64,
    /// The core-scaling efficiency that was applied (Fig. 7's knob).
    pub scaling_efficiency: f64,
}

/// Times a kernel launch of `core_cycles` per core on `active_cores`
/// concurrently active cores moving `traffic` bytes of global memory.
///
/// `core_cycles` is the per-core cycle count with all cores doing equal
/// work (the framework divides tiles evenly); the core-scaling efficiency
/// divides throughput, i.e. multiplies time.
pub fn kernel_time(
    dev: &DeviceSpec,
    core_cycles: f64,
    active_cores: u32,
    traffic: Traffic,
) -> KernelTime {
    assert!(active_cores >= 1 && active_cores <= dev.n_cores);
    let eff = dev.memory.core_scaling_efficiency(active_cores);
    let compute_ns = dev.cycles_to_ns(core_cycles) / eff;
    let memory_ns = traffic.total() as f64 / dev.memory.effective_bandwidth_bytes_s() * 1e9;
    let launch_ns = dev.transfer.kernel_launch_ns as f64;
    KernelTime {
        compute_ns,
        memory_ns,
        launch_ns,
        total_ns: compute_ns.max(memory_ns) + launch_ns,
        scaling_efficiency: eff,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detailed::simulate_core;
    use crate::isa::{Instr, Program};
    use snp_gpu_model::{devices, InstrClass};

    #[test]
    fn chain_bound_matches_detailed_for_single_group() {
        let dev = devices::gtx_980();
        let prog = Program::dependent_chain(InstrClass::Popc, 16, 100);
        let est = estimate_core_cycles(&dev, &prog, 1);
        let det = simulate_core(&dev, &prog, 1, 10_000_000).unwrap().cycles as f64;
        let rel = (est - det).abs() / det;
        assert!(
            rel < 0.05,
            "macro {est} vs detailed {det} ({rel:.2} rel err)"
        );
    }

    #[test]
    fn issue_bound_matches_detailed_at_saturation() {
        let dev = devices::gtx_980();
        let groups = dev.chosen_occupancy_groups();
        let prog = Program::dependent_chain(InstrClass::Popc, 16, 100);
        let est = estimate_core_cycles(&dev, &prog, groups);
        let det = simulate_core(&dev, &prog, groups, 10_000_000)
            .unwrap()
            .cycles as f64;
        let rel = (est - det).abs() / det;
        assert!(
            rel < 0.05,
            "macro {est} vs detailed {det} ({rel:.2} rel err)"
        );
    }

    #[test]
    fn mixed_pipes_agree_with_detailed() {
        for dev in [devices::gtx_980(), devices::titan_v(), devices::vega_64()] {
            let groups = dev.chosen_occupancy_groups();
            let prog = Program::interleaved_pair(InstrClass::Popc, InstrClass::IntAdd, 4, 200);
            let est = estimate_core_cycles(&dev, &prog, groups);
            let det = simulate_core(&dev, &prog, groups, 50_000_000)
                .unwrap()
                .cycles as f64;
            let rel = (est - det).abs() / det;
            assert!(rel < 0.10, "{}: macro {est} vs detailed {det}", dev.name);
        }
    }

    #[test]
    fn bottleneck_identification() {
        let dev = devices::gtx_980();
        let prog = Program::interleaved_pair(InstrClass::Popc, InstrClass::IntAdd, 4, 10);
        let b = bottleneck_pipeline(&dev, &prog).unwrap();
        assert_eq!(dev.pipelines[b].name, "popc");
        assert_eq!(bottleneck_pipeline(&dev, &Program::default()), None);
    }

    #[test]
    fn empty_and_zero_trip_blocks_cost_nothing() {
        let dev = devices::gtx_980();
        let prog = Program::new(vec![
            Block::looped(0, vec![Instr::arith(InstrClass::IntAdd, 0, &[0])]),
            Block::once(vec![]),
        ]);
        assert_eq!(estimate_core_cycles(&dev, &prog, 4), 0.0);
    }

    #[test]
    fn kernel_time_compute_bound_vs_memory_bound() {
        let dev = devices::titan_v();
        // Tiny traffic: compute-bound.
        let kt = kernel_time(
            &dev,
            1_000_000.0,
            80,
            Traffic {
                read_bytes: 1,
                write_bytes: 0,
            },
        );
        assert!(kt.compute_ns > kt.memory_ns);
        assert_eq!(kt.total_ns, kt.compute_ns + kt.launch_ns);
        // Huge traffic: memory-bound.
        let kt2 = kernel_time(
            &dev,
            1_000.0,
            80,
            Traffic {
                read_bytes: 10 << 30,
                write_bytes: 0,
            },
        );
        assert!(kt2.memory_ns > kt2.compute_ns);
        assert_eq!(kt2.total_ns, kt2.memory_ns + kt2.launch_ns);
    }

    #[test]
    fn vega_scaling_inflates_compute_time() {
        let dev = devices::vega_64();
        let t8 = kernel_time(&dev, 1e6, 8, Traffic::default());
        let t64 = kernel_time(&dev, 1e6, 64, Traffic::default());
        assert_eq!(t8.scaling_efficiency, 1.0);
        assert!(t64.scaling_efficiency < 0.58);
        assert!(t64.compute_ns > t8.compute_ns * 1.7);
    }

    #[test]
    #[should_panic(expected = "active_cores")]
    fn kernel_time_rejects_zero_cores() {
        let dev = devices::gtx_980();
        let _ = kernel_time(&dev, 1.0, 0, Traffic::default());
    }

    #[test]
    fn memoized_estimate_matches_oracle_and_hits() {
        let dev = devices::gtx_980();
        // Trip count unique to this test so the first call is a miss even if
        // other tests in the process populated the cache.
        let prog = Program::interleaved_pair(InstrClass::Popc, InstrClass::IntAdd, 4, 12_347);
        let want = estimate_core_cycles(&dev, &prog, 8);
        let before = timing_cache_stats();
        let first = estimate_core_cycles_memo(&dev, &prog, 8);
        let second = estimate_core_cycles_memo(&dev, &prog, 8);
        let after = timing_cache_stats();
        assert_eq!(first, want, "memoized miss path must equal the oracle");
        assert_eq!(second, want, "memoized hit path must equal the oracle");
        assert!(
            after.hits > before.hits,
            "repeat lookup must hit: {before:?} -> {after:?}"
        );
        assert!(after.misses > before.misses);
    }

    #[test]
    fn timing_cache_counters_live_in_the_metrics_registry() {
        let dev = devices::gtx_980();
        let prog = Program::interleaved_pair(InstrClass::Popc, InstrClass::IntAdd, 4, 22_961);
        let before = snp_trace::registry()
            .counter(TIMING_CACHE_MISSES_METRIC)
            .get();
        let _ = estimate_core_cycles_memo(&dev, &prog, 8);
        let after = snp_trace::registry()
            .counter(TIMING_CACHE_MISSES_METRIC)
            .get();
        assert!(
            after > before,
            "miss must show under the stable metric name"
        );
        assert_eq!(timing_cache_stats().misses, after, "typed view agrees");
    }

    #[test]
    fn timing_key_separates_structures() {
        let gtx = devices::gtx_980();
        let titan = devices::titan_v();
        let p1 = Program::dependent_chain(InstrClass::Popc, 16, 100);
        let p2 = Program::dependent_chain(InstrClass::Popc, 16, 101); // trips differ
        let p3 = Program::dependent_chain(InstrClass::IntAdd, 16, 100); // class differs
        let base = timing_key(&gtx, &p1, 8);
        assert_ne!(base, timing_key(&gtx, &p2, 8), "trip counts must be keyed");
        assert_ne!(
            base,
            timing_key(&gtx, &p3, 8),
            "instruction classes must be keyed"
        );
        assert_ne!(
            base,
            timing_key(&gtx, &p1, 16),
            "group counts must be keyed"
        );
        assert_ne!(base, timing_key(&titan, &p1, 8), "devices must be keyed");
        assert_eq!(
            base,
            timing_key(&gtx, &p1.clone(), 8),
            "keys are deterministic"
        );
    }
}
