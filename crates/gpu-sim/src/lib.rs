//! # snp-gpu-sim — simulator for the paper's model GPU architecture
//!
//! No GPU hardware is assumed anywhere in this workspace: this crate stands
//! in for the three physical GPUs of the paper's evaluation by *simulating
//! the paper's own model architecture* (§IV-A) — the abstraction every
//! analytical result in the paper is expressed against. See DESIGN.md §1
//! for why this substitution preserves the evaluated behaviour.
//!
//! Three layers:
//!
//! * [`isa`] — a timing ISA: instructions carry a pipeline class, register
//!   dependencies and a bank-conflict degree; programs are loop nests.
//! * [`detailed`] — a cycle-stepped engine for one compute core
//!   (scoreboarded thread groups, pipeline issue/latency, bank-conflict
//!   serialization). Powers the §V-C/V-D microbenchmarks and validates the
//!   macro engine.
//! * [`macro_engine`] — analytic timing from static program structure
//!   (issue-bound vs latency-bound per block, bandwidth bound, core-scaling
//!   efficiency) for full-size launches.
//! * [`host`] — an OpenCL-like host API: devices with allocation limits,
//!   in-order queues, events with profiling timestamps, link/compute
//!   resource serialization (which is what makes double buffering overlap),
//!   and functional kernels over real `u32` buffers.
//!
//! ```
//! use snp_gpu_sim::host::{Gpu, KernelCost};
//! use snp_gpu_sim::macro_engine::Traffic;
//! use snp_gpu_model::devices;
//!
//! let gpu = Gpu::new(devices::titan_v());
//! let q = gpu.create_queue();
//! let buf = gpu.create_buffer(4).unwrap();
//! let cost = KernelCost::Analytic { core_cycles: 1e6, active_cores: 80, traffic: Traffic::default() };
//! let ev = gpu.enqueue_kernel(q, &cost, &[], buf, &[], |_, out| out[0] = 42).unwrap();
//! gpu.finish_all();
//! let mut out = [0u32; 1];
//! let _ = gpu.enqueue_read(q, buf, 0, &mut out, &[], true).unwrap();
//! assert_eq!(out[0], 42);
//! assert!(gpu.event_profile(ev).unwrap().duration_ns() > 0);
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod detailed;
pub mod host;
pub mod isa;
pub mod macro_engine;
pub mod profile;

pub use cache::{analyze as analyze_memory, l2_bytes_for, MemoryAnalysis};
pub use detailed::{simulate_core, simulate_core_width, DetailedResult, SimLimit};
pub use host::{
    BufferId, BufferRange, CommandKind, CommandLog, CommandRecord, CostScale, EventId,
    EventProfile, Gpu, KernelCost, QueueId, SimError,
};
pub use isa::{Block, Instr, Program, Reg};
pub use macro_engine::{
    bottleneck_pipeline, device_fingerprint, estimate_core_cycles, estimate_core_cycles_memo,
    kernel_time, memoized_core_cycles, pipeline_issue_cycles, reset_timing_cache,
    timing_cache_stats, timing_key, KernelTime, TimingCacheStats, Traffic,
};
pub use profile::{program_counters, KernelProfile, ProfileEngine, ProgramCounters};
pub use snp_faults::{
    checksum_words, DeviceFault, FaultKind, FaultOp, FaultPlan, FaultProfile, FaultStats, Injection,
};
