//! Hierarchical-memory analysis (paper §VII future work).
//!
//! "One possibility is that the current GPU model is lacking in detail about
//! the memory hierarchy of the GPU. A more detailed memory hierarchy model
//! … may provide insights" — this module takes that step analytically. For
//! a kernel configuration it computes the per-core streaming demand, the
//! bandwidth-bound scaling prediction, and the L2 working-set occupancy,
//! and reports *how much* of the observed Vega collapse pure bandwidth can
//! explain. The answer (bandwidth alone predicts saturation far later than
//! the observed 8-core knee; the panels of all cores overflow L2 at just a
//! few cores) quantifies the paper's open question rather than hiding it in
//! the calibrated scaling knob.

use snp_gpu_model::peak::peak;
use snp_gpu_model::{DeviceSpec, KernelConfig, WordOpKind};

/// Last-level-cache sizes of the evaluated devices (public specifications;
/// not part of the paper's Table I, hence parameters of this analysis
/// module rather than of the core model).
pub fn l2_bytes_for(dev: &DeviceSpec) -> u64 {
    match dev.microarchitecture.as_str() {
        "Maxwell" => 2 << 20,
        "Volta" => 4608 << 10,
        "Vega (GCN5)" => 4 << 20,
        "Ampere" => 40 << 20,
        _ => 2 << 20,
    }
}

/// Outcome of the hierarchical-memory analysis for one configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct MemoryAnalysis {
    /// Bytes each core streams from global memory per word-op (B panel +
    /// A tile + γ writeback, amortized).
    pub bytes_per_word_op: f64,
    /// Per-core DRAM demand at full compute speed, bytes/second.
    pub demand_per_core: f64,
    /// Achievable DRAM supply, bytes/second.
    pub supply: f64,
    /// Core count at which pure bandwidth saturates (`supply / demand`),
    /// i.e. the knee a bandwidth-only model would predict.
    pub bandwidth_knee_cores: f64,
    /// One core's streamed B panel in bytes.
    pub b_panel_bytes: u64,
    /// Cores whose concurrent B panels fit the L2 together.
    pub cores_fitting_l2: u32,
}

impl MemoryAnalysis {
    /// Bandwidth-bound per-core efficiency at `n` active cores: 1 while the
    /// aggregate demand fits the supply, `supply / (n·demand)` beyond.
    pub fn bandwidth_scaling(&self, n: u32) -> f64 {
        let agg = self.demand_per_core * n as f64;
        (self.supply / agg).min(1.0)
    }
}

/// Analyzes `cfg` on `dev` with shared-dimension length `k_words`.
pub fn analyze(dev: &DeviceSpec, cfg: &KernelConfig, k_words: usize) -> MemoryAnalysis {
    // Traffic per word-op, as in the kernel plan: B re-streamed per m-tile
    // (1/m_c per op), A per n-tile (1/n_r), γ written once (1/k).
    let bytes_per_word_op =
        4.0 / cfg.m_c as f64 + 4.0 / cfg.n_r as f64 + 4.0 / k_words.max(1) as f64;
    let per_core_rate = peak(dev, WordOpKind::And).word_ops_per_sec_per_core;
    let demand_per_core = per_core_rate * bytes_per_word_op;
    let supply = dev.memory.effective_bandwidth_bytes_s();
    let b_panel_bytes = (cfg.n_r * cfg.k_c * 4) as u64;
    let l2 = l2_bytes_for(dev);
    MemoryAnalysis {
        bytes_per_word_op,
        demand_per_core,
        supply,
        bandwidth_knee_cores: supply / demand_per_core,
        b_panel_bytes,
        cores_fitting_l2: (l2 / b_panel_bytes.max(1)) as u32,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snp_gpu_model::devices;
    use snp_gpu_model::presets::preset_for;
    use snp_gpu_model::Algorithm;

    fn ld_analysis(dev: &DeviceSpec) -> MemoryAnalysis {
        let cfg = preset_for(dev, Algorithm::LinkageDisequilibrium).unwrap();
        analyze(dev, &cfg, cfg.k_c)
    }

    #[test]
    fn nvidia_parts_are_compute_bound_at_full_scale() {
        for dev in [devices::gtx_980(), devices::titan_v()] {
            let a = ld_analysis(&dev);
            assert!(
                a.bandwidth_knee_cores > dev.n_cores as f64,
                "{}: bandwidth knee {:.0} cores must exceed N_c {}",
                dev.name,
                a.bandwidth_knee_cores,
                dev.n_cores
            );
            assert_eq!(a.bandwidth_scaling(dev.n_cores), 1.0);
        }
    }

    #[test]
    fn bandwidth_alone_cannot_explain_the_vega_knee() {
        // The quantified open question: Vega's pure-bandwidth knee sits far
        // beyond the observed 8-core collapse, so a bandwidth-only
        // hierarchical model is insufficient — exactly why the paper calls
        // for a more detailed memory model and why this reproduction uses a
        // calibrated scaling knob (DESIGN.md §6).
        let vega = devices::vega_64();
        let a = ld_analysis(&vega);
        assert!(
            a.bandwidth_knee_cores > 3.0 * vega.memory.scaling_knee as f64,
            "knee {:.0} vs observed {}",
            a.bandwidth_knee_cores,
            vega.memory.scaling_knee
        );
    }

    #[test]
    fn l2_overflows_with_few_cores_everywhere() {
        // The concurrent B panels of only a handful of cores exceed L2 —
        // the candidate mechanism for cross-core interference.
        for dev in devices::all_gpus() {
            let a = ld_analysis(&dev);
            assert!(
                a.cores_fitting_l2 < dev.n_cores / 2,
                "{}: {} cores' panels fit L2",
                dev.name,
                a.cores_fitting_l2
            );
            assert!(a.cores_fitting_l2 >= 1);
        }
    }

    #[test]
    fn traffic_ratio_matches_hand_calculation() {
        let dev = devices::vega_64();
        let a = ld_analysis(&dev);
        // 4/32 + 4/1024 + 4/512 = 0.125 + 0.0039 + 0.0078 ≈ 0.137 B/word-op.
        assert!(
            (a.bytes_per_word_op - 0.1367).abs() < 0.001,
            "{}",
            a.bytes_per_word_op
        );
    }

    #[test]
    fn scaling_is_monotone_nonincreasing() {
        let a = ld_analysis(&devices::vega_64());
        let mut prev = 1.0;
        for n in 1..=64 {
            let e = a.bandwidth_scaling(n);
            assert!(e <= prev + 1e-12);
            prev = e;
        }
    }
}
