//! The cycle-stepped detailed engine.
//!
//! Simulates one compute core of the model GPU at thread-group granularity,
//! exactly implementing the pipeline semantics in DESIGN.md §3:
//!
//! * thread groups are assigned to compute clusters round-robin and execute
//!   their program in order, at most one issue per group per cycle;
//! * an instruction issues when its source registers are ready and its
//!   class's pipeline (within the group's cluster) is free; the pipeline is
//!   then busy for `T_issue = ceil(N_T / N_fn) × conflict_ways` cycles;
//! * the destination register becomes ready `result_latency` cycles after
//!   issue (`max(T_issue, L_fn)` for arithmetic; the modeled memory
//!   latencies for loads, scaled by conflict ways for shared accesses).
//!
//! A single-group dependent chain therefore measures `L_fn` directly (the
//! §V-C methodology) and `N_cl × L_fn` resident groups saturate pipeline
//! throughput (§V-D). The engine is used by the microbenchmarks and to
//! cross-validate the macro engine on small kernels; full-size launches are
//! timed analytically.

use snp_gpu_model::{DeviceSpec, InstrClass};

use crate::isa::Program;

/// Outcome of simulating one core.
#[derive(Debug, Clone, PartialEq)]
pub struct DetailedResult {
    /// Cycles from launch until the last result of the last group is ready.
    pub cycles: u64,
    /// Dynamic instructions executed per thread group.
    pub instrs_per_group: u64,
    /// Total dynamic instructions across all groups.
    pub total_instrs: u64,
    /// Busy cycles per pipeline index (summed over clusters) — feeds
    /// utilization reporting.
    pub pipeline_busy: Vec<u64>,
    /// Number of resident thread groups simulated.
    pub groups: u32,
}

impl DetailedResult {
    /// Average cycles per dynamic instruction of one group's stream —
    /// the quantity the §V-C latency formula evaluates.
    pub fn cycles_per_instr(&self) -> f64 {
        self.cycles as f64 / self.instrs_per_group.max(1) as f64
    }

    /// Thread-level instruction throughput in instructions per cycle for a
    /// whole core, counting each group instruction as `n_t` thread
    /// instructions — the §V-D throughput formula's numerator per cycle.
    pub fn thread_instrs_per_cycle(&self, n_t: u32) -> f64 {
        self.total_instrs as f64 * n_t as f64 / self.cycles.max(1) as f64
    }
}

/// Errors from the detailed engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimLimit {
    /// The cycle budget was exhausted before the program finished.
    CycleBudgetExceeded {
        /// The budget that was exceeded.
        budget: u64,
    },
}

impl std::fmt::Display for SimLimit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimLimit::CycleBudgetExceeded { budget } => {
                write!(
                    f,
                    "detailed simulation exceeded its cycle budget of {budget}"
                )
            }
        }
    }
}

impl std::error::Error for SimLimit {}

#[derive(Debug)]
struct GroupState {
    cluster: usize,
    block: usize,
    trip: u32,
    ip: usize,
    reg_ready: Vec<u64>,
    issued: u64,
    done: bool,
    finish_time: u64,
}

impl GroupState {
    fn advance(&mut self, prog: &Program) {
        let block = &prog.blocks[self.block];
        self.ip += 1;
        if self.ip >= block.instrs.len() {
            self.ip = 0;
            self.trip += 1;
            if self.trip >= block.trips {
                self.trip = 0;
                self.block += 1;
                // Skip empty or zero-trip blocks.
                while self.block < prog.blocks.len()
                    && (prog.blocks[self.block].instrs.is_empty()
                        || prog.blocks[self.block].trips == 0)
                {
                    self.block += 1;
                }
                if self.block >= prog.blocks.len() {
                    self.done = true;
                }
            }
        }
    }
}

/// Simulates `groups` resident thread groups executing `prog` on one core of
/// `dev`. `max_cycles` bounds runaway programs. Groups run at the device's
/// full thread-group width `N_T`.
pub fn simulate_core(
    dev: &DeviceSpec,
    prog: &Program,
    groups: u32,
    max_cycles: u64,
) -> Result<DetailedResult, SimLimit> {
    simulate_core_width(dev, prog, groups, dev.n_t, max_cycles)
}

/// Like [`simulate_core`] but with only `active_threads` live lanes per
/// group (`<= N_T`). A single-lane group issues every instruction in one
/// cycle regardless of `N_fn`, which is how a real latency microbenchmark
/// (one work-item) exposes `L_fn` even on pipelines narrower than the
/// thread group (paper §V-C).
pub fn simulate_core_width(
    dev: &DeviceSpec,
    prog: &Program,
    groups: u32,
    active_threads: u32,
    max_cycles: u64,
) -> Result<DetailedResult, SimLimit> {
    assert!(groups >= 1, "need at least one thread group");
    assert!(
        (1..=dev.n_t).contains(&active_threads),
        "active threads {active_threads} outside 1..=N_T ({})",
        dev.n_t
    );
    let instrs_per_group = prog.dynamic_instrs();
    let n_regs = prog.reg_count();
    let n_clusters = dev.n_clusters as usize;
    let n_pipes = dev.pipelines.len();

    let mut states: Vec<GroupState> = (0..groups as usize)
        .map(|g| {
            let mut s = GroupState {
                cluster: g % n_clusters,
                block: 0,
                trip: 0,
                ip: 0,
                reg_ready: vec![0; n_regs],
                issued: 0,
                done: instrs_per_group == 0,
                finish_time: 0,
            };
            // Position on the first non-empty block.
            if !s.done {
                while s.block < prog.blocks.len()
                    && (prog.blocks[s.block].instrs.is_empty() || prog.blocks[s.block].trips == 0)
                {
                    s.block += 1;
                }
                if s.block >= prog.blocks.len() {
                    s.done = true;
                }
            }
            s
        })
        .collect();

    // busy-until per (cluster, pipeline).
    let mut busy = vec![0u64; n_clusters * n_pipes];
    let mut pipeline_busy = vec![0u64; n_pipes];
    let mut cycle: u64 = 0;
    let mut finish: u64 = 0;

    let mut issued_this_cycle = vec![false; groups as usize];
    let mut last_issue = vec![0u64; groups as usize];

    while states.iter().any(|s| !s.done) {
        if cycle >= max_cycles {
            return Err(SimLimit::CycleBudgetExceeded { budget: max_cycles });
        }
        issued_this_cycle.iter_mut().for_each(|b| *b = false);
        let mut any = false;
        // Least-recently-issued arbitration per (cluster, pipeline): real
        // warp schedulers rotate priority; a fixed order would starve
        // later groups whenever two earlier ones can saturate the pipe.
        let mut order: Vec<usize> = (0..states.len()).collect();
        order.sort_by_key(|&g| (last_issue[g], g));
        for g in order {
            let s = &mut states[g];
            if s.done || issued_this_cycle[g] {
                continue;
            }
            let instr = &prog.blocks[s.block].instrs[s.ip];
            if instr.srcs.iter().any(|&r| s.reg_ready[r as usize] > cycle) {
                continue;
            }
            let pipe = dev
                .pipeline_index_for(instr.class)
                .unwrap_or_else(|| panic!("{} lacks a pipeline for {}", dev.name, instr.class));
            let slot = s.cluster * n_pipes + pipe;
            if busy[slot] > cycle {
                continue;
            }
            // Issue.
            last_issue[g] = cycle;
            let lanes = dev
                .n_fn(instr.class)
                .unwrap_or_else(|| panic!("{} lacks lanes for {}", dev.name, instr.class));
            let width_issue = active_threads.div_ceil(lanes) as u64;
            let t_issue = width_issue * instr.conflict_ways as u64;
            busy[slot] = cycle + t_issue;
            pipeline_busy[pipe] += t_issue;
            let latency = match instr.class {
                InstrClass::LoadGlobal => dev.memory.global_latency_cycles as u64,
                InstrClass::LoadShared => {
                    dev.memory.shared_latency_cycles as u64
                        + (instr.conflict_ways as u64 - 1) * width_issue
                }
                InstrClass::StoreGlobal | InstrClass::StoreShared => t_issue,
                InstrClass::Mma => {
                    // The fragment op completes in the matrix unit's own
                    // pipeline depth, not the scalar L_fn.
                    let l = dev
                        .matrix_unit
                        .map(|m| m.latency_cycles as u64)
                        .unwrap_or(dev.l_fn as u64);
                    l.max(width_issue)
                }
                _ => (dev.l_fn as u64).max(width_issue),
            };
            let ready = cycle + latency.max(t_issue);
            if let Some(dst) = instr.dst {
                s.reg_ready[dst as usize] = ready;
            }
            s.issued += 1;
            s.finish_time = s.finish_time.max(ready).max(cycle + t_issue);
            issued_this_cycle[g] = true;
            any = true;
            s.advance(prog);
            if s.done {
                finish = finish.max(s.finish_time);
            }
        }
        if any {
            cycle += 1;
        } else {
            // Nothing could issue: jump to the next event (register becoming
            // ready or pipeline freeing) to keep the engine near event-driven.
            let mut next = u64::MAX;
            for s in states.iter().filter(|s| !s.done) {
                let instr = &prog.blocks[s.block].instrs[s.ip];
                let src_ready = instr
                    .srcs
                    .iter()
                    .map(|&r| s.reg_ready[r as usize])
                    .max()
                    .unwrap_or(0);
                let pipe = dev.pipeline_index_for(instr.class).unwrap();
                let pipe_free = busy[s.cluster * n_pipes + pipe];
                next = next.min(src_ready.max(pipe_free).max(cycle + 1));
            }
            debug_assert!(next > cycle, "no progress possible");
            cycle = next;
        }
    }

    Ok(DetailedResult {
        cycles: finish.max(cycle),
        instrs_per_group,
        total_instrs: instrs_per_group * groups as u64,
        pipeline_busy,
        groups,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{Block, Instr, Program};
    use snp_gpu_model::devices;

    #[test]
    fn single_popc_chain_measures_l_fn() {
        // §V-C: one group, dependent popcount chain -> cycles/instr == L_fn.
        let dev = devices::gtx_980(); // L_fn = 6, popc issue = 4
        let iters = 200u32;
        let chain = 16usize;
        let prog = Program::dependent_chain(InstrClass::Popc, chain, iters);
        let r = simulate_core(&dev, &prog, 1, 10_000_000).unwrap();
        let chain_instrs = (chain as u64) * iters as u64;
        // Subtract the load/store bookkeeping (2 instrs) effect by using the
        // chain-dominated average.
        let cpi = r.cycles as f64 / chain_instrs as f64;
        assert!(
            (cpi - dev.l_fn as f64).abs() < 0.2,
            "cycles/instr {cpi} should approach L_fn {}",
            dev.l_fn
        );
    }

    #[test]
    fn vega_popc_chain_measures_issue_bound() {
        // Vega: popc issue = 64/16 = 4 = L_fn, so the chain also reads 4.
        let dev = devices::vega_64();
        let prog = Program::dependent_chain(InstrClass::Popc, 16, 200);
        let r = simulate_core(&dev, &prog, 1, 10_000_000).unwrap();
        let cpi = r.cycles as f64 / (16.0 * 200.0);
        assert!((cpi - 4.0).abs() < 0.2, "got {cpi}");
    }

    #[test]
    fn saturation_reaches_pipeline_throughput() {
        // §V-D: with N_cl x L_fn groups, popc throughput approaches
        // N_fn x N_cl thread-instructions per cycle per core.
        let dev = devices::gtx_980();
        let groups = dev.chosen_occupancy_groups(); // 24
        let prog = Program::dependent_chain(InstrClass::Popc, 16, 100);
        let r = simulate_core(&dev, &prog, groups, 10_000_000).unwrap();
        let tpc = r.thread_instrs_per_cycle(dev.n_t);
        let peak = (dev.n_fn(InstrClass::Popc).unwrap() * dev.n_clusters) as f64; // 32
        assert!(tpc > 0.93 * peak, "throughput {tpc} should approach {peak}");
        // Slightly above N_fn x N_cl is possible because the prologue loads
        // and epilogue stores count as instructions but issue on the LSU.
        assert!(tpc <= peak * 1.01);
    }

    #[test]
    fn throughput_flat_below_cluster_count() {
        // With <= N_cl groups each cluster holds at most one group, so the
        // *elapsed time* stays constant as groups are added (§V-D: "execution
        // time remains nearly constant for N_grp <= N_cl").
        let dev = devices::titan_v();
        let prog = Program::dependent_chain(InstrClass::Popc, 8, 50);
        let t1 = simulate_core(&dev, &prog, 1, 1_000_000).unwrap().cycles;
        let t4 = simulate_core(&dev, &prog, dev.n_clusters, 1_000_000)
            .unwrap()
            .cycles;
        assert!(
            (t4 as f64 - t1 as f64).abs() / (t1 as f64) < 0.02,
            "1 group: {t1} cycles, {} groups: {t4} cycles",
            dev.n_clusters
        );
    }

    #[test]
    fn pipeline_sharing_halves_vega_mixed_throughput() {
        // popc+add interleaved: on NVIDIA they sit on separate pipes so the
        // mixed stream is as fast as the slower class alone; on Vega ADD
        // shares the VALU with nothing popc-related, so the same holds; but
        // add+logic on Vega *do* share, doubling the time vs add alone.
        let iters = 100u32;
        let vega = devices::vega_64();
        let add_only = Program::independent_streams(InstrClass::IntAdd, 8, iters);
        let mixed = Program::interleaved_pair(InstrClass::IntAdd, InstrClass::Logic, 4, iters);
        let groups = vega.chosen_occupancy_groups();
        let t_add = simulate_core(&vega, &add_only, groups, 10_000_000).unwrap();
        let t_mix = simulate_core(&vega, &mixed, groups, 10_000_000).unwrap();
        // Same dynamic instruction counts per group (8 per iteration).
        assert_eq!(t_add.instrs_per_group, t_mix.instrs_per_group);
        let ratio = t_mix.cycles as f64 / t_add.cycles as f64;
        assert!(
            (ratio - 1.0).abs() < 0.05,
            "shared pipe: same time for same instr count, got {ratio}"
        );
        // Whereas popc+add mixed runs ~2x the instructions of add-only in the
        // same time, because the classes issue on different pipes.
        let popc_mix = Program::interleaved_pair(InstrClass::IntAdd, InstrClass::Popc, 4, iters);
        let t_pm = simulate_core(&vega, &popc_mix, groups, 10_000_000).unwrap();
        let speedup = t_mix.cycles as f64 / t_pm.cycles as f64;
        assert!(
            speedup > 1.8,
            "separate pipes should overlap, got {speedup}"
        );
    }

    #[test]
    fn nvidia_popc_add_overlap() {
        // §V-D observation: "population count is on a separate pipeline from
        // integer math... execution time remained nearly constant when
        // exclusively performing population count and when simultaneously
        // performing population count with an equal number of arithmetic
        // operations."
        let dev = devices::gtx_980();
        let groups = dev.chosen_occupancy_groups();
        let iters = 100u32;
        let popc_only = Program::independent_streams(InstrClass::Popc, 4, iters);
        let mixed = Program::interleaved_pair(InstrClass::Popc, InstrClass::IntAdd, 4, iters);
        let t_p = simulate_core(&dev, &popc_only, groups, 10_000_000).unwrap();
        let t_m = simulate_core(&dev, &mixed, groups, 10_000_000).unwrap();
        // The mixed program has 2x the instructions but the adds hide behind
        // the popc pipe, so elapsed time is nearly unchanged.
        let ratio = t_m.cycles as f64 / t_p.cycles as f64;
        assert!(
            ratio < 1.1,
            "adds must hide behind the popc pipe, got {ratio}"
        );
    }

    #[test]
    fn bank_conflicts_serialize_shared_loads() {
        let dev = devices::gtx_980();
        let mk = |ways| {
            Program::new(vec![Block::looped(
                200,
                vec![Instr::load_shared(0, &[], ways)],
            )])
        };
        let clean = simulate_core(&dev, &mk(1), 4, 10_000_000).unwrap().cycles;
        let conflicted = simulate_core(&dev, &mk(4), 4, 10_000_000).unwrap().cycles;
        let ratio = conflicted as f64 / clean as f64;
        assert!(
            (ratio - 4.0).abs() < 0.5,
            "4-way conflicts should serialize ~4x, got {ratio}"
        );
    }

    #[test]
    fn cycle_budget_enforced() {
        let dev = devices::gtx_980();
        let prog = Program::dependent_chain(InstrClass::Popc, 64, 10_000);
        let err = simulate_core(&dev, &prog, 1, 1_000).unwrap_err();
        assert!(matches!(
            err,
            SimLimit::CycleBudgetExceeded { budget: 1_000 }
        ));
        assert!(err.to_string().contains("cycle budget"));
    }

    #[test]
    fn empty_program_finishes_immediately() {
        let dev = devices::gtx_980();
        let r = simulate_core(&dev, &Program::default(), 4, 100).unwrap();
        assert_eq!(r.cycles, 0);
        assert_eq!(r.total_instrs, 0);
    }

    #[test]
    fn zero_trip_blocks_are_skipped() {
        let dev = devices::gtx_980();
        let prog = Program::new(vec![
            Block::looped(0, vec![Instr::arith(InstrClass::IntAdd, 0, &[0])]),
            Block::once(vec![Instr::arith(InstrClass::IntAdd, 0, &[0])]),
        ]);
        let r = simulate_core(&dev, &prog, 1, 10_000).unwrap();
        assert_eq!(r.instrs_per_group, 1);
        assert!(r.cycles >= 1);
    }

    #[test]
    fn more_groups_than_needed_do_not_help() {
        // Volkov-style: beyond saturation, extra groups leave throughput flat.
        let dev = devices::titan_v();
        let prog = Program::dependent_chain(InstrClass::Popc, 16, 50);
        let sat = dev.chosen_occupancy_groups();
        let r_sat = simulate_core(&dev, &prog, sat, 10_000_000).unwrap();
        let r_more = simulate_core(&dev, &prog, sat * 2, 10_000_000).unwrap();
        let tp_sat = r_sat.thread_instrs_per_cycle(dev.n_t);
        let tp_more = r_more.thread_instrs_per_cycle(dev.n_t);
        assert!(tp_more <= tp_sat * 1.02, "sat {tp_sat}, more {tp_more}");
    }
}
